#include "obs/trace.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace esva {

void MemoryTraceSink::on_decision(const VmDecisionTrace& decision) {
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.push_back(decision);
}

std::vector<VmDecisionTrace> MemoryTraceSink::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

void MemoryTraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.clear();
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file)
    throw std::runtime_error("cannot open trace file '" + path + "'");
  owned_ = std::move(file);
  out_ = owned_.get();
}

JsonlTraceSink::~JsonlTraceSink() = default;

void JsonlTraceSink::on_decision(const VmDecisionTrace& decision) {
  const std::string line = to_jsonl(decision);
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
}

// ---------------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------------

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
}

std::string fmt_energy(Energy e) {
  std::ostringstream out;
  out.precision(12);
  out << e;
  return out.str();
}

}  // namespace

std::string to_jsonl(const VmDecisionTrace& decision) {
  std::string out = "{\"allocator\":";
  append_escaped(out, decision.allocator);
  out += ",\"vm\":" + std::to_string(decision.vm);
  out += ",\"chosen\":";
  out += decision.chosen == kNoServer ? "null"
                                      : std::to_string(decision.chosen);
  out += ",\"chosen_delta\":";
  out += decision.has_chosen_delta ? fmt_energy(decision.chosen_delta) : "null";
  if (!decision.note.empty()) {
    out += ",\"note\":";
    append_escaped(out, decision.note);
  }
  out += ",\"candidates\":[";
  bool first = true;
  for (const CandidateTrace& candidate : decision.candidates) {
    if (!first) out += ',';
    first = false;
    out += "{\"server\":" + std::to_string(candidate.server);
    out += ",\"feasible\":";
    out += candidate.feasible ? "true" : "false";
    if (!candidate.feasible) {
      out += ",\"reject\":";
      append_escaped(out, to_string(candidate.reject));
      out += ",\"at\":" + std::to_string(candidate.reject_at);
    }
    out += ",\"delta\":";
    out += candidate.has_delta ? fmt_energy(candidate.delta) : "null";
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JSONL parsing — a minimal JSON reader covering exactly what to_jsonl emits
// (objects, arrays, strings with escapes, numbers, booleans, null).
// ---------------------------------------------------------------------------

namespace {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object)
      if (k == key) return &v;
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("trace JSON parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      JsonValue v;
      v.kind = JsonValue::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::Bool;
      return v;
    }
    if (consume_literal("null")) return JsonValue{};
    return parse_number();
  }

  JsonValue parse_object() {
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex = text_.substr(pos_, 4);
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Traces only escape control characters, all < 0x80; emit as byte.
          if (code < 0 || code > 0x7f) fail("unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

FitReject reject_from_string(const std::string& s) {
  if (s == "none") return FitReject::None;
  if (s == "horizon") return FitReject::Horizon;
  if (s == "cpu") return FitReject::Cpu;
  if (s == "mem") return FitReject::Mem;
  throw std::runtime_error("unknown reject reason '" + s + "'");
}

double require_number(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (!v || v->kind != JsonValue::Kind::Number)
    throw std::runtime_error("trace record missing numeric field '" + key +
                             "'");
  return v->number;
}

}  // namespace

std::vector<VmDecisionTrace> load_trace_jsonl(std::istream& in) {
  std::vector<VmDecisionTrace> decisions;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const JsonValue root = JsonParser(line).parse();
    if (root.kind != JsonValue::Kind::Object)
      throw std::runtime_error("trace line is not a JSON object");

    VmDecisionTrace decision;
    if (const JsonValue* v = root.find("allocator");
        v && v->kind == JsonValue::Kind::String)
      decision.allocator = v->string;
    decision.vm = static_cast<VmId>(require_number(root, "vm"));
    // "chosen": null marks a VM the allocator could not place.
    if (const JsonValue* v = root.find("chosen");
        v && v->kind == JsonValue::Kind::Null)
      decision.chosen = kNoServer;
    else
      decision.chosen = static_cast<ServerId>(require_number(root, "chosen"));
    if (const JsonValue* v = root.find("chosen_delta");
        v && v->kind == JsonValue::Kind::Number) {
      decision.has_chosen_delta = true;
      decision.chosen_delta = v->number;
    }
    if (const JsonValue* v = root.find("note");
        v && v->kind == JsonValue::Kind::String)
      decision.note = v->string;
    if (const JsonValue* v = root.find("candidates");
        v && v->kind == JsonValue::Kind::Array) {
      for (const JsonValue& entry : v->array) {
        CandidateTrace candidate;
        candidate.server = static_cast<ServerId>(require_number(entry, "server"));
        if (const JsonValue* f = entry.find("feasible");
            f && f->kind == JsonValue::Kind::Bool)
          candidate.feasible = f->boolean;
        if (const JsonValue* r = entry.find("reject");
            r && r->kind == JsonValue::Kind::String)
          candidate.reject = reject_from_string(r->string);
        if (const JsonValue* a = entry.find("at");
            a && a->kind == JsonValue::Kind::Number)
          candidate.reject_at = static_cast<Time>(a->number);
        if (const JsonValue* d = entry.find("delta");
            d && d->kind == JsonValue::Kind::Number) {
          candidate.has_delta = true;
          candidate.delta = d->number;
        }
        decision.candidates.push_back(std::move(candidate));
      }
    }
    decisions.push_back(std::move(decision));
  }
  return decisions;
}

std::vector<VmDecisionTrace> load_trace_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  return load_trace_jsonl(in);
}

std::vector<ServerId> assignment_from_trace(
    const std::vector<VmDecisionTrace>& decisions, std::size_t num_vms) {
  std::vector<ServerId> assignment(num_vms, kNoServer);
  for (const VmDecisionTrace& decision : decisions) {
    if (decision.vm < 0 ||
        static_cast<std::size_t>(decision.vm) >= num_vms)
      throw std::runtime_error("trace names VM " + std::to_string(decision.vm) +
                               " outside the instance");
    assignment[static_cast<std::size_t>(decision.vm)] = decision.chosen;
  }
  return assignment;
}

// ---------------------------------------------------------------------------
// DecisionBuilder
// ---------------------------------------------------------------------------

DecisionBuilder::DecisionBuilder(const ObsContext& obs, std::string allocator,
                                 VmId vm)
    : sink_(obs.trace) {
  if (!sink_) return;
  decision_.allocator = std::move(allocator);
  decision_.vm = vm;
}

void DecisionBuilder::add_feasible(ServerId server, Energy delta) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = true;
  candidate.has_delta = true;
  candidate.delta = delta;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::add_considered(ServerId server) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = true;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::add_rejected(ServerId server, const FitCheck& fit) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = false;
  candidate.reject = fit.reject;
  candidate.reject_at = fit.at;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::set_note(std::string note) {
  if (!sink_) return;
  decision_.note = std::move(note);
}

void DecisionBuilder::commit(ServerId chosen) {
  if (!sink_) return;
  decision_.chosen = chosen;
  sink_->on_decision(decision_);
}

void DecisionBuilder::commit(ServerId chosen, Energy chosen_delta) {
  if (!sink_) return;
  decision_.has_chosen_delta = true;
  decision_.chosen_delta = chosen_delta;
  commit(chosen);
}

}  // namespace esva
