#include "obs/trace.h"

#include <fstream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "util/json.h"
#include "util/parse.h"

namespace esva {

void MemoryTraceSink::on_decision(const VmDecisionTrace& decision) {
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.push_back(decision);
}

std::vector<VmDecisionTrace> MemoryTraceSink::decisions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_;
}

std::size_t MemoryTraceSink::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return decisions_.size();
}

void MemoryTraceSink::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  decisions_.clear();
}

JsonlTraceSink::JsonlTraceSink(std::ostream& out) : out_(&out) {}

JsonlTraceSink::JsonlTraceSink(const std::string& path) {
  auto file = std::make_unique<std::ofstream>(path);
  if (!*file)
    throw std::runtime_error("cannot open trace file '" + path + "'");
  owned_ = std::move(file);
  out_ = owned_.get();
}

JsonlTraceSink::~JsonlTraceSink() = default;

void JsonlTraceSink::on_decision(const VmDecisionTrace& decision) {
  const std::string line = to_jsonl(decision);
  std::lock_guard<std::mutex> lock(mutex_);
  *out_ << line << '\n';
  out_->flush();
}

// ---------------------------------------------------------------------------
// JSONL serialization
// ---------------------------------------------------------------------------

namespace {

std::string fmt_energy(Energy e) {
  std::ostringstream out;
  out.precision(12);
  out << e;
  return out.str();
}

}  // namespace

std::string to_jsonl(const VmDecisionTrace& decision) {
  std::string out = "{\"allocator\":";
  out += json::escape(decision.allocator);
  out += ",\"vm\":" + std::to_string(decision.vm);
  out += ",\"chosen\":";
  out += decision.chosen == kNoServer ? "null"
                                      : std::to_string(decision.chosen);
  out += ",\"chosen_delta\":";
  out += decision.has_chosen_delta ? fmt_energy(decision.chosen_delta) : "null";
  if (!decision.note.empty()) {
    out += ",\"note\":";
    out += json::escape(decision.note);
  }
  out += ",\"candidates\":[";
  bool first = true;
  for (const CandidateTrace& candidate : decision.candidates) {
    if (!first) out += ',';
    first = false;
    out += "{\"server\":" + std::to_string(candidate.server);
    out += ",\"feasible\":";
    out += candidate.feasible ? "true" : "false";
    if (!candidate.feasible) {
      out += ",\"reject\":";
      out += json::escape(to_string(candidate.reject));
      out += ",\"at\":" + std::to_string(candidate.reject_at);
    }
    out += ",\"delta\":";
    out += candidate.has_delta ? fmt_energy(candidate.delta) : "null";
    out += '}';
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// JSONL parsing — built on the shared minimal JSON reader (util/json.h).
// Unknown keys are ignored, which is what lets the serve journal write a
// superset of this schema (op/seq/spec/... fields) while every place/retire
// journal line stays loadable as a decision record (src/serve/journal.h).
// ---------------------------------------------------------------------------

namespace {

FitReject reject_from_string(const std::string& s) {
  if (s == "none") return FitReject::None;
  if (s == "horizon") return FitReject::Horizon;
  if (s == "cpu") return FitReject::Cpu;
  if (s == "mem") return FitReject::Mem;
  throw std::runtime_error("unknown reject reason '" + s + "'");
}

constexpr const char* kCtx = "trace record";

/// "chosen"/"server" fields: an integral server id, with -1 (and null, for
/// "chosen") meaning kNoServer. Anything below -1, fractional, non-finite,
/// or beyond ServerId range is a structured error — the old unchecked
/// double -> int32 cast was UB on exactly those inputs.
ServerId server_from_field(const json::Value& obj, const std::string& key) {
  return static_cast<ServerId>(json::require_integer(
      obj, key, kNoServer, std::numeric_limits<ServerId>::max(), kCtx));
}

}  // namespace

std::vector<VmDecisionTrace> load_trace_jsonl(std::istream& in) {
  std::vector<VmDecisionTrace> decisions;
  std::string line;
  while (std::getline(in, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    const json::Value root = json::parse(line);
    if (root.kind != json::Value::Kind::Object)
      throw std::runtime_error("trace line is not a JSON object");

    VmDecisionTrace decision;
    if (const json::Value* v = root.find("allocator");
        v && v->kind == json::Value::Kind::String)
      decision.allocator = v->string;
    decision.vm = static_cast<VmId>(json::require_integer(
        root, "vm", 0, std::numeric_limits<VmId>::max(), kCtx));
    // "chosen": null marks a VM the allocator could not place.
    if (const json::Value* v = root.find("chosen"); v && v->is_null())
      decision.chosen = kNoServer;
    else
      decision.chosen = server_from_field(root, "chosen");
    if (const json::Value* v = root.find("chosen_delta");
        v && v->kind == json::Value::Kind::Number) {
      decision.has_chosen_delta = true;
      decision.chosen_delta = v->number;
    }
    if (const json::Value* v = root.find("note");
        v && v->kind == json::Value::Kind::String)
      decision.note = v->string;
    if (const json::Value* v = root.find("candidates");
        v && v->kind == json::Value::Kind::Array) {
      for (const json::Value& entry : v->array) {
        CandidateTrace candidate;
        candidate.server = server_from_field(entry, "server");
        if (const json::Value* f = entry.find("feasible");
            f && f->kind == json::Value::Kind::Bool)
          candidate.feasible = f->boolean;
        if (const json::Value* r = entry.find("reject");
            r && r->kind == json::Value::Kind::String)
          candidate.reject = reject_from_string(r->string);
        if (const json::Value* a = entry.find("at");
            a && a->kind == json::Value::Kind::Number)
          candidate.reject_at = static_cast<Time>(checked_integer(
              a->number, std::numeric_limits<Time>::min(),
              std::numeric_limits<Time>::max(), "trace record: field 'at'"));
        if (const json::Value* d = entry.find("delta");
            d && d->kind == json::Value::Kind::Number) {
          candidate.has_delta = true;
          candidate.delta = d->number;
        }
        decision.candidates.push_back(std::move(candidate));
      }
    }
    decisions.push_back(std::move(decision));
  }
  return decisions;
}

std::vector<VmDecisionTrace> load_trace_jsonl_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open trace file '" + path + "'");
  return load_trace_jsonl(in);
}

std::vector<ServerId> assignment_from_trace(
    const std::vector<VmDecisionTrace>& decisions, std::size_t num_vms) {
  std::vector<ServerId> assignment(num_vms, kNoServer);
  for (const VmDecisionTrace& decision : decisions) {
    if (decision.vm < 0 ||
        static_cast<std::size_t>(decision.vm) >= num_vms)
      throw std::runtime_error("trace names VM " + std::to_string(decision.vm) +
                               " outside the instance");
    assignment[static_cast<std::size_t>(decision.vm)] = decision.chosen;
  }
  return assignment;
}

// ---------------------------------------------------------------------------
// DecisionBuilder
// ---------------------------------------------------------------------------

DecisionBuilder::DecisionBuilder(const ObsContext& obs, std::string allocator,
                                 VmId vm)
    : sink_(obs.trace) {
  if (!sink_) return;
  decision_.allocator = std::move(allocator);
  decision_.vm = vm;
}

void DecisionBuilder::add_feasible(ServerId server, Energy delta) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = true;
  candidate.has_delta = true;
  candidate.delta = delta;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::add_considered(ServerId server) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = true;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::add_rejected(ServerId server, const FitCheck& fit) {
  if (!sink_) return;
  CandidateTrace candidate;
  candidate.server = server;
  candidate.feasible = false;
  candidate.reject = fit.reject;
  candidate.reject_at = fit.at;
  decision_.candidates.push_back(std::move(candidate));
}

void DecisionBuilder::set_note(std::string note) {
  if (!sink_) return;
  decision_.note = std::move(note);
}

void DecisionBuilder::commit(ServerId chosen) {
  if (!sink_) return;
  decision_.chosen = chosen;
  sink_->on_decision(decision_);
}

void DecisionBuilder::commit(ServerId chosen, Energy chosen_delta) {
  if (!sink_) return;
  decision_.has_chosen_delta = true;
  decision_.chosen_delta = chosen_delta;
  commit(chosen);
}

}  // namespace esva
