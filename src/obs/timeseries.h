// Fleet time-series sampler: how the datacenter evolved, not just where it
// ended. The streaming engine (core/streaming.h) fills one FleetSample per
// sampling instant — active VMs, busy/drained/failed servers, instantaneous
// power draw, spare capacity per dimension, retry-queue depth, cumulative
// fault outcomes and the telescoped energy so far — and the sampler keeps
// them in a bounded ring so a week-long replay cannot grow without limit.
//
// The sampler is passive plain data on purpose: it knows nothing about the
// cluster (the obs library sits below core in the layering), it only decides
// *when* a sample is due (every `every` time units of frontier progress) and
// stores what the engine hands it. Samples export as CSV or JSON Lines for
// offline plotting, and `esva top` renders them as sparklines.
//
// Not thread-safe: the streaming engine is single-threaded and records from
// its own advance path.

#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <vector>

#include "util/types.h"

namespace esva {

/// Per-shard slice of one FleetSample (populated only when the cluster is
/// partitioned into more than one shard, core/shard.h): how load, power, and
/// occupancy distribute across shard blocks. Indexed by shard id.
struct ShardLoad {
  std::uint32_t active_vms = 0;
  std::uint32_t busy_servers = 0;
  std::uint32_t idle_servers = 0;
  /// Σ P(u_i) over this shard's servers hosting load at t (Eq. 1).
  double power_w = 0.0;
};

/// One snapshot of the fleet at time `t`, as seen by the streaming engine.
struct FleetSample {
  Time t = 0;
  /// VMs placed and not yet retired (including ones starting after t).
  std::uint32_t active_vms = 0;
  /// Up servers hosting at least one VM active at instant t.
  std::uint32_t busy_servers = 0;
  /// Up servers hosting nothing at instant t.
  std::uint32_t idle_servers = 0;
  std::uint32_t drained_servers = 0;
  std::uint32_t failed_servers = 0;
  /// Σ P(u_i) over servers hosting load at t (Eq. 1), drained ones included.
  double total_power_w = 0.0;
  /// Σ (capacity − usage) at t over *placeable* (up) servers only.
  double spare_cpu = 0.0;
  double spare_mem = 0.0;
  std::uint32_t retry_queue_depth = 0;
  /// Cumulative engine counters at sampling time.
  std::int64_t requests = 0;
  std::int64_t evacuated = 0;
  std::int64_t displaced = 0;
  std::int64_t rejected_final = 0;
  /// Telescoped incremental energy so far (0 unless energy accounting).
  double total_energy = 0.0;
  /// Per-shard load breakdown; empty on an unsharded (single-shard) fleet.
  /// Exported as a "shards" array in the JSONL form; the CSV schema is
  /// unchanged (fleet-wide columns only), keeping existing consumers stable.
  std::vector<ShardLoad> shards;
};

struct TimeSeriesOptions {
  /// Minimum frontier progress between samples, in time units.
  Time every = 1;
  /// Ring capacity; when full the oldest sample is overwritten (and
  /// counted in dropped()). 0 = unbounded.
  std::size_t capacity = 4096;
};

/// Ring-buffered collector of FleetSamples.
class TimeSeriesSampler {
 public:
  explicit TimeSeriesSampler(TimeSeriesOptions options = {});

  /// True when the frontier has advanced enough since the last sample (the
  /// first call is always due).
  bool due(Time frontier) const { return frontier >= next_due_; }

  /// Stores a sample and schedules the next one at sample.t + every.
  void record(const FleetSample& sample);

  std::size_t size() const;
  /// Samples overwritten because the ring was full.
  std::size_t dropped() const { return dropped_; }
  /// Most recent sample; null when empty.
  const FleetSample* latest() const;
  /// Retained samples, oldest first (unrolls the ring).
  std::vector<FleetSample> samples() const;

  static const char* csv_header();
  /// CSV: header + one row per retained sample.
  void write_csv(std::ostream& out) const;
  /// JSON Lines: one object per retained sample.
  void write_jsonl(std::ostream& out) const;

 private:
  TimeSeriesOptions options_;
  std::vector<FleetSample> ring_;
  std::size_t head_ = 0;  ///< insertion slot once the ring is full
  std::size_t dropped_ = 0;
  Time next_due_ = std::numeric_limits<Time>::min();
};

}  // namespace esva
