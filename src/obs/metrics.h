// Observability pillar 1: a process-wide metrics registry.
//
// Named counters, gauges and duration timers with stable handles: looking a
// metric up once (registry lock) returns a reference that is then updated
// lock-free (counters/gauges) or under a per-metric mutex (timers), so hot
// paths pay a name lookup only at setup time. Registries snapshot to JSON
// (`esva allocate --stats`) and CSV for offline analysis.
//
// Overhead contract (see docs/OBSERVABILITY.md): code instrumented against a
// *null* registry pointer must not pay for observability — every call site in
// the library guards on `metrics != nullptr`, and ScopedTimer accepts a null
// timer and compiles to two branch-predicted no-ops.

#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.h"

namespace esva {

/// Monotonically increasing event count (thread-safe, lock-free).
class Counter {
 public:
  void inc(std::int64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Last-written instantaneous value (thread-safe).
class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Duration aggregate: count / total / min / max in milliseconds, optionally
/// backed by a LatencyHistogram for percentile extraction.
class Timer {
 public:
  void record_ms(double ms);

  struct Stats {
    std::int64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    double mean_ms() const {
      return count > 0 ? total_ms / static_cast<double>(count) : 0.0;
    }
  };
  Stats stats() const;

  /// Attaches a latency histogram; subsequent record_ms() calls also bucket
  /// the sample, so stats() gains p50/p90/p99 via histogram_snapshot().
  /// Idempotent; samples recorded before the call are not back-filled.
  void enable_histogram();
  bool has_histogram() const;
  /// Snapshot of the backing histogram (empty snapshot when none).
  HistogramSnapshot histogram_snapshot() const;

 private:
  mutable std::mutex mutex_;
  Stats stats_;
  std::unique_ptr<LatencyHistogram> histogram_;
};

/// RAII wall-clock probe: records the elapsed time into `timer` on
/// destruction. A null timer makes construction and destruction no-ops, so
/// hot paths can be instrumented unconditionally.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer* timer)
      : timer_(timer),
        start_(timer ? std::chrono::steady_clock::now()
                     : std::chrono::steady_clock::time_point{}) {}
  ~ScopedTimer() {
    if (!timer_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    timer_->record_ms(
        std::chrono::duration<double, std::milli>(elapsed).count());
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  Timer* timer_;
  std::chrono::steady_clock::time_point start_;
};

/// Thread-safe name -> metric registry. Handles returned by counter() /
/// gauge() / timer() remain valid for the registry's lifetime (metrics are
/// heap-allocated and never erased).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Timer& timer(const std::string& name);
  /// timer(name) with a latency histogram attached (idempotent).
  Timer& histogram_timer(const std::string& name);

  /// One-shot conveniences (lookup + update).
  void inc(const std::string& name, std::int64_t n = 1) { counter(name).inc(n); }
  void set(const std::string& name, double v) { gauge(name).set(v); }

  /// Point-in-time copy of every metric, sorted by name within each kind.
  struct TimerEntry {
    std::string name;
    Timer::Stats stats;
    bool has_histogram = false;
    HistogramSnapshot histogram;  ///< empty unless has_histogram
  };
  struct Snapshot {
    std::vector<std::pair<std::string, std::int64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<TimerEntry> timers;
  };
  Snapshot snapshot() const;

  /// Serializes a snapshot: one JSON object with "counters" / "gauges" /
  /// "timers" sections (histogram-backed timers gain p50/p90/p99_ms), or
  /// flat CSV rows `kind,name,field,value` (RFC 4180 quoting).
  std::string to_json() const;
  void write_csv(std::ostream& out) const;

  /// Prometheus text exposition format, version 0.0.4: names sanitized to
  /// [a-zA-Z0-9_] and prefixed `esva_`, counters suffixed `_total`, timers
  /// exposed as summaries (quantile lines when histogram-backed, then _sum
  /// and _count). Families are sorted by exposed name for stable output.
  std::string to_prometheus() const;

  /// Drops every registered metric (handles become dangling; test-only).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Timer>> timers_;
};

/// The process-wide registry used by the CLI; libraries take an explicit
/// `MetricsRegistry*` and never touch this implicitly.
MetricsRegistry& global_metrics();

}  // namespace esva
