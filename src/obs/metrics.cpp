#include "obs/metrics.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/csv.h"

namespace esva {

void Timer::record_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.count == 0 || ms < stats_.min_ms) stats_.min_ms = ms;
  if (stats_.count == 0 || ms > stats_.max_ms) stats_.max_ms = ms;
  ++stats_.count;
  stats_.total_ms += ms;
  if (histogram_) histogram_->record(ms);
}

Timer::Stats Timer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void Timer::enable_histogram() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!histogram_) histogram_ = std::make_unique<LatencyHistogram>();
}

bool Timer::has_histogram() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_ != nullptr;
}

HistogramSnapshot Timer::histogram_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return histogram_ ? histogram_->snapshot() : HistogramSnapshot{};
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

Timer& MetricsRegistry::histogram_timer(const std::string& name) {
  Timer& t = timer(name);
  t.enable_histogram();
  return t;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, t] : timers_) {
    TimerEntry entry;
    entry.name = name;
    entry.stats = t->stats();
    entry.has_histogram = t->has_histogram();
    if (entry.has_histogram) entry.histogram = t->histogram_snapshot();
    snap.timers.push_back(std::move(entry));
  }
  return snap;
}

namespace {

/// Doubles in metric output: plain decimal, enough digits to round-trip.
std::string fmt_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          // Remaining control characters need the \u00XX escape.
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Prometheus metric name: [a-zA-Z0-9_] only, prefixed with the esva_
/// namespace (which also guarantees a legal leading character).
std::string prometheus_name(const std::string& name) {
  std::string out = "esva_";
  for (char c : name) {
    const auto u = static_cast<unsigned char>(c);
    out += std::isalnum(u) ? c : '_';
  }
  return out;
}

/// Prometheus sample values: shortest round-trip decimal.
std::string prom_number(double v) { return CsvWriter::field_to_string(v); }

}  // namespace

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + fmt_number(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const TimerEntry& entry : snap.timers) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, entry.name);
    out += ": {\"count\": " + std::to_string(entry.stats.count) +
           ", \"total_ms\": " + fmt_number(entry.stats.total_ms) +
           ", \"mean_ms\": " + fmt_number(entry.stats.mean_ms()) +
           ", \"min_ms\": " + fmt_number(entry.stats.min_ms) +
           ", \"max_ms\": " + fmt_number(entry.stats.max_ms);
    if (entry.has_histogram) {
      out += ", \"p50_ms\": " + fmt_number(entry.histogram.p50()) +
             ", \"p90_ms\": " + fmt_number(entry.histogram.p90()) +
             ", \"p99_ms\": " + fmt_number(entry.histogram.p99());
    }
    out += "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "kind,name,field,value\n";
  CsvWriter writer(out);
  for (const auto& [name, value] : snap.counters)
    writer.typed_row("counter", name, "value", static_cast<long long>(value));
  for (const auto& [name, value] : snap.gauges)
    writer.typed_row("gauge", name, "value", value);
  for (const TimerEntry& entry : snap.timers) {
    const Timer::Stats& stats = entry.stats;
    writer.typed_row("timer", entry.name, "count",
                     static_cast<long long>(stats.count));
    writer.typed_row("timer", entry.name, "total_ms", stats.total_ms);
    writer.typed_row("timer", entry.name, "mean_ms", stats.mean_ms());
    writer.typed_row("timer", entry.name, "min_ms", stats.min_ms);
    writer.typed_row("timer", entry.name, "max_ms", stats.max_ms);
    if (entry.has_histogram) {
      writer.typed_row("timer", entry.name, "p50_ms", entry.histogram.p50());
      writer.typed_row("timer", entry.name, "p90_ms", entry.histogram.p90());
      writer.typed_row("timer", entry.name, "p99_ms", entry.histogram.p99());
    }
  }
}

std::string MetricsRegistry::to_prometheus() const {
  const Snapshot snap = snapshot();
  // One (exposed name, text block) pair per family, globally sorted by the
  // exposed name so output order is stable regardless of metric kind.
  std::vector<std::pair<std::string, std::string>> families;
  for (const auto& [name, value] : snap.counters) {
    const std::string prom = prometheus_name(name) + "_total";
    families.emplace_back(
        prom, "# TYPE " + prom + " counter\n" + prom + " " +
                  std::to_string(value) + "\n");
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string prom = prometheus_name(name);
    families.emplace_back(prom, "# TYPE " + prom + " gauge\n" + prom + " " +
                                    prom_number(value) + "\n");
  }
  for (const TimerEntry& entry : snap.timers) {
    const std::string prom = prometheus_name(entry.name);
    std::string block = "# TYPE " + prom + " summary\n";
    if (entry.has_histogram && !entry.histogram.empty()) {
      block += prom + "{quantile=\"0.5\"} " +
               prom_number(entry.histogram.p50()) + "\n";
      block += prom + "{quantile=\"0.9\"} " +
               prom_number(entry.histogram.p90()) + "\n";
      block += prom + "{quantile=\"0.99\"} " +
               prom_number(entry.histogram.p99()) + "\n";
    }
    block += prom + "_sum " + prom_number(entry.stats.total_ms) + "\n";
    block += prom + "_count " + std::to_string(entry.stats.count) + "\n";
    families.emplace_back(prom, std::move(block));
  }
  std::sort(families.begin(), families.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::string out;
  for (const auto& [name, block] : families) out += block;
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace esva
