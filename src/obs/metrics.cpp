#include "obs/metrics.h"

#include <ostream>
#include <sstream>

namespace esva {

void Timer::record_ms(double ms) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stats_.count == 0 || ms < stats_.min_ms) stats_.min_ms = ms;
  if (stats_.count == 0 || ms > stats_.max_ms) stats_.max_ms = ms;
  ++stats_.count;
  stats_.total_ms += ms;
}

Timer::Stats Timer::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Timer& MetricsRegistry::timer(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = timers_[name];
  if (!slot) slot = std::make_unique<Timer>();
  return *slot;
}

MetricsRegistry::Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
  for (const auto& [name, t] : timers_) snap.timers.emplace_back(name, t->stats());
  return snap;
}

namespace {

/// Doubles in metric output: plain decimal, enough digits to round-trip.
std::string fmt_number(double v) {
  std::ostringstream out;
  out.precision(12);
  out << v;
  return out.str();
}

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

}  // namespace

std::string MetricsRegistry::to_json() const {
  const Snapshot snap = snapshot();
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, value] : snap.counters) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + std::to_string(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, value] : snap.gauges) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": " + fmt_number(value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"timers\": {";
  first = true;
  for (const auto& [name, stats] : snap.timers) {
    out += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(out, name);
    out += ": {\"count\": " + std::to_string(stats.count) +
           ", \"total_ms\": " + fmt_number(stats.total_ms) +
           ", \"mean_ms\": " + fmt_number(stats.mean_ms()) +
           ", \"min_ms\": " + fmt_number(stats.min_ms) +
           ", \"max_ms\": " + fmt_number(stats.max_ms) + "}";
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const Snapshot snap = snapshot();
  out << "kind,name,field,value\n";
  for (const auto& [name, value] : snap.counters)
    out << "counter," << name << ",value," << value << '\n';
  for (const auto& [name, value] : snap.gauges)
    out << "gauge," << name << ",value," << fmt_number(value) << '\n';
  for (const auto& [name, stats] : snap.timers) {
    out << "timer," << name << ",count," << stats.count << '\n';
    out << "timer," << name << ",total_ms," << fmt_number(stats.total_ms) << '\n';
    out << "timer," << name << ",mean_ms," << fmt_number(stats.mean_ms()) << '\n';
    out << "timer," << name << ",min_ms," << fmt_number(stats.min_ms) << '\n';
    out << "timer," << name << ",max_ms," << fmt_number(stats.max_ms) << '\n';
  }
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.clear();
  gauges_.clear();
  timers_.clear();
}

MetricsRegistry& global_metrics() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace esva
