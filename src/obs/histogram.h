// Fixed log-bucket latency histogram (HDR-histogram style) for the hot
// streaming paths: recording is a relaxed atomic increment into a
// statically-sized bucket array, so concurrent writers never block and a
// snapshot can be taken at any time without stopping them.
//
// Bucket layout: bucket 0 is the underflow bin [0, kMinMs); then kOctaves
// octaves starting at kMinMs, each split into kSubBuckets linear sub-buckets
// (so the relative bucket width is bounded by 1/kSubBuckets ≈ 6%, and any
// quantile read off the histogram is within one bucket width of the exact
// order statistic); the last bucket absorbs everything at or above
// kMinMs·2^kOctaves (~67 s). The octave index comes from std::frexp and the
// sub-bucket from exact linear arithmetic, so bucketing is deterministic
// across platforms — no std::log2 rounding differences.
//
// Quantiles use the same rank convention as stats::quantile (h = p·(n−1)
// with linear interpolation between order statistics), interpolated within
// the bucket holding the target rank and clamped to the exact [min, max]
// observed, so a single-sample histogram reports that sample exactly and
// the histogram path agrees with the sort-based batch computation within one
// bucket width (tests/test_histogram_obs.cpp pins this).

#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace esva {

/// Point-in-time copy of a LatencyHistogram: plain data, safe to keep after
/// the histogram is gone. Not a consistent cut under concurrent recording —
/// counts may lag min/max by a few samples — which is fine for reporting.
struct HistogramSnapshot {
  /// One count per bucket (LatencyHistogram::kNumBuckets; last = overflow).
  std::vector<std::uint64_t> counts;
  std::uint64_t total = 0;
  double min_ms = 0.0;  ///< exact smallest recorded value (0 when empty)
  double max_ms = 0.0;  ///< exact largest recorded value (0 when empty)

  bool empty() const { return total == 0; }

  /// Sample p-quantile (p clamped to [0, 1]); 0 when empty. Same rank
  /// formula as stats::quantile, interpolated within the target bucket and
  /// clamped to [min_ms, max_ms].
  double quantile(double p) const;

  double p50() const { return quantile(0.50); }
  double p90() const { return quantile(0.90); }
  double p99() const { return quantile(0.99); }
};

/// Lock-free fixed-bucket latency histogram, milliseconds.
class LatencyHistogram {
 public:
  static constexpr double kMinMs = 1e-3;  ///< 1 µs — lowest tracked latency
  static constexpr int kSubBuckets = 16;  ///< linear bins per octave
  static constexpr int kOctaves = 26;     ///< kMinMs·2^26 ≈ 67 s tracked
  /// Underflow + log buckets + overflow.
  static constexpr int kNumBuckets = 2 + kOctaves * kSubBuckets;

  LatencyHistogram() = default;
  LatencyHistogram(const LatencyHistogram&) = delete;
  LatencyHistogram& operator=(const LatencyHistogram&) = delete;

  /// Records one sample. Thread-safe, wait-free (relaxed atomics plus a
  /// CAS loop for the exact min/max).
  void record(double ms);

  /// Adds every bucket of `other` into this histogram (relaxed reads — take
  /// snapshots first if `other` has live writers and exactness matters).
  void merge(const LatencyHistogram& other);

  std::uint64_t total() const {
    return total_.load(std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;

  /// Bucket index for a value; NaN and negatives land in the underflow bin.
  static int bucket_index(double ms);
  /// Inclusive lower edge of a bucket (0 for the underflow bin).
  static double bucket_lower(int bucket);
  /// Exclusive upper edge of a bucket (+inf for the overflow bin).
  static double bucket_upper(int bucket);

 private:
  std::atomic<std::uint64_t> counts_[kNumBuckets] = {};
  std::atomic<std::uint64_t> total_{0};
  /// ±inf sentinels make the CAS min/max race-free without an "empty" flag;
  /// snapshot() maps the empty histogram back to 0/0.
  std::atomic<double> min_ms_{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_ms_{-std::numeric_limits<double>::infinity()};
};

}  // namespace esva
