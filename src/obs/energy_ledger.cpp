#include "obs/energy_ledger.h"

#include <algorithm>
#include <cmath>
#include <ostream>

#include "util/csv.h"

namespace esva {

const char* to_string(EnergyCause cause) {
  switch (cause) {
    case EnergyCause::kRun:
      return "run";
    case EnergyCause::kIdle:
      return "idle";
    case EnergyCause::kTransition:
      return "transition";
    case EnergyCause::kMigration:
      return "migration";
  }
  return "unknown";
}

void EnergyLedger::post(Time at, VmId vm, ServerId server, EnergyCause cause,
                        Energy delta) {
  entries_.push_back({at, vm, server, cause, delta});
  total_ += delta;
}

Energy EnergyLedger::total_for(EnergyCause cause) const {
  Energy sum = 0.0;
  for (const EnergyEntry& e : entries_) {
    if (e.cause == cause) sum += e.delta;
  }
  return sum;
}

bool EnergyLedger::conserves(Energy expected, double rel_tol) const {
  const double tol = rel_tol * std::max(1.0, std::abs(expected));
  return std::abs(total_ - expected) <= tol;
}

void EnergyLedger::clear() {
  entries_.clear();
  total_ = 0.0;
}

void EnergyLedger::write_csv(std::ostream& out) const {
  out << "at,vm,server,cause,delta\n";
  CsvWriter writer(out);
  for (const EnergyEntry& e : entries_) {
    writer.typed_row(static_cast<int>(e.at), static_cast<int>(e.vm),
                     static_cast<int>(e.server), to_string(e.cause), e.delta);
  }
}

void EnergyLedger::write_jsonl(std::ostream& out) const {
  for (const EnergyEntry& e : entries_) {
    out << "{\"at\":" << e.at << ",\"vm\":" << e.vm
        << ",\"server\":" << e.server << ",\"cause\":\"" << to_string(e.cause)
        << "\",\"delta\":" << CsvWriter::field_to_string(e.delta) << "}\n";
  }
}

}  // namespace esva
