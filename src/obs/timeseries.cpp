#include "obs/timeseries.h"

#include <ostream>
#include <string>

#include "util/csv.h"

namespace esva {

TimeSeriesSampler::TimeSeriesSampler(TimeSeriesOptions options)
    : options_(options) {
  if (options_.every < 1) options_.every = 1;
  if (options_.capacity > 0) ring_.reserve(options_.capacity);
}

void TimeSeriesSampler::record(const FleetSample& sample) {
  if (options_.capacity == 0 || ring_.size() < options_.capacity) {
    ring_.push_back(sample);
  } else {
    ring_[head_] = sample;
    head_ = (head_ + 1) % options_.capacity;
    ++dropped_;
  }
  next_due_ = sample.t + options_.every;
}

std::size_t TimeSeriesSampler::size() const { return ring_.size(); }

const FleetSample* TimeSeriesSampler::latest() const {
  if (ring_.empty()) return nullptr;
  const std::size_t last =
      head_ == 0 ? ring_.size() - 1 : head_ - 1;
  // Before the ring wraps, head_ is 0 and the newest sample is at the back.
  return dropped_ == 0 && head_ == 0 ? &ring_.back() : &ring_[last];
}

std::vector<FleetSample> TimeSeriesSampler::samples() const {
  std::vector<FleetSample> out;
  out.reserve(ring_.size());
  // Oldest first: once the ring wrapped, head_ points at the oldest slot.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

const char* TimeSeriesSampler::csv_header() {
  return "t,active_vms,busy_servers,idle_servers,drained_servers,"
         "failed_servers,total_power_w,spare_cpu,spare_mem,"
         "retry_queue_depth,requests,evacuated,displaced,rejected_final,"
         "total_energy";
}

void TimeSeriesSampler::write_csv(std::ostream& out) const {
  out << csv_header() << '\n';
  CsvWriter writer(out);
  for (const FleetSample& s : samples()) {
    writer.typed_row(static_cast<int>(s.t), static_cast<long long>(s.active_vms),
                     static_cast<long long>(s.busy_servers),
                     static_cast<long long>(s.idle_servers),
                     static_cast<long long>(s.drained_servers),
                     static_cast<long long>(s.failed_servers), s.total_power_w,
                     s.spare_cpu, s.spare_mem,
                     static_cast<long long>(s.retry_queue_depth),
                     static_cast<long long>(s.requests),
                     static_cast<long long>(s.evacuated),
                     static_cast<long long>(s.displaced),
                     static_cast<long long>(s.rejected_final), s.total_energy);
  }
}

void TimeSeriesSampler::write_jsonl(std::ostream& out) const {
  // Keys are fixed identifiers (no escaping needed); numbers use the same
  // shortest round-trip formatting as the CSV export.
  const auto num = [](double v) { return CsvWriter::field_to_string(v); };
  for (const FleetSample& s : samples()) {
    out << "{\"t\":" << s.t << ",\"active_vms\":" << s.active_vms
        << ",\"busy_servers\":" << s.busy_servers
        << ",\"idle_servers\":" << s.idle_servers
        << ",\"drained_servers\":" << s.drained_servers
        << ",\"failed_servers\":" << s.failed_servers
        << ",\"total_power_w\":" << num(s.total_power_w)
        << ",\"spare_cpu\":" << num(s.spare_cpu)
        << ",\"spare_mem\":" << num(s.spare_mem)
        << ",\"retry_queue_depth\":" << s.retry_queue_depth
        << ",\"requests\":" << s.requests
        << ",\"evacuated\":" << s.evacuated
        << ",\"displaced\":" << s.displaced
        << ",\"rejected_final\":" << s.rejected_final
        << ",\"total_energy\":" << num(s.total_energy);
    if (!s.shards.empty()) {
      // Sharded fleets carry the per-shard load breakdown (core/shard.h);
      // unsharded samples omit the key entirely, keeping the historical
      // line shape byte-identical.
      out << ",\"shards\":[";
      for (std::size_t i = 0; i < s.shards.size(); ++i) {
        const ShardLoad& shard = s.shards[i];
        if (i > 0) out << ',';
        out << "{\"active_vms\":" << shard.active_vms
            << ",\"busy_servers\":" << shard.busy_servers
            << ",\"idle_servers\":" << shard.idle_servers
            << ",\"power_w\":" << num(shard.power_w) << '}';
      }
      out << ']';
    }
    out << "}\n";
  }
}

}  // namespace esva
