// Observability pillar 2: allocation decision tracing.
//
// Every allocator in the library can explain *why* it picked a server: for
// each VM it emits one VmDecisionTrace naming the candidate servers it
// considered, the feasibility rejections (which resource, which time unit —
// FitReject from cluster/timeline.h), the incremental-cost delta of each
// feasible candidate, and the server finally chosen. Events flow through a
// pluggable TraceSink: JsonlTraceSink streams them as one JSON object per
// line (schema in docs/OBSERVABILITY.md), MemoryTraceSink buffers them for
// tests and in-process analysis.
//
// The hook lives on the Allocator base class (core/allocator.h) as an
// ObsContext {TraceSink*, MetricsRegistry*}; both pointers default to null,
// and a null context must cost nothing — allocators guard every trace branch
// on `obs.tracing()` and fall back to the raw can_fit() fast path.

#pragma once

#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/timeline.h"
#include "util/types.h"

namespace esva {

class MetricsRegistry;

/// One server examined while deciding a VM's placement.
struct CandidateTrace {
  ServerId server = kNoServer;
  bool feasible = false;
  /// Why the server was rejected (None when feasible) and the earliest
  /// violating time unit (0 for horizon rejections).
  FitReject reject = FitReject::None;
  Time reject_at = 0;
  /// Incremental energy (Eq. 17 delta) of hosting the VM here. Allocators
  /// that do not price candidates (FFPS's first fit) still report it while
  /// tracing so traces are comparable across policies; has_delta=false marks
  /// candidates whose delta was never evaluated.
  bool has_delta = false;
  Energy delta = 0.0;
};

/// The full decision record for one VM.
struct VmDecisionTrace {
  std::string allocator;
  VmId vm = 0;
  ServerId chosen = kNoServer;  ///< kNoServer: the VM stayed unallocated
  bool has_chosen_delta = false;
  Energy chosen_delta = 0.0;
  /// Free-form qualifier for non-greedy events ("migration", "window-reopt");
  /// empty for first-placement decisions.
  std::string note;
  std::vector<CandidateTrace> candidates;
};

/// Consumer of decision events. Implementations must tolerate concurrent
/// on_decision calls (the experiment harness may run allocators in parallel
/// in future PRs).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_decision(const VmDecisionTrace& decision) = 0;
};

/// Buffers decisions in memory (thread-safe); the test sink.
class MemoryTraceSink final : public TraceSink {
 public:
  void on_decision(const VmDecisionTrace& decision) override;

  std::vector<VmDecisionTrace> decisions() const;
  std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mutex_;
  std::vector<VmDecisionTrace> decisions_;
};

/// Streams decisions to an output stream as JSON Lines (one object per
/// decision, flushed per line so partial traces of crashed runs are usable).
class JsonlTraceSink final : public TraceSink {
 public:
  /// Writes to `out` (not owned; must outlive the sink).
  explicit JsonlTraceSink(std::ostream& out);
  /// Opens `path` for writing; throws std::runtime_error on failure.
  explicit JsonlTraceSink(const std::string& path);
  ~JsonlTraceSink() override;

  void on_decision(const VmDecisionTrace& decision) override;

 private:
  std::mutex mutex_;
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
};

/// Serializes one decision as a single-line JSON object (no trailing \n).
std::string to_jsonl(const VmDecisionTrace& decision);

/// Parses JSONL produced by to_jsonl / JsonlTraceSink back into decision
/// records. Throws std::runtime_error on malformed input. Blank lines are
/// skipped.
std::vector<VmDecisionTrace> load_trace_jsonl(std::istream& in);
std::vector<VmDecisionTrace> load_trace_jsonl_file(const std::string& path);

/// Replays a trace into an assignment vector: the last decision for each VM
/// wins (so migration/reopt notes override the initial placement). VMs never
/// mentioned stay kNoServer.
std::vector<ServerId> assignment_from_trace(
    const std::vector<VmDecisionTrace>& decisions, std::size_t num_vms);

/// Shared observability context handed to allocators and extension passes.
/// Null members disable the corresponding pillar at (near) zero cost.
struct ObsContext {
  TraceSink* trace = nullptr;
  MetricsRegistry* metrics = nullptr;

  bool tracing() const { return trace != nullptr; }
};

/// Accumulates one VmDecisionTrace and emits it on commit(). All methods are
/// no-ops when the context has no sink, so allocators can call them
/// unconditionally inside `if (obs.tracing())` blocks or not at all.
class DecisionBuilder {
 public:
  DecisionBuilder(const ObsContext& obs, std::string allocator, VmId vm);

  bool active() const { return sink_ != nullptr; }

  void add_feasible(ServerId server, Energy delta);
  void add_considered(ServerId server);  ///< feasible, delta not evaluated
  void add_rejected(ServerId server, const FitCheck& fit);
  void set_note(std::string note);

  /// Finalizes and emits the record (chosen may be kNoServer). Calling
  /// commit at most once is the caller's responsibility.
  void commit(ServerId chosen);
  void commit(ServerId chosen, Energy chosen_delta);

 private:
  TraceSink* sink_ = nullptr;
  VmDecisionTrace decision_;
};

}  // namespace esva
