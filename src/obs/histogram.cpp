#include "obs/histogram.h"

#include <algorithm>
#include <cmath>

namespace esva {

int LatencyHistogram::bucket_index(double ms) {
  // NaN, negatives and sub-resolution values all land in the underflow bin
  // (the !(>=) form catches NaN without a separate isnan branch).
  if (!(ms >= kMinMs)) return 0;
  const double r = ms / kMinMs;  // >= 1 by the guard above
  int exp = 0;
  std::frexp(r, &exp);  // r = m·2^exp with m in [0.5, 1)
  const int octave = exp - 1;
  if (octave >= kOctaves) return kNumBuckets - 1;
  // u = r / 2^octave lies in [1, 2); the sub-bucket is linear within it.
  const double u = std::ldexp(r, -octave);
  const int sub = std::min(kSubBuckets - 1,
                           static_cast<int>((u - 1.0) * kSubBuckets));
  return 1 + octave * kSubBuckets + sub;
}

double LatencyHistogram::bucket_lower(int bucket) {
  if (bucket <= 0) return 0.0;
  if (bucket >= kNumBuckets - 1)
    return kMinMs * std::ldexp(1.0, kOctaves);
  const int octave = (bucket - 1) / kSubBuckets;
  const int sub = (bucket - 1) % kSubBuckets;
  return kMinMs * std::ldexp(1.0, octave) *
         (1.0 + static_cast<double>(sub) / kSubBuckets);
}

double LatencyHistogram::bucket_upper(int bucket) {
  if (bucket < 0) return 0.0;
  if (bucket >= kNumBuckets - 1)
    return std::numeric_limits<double>::infinity();
  return bucket_lower(bucket + 1);
}

namespace {

/// CAS loop updating an atomic double toward the more extreme value.
template <typename Better>
void update_extreme(std::atomic<double>& slot, double value, Better better) {
  double current = slot.load(std::memory_order_relaxed);
  while (better(value, current) &&
         !slot.compare_exchange_weak(current, value,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencyHistogram::record(double ms) {
  counts_[bucket_index(ms)].fetch_add(1, std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  update_extreme(min_ms_, ms, [](double a, double b) { return a < b; });
  update_extreme(max_ms_, ms, [](double a, double b) { return a > b; });
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  std::uint64_t added = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const std::uint64_t c = other.counts_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    counts_[b].fetch_add(c, std::memory_order_relaxed);
    added += c;
  }
  total_.fetch_add(added, std::memory_order_relaxed);
  update_extreme(min_ms_, other.min_ms_.load(std::memory_order_relaxed),
                 [](double a, double b) { return a < b; });
  update_extreme(max_ms_, other.max_ms_.load(std::memory_order_relaxed),
                 [](double a, double b) { return a > b; });
}

HistogramSnapshot LatencyHistogram::snapshot() const {
  HistogramSnapshot snap;
  snap.counts.resize(kNumBuckets);
  std::uint64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    snap.counts[static_cast<std::size_t>(b)] =
        counts_[b].load(std::memory_order_relaxed);
    total += snap.counts[static_cast<std::size_t>(b)];
  }
  // Recompute from the buckets (not total_) so the snapshot is internally
  // consistent even when writers raced the copy loop.
  snap.total = total;
  if (total > 0) {
    snap.min_ms = min_ms_.load(std::memory_order_relaxed);
    snap.max_ms = max_ms_.load(std::memory_order_relaxed);
  }
  return snap;
}

double HistogramSnapshot::quantile(double p) const {
  if (total == 0) return 0.0;
  p = std::clamp(p, 0.0, 1.0);
  // The extremes are tracked exactly; don't bucket-round them (matters for
  // the unbounded overflow bin, where interpolation has no finite edge).
  if (p == 0.0) return min_ms;
  if (p == 1.0) return max_ms;
  // Same rank convention as stats::quantile: the exact answer interpolates
  // between order statistics floor(h) and ceil(h).
  const double h = p * static_cast<double>(total - 1);
  const auto target = static_cast<std::uint64_t>(h);
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    const std::uint64_t c = counts[b];
    if (c == 0) continue;
    if (target < cum + c) {
      const int bucket = static_cast<int>(b);
      const double lower = LatencyHistogram::bucket_lower(bucket);
      double upper = LatencyHistogram::bucket_upper(bucket);
      // The overflow bin has no finite edge; the exact max bounds it.
      if (!std::isfinite(upper)) upper = std::max(max_ms, lower);
      // Spread the bucket's mass evenly and interpolate at the fractional
      // rank, centered so a single-sample bucket reads its midpoint...
      const double pos =
          (h - static_cast<double>(cum) + 0.5) / static_cast<double>(c);
      const double v = lower + (upper - lower) * std::clamp(pos, 0.0, 1.0);
      // ...then clamp to the exact extremes, so one-sample histograms (and
      // the p0/p100 ends) report recorded values exactly.
      return std::clamp(v, min_ms, max_ms);
    }
    cum += c;
  }
  return max_ms;
}

}  // namespace esva
