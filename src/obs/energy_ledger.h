// Energy-attribution ledger: every accepted placement posts the pieces of
// its incremental energy (Eq. 7 telescoping) as signed, cause-tagged entries,
// so a run can answer "where did every joule go?" and prove it — the sum of
// all deltas must equal the engine's total energy (conservation, checked by
// conserves() in tests and in the bench gate).
//
// Cause taxonomy:
//   run        — the VM's own run energy (Σ unit_run_power · demand over its
//                lifetime); always non-negative.
//   idle       — change in idle-floor energy on the chosen server (gaps that
//                appear, shrink, or are newly bridged); signed.
//   transition — change in off→on transition energy (alpha) on the chosen
//                server; signed (merging two busy spans removes one).
//   migration  — migration energy charged for re-placing an evacuated VM.
//
// The ledger recomputes its attribution through the cost model's breakdown
// path, independent of the engine's energy accumulator — binding a ledger
// must never perturb the engine's floating-point stream (assignments and
// total energy stay byte-identical). The two totals therefore agree only to
// rounding, hence the relative tolerance on conserves().
//
// Not thread-safe: posted from the single-threaded engine submit path.

#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "util/types.h"

namespace esva {

enum class EnergyCause { kRun, kIdle, kTransition, kMigration };

const char* to_string(EnergyCause cause);

struct EnergyEntry {
  Time at = 0;  ///< engine frontier when the decision was accepted
  VmId vm = -1;
  ServerId server = kNoServer;
  EnergyCause cause = EnergyCause::kRun;
  Energy delta = 0.0;  ///< signed watt-minutes
};

class EnergyLedger {
 public:
  void post(Time at, VmId vm, ServerId server, EnergyCause cause,
            Energy delta);

  const std::vector<EnergyEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Sum of every posted delta.
  Energy total() const { return total_; }
  /// Sum of deltas posted with the given cause.
  Energy total_for(EnergyCause cause) const;

  /// True when |total() − expected| ≤ rel_tol · max(1, |expected|) — the
  /// conservation invariant against the cost-model total.
  bool conserves(Energy expected, double rel_tol = 1e-6) const;

  void clear();

  /// CSV: header + one row per entry.
  void write_csv(std::ostream& out) const;
  /// JSON Lines: one object per entry.
  void write_jsonl(std::ostream& out) const;

 private:
  std::vector<EnergyEntry> entries_;
  Energy total_ = 0.0;
};

}  // namespace esva
