#include "sim/metrics.h"

#include <cassert>
#include <vector>

namespace esva {

UtilizationStats average_utilization(const ProblemInstance& problem,
                                     const Allocation& alloc) {
  UtilizationStats stats;
  const auto grouped = vms_by_server(problem, alloc);
  const std::size_t t_len = static_cast<std::size_t>(problem.horizon) + 2;

  double cpu_ratio_sum = 0.0;
  double mem_ratio_sum = 0.0;

  std::vector<double> cpu_diff;
  std::vector<double> mem_diff;
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    if (grouped[i].empty()) continue;
    cpu_diff.assign(t_len, 0.0);
    mem_diff.assign(t_len, 0.0);
    for (const VmSpec& vm : grouped[i]) {
      if (!vm.has_profile()) {
        cpu_diff[static_cast<std::size_t>(vm.start)] += vm.demand.cpu;
        cpu_diff[static_cast<std::size_t>(vm.end) + 1] -= vm.demand.cpu;
        mem_diff[static_cast<std::size_t>(vm.start)] += vm.demand.mem;
        mem_diff[static_cast<std::size_t>(vm.end) + 1] -= vm.demand.mem;
        continue;
      }
      for (Time t = vm.start; t <= vm.end; ++t) {
        const Resources r = vm.demand_at(t);
        cpu_diff[static_cast<std::size_t>(t)] += r.cpu;
        cpu_diff[static_cast<std::size_t>(t) + 1] -= r.cpu;
        mem_diff[static_cast<std::size_t>(t)] += r.mem;
        mem_diff[static_cast<std::size_t>(t) + 1] -= r.mem;
      }
    }
    const ServerSpec& server = problem.servers[i];
    double cpu_usage = 0.0;
    double mem_usage = 0.0;
    for (Time t = 1; t <= problem.horizon; ++t) {
      cpu_usage += cpu_diff[static_cast<std::size_t>(t)];
      mem_usage += mem_diff[static_cast<std::size_t>(t)];
      if (cpu_usage > kEps) {
        cpu_ratio_sum += cpu_usage / server.capacity.cpu;
        ++stats.cpu_samples;
      }
      if (mem_usage > kEps) {
        mem_ratio_sum += mem_usage / server.capacity.mem;
        ++stats.mem_samples;
      }
    }
  }
  if (stats.cpu_samples > 0)
    stats.avg_cpu = cpu_ratio_sum / static_cast<double>(stats.cpu_samples);
  if (stats.mem_samples > 0)
    stats.avg_mem = mem_ratio_sum / static_cast<double>(stats.mem_samples);
  return stats;
}

AllocationMetrics compute_metrics(const ProblemInstance& problem,
                                  const Allocation& alloc,
                                  const CostOptions& opts) {
  AllocationMetrics metrics;
  metrics.cost = evaluate_cost(problem, alloc, opts);
  metrics.utilization = average_utilization(problem, alloc);
  metrics.unallocated = alloc.num_unallocated();
  metrics.servers_used = static_cast<int>(metrics.cost.used_servers.size());
  return metrics;
}

double energy_reduction_ratio(Energy baseline, Energy ours) {
  assert(baseline > 0);
  return (baseline - ours) / baseline;
}

}  // namespace esva
