// Experiment harness: repeats a scenario over several seeded random runs,
// evaluates a set of allocators on each drawn instance, and aggregates the
// paper's metrics. Every figure bench is a loop over sweep values calling
// run_point().
//
// Randomness protocol: a master Rng is seeded from (config.seed); each run
// derives one child stream for instance generation and one per allocator, so
// all allocators see the *same* instance within a run (paired comparison,
// matching the paper's "reduction ratio" definition) while stochastic
// allocators keep independent randomness.

#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/cost_model.h"
#include "obs/trace.h"
#include "sim/metrics.h"
#include "stats/summary.h"
#include "workload/scenarios.h"

namespace esva {

struct ExperimentConfig {
  /// Allocators to evaluate, by registry name. The first entry is "ours" in
  /// reports; `baseline` is the denominator of reduction ratios.
  std::vector<std::string> allocator_names = {"min-incremental", "ffps"};
  std::string baseline = "ffps";
  /// Paper: "Each simulation result is averaged over 5 random runs."
  int runs = 5;
  std::uint64_t seed = 42;
  CostOptions cost;
  /// Optional observability (obs/): when `metrics` is set, run_point records
  /// "experiment.point_ms" and per-allocator "experiment.alloc.<name>_ms"
  /// timers plus run counters; when `trace` is set, every allocator decision
  /// is forwarded to the sink. Null (default) costs nothing.
  ObsContext obs;
};

/// Aggregates (over runs) for one allocator at one sweep point.
struct AllocatorAggregate {
  std::string name;
  Accumulator total_cost;
  Accumulator cpu_util;
  Accumulator mem_util;
  Accumulator servers_used;
  Accumulator unallocated;
  /// Energy reduction ratio vs the configured baseline, per run. Empty for
  /// the baseline itself.
  Accumulator reduction_vs_baseline;
  /// The raw per-run reduction ratios behind the accumulator (same order as
  /// the runs); kept so reports can bootstrap confidence intervals.
  std::vector<double> reduction_runs;
  /// Wall-clock of each allocate() call, in milliseconds (always measured —
  /// one steady_clock pair per run is noise next to the allocation itself).
  Accumulator allocate_ms;
};

struct PointOutcome {
  /// In config.allocator_names order.
  std::vector<AllocatorAggregate> allocators;

  const AllocatorAggregate& by_name(const std::string& name) const;

  /// The paper's "system load" x-axes (Figs. 4, 9): the baseline allocator's
  /// average utilizations.
  double baseline_cpu_load() const;
  double baseline_mem_load() const;
  /// Mean reduction ratio of allocator_names[0] vs the baseline.
  double headline_reduction() const;

  std::string baseline_name;
  /// Wall-clock of the whole point (instantiation + all allocators + metric
  /// evaluation over all runs), in milliseconds.
  double wall_ms = 0.0;
};

/// Runs config.runs paired evaluations of the scenario.
PointOutcome run_point(const Scenario& scenario, const ExperimentConfig& config);

}  // namespace esva
