#include "sim/experiment.h"

#include <cassert>
#include <chrono>
#include <stdexcept>

#include "baselines/registry.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace esva {

const AllocatorAggregate& PointOutcome::by_name(const std::string& name) const {
  for (const AllocatorAggregate& agg : allocators)
    if (agg.name == name) return agg;
  throw std::invalid_argument("no aggregate for allocator '" + name + "'");
}

double PointOutcome::baseline_cpu_load() const {
  return by_name(baseline_name).cpu_util.mean();
}

double PointOutcome::baseline_mem_load() const {
  return by_name(baseline_name).mem_util.mean();
}

double PointOutcome::headline_reduction() const {
  assert(!allocators.empty());
  return allocators.front().reduction_vs_baseline.mean();
}

namespace {

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

PointOutcome run_point(const Scenario& scenario,
                       const ExperimentConfig& config) {
  assert(config.runs > 0);
  const auto point_start = std::chrono::steady_clock::now();
  ScopedTimer point_timer(config.obs.metrics
                              ? &config.obs.metrics->timer("experiment.point_ms")
                              : nullptr);
  PointOutcome outcome;
  outcome.baseline_name = config.baseline;
  outcome.allocators.resize(config.allocator_names.size());
  for (std::size_t a = 0; a < config.allocator_names.size(); ++a)
    outcome.allocators[a].name = config.allocator_names[a];

  Rng master(config.seed);
  for (int run = 0; run < config.runs; ++run) {
    // One child stream per run; within a run, the instance stream is drawn
    // first and allocator streams afterwards, so the set of allocators under
    // test never perturbs the instances (or each other's randomness).
    Rng run_master = master.split();
    Rng instance_rng = run_master.split();
    const ProblemInstance problem = scenario.instantiate(instance_rng);

    Energy baseline_cost = 0.0;
    std::vector<Energy> costs(config.allocator_names.size(), 0.0);
    for (std::size_t a = 0; a < config.allocator_names.size(); ++a) {
      Rng alloc_rng = run_master.split();
      AllocatorPtr allocator = make_allocator(config.allocator_names[a]);
      allocator->set_observability(config.obs);
      const auto alloc_start = std::chrono::steady_clock::now();
      const Allocation alloc = allocator->allocate(problem, alloc_rng);
      const double alloc_ms = elapsed_ms(alloc_start);
      const AllocationMetrics metrics =
          compute_metrics(problem, alloc, config.cost);

      AllocatorAggregate& agg = outcome.allocators[a];
      agg.allocate_ms.add(alloc_ms);
      if (config.obs.metrics) {
        config.obs.metrics
            ->timer("experiment.alloc." + config.allocator_names[a] + "_ms")
            .record_ms(alloc_ms);
        config.obs.metrics->inc("experiment.runs");
      }
      agg.total_cost.add(metrics.cost.total());
      agg.cpu_util.add(metrics.utilization.avg_cpu);
      agg.mem_util.add(metrics.utilization.avg_mem);
      agg.servers_used.add(static_cast<double>(metrics.servers_used));
      agg.unallocated.add(static_cast<double>(metrics.unallocated));
      costs[a] = metrics.cost.total();
      if (config.allocator_names[a] == config.baseline)
        baseline_cost = metrics.cost.total();
      if (metrics.unallocated > 0)
        log_warn() << scenario.name << " run " << run << ": "
                   << config.allocator_names[a] << " left "
                   << metrics.unallocated << " VMs unallocated";
    }

    if (baseline_cost > 0) {
      for (std::size_t a = 0; a < config.allocator_names.size(); ++a) {
        if (config.allocator_names[a] == config.baseline) continue;
        const double reduction =
            energy_reduction_ratio(baseline_cost, costs[a]);
        outcome.allocators[a].reduction_vs_baseline.add(reduction);
        outcome.allocators[a].reduction_runs.push_back(reduction);
      }
    }
  }
  outcome.wall_ms = elapsed_ms(point_start);
  return outcome;
}

}  // namespace esva
