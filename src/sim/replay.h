// Streaming replay: drives a PlacementEngine (core/streaming.h) from an
// ArrivalStream (workload/arrival_stream.h), advancing the rolling horizon
// to each arrival's start time, and reports what a serving system would
// report — per-request placement latency (p50/p99), requests/sec, telescoped
// energy, the peak resident timeline footprint the garbage collection
// bounds, and — when a FaultPlan or retry policy is configured — the fault
// and retry outcomes (evacuations, downtime, deferred placements). Backs the
// `esva stream` CLI command and the streaming section of
// bench/perf_allocators.

#pragma once

#include <cstddef>
#include <vector>

#include "core/streaming.h"
#include "obs/histogram.h"
#include "workload/arrival_stream.h"

namespace esva {

struct ReplayOptions {
  /// Advance the frontier to each arrival's start before placing it, letting
  /// the engine garbage-collect history. Off replays with full batch state
  /// (the differential baseline: GC must not change any decision).
  bool rolling_gc = true;
  /// Prices each placement (Eq. 17) for the energy report.
  CostOptions cost;
  /// Optional deterministic fail/drain/recover schedule, applied by the
  /// engine at frontier advances; null = fault-free. Must outlive the call.
  const FaultPlan* faults = nullptr;
  /// Deferred-retry configuration (disabled by default — then the replay is
  /// bit-identical to the fault-free one when `faults` is also null).
  RetryPolicy retry;
  /// Live-migration energy charged per GiB when an evacuated VM is re-placed.
  Energy migration_cost_per_gib = 25.0;
  /// Engine metrics (engine.submit_ms / engine.requests / engine.* fault
  /// counters) land here; the policy carries its own ObsContext for tracing
  /// and allocator.* metrics.
  ObsContext obs;
  /// Fleet time-series sampler passed through to the engine; null = no
  /// sampling. A final sample is forced after the end-of-stream drain.
  TimeSeriesSampler* timeseries = nullptr;
  /// Energy-attribution ledger passed through to the engine; null = none.
  EnergyLedger* ledger = nullptr;
  /// Fleet partition (core/shard.h) passed through to the engine's cluster.
  /// A pure layout/parallelism knob: the replayed decisions are
  /// byte-identical at any shard count (tests/test_sharded_scan.cpp); a
  /// multi-shard partition additionally annotates every time-series sample
  /// with the per-shard load breakdown.
  ShardOptions shard;
};

/// Per-request submit latency, milliseconds. The p50/p99 pair comes from the
/// exact sort-based stats::quantiles; the hist_* fields are read off the
/// log-bucket histogram fed the same samples, so live-path percentiles can
/// be validated against the batch computation (they agree within one bucket
/// width — tests/test_histogram_obs.cpp).
struct LatencySummary {
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  double hist_p50_ms = 0.0;
  double hist_p90_ms = 0.0;
  double hist_p99_ms = 0.0;
};

struct ReplayReport {
  std::size_t requests = 0;
  std::size_t placed = 0;
  std::size_t rejected = 0;  ///< terminal rejections (no server, ever)
  std::size_t deferred = 0;  ///< submit-time deferrals into the retry queue
  /// Wall time spent inside submit() and the resulting throughput.
  double submit_total_ms = 0.0;
  double requests_per_sec = 0.0;
  LatencySummary latency;
  /// Raw per-request latencies, in submission order (the percentile source).
  std::vector<double> submit_ms;
  /// The same latencies bucketed into the log-bucket histogram (the live
  /// serving path's representation; source of latency.hist_*).
  HistogramSnapshot latency_hist;
  /// Telescoped Eq. 17 incremental energy of all placements, including the
  /// migration energy of evacuations.
  Energy total_energy = 0.0;
  std::size_t peak_resident_time_units = 0;
  std::size_t final_resident_time_units = 0;
  std::size_t peak_active_vms = 0;
  Time final_frontier = 1;
  /// Fault/retry outcome counters, copied from PlacementEngine::fault_stats()
  /// after the end-of-stream drain. All zero on a fault-free replay.
  FaultStats faults;
  /// Assignment indexed by VmId (the generators and the trace loader produce
  /// dense ids); reflects the *final* hosting after evacuations and retry
  /// placements (engine resolutions applied over submit-time decisions).
  std::vector<ServerId> assignment;
};

/// Replays every arrival through `policy`. The stream must present requests
/// in non-decreasing start-time order (the ArrivalStream contract). Late
/// stragglers (start behind the frontier) are tolerated: they are rejected
/// with a structured kLateArrival and counted, never thrown.
ReplayReport replay_stream(ArrivalStream& arrivals,
                           const std::vector<ServerSpec>& servers,
                           PlacementPolicy& policy, Rng& rng,
                           const ReplayOptions& options = {});

}  // namespace esva
