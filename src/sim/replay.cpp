#include "sim/replay.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "stats/summary.h"

namespace esva {

ReplayReport replay_stream(ArrivalStream& arrivals,
                           const std::vector<ServerSpec>& servers,
                           PlacementPolicy& policy, Rng& rng,
                           const ReplayOptions& options) {
  EngineOptions engine_options;
  engine_options.initial_horizon = 0;  // grow on demand with the stream
  engine_options.auto_advance = options.rolling_gc;
  engine_options.account_energy = true;
  engine_options.cost = options.cost;
  // A straggler in a real arrival feed must not abort the whole replay; the
  // engine classifies it (kLateArrival) and the report counts it.
  engine_options.tolerate_late_arrivals = true;
  engine_options.faults = options.faults;
  engine_options.retry = options.retry;
  engine_options.migration_cost_per_gib = options.migration_cost_per_gib;
  engine_options.obs = options.obs;
  engine_options.timeseries = options.timeseries;
  engine_options.ledger = options.ledger;
  engine_options.shard = options.shard;
  PlacementEngine engine(servers, policy, rng, engine_options);

  ReplayReport report;
  using Clock = std::chrono::steady_clock;
  while (auto vm = arrivals.next()) {
    const auto t0 = Clock::now();
    const PlacementDecision decision = engine.submit(*vm);
    const auto t1 = Clock::now();
    report.submit_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    ++report.requests;
    const auto id = static_cast<std::size_t>(vm->id);
    if (report.assignment.size() <= id) {
      report.assignment.resize(id + 1, kNoServer);
    }
    report.assignment[id] = decision.server;
    if (decision.reject == PlacementReject::kDeferred) ++report.deferred;
    report.peak_active_vms =
        std::max(report.peak_active_vms, engine.cluster().active_vms());
  }
  // Give every queued retry its remaining attempts and fire any faults
  // scheduled past the last arrival, so the counters below are final.
  engine.finish_stream();
  // End-of-stream fleet state, regardless of the sampler's cadence.
  engine.sample_now();
  policy.finish(report.requests,
                report.requests - static_cast<std::size_t>(engine.placed()));

  // Evacuations and retry placements change hosting after submission; the
  // resolution log replays those changes over the submit-time assignment.
  for (const Resolution& r : engine.resolutions()) {
    const auto id = static_cast<std::size_t>(r.vm);
    if (report.assignment.size() <= id)
      report.assignment.resize(id + 1, kNoServer);
    report.assignment[id] = r.server;
  }

  for (double ms : report.submit_ms) report.submit_total_ms += ms;
  if (!report.submit_ms.empty()) {
    report.latency.mean_ms =
        report.submit_total_ms / static_cast<double>(report.submit_ms.size());
    const std::array<double, 3> ps = {0.50, 0.99, 1.0};
    const std::vector<double> qs = quantiles(report.submit_ms, ps);
    report.latency.p50_ms = qs[0];
    report.latency.p99_ms = qs[1];
    report.latency.max_ms = qs[2];
    // Feed the *same* measured samples into the log-bucket histogram, so the
    // live-path percentiles are deterministically comparable to the exact
    // sort-based ones above (no second clock reading involved).
    LatencyHistogram hist;
    for (double ms : report.submit_ms) hist.record(ms);
    report.latency_hist = hist.snapshot();
    report.latency.hist_p50_ms = report.latency_hist.p50();
    report.latency.hist_p90_ms = report.latency_hist.p90();
    report.latency.hist_p99_ms = report.latency_hist.p99();
  }
  if (report.submit_total_ms > 0.0) {
    report.requests_per_sec = static_cast<double>(report.requests) /
                              (report.submit_total_ms / 1000.0);
  }

  report.placed = static_cast<std::size_t>(engine.placed());
  report.rejected = report.requests - report.placed;
  report.faults = engine.fault_stats();
  report.total_energy = engine.total_energy();
  report.peak_resident_time_units = engine.peak_resident_time_units();
  report.final_resident_time_units = engine.cluster().resident_time_units();
  report.final_frontier = engine.cluster().frontier();
  return report;
}

}  // namespace esva
