#include "sim/replay.h"

#include <algorithm>
#include <chrono>

#include "stats/summary.h"

namespace esva {

ReplayReport replay_stream(ArrivalStream& arrivals,
                           const std::vector<ServerSpec>& servers,
                           PlacementPolicy& policy, Rng& rng,
                           const ReplayOptions& options) {
  EngineOptions engine_options;
  engine_options.initial_horizon = 0;  // grow on demand with the stream
  engine_options.auto_advance = options.rolling_gc;
  engine_options.account_energy = true;
  engine_options.cost = options.cost;
  engine_options.obs = options.obs;
  PlacementEngine engine(servers, policy, rng, engine_options);

  ReplayReport report;
  using Clock = std::chrono::steady_clock;
  while (auto vm = arrivals.next()) {
    const auto t0 = Clock::now();
    const PlacementDecision decision = engine.submit(*vm);
    const auto t1 = Clock::now();
    report.submit_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());

    ++report.requests;
    if (decision.server != kNoServer) {
      ++report.placed;
    } else {
      ++report.rejected;
    }
    const auto id = static_cast<std::size_t>(vm->id);
    if (report.assignment.size() <= id) {
      report.assignment.resize(id + 1, kNoServer);
    }
    report.assignment[id] = decision.server;
    report.peak_active_vms =
        std::max(report.peak_active_vms, engine.cluster().active_vms());
  }
  policy.finish(report.requests, report.rejected);

  for (double ms : report.submit_ms) report.submit_total_ms += ms;
  if (!report.submit_ms.empty()) {
    report.latency.mean_ms =
        report.submit_total_ms / static_cast<double>(report.submit_ms.size());
    report.latency.p50_ms = quantile(report.submit_ms, 0.50);
    report.latency.p99_ms = quantile(report.submit_ms, 0.99);
    report.latency.max_ms = quantile(report.submit_ms, 1.0);
  }
  if (report.submit_total_ms > 0.0) {
    report.requests_per_sec = static_cast<double>(report.requests) /
                              (report.submit_total_ms / 1000.0);
  }

  report.total_energy = engine.total_energy();
  report.peak_resident_time_units = engine.peak_resident_time_units();
  report.final_resident_time_units = engine.cluster().resident_time_units();
  report.final_frontier = engine.cluster().frontier();
  return report;
}

}  // namespace esva
