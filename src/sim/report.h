// Figure-style reporting: renders sweep series the way the paper's figures
// present them (one row per x value, one column per series), fits the trend
// the paper fits (linear / logarithmic / exponential) and annotates the
// adjusted R², and optionally exports the raw series as CSV for re-plotting.

#pragma once

#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "stats/regression.h"

namespace esva {

struct Series {
  std::string label;
  std::vector<double> xs;
  std::vector<double> ys;
  /// Optional per-point spread (e.g. stderr over runs), printed as ±e.
  std::vector<double> errs;
};

struct FigureSpec {
  std::string title;       ///< e.g. "Fig. 2 — energy reduction ratio"
  std::string x_label;     ///< e.g. "mean inter-arrival time (min)"
  std::string y_label;     ///< e.g. "energy reduction ratio (%)"
  /// If set, each series is fitted with this model and the fit is printed
  /// (the paper annotates each figure with its fit + Adj.R²).
  std::optional<FitModel> fit;
  /// Render y values ×100 with a % suffix.
  bool y_as_percent = false;
};

/// Prints the figure as an aligned table followed by per-series fit lines.
void print_figure(std::ostream& out, const FigureSpec& spec,
                  const std::vector<Series>& series);

/// Writes "x,<label1>,<label1>_err,<label2>,..." rows; series must share xs.
/// Throws std::runtime_error if the file cannot be opened.
void export_figure_csv(const std::string& path, const FigureSpec& spec,
                       const std::vector<Series>& series);

/// Shared bench-binary behaviour: print to stdout and, if csv_path is
/// non-empty, also export.
void emit_figure(const FigureSpec& spec, const std::vector<Series>& series,
                 const std::string& csv_path);

}  // namespace esva
