// Discrete-event datacenter simulator.
//
// Replays a committed allocation on an event timeline (VM starts/finishes,
// server power-ons/power-offs under the optimal state policy) and integrates
// power into per-server energy ledgers. This is an independent, operational
// accounting of the same physics the analytic cost model (Eq. 17) expresses
// in closed form — the integration tests assert the two agree to floating-
// point tolerance, which is the strongest internal-consistency check in the
// repository.
//
// Modeling note: like the paper, transitions are charged as an energy impulse
// alpha_i = P_peak × transition_time at switch-on; transition *latency* does
// not delay VM availability (the allocator is assumed to issue wake-ups
// transition_time early).

#pragma once

#include <vector>

#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/problem.h"

namespace esva {

/// Instantaneous datacenter state at one time unit.
struct PowerSample {
  Time t = 0;
  Watts total_power = 0.0;  ///< Σ active servers' P(u); excludes impulses
  int active_servers = 0;
  int running_vms = 0;
};

struct SimulationResult {
  /// Energy components per server, and their datacenter-wide sum.
  std::vector<CostBreakdown> per_server;
  CostBreakdown total;
  /// One sample per time unit in [1, horizon]; empty unless requested.
  std::vector<PowerSample> samples;

  Energy total_energy() const { return total.total(); }
};

class SimulationEngine {
 public:
  /// The allocation must be feasible for the problem (validated in debug
  /// builds). Unallocated VMs are skipped (they consume no energy).
  SimulationEngine(const ProblemInstance& problem, const Allocation& alloc,
                   const CostOptions& opts = {});

  /// Runs the event loop over [1, horizon].
  SimulationResult run(bool collect_samples = false) const;

 private:
  const ProblemInstance& problem_;
  const Allocation& alloc_;
  CostOptions opts_;
};

}  // namespace esva
