// Evaluation metrics from the paper's §IV:
//   * total energy cost (Eq. 17 summed over servers, optimal state policy);
//   * energy reduction ratio — "the reduced cost divided by the cost of FFPS"
//     (§IV-A);
//   * average CPU / memory utilization — "calculated by averaging nonzero
//     utilization values, measuring the usage when the server is active"
//     (§IV-C, Fig. 3);
//   * system CPU / memory load — "quantified by the average utilization of
//     servers calculated by the FFPS method" (§IV-C, Figs. 4 and 9).

#pragma once

#include "core/allocation.h"
#include "core/problem.h"

namespace esva {

struct UtilizationStats {
  /// Mean of cpu_usage/capacity over all (server, time) pairs with nonzero
  /// CPU usage; ditto for memory. In [0, 1].
  double avg_cpu = 0.0;
  double avg_mem = 0.0;
  /// Number of nonzero samples behind each average.
  std::size_t cpu_samples = 0;
  std::size_t mem_samples = 0;
};

/// Sweeps every server's usage over [1, horizon] (difference arrays; O(n·T)).
UtilizationStats average_utilization(const ProblemInstance& problem,
                                     const Allocation& alloc);

/// Everything the experiment harness records for one (instance, allocator).
struct AllocationMetrics {
  CostReport cost;
  UtilizationStats utilization;
  std::size_t unallocated = 0;
  int servers_used = 0;
};

AllocationMetrics compute_metrics(const ProblemInstance& problem,
                                  const Allocation& alloc,
                                  const CostOptions& opts = {});

/// (baseline − ours) / baseline; >0 means `ours` is cheaper. Requires
/// baseline > 0.
double energy_reduction_ratio(Energy baseline, Energy ours);

}  // namespace esva
