#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <vector>

#include "core/power_model.h"
#include "core/segments.h"

namespace esva {

namespace {

// Order matters at equal timestamps on the same server: PowerOn must precede
// RunStart (a VM only runs on an active server) and RunEnd must precede
// PowerOff (so the power-off sees the post-VM run power). The enum order is
// the processing priority.
enum class EventKind { PowerOn = 0, RunEnd = 1, RunStart = 2, PowerOff = 3 };

struct Event {
  Time t = 0;
  EventKind kind = EventKind::PowerOn;
  int server = 0;
  /// For Run* events: the marginal-power change P¹_i · ΔR^CPU_j applied at
  /// this instant (a profiled VM emits one event per demand change).
  Watts run_power = 0.0;
  /// For PowerOn: whether this is the server's first switch-on. For Run*
  /// events: whether this event begins/ends the VM (vs a mid-profile step),
  /// i.e. whether it moves the running-VM counter.
  bool boundary = false;
};

}  // namespace

SimulationEngine::SimulationEngine(const ProblemInstance& problem,
                                   const Allocation& alloc,
                                   const CostOptions& opts)
    : problem_(problem), alloc_(alloc), opts_(opts) {
  assert(validate_allocation(problem, alloc, /*require_complete=*/false)
             .empty());
}

SimulationResult SimulationEngine::run(bool collect_samples) const {
  SimulationResult result;
  const std::size_t n = problem_.num_servers();
  result.per_server.assign(n, CostBreakdown{});
  if (collect_samples && problem_.horizon > 0)
    result.samples.reserve(static_cast<std::size_t>(problem_.horizon));

  // Build the event list: power events from each server's optimal-policy
  // active intervals, run events from each allocated VM.
  std::vector<Event> events;
  const auto grouped = vms_by_server(problem_, alloc_);
  for (std::size_t i = 0; i < n; ++i) {
    const ServerSpec& server = problem_.servers[i];
    const IntervalSet busy = busy_union(grouped[i]);
    const std::vector<Interval> actives = active_intervals(busy, server);
    for (std::size_t k = 0; k < actives.size(); ++k) {
      events.push_back(Event{actives[k].lo, EventKind::PowerOn,
                             static_cast<int>(i), 0.0, k == 0});
      events.push_back(Event{actives[k].hi + 1, EventKind::PowerOff,
                             static_cast<int>(i), 0.0, false});
    }
    for (const VmSpec& vm : grouped[i]) {
      const Watts p1 = server.unit_run_power();
      events.push_back(Event{vm.start, EventKind::RunStart,
                             static_cast<int>(i),
                             p1 * vm.demand_at(vm.start).cpu, true});
      // Mid-profile demand changes (no-ops for stable VMs).
      for (Time t = vm.start + 1; t <= vm.end; ++t) {
        const double delta = vm.demand_at(t).cpu - vm.demand_at(t - 1).cpu;
        if (delta > 0.0)
          events.push_back(Event{t, EventKind::RunStart, static_cast<int>(i),
                                 p1 * delta, false});
        else if (delta < 0.0)
          events.push_back(Event{t, EventKind::RunEnd, static_cast<int>(i),
                                 p1 * -delta, false});
      }
      events.push_back(Event{vm.end + 1, EventKind::RunEnd,
                             static_cast<int>(i),
                             p1 * vm.demand_at(vm.end).cpu, true});
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.t != b.t) return a.t < b.t;
    return static_cast<int>(a.kind) < static_cast<int>(b.kind);
  });

  // Per-server live state.
  std::vector<bool> active(n, false);
  std::vector<Watts> run_power(n, 0.0);
  std::vector<Time> last_update(n, 1);
  // Global live state (for samples).
  Watts global_power = 0.0;
  int active_servers = 0;
  int running_vms = 0;
  Time clock = 1;

  auto settle_server = [&](std::size_t i, Time now) {
    const Time elapsed = now - last_update[i];
    if (elapsed > 0 && active[i]) {
      result.per_server[i].idle +=
          problem_.servers[i].p_idle * static_cast<double>(elapsed);
      result.per_server[i].run += run_power[i] * static_cast<double>(elapsed);
    }
    last_update[i] = now;
  };

  auto emit_samples_until = [&](Time now) {
    if (!collect_samples) return;
    for (Time t = clock; t < now && t <= problem_.horizon; ++t)
      result.samples.push_back(
          PowerSample{t, global_power, active_servers, running_vms});
  };

  std::size_t idx = 0;
  while (idx < events.size()) {
    const Time now = events[idx].t;
    emit_samples_until(now);
    clock = std::max(clock, now);
    while (idx < events.size() && events[idx].t == now) {
      const Event& event = events[idx++];
      const auto i = static_cast<std::size_t>(event.server);
      settle_server(i, now);
      switch (event.kind) {
        case EventKind::PowerOn:
          assert(!active[i]);
          active[i] = true;
          ++active_servers;
          global_power += problem_.servers[i].p_idle + run_power[i];
          if (!event.boundary || opts_.charge_initial_transition)
            result.per_server[i].transition +=
                problem_.servers[i].transition_cost();
          break;
        case EventKind::PowerOff:
          assert(active[i]);
          active[i] = false;
          --active_servers;
          global_power -= problem_.servers[i].p_idle + run_power[i];
          break;
        case EventKind::RunStart:
          assert(active[i] && "a VM can only run on an active server");
          run_power[i] += event.run_power;
          if (active[i]) global_power += event.run_power;
          if (event.boundary) ++running_vms;
          break;
        case EventKind::RunEnd:
          run_power[i] -= event.run_power;
          if (active[i]) global_power -= event.run_power;
          if (event.boundary) --running_vms;
          break;
      }
    }
  }
  emit_samples_until(problem_.horizon + 1);

  for (std::size_t i = 0; i < n; ++i) {
    settle_server(i, problem_.horizon + 1);
    result.total += result.per_server[i];
  }
  return result;
}

}  // namespace esva
