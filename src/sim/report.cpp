#include "sim/report.h"

#include <cassert>
#include <fstream>
#include <iostream>
#include <stdexcept>

#include "util/csv.h"
#include "util/table.h"

namespace esva {

namespace {

Fit fit_series(FitModel model, const Series& series) {
  switch (model) {
    case FitModel::Linear: return fit_linear(series.xs, series.ys);
    case FitModel::Logarithmic: return fit_logarithmic(series.xs, series.ys);
    case FitModel::Exponential: return fit_exponential(series.xs, series.ys);
  }
  return {};
}

}  // namespace

void print_figure(std::ostream& out, const FigureSpec& spec,
                  const std::vector<Series>& series) {
  out << "== " << spec.title << " ==\n";
  out << "y: " << spec.y_label << '\n';

  TextTable table;
  std::vector<std::string> header{spec.x_label};
  for (const Series& s : series) header.push_back(s.label);
  table.set_header(std::move(header));

  // All series are expected to share the x grid (asserted), as in the paper's
  // figures.
  const std::vector<double>* xs = series.empty() ? nullptr : &series[0].xs;
  for (const Series& s : series) {
    assert(s.xs.size() == s.ys.size());
    assert(xs == nullptr || s.xs == *xs);
  }
  if (xs != nullptr) {
    for (std::size_t r = 0; r < xs->size(); ++r) {
      std::vector<std::string> row{fmt_double((*xs)[r], 2)};
      for (const Series& s : series) {
        std::string cell = spec.y_as_percent ? fmt_percent(s.ys[r])
                                             : fmt_double(s.ys[r], 4);
        if (r < s.errs.size()) {
          cell += " ±";
          cell += spec.y_as_percent ? fmt_percent(s.errs[r])
                                    : fmt_double(s.errs[r], 4);
        }
        row.push_back(std::move(cell));
      }
      table.add_row(std::move(row));
    }
  }
  out << table.render();

  if (spec.fit) {
    for (const Series& s : series) {
      const Fit fit = fit_series(*spec.fit, s);
      out << "fit[" << s.label << "]: " << fit.to_string() << '\n';
    }
  }
  out << '\n';
}

void export_figure_csv(const std::string& path, const FigureSpec& spec,
                       const std::vector<Series>& series) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open for writing: " + path);
  CsvWriter csv(file);

  std::vector<std::string> header{spec.x_label};
  for (const Series& s : series) {
    header.push_back(s.label);
    if (!s.errs.empty()) header.push_back(s.label + "_err");
  }
  csv.row(header);

  const std::size_t rows = series.empty() ? 0 : series[0].xs.size();
  for (std::size_t r = 0; r < rows; ++r) {
    std::vector<std::string> row{CsvWriter::field_to_string(series[0].xs[r])};
    for (const Series& s : series) {
      row.push_back(CsvWriter::field_to_string(s.ys[r]));
      if (!s.errs.empty())
        row.push_back(CsvWriter::field_to_string(s.errs[r]));
    }
    csv.row(row);
  }
}

void emit_figure(const FigureSpec& spec, const std::vector<Series>& series,
                 const std::string& csv_path) {
  print_figure(std::cout, spec, series);
  if (!csv_path.empty()) {
    export_figure_csv(csv_path, spec, series);
    std::cout << "(raw series written to " << csv_path << ")\n";
  }
}

}  // namespace esva
