#include "ext/lookahead.h"

#include <algorithm>
#include <cassert>

#include "cluster/timeline.h"
#include "obs/metrics.h"

namespace esva {

namespace {

struct Evaluation {
  ServerId best_server = kNoServer;
  Energy best_delta = kInf;
  Energy second_delta = kInf;

  /// Regret = how much committing this VM late could cost. A VM that fits
  /// nowhere gets infinite regret so its failure is surfaced immediately;
  /// a VM with a single feasible server likewise must be pinned first.
  Energy regret() const {
    if (best_server == kNoServer) return kInf;
    if (second_delta == kInf) return kInf;
    return second_delta - best_delta;
  }
};

Evaluation evaluate(const std::vector<ServerTimeline>& timelines,
                    const VmSpec& vm, const CostOptions& cost) {
  Evaluation eval;
  for (std::size_t i = 0; i < timelines.size(); ++i) {
    if (!timelines[i].can_fit(vm)) continue;
    const Energy delta = incremental_cost(timelines[i], vm, cost);
    if (delta < eval.best_delta) {
      eval.second_delta = eval.best_delta;
      eval.best_delta = delta;
      eval.best_server = static_cast<ServerId>(i);
    } else if (delta < eval.second_delta) {
      eval.second_delta = delta;
    }
  }
  return eval;
}

}  // namespace

Allocation LookaheadAllocator::allocate(const ProblemInstance& problem,
                                        Rng& /*rng*/) {
  assert(options_.window >= 1);
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  const std::vector<std::size_t> order =
      ordered_indices(problem, VmOrder::ByStartTime);

  // `pending` holds the current window (indices into problem.vms);
  // `next_from_order` refills it in start-time order.
  std::vector<std::size_t> pending;
  std::size_t next_from_order = 0;
  auto refill = [&] {
    while (pending.size() < static_cast<std::size_t>(options_.window) &&
           next_from_order < order.size()) {
      pending.push_back(order[next_from_order++]);
    }
  };

  refill();
  while (!pending.empty()) {
    // Pick the pending VM with maximal regret; ties resolve to the earliest
    // start (lowest position in `pending`, which is kept in start order).
    std::size_t pick_pos = 0;
    Energy pick_regret = -1.0;
    Evaluation pick_eval;
    for (std::size_t pos = 0; pos < pending.size(); ++pos) {
      const Evaluation eval =
          evaluate(timelines, problem.vms[pending[pos]], options_.cost);
      const Energy regret = eval.regret();
      if (regret > pick_regret) {
        pick_regret = regret;
        pick_pos = pos;
        pick_eval = eval;
      }
    }

    const std::size_t j = pending[pick_pos];
    pending.erase(pending.begin() + static_cast<std::ptrdiff_t>(pick_pos));
    if (obs_.tracing()) {
      // The committed VM's decision, re-derived with diagnoses (the regret
      // scan above deliberately stays on the cheap can_fit path).
      const VmSpec& vm = problem.vms[j];
      DecisionBuilder decision(obs_, name(), vm.id);
      for (std::size_t i = 0; i < timelines.size(); ++i) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok)
          decision.add_rejected(static_cast<ServerId>(i), fit);
        else
          decision.add_feasible(static_cast<ServerId>(i),
                                incremental_cost(timelines[i], vm, options_.cost));
      }
      if (pick_eval.best_server == kNoServer)
        decision.commit(kNoServer);
      else
        decision.commit(pick_eval.best_server, pick_eval.best_delta);
    }
    if (pick_eval.best_server != kNoServer) {
      timelines[static_cast<std::size_t>(pick_eval.best_server)].place(
          problem.vms[j]);
      alloc.assignment[j] = pick_eval.best_server;
    }
    refill();
  }
  if (obs_.metrics) {
    // Regret evaluation re-probes every pending VM per commit, so per-probe
    // counters would mislead; report only the decision-level aggregates.
    const std::string prefix = "allocator." + name() + ".";
    obs_.metrics->inc(prefix + "vms",
                      static_cast<std::int64_t>(problem.num_vms()));
    obs_.metrics->inc(prefix + "unallocated",
                      static_cast<std::int64_t>(alloc.num_unallocated()));
  }
  return alloc;
}

}  // namespace esva
