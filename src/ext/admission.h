// Delay-based admission control (extension beyond the paper).
//
// The paper assumes the fleet always has room ("the resource demands of VMs
// can be met"). Under overload, a base allocator simply rejects what does
// not fit. Real clouds queue instead: a request that fits nowhere at its
// requested start time can be *delayed* — its whole [start, finish] window
// shifted later — until capacity frees up, subject to a per-request maximum
// acceptable delay.
//
// DelayedAdmissionAllocator wraps any base allocator decision rule: VMs are
// processed in start-time order; a VM that fits nowhere is re-tried with its
// window shifted by +1, +2, … up to `max_delay` time units, landing at the
// first shift where the wrapped placement rule finds a server. The returned
// schedule reports both the assignment and the realized delays.

#pragma once

#include "core/allocator.h"
#include "core/cost_model.h"

namespace esva {

struct AdmissionResult {
  Allocation allocation;
  /// Realized start-time shift per VM (0 = on time); -1 for rejected VMs.
  std::vector<Time> delays;
  /// The shifted VM windows actually scheduled (same demand, moved
  /// interval); rejected VMs keep their requested window.
  std::vector<VmSpec> scheduled_vms;

  std::size_t rejected() const;
  double mean_delay() const;  ///< over admitted VMs
};

class DelayedAdmissionAllocator final : public Allocator {
 public:
  struct Options {
    CostOptions cost;
    /// Maximum acceptable start delay per VM, time units.
    Time max_delay = 30;
  };

  DelayedAdmissionAllocator() = default;
  explicit DelayedAdmissionAllocator(Options options) : options_(options) {}

  std::string name() const override { return "min-incremental+delay"; }

  /// Allocator-interface view: returns the assignment only (delays are
  /// dropped); use schedule() for the full result.
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  /// Full scheduling result with realized delays. The energy of the result
  /// must be evaluated against `scheduled_vms` (the shifted windows), e.g.
  /// via make_problem(result.scheduled_vms, problem.servers).
  AdmissionResult schedule(const ProblemInstance& problem) const;

 private:
  Options options_;
};

}  // namespace esva
