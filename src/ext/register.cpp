#include "ext/register.h"

#include "baselines/registry.h"
#include "ext/lookahead.h"

namespace esva {

void register_extension_allocators() {
  static bool done = false;
  if (done) return;
  done = true;
  for (int window : {1, 4, 8, 16}) {
    register_allocator("lookahead-" + std::to_string(window), [window] {
      LookaheadAllocator::Options options;
      options.window = window;
      return std::make_unique<LookaheadAllocator>(options);
    });
  }
}

}  // namespace esva
