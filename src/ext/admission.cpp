#include "ext/admission.h"

#include <cassert>

#include "cluster/timeline.h"

namespace esva {

std::size_t AdmissionResult::rejected() const {
  std::size_t count = 0;
  for (Time d : delays)
    if (d < 0) ++count;
  return count;
}

double AdmissionResult::mean_delay() const {
  double total = 0.0;
  std::size_t admitted = 0;
  for (Time d : delays) {
    if (d < 0) continue;
    total += static_cast<double>(d);
    ++admitted;
  }
  return admitted == 0 ? 0.0 : total / static_cast<double>(admitted);
}

AdmissionResult DelayedAdmissionAllocator::schedule(
    const ProblemInstance& problem) const {
  assert(options_.max_delay >= 0);
  AdmissionResult result;
  result.allocation.assignment.assign(problem.num_vms(), kNoServer);
  result.delays.assign(problem.num_vms(), -1);
  result.scheduled_vms = problem.vms;

  // Delayed windows may reach past the original horizon.
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon + options_.max_delay);

  for (std::size_t j : ordered_indices(problem, VmOrder::ByStartTime)) {
    const VmSpec& requested = problem.vms[j];
    for (Time shift = 0; shift <= options_.max_delay; ++shift) {
      VmSpec candidate = requested;
      candidate.start = requested.start + shift;
      candidate.end = requested.end + shift;

      ServerId best_server = kNoServer;
      Energy best_delta = kInf;
      for (std::size_t i = 0; i < timelines.size(); ++i) {
        if (!timelines[i].can_fit(candidate)) continue;
        const Energy delta =
            incremental_cost(timelines[i], candidate, options_.cost);
        if (delta < best_delta) {
          best_delta = delta;
          best_server = static_cast<ServerId>(i);
        }
      }
      if (best_server == kNoServer) continue;  // try a longer delay

      timelines[static_cast<std::size_t>(best_server)].place(candidate);
      result.allocation.assignment[j] = best_server;
      result.delays[j] = shift;
      result.scheduled_vms[j] = candidate;
      break;
    }
  }
  return result;
}

Allocation DelayedAdmissionAllocator::allocate(const ProblemInstance& problem,
                                               Rng& /*rng*/) {
  return schedule(problem).allocation;
}

}  // namespace esva
