// Registers the extension allocators with the name-based registry so the
// experiment runner and CLI tools can address them like built-ins:
//   "lookahead-1" (== min-incremental), "lookahead-4", "lookahead-8",
//   "lookahead-16".
// Call once near program start; repeated calls are harmless.

#pragma once

namespace esva {

void register_extension_allocators();

}  // namespace esva
