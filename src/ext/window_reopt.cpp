#include "ext/window_reopt.h"

#include <algorithm>
#include <cassert>

#include "ilp/branch_and_bound.h"
#include "obs/metrics.h"

namespace esva {

namespace {

/// The sub-universe the polisher works in: only allocated VMs, re-indexed
/// densely (the solver requires dense ids), with a mapping back.
struct ReducedInstance {
  ProblemInstance problem;
  std::vector<std::size_t> original_index;  ///< reduced id -> original id
};

ReducedInstance reduce_to_allocated(const ProblemInstance& problem,
                                    const Allocation& alloc) {
  ReducedInstance reduced;
  std::vector<VmSpec> vms;
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    if (alloc.assignment[j] == kNoServer) continue;
    VmSpec vm = problem.vms[j];
    vm.id = static_cast<VmId>(vms.size());
    reduced.original_index.push_back(j);
    vms.push_back(std::move(vm));
  }
  reduced.problem = make_problem(std::move(vms), problem.servers);
  return reduced;
}

}  // namespace

WindowReoptResult window_reoptimize(const ProblemInstance& problem,
                                    const Allocation& alloc,
                                    const WindowReoptConfig& config) {
  assert(config.group_size >= 1 && config.passes >= 1);
  assert(validate_allocation(problem, alloc, /*require_complete=*/false)
             .empty());

  ScopedTimer total_timer(
      config.obs.metrics ? &config.obs.metrics->timer("window_reopt.total_ms")
                         : nullptr);

  WindowReoptResult result;
  result.allocation = alloc;
  result.energy_before = evaluate_cost(problem, alloc, config.cost).total();

  // Work in the allocated-only sub-universe (a never-allocated VM would make
  // every sub-instance infeasible).
  const ReducedInstance reduced = reduce_to_allocated(problem, alloc);
  const std::size_t m = reduced.problem.num_vms();
  std::vector<ServerId> working(m);
  for (std::size_t r = 0; r < m; ++r)
    working[r] = alloc.assignment[reduced.original_index[r]];

  // Windows are consecutive runs in start-time order of the reduced VMs.
  const std::vector<std::size_t> order = order_by_start(reduced.problem.vms);
  Energy current_total =
      result.energy_before;  // reduced-universe cost == full cost: the
                             // unallocated VMs contribute nothing.
  const auto group = static_cast<std::size_t>(config.group_size);
  const std::size_t step = config.overlap ? std::max<std::size_t>(1, group / 2)
                                          : group;

  for (int pass = 0; pass < config.passes; ++pass) {
    int improved_this_pass = 0;
    for (std::size_t begin = 0; begin < order.size(); begin += step) {
      const std::size_t end = std::min(begin + group, order.size());

      ExactOptions options;
      options.cost = config.cost;
      options.node_limit = config.node_limit_per_window;
      options.initial_upper_bound = current_total + 1e-6;  // keep incumbent
      options.fixed_assignment = working;
      for (std::size_t k = begin; k < end; ++k)
        options.fixed_assignment[order[k]] = kNoServer;

      const ExactResult solved = solve_exact(reduced.problem, options);
      result.nodes_explored += solved.nodes_explored;
      ++result.windows_solved;
      if (!solved.optimal) {
        ++result.windows_skipped;
        continue;
      }
      if (!solved.feasible || solved.cost >= current_total - 1e-9) continue;

      working = solved.best.assignment;
      current_total = solved.cost;
      ++result.windows_improved;
      ++improved_this_pass;
    }
    if (improved_this_pass == 0) break;  // converged
  }

  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t j = reduced.original_index[r];
    if (config.obs.tracing() && working[r] != alloc.assignment[j]) {
      DecisionBuilder decision(config.obs, "window-reopt",
                               problem.vms[j].id);
      decision.set_note("window-reopt");
      decision.commit(working[r]);
    }
    result.allocation.assignment[j] = working[r];
  }
  result.energy_after =
      evaluate_cost(problem, result.allocation, config.cost).total();
  if (config.obs.metrics) {
    config.obs.metrics->inc("window_reopt.windows_solved",
                            result.windows_solved);
    config.obs.metrics->inc("window_reopt.windows_improved",
                            result.windows_improved);
    config.obs.metrics->inc("window_reopt.windows_skipped",
                            result.windows_skipped);
    config.obs.metrics->inc(
        "window_reopt.nodes_explored",
        static_cast<std::int64_t>(result.nodes_explored));
    config.obs.metrics->set("window_reopt.energy_before",
                            result.energy_before);
    config.obs.metrics->set("window_reopt.energy_after", result.energy_after);
  }
  return result;
}

}  // namespace esva
