// Fixed-timeout power-state policy (extension/ablation).
//
// The paper assumes the *optimal* state policy: a server bridges an idle gap
// iff P_idle·gap <= alpha, which requires knowing when the next VM arrives.
// Real fleet controllers do not know that; the standard industrial policy is
// a fixed timeout: power down after the server has been idle for `timeout`
// time units. This module prices that policy so
// bench/ablation_power_policy can show how much clairvoyance is worth —
// and that the paper's comparisons are not an artifact of it (both
// algorithms get the same policy).

#pragma once

#include "cluster/server_spec.h"
#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/problem.h"
#include "util/interval_set.h"

namespace esva {

struct TimeoutPolicy {
  /// Idle time units the server waits before powering down. 0 = power down
  /// immediately after every busy segment; a value >= the longest gap
  /// degenerates to always-on between first start and last finish.
  Time timeout = 5;
};

/// Active intervals of a server under the timeout policy: each busy segment
/// is extended by up to `timeout` trailing idle units, and segments whose
/// gap is <= timeout coalesce (the server never gets to power down).
std::vector<Interval> timeout_active_intervals(const IntervalSet& busy,
                                               Time horizon,
                                               const TimeoutPolicy& policy);

/// Structure cost (idle + transitions) of a server under the timeout policy.
/// CostOptions::charge_initial_transition applies as in the optimal policy.
CostBreakdown timeout_structure_breakdown(const IntervalSet& busy,
                                          const ServerSpec& server,
                                          Time horizon,
                                          const TimeoutPolicy& policy,
                                          const CostOptions& opts = {});

/// Total datacenter cost of an allocation when every server runs the
/// timeout policy instead of the optimal one. Run costs are unchanged.
Energy evaluate_cost_with_timeout(const ProblemInstance& problem,
                                  const Allocation& alloc,
                                  const TimeoutPolicy& policy,
                                  const CostOptions& opts = {});

}  // namespace esva
