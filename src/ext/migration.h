// Migration-based re-optimization (extension beyond the paper).
//
// The paper's related-work section contrasts allocation-time optimization
// with approaches that "save energy consumption in data centers by dynamic
// migration of VMs" [refs 6, 18] and leaves migration out of scope. This
// module supplies that missing piece as a post-pass: a local search that
// relocates single VMs between servers when the energy saved exceeds a
// per-migration penalty.
//
// Cost model for a relocation: moving VM j charges
//     migration_cost = cost_per_gib × R^MEM_j
// (live-migration traffic and service degradation scale with the memory
// footprint; this is the standard first-order model, shared with the
// streaming engine's failure evacuation via core/cost_model.h's
// migration_energy()). The optimizer is
// strictly conservative: it only applies a move if
//     ΔEnergy(move) + migration_cost < -epsilon,
// so the reported net total (energy + migration overhead) never increases.

#pragma once

#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/problem.h"
#include "obs/trace.h"

namespace esva {

struct MigrationConfig {
  CostOptions cost;
  /// Energy penalty per GiB of moved VM memory (watt-minutes/GiB).
  Energy cost_per_gib = 25.0;
  /// Full sweeps over all VMs; the search also stops at the first sweep
  /// with no improving move.
  int max_rounds = 8;
  /// Minimum net gain for a move to be applied.
  Energy min_gain = 1e-6;
  /// Optional observability: each applied move is traced as a decision with
  /// note "migration"; counters/timers land under "migration.*".
  ObsContext obs;
};

struct MigrationResult {
  Allocation allocation;       ///< improved assignment
  int moves = 0;               ///< relocations applied
  Energy energy_before = 0.0;  ///< Eq. 17 total of the input allocation
  Energy energy_after = 0.0;   ///< Eq. 17 total of the output allocation
  Energy migration_overhead = 0.0;  ///< Σ per-move penalties

  /// energy_after + migration_overhead; <= energy_before by construction.
  Energy net_total() const { return energy_after + migration_overhead; }
  double net_reduction() const {
    return energy_before > 0 ? (energy_before - net_total()) / energy_before
                             : 0.0;
  }
};

/// Improves `alloc` (which must be capacity-feasible) by single-VM
/// relocations. Unallocated VMs are placed unconditionally at their cheapest
/// feasible server (serving the request dominates energy), also counting as
/// moves; the "net total never increases" guarantee therefore applies to
/// fully-allocated inputs.
MigrationResult optimize_with_migration(const ProblemInstance& problem,
                                        const Allocation& alloc,
                                        const MigrationConfig& config = {});

}  // namespace esva
