// Regret-based lookahead allocation (extension beyond the paper).
//
// The paper's greedy commits each VM in start-time order to the currently
// cheapest server. That is myopic: a VM with nearly-equal costs everywhere
// is committed before a VM that has one clearly-best server, and can steal
// that server's capacity. Classic fix (regret insertion, cf. vehicle-routing
// literature): within a sliding window of the next `window` VMs by start
// time, repeatedly commit the VM with the largest *regret* — the gap between
// its second-best and best incremental cost — at its best server.
//
// window = 1 degenerates exactly to MinIncrementalEnergy. The ablation bench
// (bench/ablation_lookahead) measures what the extra lookahead buys.
//
// Note on semantics: the window peeks at requests that arrive (start) later,
// so this is a *batched-online* algorithm — realistic when requests are
// booked ahead, as in the paper's reservation model where both start and
// finish times are known at submission.

#pragma once

#include "core/allocator.h"
#include "core/cost_model.h"

namespace esva {

class LookaheadAllocator final : public Allocator {
 public:
  struct Options {
    CostOptions cost;
    /// Number of pending VMs considered at each commit; >= 1.
    int window = 8;
  };

  LookaheadAllocator() = default;
  explicit LookaheadAllocator(Options options) : options_(options) {}

  std::string name() const override {
    return "lookahead-" + std::to_string(options_.window);
  }

  /// Deterministic (ignores rng).
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

 private:
  Options options_;
};

}  // namespace esva
