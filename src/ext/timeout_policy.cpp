#include "ext/timeout_policy.h"

#include <algorithm>
#include <cassert>

#include "core/power_model.h"
#include "core/segments.h"

namespace esva {

std::vector<Interval> timeout_active_intervals(const IntervalSet& busy,
                                               Time horizon,
                                               const TimeoutPolicy& policy) {
  assert(policy.timeout >= 0);
  std::vector<Interval> result;
  const auto& segments = busy.intervals();
  for (std::size_t k = 0; k < segments.size(); ++k) {
    // The server lingers for `timeout` units after the segment — unless the
    // next busy segment starts sooner (then it never powered down), or the
    // horizon cuts the lingering short.
    Time linger_end = segments[k].hi + policy.timeout;
    if (k + 1 < segments.size())
      linger_end = std::min(linger_end, segments[k + 1].lo - 1);
    linger_end = std::min(linger_end, horizon);

    if (!result.empty() && segments[k].lo <= result.back().hi + 1) {
      // Previous lingering reached (or touched) this segment: coalesce.
      result.back().hi = std::max(result.back().hi, linger_end);
    } else {
      result.push_back(Interval{segments[k].lo, linger_end});
    }
  }
  return result;
}

CostBreakdown timeout_structure_breakdown(const IntervalSet& busy,
                                          const ServerSpec& server,
                                          Time horizon,
                                          const TimeoutPolicy& policy,
                                          const CostOptions& opts) {
  CostBreakdown cost;
  if (busy.empty()) return cost;
  const std::vector<Interval> actives =
      timeout_active_intervals(busy, horizon, policy);
  for (std::size_t k = 0; k < actives.size(); ++k) {
    cost.idle += server.p_idle * static_cast<double>(actives[k].length());
    if (k > 0 || opts.charge_initial_transition)
      cost.transition += server.transition_cost();
  }
  return cost;
}

Energy evaluate_cost_with_timeout(const ProblemInstance& problem,
                                  const Allocation& alloc,
                                  const TimeoutPolicy& policy,
                                  const CostOptions& opts) {
  Energy total = 0.0;
  const auto grouped = vms_by_server(problem, alloc);
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    if (grouped[i].empty()) continue;
    const ServerSpec& server = problem.servers[i];
    total += timeout_structure_breakdown(busy_union(grouped[i]), server,
                                         problem.horizon, policy, opts)
                 .total();
    for (const VmSpec& vm : grouped[i]) total += run_cost(server, vm);
  }
  return total;
}

}  // namespace esva
