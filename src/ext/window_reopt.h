// Exact window re-optimization (extension beyond the paper).
//
// A hybrid between the greedy and the exact solver: starting from any
// feasible allocation, repeatedly free a small group of VMs (consecutive in
// start-time order) and re-solve that group to certified optimality with the
// branch-and-bound solver, holding everything else fixed
// (ExactOptions::fixed_assignment). Each re-solve can only improve the
// total, so the procedure is an anytime polisher whose result is locally
// optimal over every window it visited.
//
// Group size trades quality for time: the sub-solve is exponential in
// `group_size` (≈ n^group_size worst case), so sizes 4–8 are practical.

#pragma once

#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/problem.h"
#include "obs/trace.h"

namespace esva {

struct WindowReoptConfig {
  CostOptions cost;
  /// VMs re-optimized together; >= 1.
  int group_size = 6;
  /// Node budget per sub-solve; a window that exhausts it keeps its
  /// original assignment (counted in windows_skipped).
  std::uint64_t node_limit_per_window = 2'000'000;
  /// Passes over the whole instance (later passes see earlier improvements).
  int passes = 1;
  /// Overlap consecutive windows by half a group (catches improvements that
  /// straddle a window boundary).
  bool overlap = true;
  /// Optional observability: every reassigned VM is traced with note
  /// "window-reopt"; counters/timers land under "window_reopt.*".
  ObsContext obs;
};

struct WindowReoptResult {
  Allocation allocation;
  Energy energy_before = 0.0;
  Energy energy_after = 0.0;
  int windows_solved = 0;
  int windows_improved = 0;
  int windows_skipped = 0;  ///< node budget exhausted
  std::uint64_t nodes_explored = 0;

  double reduction() const {
    return energy_before > 0 ? (energy_before - energy_after) / energy_before
                             : 0.0;
  }
};

/// Polishes `alloc` (must be capacity-feasible; unallocated VMs are left
/// unallocated — run a placement pass first if needed). energy_after <=
/// energy_before always.
WindowReoptResult window_reoptimize(const ProblemInstance& problem,
                                    const Allocation& alloc,
                                    const WindowReoptConfig& config = {});

}  // namespace esva
