#include "ext/migration.h"

#include <algorithm>
#include <cassert>

#include "cluster/timeline.h"
#include "obs/metrics.h"

namespace esva {

namespace {

/// Rebuilds one server's timeline from its current VM list.
ServerTimeline rebuild(const ServerSpec& spec, Time horizon,
                       const std::vector<VmSpec>& vms) {
  ServerTimeline timeline(spec, horizon);
  for (const VmSpec& vm : vms) {
    assert(timeline.can_fit(vm));
    timeline.place(vm);
  }
  return timeline;
}

std::vector<VmSpec> without(const std::vector<VmSpec>& vms, VmId id) {
  std::vector<VmSpec> rest;
  rest.reserve(vms.size() - 1);
  for (const VmSpec& vm : vms)
    if (vm.id != id) rest.push_back(vm);
  return rest;
}

}  // namespace

MigrationResult optimize_with_migration(const ProblemInstance& problem,
                                        const Allocation& alloc,
                                        const MigrationConfig& config) {
  assert(validate_allocation(problem, alloc, /*require_complete=*/false)
             .empty());

  ScopedTimer total_timer(
      config.obs.metrics ? &config.obs.metrics->timer("migration.total_ms")
                         : nullptr);

  MigrationResult result;
  result.allocation = alloc;
  result.energy_before = evaluate_cost(problem, alloc, config.cost).total();

  std::vector<std::vector<VmSpec>> hosted = vms_by_server(problem, alloc);
  std::vector<ServerTimeline> timelines;
  timelines.reserve(problem.num_servers());
  std::vector<Energy> server_costs(problem.num_servers(), 0.0);
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    timelines.push_back(rebuild(problem.servers[i], problem.horizon, hosted[i]));
    server_costs[i] = server_cost(problem.servers[i], hosted[i], config.cost);
  }

  for (int round = 0; round < config.max_rounds; ++round) {
    bool improved = false;
    for (std::size_t j = 0; j < problem.num_vms(); ++j) {
      const VmSpec& vm = problem.vms[j];
      const ServerId source = result.allocation.assignment[j];
      const Energy penalty = migration_energy(vm, config.cost_per_gib);

      // Energy released at the source by evicting this VM (0 if currently
      // unallocated — then this is a late placement, not a migration, but
      // we charge the same penalty to stay conservative).
      Energy release = 0.0;
      std::vector<VmSpec> source_rest;
      if (source != kNoServer) {
        source_rest = without(hosted[static_cast<std::size_t>(source)], vm.id);
        release = server_costs[static_cast<std::size_t>(source)] -
                  server_cost(problem.servers[static_cast<std::size_t>(source)],
                              source_rest, config.cost);
      }

      // Best target: smallest added cost among other feasible servers.
      ServerId best_target = kNoServer;
      Energy best_added = kInf;
      for (std::size_t i = 0; i < timelines.size(); ++i) {
        if (static_cast<ServerId>(i) == source) continue;
        if (!timelines[i].can_fit(vm)) continue;
        const Energy added = incremental_cost(timelines[i], vm, config.cost);
        if (added < best_added) {
          best_added = added;
          best_target = static_cast<ServerId>(i);
        }
      }
      if (best_target == kNoServer) continue;

      // A previously unallocated VM is placed unconditionally (serving the
      // request dominates energy); a real relocation must pay for itself.
      if (source != kNoServer) {
        const Energy gain = release - best_added - penalty;
        if (gain <= config.min_gain) continue;
      }

      if (config.obs.tracing()) {
        // Each applied move is a decision: the feasible targets with their
        // added cost, the winner, and the note marking it as a migration.
        DecisionBuilder decision(config.obs, "migration", vm.id);
        decision.set_note(source == kNoServer ? "late-placement" : "migration");
        for (std::size_t i = 0; i < timelines.size(); ++i) {
          if (static_cast<ServerId>(i) == source) continue;
          const FitCheck fit = timelines[i].check_fit(vm);
          if (!fit.ok)
            decision.add_rejected(static_cast<ServerId>(i), fit);
          else
            decision.add_feasible(static_cast<ServerId>(i),
                                  incremental_cost(timelines[i], vm,
                                                   config.cost));
        }
        decision.commit(best_target, best_added);
      }

      // Apply the move.
      if (source != kNoServer) {
        hosted[static_cast<std::size_t>(source)] = std::move(source_rest);
        timelines[static_cast<std::size_t>(source)] =
            rebuild(problem.servers[static_cast<std::size_t>(source)],
                    problem.horizon, hosted[static_cast<std::size_t>(source)]);
        server_costs[static_cast<std::size_t>(source)] =
            server_cost(problem.servers[static_cast<std::size_t>(source)],
                        hosted[static_cast<std::size_t>(source)], config.cost);
      }
      const auto target_index = static_cast<std::size_t>(best_target);
      timelines[target_index].place(vm);
      hosted[target_index].push_back(vm);
      server_costs[target_index] = server_cost(
          problem.servers[target_index], hosted[target_index], config.cost);

      result.allocation.assignment[j] = best_target;
      result.migration_overhead += penalty;
      ++result.moves;
      improved = true;
    }
    if (!improved) break;
  }

  result.energy_after =
      evaluate_cost(problem, result.allocation, config.cost).total();
  if (config.obs.metrics) {
    config.obs.metrics->inc("migration.moves", result.moves);
    config.obs.metrics->set("migration.energy_before", result.energy_before);
    config.obs.metrics->set("migration.energy_after", result.energy_after);
    config.obs.metrics->set("migration.overhead", result.migration_overhead);
  }
  return result;
}

}  // namespace esva
