// Fixed-size worker pool backing the parallel candidate scan
// (core/candidate_scan.h).
//
// Deliberately minimal: N workers, one FIFO queue, submit() returning a
// std::future. Exceptions thrown by a task surface through its future
// (std::packaged_task semantics), tasks still queued at destruction are
// drained before the workers exit, and a pool can be reused for arbitrarily
// many submission rounds. There is no work stealing and no task priorities —
// the scan engine submits one coarse task per worker per scan, so a plain
// queue is never the bottleneck.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace esva {

class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least one).
  explicit ThreadPool(std::size_t num_threads) {
    if (num_threads == 0) num_threads = 1;
    workers_.reserve(num_threads);
    for (std::size_t i = 0; i < num_threads; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }

  /// Joins every worker. Tasks already queued are executed first, so a
  /// future obtained from submit() never dangles in a broken-promise state
  /// because of pool teardown.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      stop_ = true;
    }
    wake_.notify_all();
    for (std::thread& worker : workers_) worker.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues `task` and returns the future for its result. If the task
  /// throws, the exception is rethrown by future::get().
  template <typename F>
  std::future<std::invoke_result_t<F&>> submit(F task) {
    using Result = std::invoke_result_t<F&>;
    // packaged_task is move-only and std::function requires copyable
    // callables, so the task rides in a shared_ptr.
    auto packaged =
        std::make_shared<std::packaged_task<Result()>>(std::move(task));
    std::future<Result> future = packaged->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stop_)
        throw std::runtime_error("ThreadPool::submit on a stopped pool");
      queue_.emplace_back([packaged] { (*packaged)(); });
    }
    wake_.notify_one();
    return future;
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and nothing left to drain
        task = std::move(queue_.front());
        queue_.erase(queue_.begin());
      }
      task();  // exceptions land in the task's promise, never here
    }
  }

  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace esva
