// Lazy segment tree supporting range-add and range-max/min over doubles.
//
// Each server keeps one tree per resource dimension over the horizon [1, T];
// the allocator's feasibility test "does VM j fit on server i throughout
// [t^s, t^e]?" becomes a single O(log T) range-max query:
//     max_usage(interval) + demand <= capacity.
//
// Layout: iterative, flat-array ("bottom-up") tree sized 2n, not the classic
// recursive 4n allocation. Leaves for positions 0..n-1 live at array slots
// n..2n-1; internal node x has children 2x and 2x+1. Three arrays:
//   mx_[x] — max over x's subtree, including x's own pending delta d_[x]
//            but excluding ancestors' pending deltas;
//   mn_[x] — same, for the minimum (feeds the O(1) spare-capacity summary
//            min_all() used by ServerTimeline's quick-reject);
//   d_[x]  — pending range-add delta covering x's whole subtree (internal
//            nodes only).
// add() applies deltas to the O(log n) canonical border nodes bottom-up and
// then recomputes the two border leaf-to-root chains; max() folds the same
// canonical nodes, accumulating ancestor deltas as it climbs. No recursion,
// no per-node [nl, nr] bookkeeping, and 5n doubles instead of 8n.
//
// first_above() descends into the earliest canonical node whose (delta
// corrected) subtree max satisfies a monotone predicate, locating the first
// violating position in O(log^2 n) — the localization primitive behind
// ServerTimeline::check_fit. Its top-level node selection reproduces max()'s
// floating-point arithmetic exactly (per-node left-fold of the same ancestor
// deltas; IEEE max commutes with monotone rounding), so
//     first_above(lo, hi, pred) == npos  <=>  !pred(max(lo, hi))
// holds bit-for-bit, which is what keeps check_fit and can_fit in exact
// agreement.

#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <vector>

namespace esva {

class RangeAddMaxTree {
 public:
  /// Returned by first_above when no position satisfies the predicate.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Tree over positions 0..n-1, all initially 0. n may be 0 (empty tree).
  explicit RangeAddMaxTree(std::size_t n) : n_(n) {
    if (n_ > 0) {
      mx_.assign(2 * n_, 0.0);
      mn_.assign(2 * n_, 0.0);
      d_.assign(n_, 0.0);
    }
  }

  std::size_t size() const { return n_; }

  /// Adds `delta` to every position in [lo, hi] (inclusive). Requires
  /// lo <= hi < size().
  void add(std::size_t lo, std::size_t hi, double delta) {
    assert(lo <= hi && hi < n_);
    const std::size_t ll = lo + n_;
    const std::size_t rr = hi + n_;
    std::size_t l = ll;
    std::size_t r = rr + 1;
    while (l < r) {
      if (l & 1) apply(l++, delta);
      if (r & 1) apply(--r, delta);
      l >>= 1;
      r >>= 1;
    }
    pull(ll);
    pull(rr);
  }

  /// Maximum value over [lo, hi] (inclusive). Requires lo <= hi < size().
  double max(std::size_t lo, std::size_t hi) const {
    assert(lo <= hi && hi < n_);
    double resl = kNone;
    double resr = kNone;
    std::size_t l = lo + n_;
    std::size_t r = hi + n_ + 1;
    while (l < r) {
      if (l & 1) resl = std::max(resl, mx_[l++]);
      if (r & 1) resr = std::max(resr, mx_[--r]);
      l >>= 1;
      r >>= 1;
      // After each climb, (l - 1) and r are ancestors of every node consumed
      // so far on their side; fold in their pending deltas. Guarded to the
      // internal region (leaves carry no delta; d_[0] is unused and 0).
      if (l - 1 < n_) resl += d_[l - 1];
      if (r < n_) resr += d_[r];
    }
    for (std::size_t x = l - 1; x > 1;) {
      x >>= 1;
      resl += d_[x];
    }
    for (std::size_t x = r; x > 1;) {
      x >>= 1;
      resr += d_[x];
    }
    return std::max(resl, resr);
  }

  /// Maximum over the whole range; 0 for an empty tree. O(1).
  double max_all() const { return n_ == 0 ? 0.0 : mx_[1]; }

  /// Minimum over the whole range; 0 for an empty tree. O(1). Together with
  /// max_all this brackets the usage envelope: max_all is the window-wide
  /// peak (quick-accept when peak + demand fits) and min_all the window-wide
  /// floor (quick-reject when even the emptiest unit lacks spare capacity).
  double min_all() const { return n_ == 0 ? 0.0 : mn_[1]; }

  /// First position in [lo, hi] whose value v satisfies pred(v), or npos.
  /// `pred` must be monotone in v (true stays true as v grows), e.g.
  /// v + demand > capacity + eps. Requires lo <= hi < size().
  template <typename Pred>
  std::size_t first_above(std::size_t lo, std::size_t hi, Pred pred) const {
    assert(lo <= hi && hi < n_);
    // Canonical border nodes with running delta-corrected subtree maxima.
    // The running values v are folded exactly like max()'s resl/resr, so the
    // "does any node fire" verdict matches max() bit-for-bit; ctx tracks the
    // ancestor-delta sum separately for the descent.
    struct Node {
      std::size_t x;
      double v;    // mx_[x] plus ancestor deltas folded in climb order
      double ctx;  // ancestor-delta sum alone (for descend)
    };
    Node ln[kMaxDepth];
    Node rn[kMaxDepth];
    int lc = 0;
    int rc = 0;
    std::size_t l = lo + n_;
    std::size_t r = hi + n_ + 1;
    while (l < r) {
      if (l & 1) ln[lc++] = Node{l, mx_[l], 0.0}, ++l;
      if (r & 1) --r, rn[rc++] = Node{r, mx_[r], 0.0};
      l >>= 1;
      r >>= 1;
      if (l - 1 < n_) {
        for (int i = 0; i < lc; ++i) {
          ln[i].v += d_[l - 1];
          ln[i].ctx += d_[l - 1];
        }
      }
      if (r < n_) {
        for (int i = 0; i < rc; ++i) {
          rn[i].v += d_[r];
          rn[i].ctx += d_[r];
        }
      }
    }
    for (std::size_t x = l - 1; x > 1;) {
      x >>= 1;
      for (int i = 0; i < lc; ++i) {
        ln[i].v += d_[x];
        ln[i].ctx += d_[x];
      }
    }
    for (std::size_t x = r; x > 1;) {
      x >>= 1;
      for (int i = 0; i < rc; ++i) {
        rn[i].v += d_[x];
        rn[i].ctx += d_[x];
      }
    }
    // Left-border nodes are consumed in ascending position order and always
    // precede the right-border nodes (consumed descending); scan in position
    // order and descend into the first node that fires.
    for (int i = 0; i < lc; ++i) {
      if (pred(ln[i].v)) return descend(ln[i].x, ln[i].ctx, pred);
    }
    for (int i = rc - 1; i >= 0; --i) {
      if (pred(rn[i].v)) return descend(rn[i].x, rn[i].ctx, pred);
    }
    return npos;
  }

 private:
  // 64-bit positions: a border chain can never exceed 64 consumed nodes.
  static constexpr int kMaxDepth = 64;
  static constexpr double kNone = -1e300;

  void apply(std::size_t x, double delta) {
    mx_[x] += delta;
    mn_[x] += delta;
    if (x < n_) d_[x] += delta;
  }

  void pull(std::size_t x) {
    while (x > 1) {
      x >>= 1;
      mx_[x] = std::max(mx_[2 * x], mx_[2 * x + 1]) + d_[x];
      mn_[x] = std::min(mn_[2 * x], mn_[2 * x + 1]) + d_[x];
    }
  }

  /// Walks down from node x (whose subtree max satisfies pred) to the
  /// earliest leaf that fires. `ctx` is the ancestor-delta sum above x.
  template <typename Pred>
  std::size_t descend(std::size_t x, double ctx, Pred pred) const {
    while (x < n_) {
      ctx += d_[x];
      x = 2 * x;
      if (!pred(mx_[x] + ctx)) ++x;
    }
    return x - n_;
  }

  std::size_t n_;
  std::vector<double> mx_;
  std::vector<double> mn_;
  std::vector<double> d_;
};

}  // namespace esva
