// Hardened numeric field parsing shared by every CSV/trace/solution reader.
//
// The readers historically each carried a local stol/stod wrapper; none of
// them range-checked the long -> int32 narrowing into Time/VmId/ServerId, and
// consumers of already-parsed JSON numbers cast double -> int32 unchecked
// (undefined behaviour on overflow/NaN under UBSan). Every helper here turns
// *any* malformed field — empty, non-numeric, trailing garbage, overflowing,
// non-integral, non-finite — into a std::runtime_error carrying the caller's
// context string, so adversarial input produces a structured parse error,
// never an abort (tests/test_fuzz_parsers.cpp).
//
// A single trailing '\r' is stripped before parsing, so fields cut from
// CRLF-terminated lines by non-CSV tokenizers parse cleanly (the CSV layer
// already strips CRLF at line level; util/csv.cpp).

#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "util/types.h"

namespace esva {

/// Parses a whole field as a signed integer. Throws std::runtime_error
/// ("<context>: ...") on empty/non-numeric fields, trailing garbage, or
/// values outside long long.
long long parse_int_field(const std::string& field, const std::string& context);

/// parse_int_field plus an inclusive range check.
long long parse_int_field(const std::string& field, long long lo, long long hi,
                          const std::string& context);

/// Parses a whole field as a double (decimal or hexfloat). Throws
/// std::runtime_error on empty/non-numeric fields, trailing garbage, or
/// overflow.
double parse_double_field(const std::string& field, const std::string& context);

/// Parses a field into a (narrower) integer type with the type's full range
/// as bounds: the long -> int32 truncation the readers used to do silently
/// is now a structured error.
template <typename T>
T parse_field_as(const std::string& field, const std::string& context) {
  static_assert(std::numeric_limits<T>::is_integer);
  return static_cast<T>(
      parse_int_field(field, std::numeric_limits<T>::min(),
                      std::numeric_limits<T>::max(), context));
}

/// Checked conversion of an already-parsed double (e.g. a JSON number) to an
/// integer in [lo, hi]: rejects non-finite and non-integral values and
/// out-of-range magnitudes instead of invoking the undefined cast.
long long checked_integer(double value, long long lo, long long hi,
                          const std::string& context);

/// checked_integer into a concrete integer type over its full range.
template <typename T>
T checked_integer_as(double value, const std::string& context) {
  static_assert(std::numeric_limits<T>::is_integer);
  return static_cast<T>(checked_integer(value, std::numeric_limits<T>::min(),
                                        std::numeric_limits<T>::max(),
                                        context));
}

/// Parses a decimal std::uint64_t (the snapshot format's 64-bit rng words,
/// which a double-backed JSON number cannot carry exactly).
std::uint64_t parse_u64_field(const std::string& field,
                              const std::string& context);

}  // namespace esva
