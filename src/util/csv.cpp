#include "util/csv.h"

#include <charconv>
#include <istream>
#include <stdexcept>

namespace esva {

namespace {

bool needs_quoting(std::string_view field) {
  return field.find_first_of(",\"\n\r") != std::string_view::npos;
}

std::string quote(std::string_view field) {
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

template <typename T>
std::string number_to_string(T v) {
  char buf[64];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, v);
  if (ec != std::errc{}) throw std::runtime_error("number formatting failed");
  return std::string(buf, ptr);
}

}  // namespace

void CsvWriter::row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    if (needs_quoting(fields[i]))
      out_ << quote(fields[i]);
    else
      out_ << fields[i];
  }
  out_ << '\n';
}

std::string CsvWriter::field_to_string(double v) {
  return number_to_string(v);
}
std::string CsvWriter::field_to_string(int v) { return number_to_string(v); }
std::string CsvWriter::field_to_string(long v) { return number_to_string(v); }
std::string CsvWriter::field_to_string(long long v) {
  return number_to_string(v);
}
std::string CsvWriter::field_to_string(unsigned long long v) {
  return number_to_string(v);
}

std::vector<std::string> parse_csv_line(std::string_view line) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  std::size_t i = 0;
  while (i < line.size()) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          current.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        current.push_back(c);
      }
    } else if (c == '"') {
      if (!current.empty())
        throw std::runtime_error("CSV: quote inside unquoted field");
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(current));
      current.clear();
    } else if (c == '\r') {
      // tolerate CRLF
    } else {
      current.push_back(c);
    }
    ++i;
  }
  if (in_quotes) throw std::runtime_error("CSV: unterminated quoted field");
  fields.push_back(std::move(current));
  return fields;
}

std::vector<std::vector<std::string>> read_csv(std::istream& in) {
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line == "\r") continue;
    rows.push_back(parse_csv_line(line));
  }
  return rows;
}

}  // namespace esva
