#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace esva {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// Milliseconds since the first log call (a stable process-lifetime anchor
/// without static-init-order concerns).
long long elapsed_ms() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration_cast<std::chrono::milliseconds>(clock::now() -
                                                               start)
      .count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }

LogLevel log_level() { return g_level.load(); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::Debug;
  if (name == "info") return LogLevel::Info;
  if (name == "warn") return LogLevel::Warn;
  if (name == "error") return LogLevel::Error;
  if (name == "off") return LogLevel::Off;
  return std::nullopt;
}

void log_message(LogLevel level, std::string_view msg) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::fprintf(stderr, "[%6lldms %s] %.*s\n", elapsed_ms(), level_name(level),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace esva
