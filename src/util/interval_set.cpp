#include "util/interval_set.h"

#include <algorithm>
#include <cassert>

namespace esva {

IntervalSet::InsertDelta IntervalSet::insert(Time lo, Time hi) {
  assert(lo <= hi);
  InsertDelta delta;
  Time merged_lo = lo;
  Time merged_hi = hi;

  // First interval whose hi >= lo - 1 (i.e. could overlap or be left-adjacent).
  auto first = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, Time value) { return iv.hi < value - 1; });
  // Last interval whose lo <= hi + 1 (overlap or right-adjacent); `last` is
  // one past it.
  auto last = first;
  while (last != ivs_.end() && last->lo <= hi + 1) ++last;

  for (auto it = first; it != last; ++it) {
    delta.absorbed.push_back(*it);
    merged_lo = std::min(merged_lo, it->lo);
    merged_hi = std::max(merged_hi, it->hi);
  }

  delta.merged = Interval{merged_lo, merged_hi};
  auto pos = ivs_.erase(first, last);
  ivs_.insert(pos, delta.merged);
  return delta;
}

IntervalSet::Preview IntervalSet::preview_insert(Time lo, Time hi) const {
  assert(lo <= hi);
  Preview preview;
  Time merged_lo = lo;
  Time merged_hi = hi;

  auto first = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, Time value) { return iv.hi < value - 1; });
  auto last = first;
  while (last != ivs_.end() && last->lo <= hi + 1) ++last;

  for (auto it = first; it != last; ++it) {
    preview.absorbed.push_back(*it);
    merged_lo = std::min(merged_lo, it->lo);
    merged_hi = std::max(merged_hi, it->hi);
  }
  preview.merged = Interval{merged_lo, merged_hi};
  if (first != ivs_.begin()) {
    preview.has_left = true;
    preview.left = *std::prev(first);
  }
  if (last != ivs_.end()) {
    preview.has_right = true;
    preview.right = *last;
  }
  return preview;
}

IntervalSet::PreviewView IntervalSet::preview_insert_view(Time lo,
                                                          Time hi) const {
  assert(lo <= hi);
  PreviewView preview;
  Time merged_lo = lo;
  Time merged_hi = hi;

  auto first = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, Time value) { return iv.hi < value - 1; });
  auto last = first;
  while (last != ivs_.end() && last->lo <= hi + 1) ++last;

  if (first != last) {
    merged_lo = std::min(merged_lo, first->lo);
    merged_hi = std::max(merged_hi, std::prev(last)->hi);
  }
  preview.absorbed = std::span<const Interval>(first, last);
  preview.merged = Interval{merged_lo, merged_hi};
  if (first != ivs_.begin()) {
    preview.has_left = true;
    preview.left = *std::prev(first);
  }
  if (last != ivs_.end()) {
    preview.has_right = true;
    preview.right = *last;
  }
  return preview;
}

void IntervalSet::erase_covered(Time lo, Time hi) {
  assert(lo <= hi);
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, Time value) { return iv.hi < value; });
  assert(it != ivs_.end() && it->lo <= lo && hi <= it->hi &&
         "erase_covered requires the range to be fully inside one interval");
  const Interval cover = *it;
  it = ivs_.erase(it);
  if (hi < cover.hi) it = ivs_.insert(it, Interval{hi + 1, cover.hi});
  if (cover.lo < lo) ivs_.insert(it, Interval{cover.lo, lo - 1});
}

bool IntervalSet::contains(Time t) const {
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), t,
      [](const Interval& iv, Time value) { return iv.hi < value; });
  return it != ivs_.end() && it->lo <= t;
}

bool IntervalSet::intersects(Time lo, Time hi) const {
  assert(lo <= hi);
  auto it = std::lower_bound(
      ivs_.begin(), ivs_.end(), lo,
      [](const Interval& iv, Time value) { return iv.hi < value; });
  return it != ivs_.end() && it->lo <= hi;
}

Time IntervalSet::total_length() const {
  Time total = 0;
  for (const Interval& iv : ivs_) total += iv.length();
  return total;
}

std::vector<Interval> IntervalSet::gaps() const {
  std::vector<Interval> result;
  for (std::size_t i = 1; i < ivs_.size(); ++i) {
    result.push_back(Interval{ivs_[i - 1].hi + 1, ivs_[i].lo - 1});
  }
  return result;
}

Interval IntervalSet::span() const {
  assert(!empty());
  return Interval{ivs_.front().lo, ivs_.back().hi};
}

}  // namespace esva
