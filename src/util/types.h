// Core scalar types shared across the esva library.
//
// The paper (Xie et al., ICDCSW'13) works on a discretized horizon [1, T] with
// a one-minute time unit (§IV-B3: "The time unit in our model is 1 minute").
// We keep time integral and energy/power floating point.

#pragma once

#include <cstdint>
#include <limits>

namespace esva {

/// Discrete simulation time, in time units (minutes). Valid model times are
/// 1..T inclusive; 0 and T+1 are the virtual "before"/"after" instants at
/// which every server is in the power-saving state (paper §II).
using Time = std::int32_t;

/// Identifier of a VM within a problem instance (dense, 0-based).
using VmId = std::int32_t;

/// Identifier of a server within a problem instance (dense, 0-based).
using ServerId = std::int32_t;

/// Sentinel for "not allocated to any server".
inline constexpr ServerId kNoServer = -1;

/// Electrical power in watts.
using Watts = double;

/// Energy in watt-minutes (power × the paper's one-minute time unit). All
/// objective values (Eq. 7 / Eq. 17) are expressed in this unit.
using Energy = double;

/// CPU capacity/demand, in EC2 "compute units" (fractional values occur:
/// m2.xlarge is 6.5 CU).
using CpuUnits = double;

/// Memory capacity/demand in GiB (fractional values occur: 1.7, 3.75, ...).
using GiB = double;

/// Tolerance for floating-point comparisons of energies and resource levels.
inline constexpr double kEps = 1e-9;

/// +infinity shorthand for cost initializations.
inline constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace esva
