#include "util/json.h"

#include <cctype>
#include <cstdio>
#include <stdexcept>

#include "util/parse.h"

namespace esva::json {

const Value* Value::find(const std::string& key) const {
  for (const auto& [k, v] : object)
    if (k == key) return &v;
  return nullptr;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Value parse() {
    Value value = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return value;
  }

 private:
  // Guards the recursive-descent stack against adversarial "[[[[..." input:
  // a depth bound turns a would-be stack overflow into a parse error.
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& what) {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& literal) {
    if (text_.compare(pos_, literal.size(), literal) != 0) return false;
    pos_ += literal.size();
    return true;
  }

  Value parse_value() {
    if (++depth_ > kMaxDepth) fail("nesting too deep");
    Value v = parse_value_inner();
    --depth_;
    return v;
  }

  Value parse_value_inner() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') {
      Value v;
      v.kind = Value::Kind::String;
      v.string = parse_string();
      return v;
    }
    if (consume_literal("true")) {
      Value v;
      v.kind = Value::Kind::Bool;
      v.boolean = true;
      return v;
    }
    if (consume_literal("false")) {
      Value v;
      v.kind = Value::Kind::Bool;
      return v;
    }
    if (consume_literal("null")) return Value{};
    return parse_number();
  }

  Value parse_object() {
    Value v;
    v.kind = Value::Kind::Object;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  Value parse_array() {
    Value v;
    v.kind = Value::Kind::Array;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char escape = peek();
      ++pos_;
      switch (escape) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          long code = 0;
          for (int k = 0; k < 4; ++k) {
            const char h = text_[pos_ + static_cast<std::size_t>(k)];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else fail("malformed \\u escape");
          }
          pos_ += 4;
          // Our formats only escape control characters, all < 0x80; emit as
          // a single byte.
          if (code > 0x7f) fail("unsupported \\u escape");
          out += static_cast<char>(code);
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    Value v;
    v.kind = Value::Kind::Number;
    try {
      v.number = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Value parse(const std::string& text) { return Parser(text).parse(); }

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  out += '"';
  return out;
}

double require_number(const Value& obj, const std::string& key,
                      const std::string& context) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::Kind::Number)
    throw std::runtime_error(context + ": missing numeric field '" + key + "'");
  return v->number;
}

long long require_integer(const Value& obj, const std::string& key,
                          long long lo, long long hi,
                          const std::string& context) {
  return checked_integer(require_number(obj, key, context), lo, hi,
                         context + ": field '" + key + "'");
}

const std::string& require_string(const Value& obj, const std::string& key,
                                  const std::string& context) {
  const Value* v = obj.find(key);
  if (!v || v->kind != Value::Kind::String)
    throw std::runtime_error(context + ": missing string field '" + key + "'");
  return v->string;
}

}  // namespace esva::json
