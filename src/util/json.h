// Minimal JSON reader/writer helpers shared by the decision-trace loader
// (obs/trace.cpp), the serve wire protocol, and the journal/snapshot codecs
// (src/serve/). Covers exactly the JSON subset those formats emit — objects,
// arrays, strings with escapes, numbers, booleans, null — with no external
// dependency.
//
// Numbers are held as doubles (the JSON model); consumers that need an exact
// integer go through the checked accessors below or util/parse.h's
// checked_integer, which reject non-integral and out-of-range values instead
// of casting blindly. 64-bit-exact quantities (rng words, sequence numbers
// beyond 2^53) are carried as decimal *strings* in our formats.

#pragma once

#include <string>
#include <utility>
#include <vector>

namespace esva::json {

struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  /// First member with the given key (objects preserve insertion order);
  /// null when absent or when this value is not an object.
  const Value* find(const std::string& key) const;

  bool is_null() const { return kind == Kind::Null; }
};

/// Parses one complete JSON document. Throws std::runtime_error
/// ("json parse error at offset N: ...") on malformed input, trailing
/// characters, or excessive nesting.
Value parse(const std::string& text);

/// Serializes a string as a JSON string literal, quotes included (control
/// characters become \uXXXX escapes).
std::string escape(const std::string& s);

// --- checked field accessors ------------------------------------------------
// All throw std::runtime_error("<context>: ...") when the key is missing or
// the wrong kind; the integer form additionally rejects non-integral and
// out-of-range numbers.

double require_number(const Value& obj, const std::string& key,
                      const std::string& context);
long long require_integer(const Value& obj, const std::string& key,
                          long long lo, long long hi,
                          const std::string& context);
const std::string& require_string(const Value& obj, const std::string& key,
                                  const std::string& context);

}  // namespace esva::json
