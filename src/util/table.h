// Fixed-width ASCII table rendering for bench/example output. The paper
// presents its configuration as Tables I and II and its results as series;
// bench binaries print both through this renderer so the terminal output can
// be compared to the paper side by side.

#pragma once

#include <initializer_list>
#include <string>
#include <vector>

namespace esva {

class TextTable {
 public:
  /// Column alignment.
  enum class Align { Left, Right };

  /// Sets the header row; column count is fixed from here on.
  void set_header(std::vector<std::string> header);

  /// Appends a data row; must match the header's column count if set,
  /// otherwise the first row fixes the column count.
  void add_row(std::vector<std::string> row);

  /// Sets per-column alignment (default: Left for col 0, Right otherwise,
  /// which suits "name | numbers..." tables).
  void set_align(std::vector<Align> align);

  /// Renders with a box-drawing rule under the header.
  std::string render() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<Align> align_;
};

/// Fixed-precision formatting helpers used throughout bench output.
std::string fmt_double(double v, int precision = 2);
/// Formats a ratio (0.1234) as a percentage string ("12.34%").
std::string fmt_percent(double ratio, int precision = 2);

}  // namespace esva
