#include "util/cli.h"

#include <charconv>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace esva {

CliParser::CliParser(std::string program_summary)
    : summary_(std::move(program_summary)) {}

void CliParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  Flag f;
  f.kind = Kind::Int;
  f.help = help;
  f.int_value = default_value;
  if (flags_.emplace(name, std::move(f)).second)
    declaration_order_.push_back(name);
}

void CliParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.kind = Kind::Double;
  f.help = help;
  f.double_value = default_value;
  if (flags_.emplace(name, std::move(f)).second)
    declaration_order_.push_back(name);
}

void CliParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag f;
  f.kind = Kind::String;
  f.help = help;
  f.string_value = default_value;
  if (flags_.emplace(name, std::move(f)).second)
    declaration_order_.push_back(name);
}

void CliParser::add_bool(const std::string& name, const std::string& help) {
  Flag f;
  f.kind = Kind::Bool;
  f.help = help;
  if (flags_.emplace(name, std::move(f)).second)
    declaration_order_.push_back(name);
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::optional<std::string> inline_value;
    if (auto eq = name.find('='); eq != std::string::npos) {
      inline_value = name.substr(eq + 1);
      name.resize(eq);
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage().c_str());
      parse_error_ = true;
      return false;
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::Bool) {
      flag.bool_value = inline_value ? (*inline_value != "false") : true;
      continue;
    }
    std::string value;
    if (inline_value) {
      value = *inline_value;
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s expects a value\n", name.c_str());
      parse_error_ = true;
      return false;
    }
    try {
      switch (flag.kind) {
        case Kind::Int:
          flag.int_value = std::stoll(value);
          break;
        case Kind::Double:
          flag.double_value = std::stod(value);
          break;
        case Kind::String:
          flag.string_value = value;
          break;
        case Kind::Bool:
          break;  // handled above
      }
    } catch (const std::exception&) {
      std::fprintf(stderr, "flag --%s: cannot parse value '%s'\n", name.c_str(),
                   value.c_str());
      parse_error_ = true;
      return false;
    }
  }
  return true;
}

const CliParser::Flag* CliParser::find(const std::string& name,
                                       Kind kind) const {
  auto it = flags_.find(name);
  if (it == flags_.end() || it->second.kind != kind)
    throw std::logic_error("flag not declared with this type: --" + name);
  return &it->second;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  return find(name, Kind::Int)->int_value;
}

double CliParser::get_double(const std::string& name) const {
  return find(name, Kind::Double)->double_value;
}

const std::string& CliParser::get_string(const std::string& name) const {
  return find(name, Kind::String)->string_value;
}

bool CliParser::get_bool(const std::string& name) const {
  return find(name, Kind::Bool)->bool_value;
}

std::string CliParser::usage() const {
  std::ostringstream out;
  out << summary_ << "\n\nflags:\n";
  for (const std::string& name : declaration_order_) {
    const Flag& f = flags_.at(name);
    out << "  --" << name;
    switch (f.kind) {
      case Kind::Int:
        out << " <int>      (default " << f.int_value << ")";
        break;
      case Kind::Double:
        out << " <float>    (default " << f.double_value << ")";
        break;
      case Kind::String:
        out << " <string>   (default \"" << f.string_value << "\")";
        break;
      case Kind::Bool:
        out << "            (switch)";
        break;
    }
    out << "\n      " << f.help << '\n';
  }
  out << "  --help\n      print this message\n";
  return out.str();
}

}  // namespace esva
