#include "util/parse.h"

#include <cmath>
#include <stdexcept>

namespace esva {

namespace {

[[noreturn]] void fail(const std::string& context, const std::string& what) {
  throw std::runtime_error(context + ": " + what);
}

/// A field cut from a CRLF-terminated line by a non-CSV tokenizer keeps the
/// '\r'; strip exactly one so numeric parsing sees the bare token.
std::string strip_cr(const std::string& field) {
  if (!field.empty() && field.back() == '\r')
    return field.substr(0, field.size() - 1);
  return field;
}

}  // namespace

long long parse_int_field(const std::string& raw, const std::string& context) {
  const std::string field = strip_cr(raw);
  try {
    std::size_t consumed = 0;
    const long long value = std::stoll(field, &consumed);
    if (consumed != field.size())
      fail(context, "trailing junk in '" + field + "'");
    return value;
  } catch (const std::out_of_range&) {
    fail(context, "integer out of range: '" + field + "'");
  } catch (const std::invalid_argument&) {
    fail(context, "expected an integer, got '" + field + "'");
  }
}

long long parse_int_field(const std::string& field, long long lo, long long hi,
                          const std::string& context) {
  const long long value = parse_int_field(field, context);
  if (value < lo || value > hi)
    fail(context, "value " + std::to_string(value) + " outside [" +
                      std::to_string(lo) + ", " + std::to_string(hi) + "]");
  return value;
}

double parse_double_field(const std::string& raw, const std::string& context) {
  const std::string field = strip_cr(raw);
  try {
    std::size_t consumed = 0;
    const double value = std::stod(field, &consumed);
    if (consumed != field.size())
      fail(context, "trailing junk in '" + field + "'");
    return value;
  } catch (const std::out_of_range&) {
    fail(context, "number out of range: '" + field + "'");
  } catch (const std::invalid_argument&) {
    fail(context, "expected a number, got '" + field + "'");
  }
}

long long checked_integer(double value, long long lo, long long hi,
                          const std::string& context) {
  if (!std::isfinite(value))
    fail(context, "expected a finite integer");
  if (value != std::floor(value))
    fail(context, "expected an integer, got a fractional value");
  // Compare in double space: every int32-scale bound is exact in a double,
  // and a value beyond ±2^53 is out of range for all callers anyway.
  if (value < static_cast<double>(lo) || value > static_cast<double>(hi))
    fail(context, "integer outside [" + std::to_string(lo) + ", " +
                      std::to_string(hi) + "]");
  return static_cast<long long>(value);
}

std::uint64_t parse_u64_field(const std::string& raw,
                              const std::string& context) {
  const std::string field = strip_cr(raw);
  if (field.empty() || field[0] == '-')
    fail(context, "expected an unsigned integer, got '" + field + "'");
  try {
    std::size_t consumed = 0;
    const unsigned long long value = std::stoull(field, &consumed);
    if (consumed != field.size())
      fail(context, "trailing junk in '" + field + "'");
    return static_cast<std::uint64_t>(value);
  } catch (const std::out_of_range&) {
    fail(context, "integer out of range: '" + field + "'");
  } catch (const std::invalid_argument&) {
    fail(context, "expected an unsigned integer, got '" + field + "'");
  }
}

}  // namespace esva
