#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace esva {

void TextTable::set_header(std::vector<std::string> header) {
  assert(rows_.empty() || header.size() == rows_.front().size());
  header_ = std::move(header);
}

void TextTable::add_row(std::vector<std::string> row) {
  if (!header_.empty()) assert(row.size() == header_.size());
  if (!rows_.empty()) assert(row.size() == rows_.front().size());
  rows_.push_back(std::move(row));
}

void TextTable::set_align(std::vector<Align> align) {
  align_ = std::move(align);
}

std::string TextTable::render() const {
  const std::size_t cols =
      !header_.empty() ? header_.size() : (rows_.empty() ? 0 : rows_[0].size());
  if (cols == 0) return {};

  std::vector<std::size_t> width(cols, 0);
  auto widen = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c)
      width[c] = std::max(width[c], row[c].size());
  };
  if (!header_.empty()) widen(header_);
  for (const auto& row : rows_) widen(row);

  auto align_of = [&](std::size_t c) {
    if (c < align_.size()) return align_[c];
    return c == 0 ? Align::Left : Align::Right;
  };

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c > 0) out << "  ";
      const std::string& cell = row[c];
      const std::size_t pad = width[c] - cell.size();
      if (align_of(c) == Align::Right) out << std::string(pad, ' ');
      out << cell;
      if (align_of(c) == Align::Left && c + 1 < cols)
        out << std::string(pad, ' ');
    }
    out << '\n';
  };

  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t c = 0; c < cols; ++c) total += width[c];
    total += 2 * (cols - 1);
    out << std::string(total, '-') << '\n';
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_percent(double ratio, int precision) {
  return fmt_double(ratio * 100.0, precision) + "%";
}

}  // namespace esva
