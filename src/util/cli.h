// Tiny declarative command-line flag parser shared by the examples and bench
// binaries (`--vms 200 --seed 7 --csv out.csv`). Not a general-purpose
// library: long flags only, values follow as the next argv entry (or
// `--flag=value`), plus boolean switches.

#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace esva {

class CliParser {
 public:
  /// `program_summary` is printed at the top of --help output.
  explicit CliParser(std::string program_summary);

  /// Declares flags with their defaults. Call before parse().
  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_bool(const std::string& name, const std::string& help);

  /// Parses argv. Returns false (after printing usage) on `--help` or on any
  /// unknown flag / malformed value; the caller should then exit(0/1).
  /// `parse_error()` distinguishes the two cases.
  bool parse(int argc, const char* const* argv);

  bool parse_error() const { return parse_error_; }

  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  const std::string& get_string(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Positional (non-flag) arguments in order of appearance.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  enum class Kind { Int, Double, String, Bool };
  struct Flag {
    Kind kind = Kind::Bool;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0;
    std::string string_value;
    bool bool_value = false;
  };

  const Flag* find(const std::string& name, Kind kind) const;

  std::string summary_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> declaration_order_;
  std::vector<std::string> positional_;
  bool parse_error_ = false;
};

}  // namespace esva
