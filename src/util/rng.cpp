#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace esva {

namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t SplitMix64::next() {
  std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
  // An all-zero state would be a fixed point; SplitMix64 cannot produce four
  // consecutive zeros, but guard anyway for cheap insurance.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::next_double() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::uint64_t(-1) - std::uint64_t(-1) % span;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::uniform_double(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * next_double();
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  // Inverse CDF; 1 - u in (0, 1] avoids log(0).
  return -mean * std::log(1.0 - next_double());
}

bool Rng::bernoulli(double p) { return next_double() < p; }

std::size_t Rng::index(std::size_t n) {
  assert(n > 0);
  return static_cast<std::size_t>(
      uniform_int(0, static_cast<std::int64_t>(n) - 1));
}

Rng Rng::split() { return Rng(next_u64()); }

void Rng::set_state(const std::array<std::uint64_t, 4>& s) {
  if ((s[0] | s[1] | s[2] | s[3]) == 0)
    throw std::invalid_argument("Rng::set_state: all-zero state");
  s_ = s;
}

}  // namespace esva
