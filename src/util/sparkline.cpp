#include "util/sparkline.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace esva {

namespace {

// Eight block elements, U+2581..U+2588, each 3 bytes in UTF-8.
const char* const kBlocks[8] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};

}  // namespace

std::string sparkline(std::span<const double> values) {
  if (values.empty()) return {};
  double lo = INFINITY;
  double hi = -INFINITY;
  for (double v : values) {
    if (!std::isfinite(v)) continue;
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  std::string out;
  out.reserve(values.size() * 3);
  for (double v : values) {
    if (!std::isfinite(v)) {
      out.push_back(' ');
      continue;
    }
    int level = 3;  // mid-height for constant series
    if (hi > lo) {
      level = static_cast<int>(std::floor((v - lo) / (hi - lo) * 8.0));
      level = std::clamp(level, 0, 7);
    }
    out += kBlocks[level];
  }
  return out;
}

std::string sparkline(std::span<const double> values, std::size_t width) {
  if (values.size() <= width || width == 0) return sparkline(values);
  std::vector<double> buckets(width, 0.0);
  std::vector<std::size_t> counts(width, 0);
  for (std::size_t i = 0; i < values.size(); ++i) {
    const std::size_t b = i * width / values.size();
    buckets[b] += values[i];
    ++counts[b];
  }
  for (std::size_t b = 0; b < width; ++b)
    if (counts[b] > 0) buckets[b] /= static_cast<double>(counts[b]);
  return sparkline(buckets);
}

}  // namespace esva
