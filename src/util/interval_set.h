// Sorted set of disjoint, inclusive integer intervals with merge-on-insert.
//
// This is the substrate for the paper's busy-segment bookkeeping (Fig. 1): a
// server that hosts a set of VMs is busy on the merged union of their
// [start, finish] intervals, and the idle-segments are the interior gaps.
// Adjacent intervals ([1,3] and [4,6]) are coalesced because the server is
// continuously busy across them; a gap must have length >= 1 time unit.

#pragma once

#include <span>
#include <vector>

#include "util/types.h"

namespace esva {

/// Closed integer interval [lo, hi], lo <= hi.
struct Interval {
  Time lo = 0;
  Time hi = 0;

  /// Number of time units covered (inclusive endpoints): hi - lo + 1.
  Time length() const { return hi - lo + 1; }

  friend bool operator==(const Interval&, const Interval&) = default;
};

class IntervalSet {
 public:
  /// Result of an insertion: the coalesced interval that now covers the
  /// inserted range, and the pre-existing intervals it absorbed (in order).
  struct InsertDelta {
    Interval merged;
    std::vector<Interval> absorbed;
  };

  /// Like InsertDelta, plus the surviving neighbors of the merged interval
  /// (if any); this is everything the incremental energy-cost evaluator needs
  /// to recompute the local busy/idle structure without mutating the set.
  struct Preview {
    Interval merged;
    std::vector<Interval> absorbed;
    bool has_left = false;
    bool has_right = false;
    Interval left;   // valid iff has_left
    Interval right;  // valid iff has_right
  };

  /// Inserts [lo, hi] (requires lo <= hi), merging with any overlapping or
  /// adjacent intervals. Returns what changed so callers (the incremental
  /// energy-cost evaluator) can update derived quantities in O(|absorbed|).
  InsertDelta insert(Time lo, Time hi);

  /// Computes the effect insert(lo, hi) would have, without mutating.
  Preview preview_insert(Time lo, Time hi) const;

  /// Allocation-free Preview: the absorbed intervals are always a contiguous
  /// run of this set's own storage, so `absorbed` is a span into it instead
  /// of a copy. Valid only until the next mutation of this set — fine for
  /// the incremental cost evaluator, which consumes it immediately (the
  /// candidate-scan hot path calls this once per feasible probe).
  struct PreviewView {
    Interval merged;
    std::span<const Interval> absorbed;
    bool has_left = false;
    bool has_right = false;
    Interval left;   // valid iff has_left
    Interval right;  // valid iff has_right
  };

  /// preview_insert without the absorbed-interval copy (see PreviewView).
  PreviewView preview_insert_view(Time lo, Time hi) const;

  /// Removes [lo, hi] exactly as previously contributed; only supports
  /// removing a range that is fully covered (used by what-if rollback).
  /// Splits a covering interval if needed.
  void erase_covered(Time lo, Time hi);

  /// True iff t lies in some interval.
  bool contains(Time t) const;

  /// True iff [lo, hi] intersects any interval.
  bool intersects(Time lo, Time hi) const;

  /// The disjoint intervals in increasing order.
  const std::vector<Interval>& intervals() const { return ivs_; }

  /// Sum of lengths of all intervals.
  Time total_length() const;

  /// Interior gaps between consecutive intervals (empty if size() < 2).
  std::vector<Interval> gaps() const;

  bool empty() const { return ivs_.empty(); }
  std::size_t size() const { return ivs_.size(); }
  void clear() { ivs_.clear(); }

  /// Envelope [first.lo, last.hi]. Requires !empty().
  Interval span() const;

 private:
  std::vector<Interval> ivs_;
};

}  // namespace esva
