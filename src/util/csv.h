// Minimal CSV writing/reading used by the benchmark harness (raw series
// export) and the workload trace format.

#pragma once

#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace esva {

/// Streams one CSV row at a time; fields containing separators, quotes or
/// newlines are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Writes to `out`; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(out) {}

  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  /// Writes a header/data row of raw string fields.
  void row(const std::vector<std::string>& fields);

  /// Convenience: formats arithmetic fields with max round-trip precision.
  template <typename... Ts>
  void typed_row(const Ts&... fields) {
    row(std::vector<std::string>{field_to_string(fields)...});
  }

  static std::string field_to_string(const std::string& s) { return s; }
  static std::string field_to_string(const char* s) { return s; }
  static std::string field_to_string(std::string_view s) {
    return std::string(s);
  }
  static std::string field_to_string(double v);
  static std::string field_to_string(int v);
  static std::string field_to_string(long v);
  static std::string field_to_string(long long v);
  static std::string field_to_string(unsigned long long v);

 private:
  std::ostream& out_;
};

/// Parses one CSV line into fields (RFC 4180 quoting). Throws
/// std::runtime_error on malformed quoting.
std::vector<std::string> parse_csv_line(std::string_view line);

/// Reads all rows from a CSV stream, skipping blank lines.
std::vector<std::vector<std::string>> read_csv(std::istream& in);

}  // namespace esva
