// Unicode sparklines for terminal output: renders a numeric series as a
// one-line bar profile (▁▂▃▄▅▆▇█). Used by the examples to show power
// profiles and by the CLI's simulate command.

#pragma once

#include <span>
#include <string>

namespace esva {

/// Renders `values` scaled to [min, max] across eight block heights. Empty
/// input renders an empty string; a constant series renders mid-height
/// blocks. Non-finite values render as spaces.
std::string sparkline(std::span<const double> values);

/// Downsamples `values` to at most `width` buckets (bucket mean) before
/// rendering, so long series fit a terminal line.
std::string sparkline(std::span<const double> values, std::size_t width);

}  // namespace esva
