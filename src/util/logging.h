// Leveled stderr logging. Kept intentionally tiny: the library itself logs
// nothing above Debug in hot paths; the experiment runner uses Info to report
// sweep progress so long bench runs are observable.

#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace esva {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global threshold; messages below it are dropped. Default: Warn.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" / "info" / "warn" / "error" / "off" (case-sensitive) -> level;
/// nullopt for anything else. The vocabulary of `esva --log-level`.
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Emits `msg` to stderr if `level` >= threshold, prefixed with the level
/// and the monotonic milliseconds since process start, e.g.
/// "[  1234ms INFO] sweep point 3/10" — so long sweep logs are interpretable.
void log_message(LogLevel level, std::string_view msg);

namespace detail {

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { log_message(level_, out_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    out_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream out_;
};

}  // namespace detail

inline detail::LogLine log_debug() { return detail::LogLine(LogLevel::Debug); }
inline detail::LogLine log_info() { return detail::LogLine(LogLevel::Info); }
inline detail::LogLine log_warn() { return detail::LogLine(LogLevel::Warn); }
inline detail::LogLine log_error() { return detail::LogLine(LogLevel::Error); }

}  // namespace esva
