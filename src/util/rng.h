// Deterministic, seedable random number generation.
//
// Simulation results in the paper are averaged over 5 random runs; exact
// reproducibility across machines matters more than cryptographic quality, so
// we implement xoshiro256** (public-domain algorithm by Blackman & Vigna)
// seeded through SplitMix64 instead of relying on implementation-defined
// std::default_random_engine behaviour. Distribution sampling (uniform,
// exponential, Poisson-process gaps) is implemented here as well so that a
// given seed yields the same workload on every platform.

#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace esva {

/// SplitMix64: used to expand a single 64-bit seed into xoshiro state.
/// Also usable standalone as a tiny counter-based generator.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next();

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast 64-bit PRNG with 256-bit state.
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double next_double();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform_double(double lo, double hi);

  /// Exponential variate with the given mean (mean = 1/rate). Requires
  /// mean > 0. This is the paper's VM-duration distribution (§IV-B1).
  double exponential(double mean);

  /// Bernoulli trial with success probability p in [0, 1].
  bool bernoulli(double p);

  /// Uniformly selects an index in [0, n). Requires n > 0.
  std::size_t index(std::size_t n);

  /// Fisher–Yates shuffle (FFPS shuffles the server list once, §IV-A).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = index(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulation run
  /// its own stream while keeping the experiment seed stable.
  Rng split();

  /// Raw 256-bit xoshiro state — the snapshot/restore hook the serve daemon
  /// uses so a recovered engine continues the exact random sequence
  /// (src/serve/snapshot.h).
  std::array<std::uint64_t, 4> state() const { return s_; }

  /// Restores a state captured by state(). Throws std::invalid_argument on
  /// the all-zero state (xoshiro's fixed point, which state() never yields).
  void set_state(const std::array<std::uint64_t, 4>& s);

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace esva
