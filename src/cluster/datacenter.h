// Datacenter construction: a concrete (non-homogeneous) server fleet drawn
// from the Table II catalog.

#pragma once

#include <vector>

#include "cluster/catalog.h"
#include "cluster/server_spec.h"
#include "util/rng.h"

namespace esva {

/// Builds `count` servers sampled uniformly at random from `types`
/// (the paper uses "all types of servers" or "types 1-3 of servers"), all
/// with the same transition time. Ids are 0..count-1.
std::vector<ServerSpec> make_random_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_time, Rng& rng);

/// Like above, but each server's transition time is drawn uniformly from
/// [transition_lo, transition_hi] — the paper's §IV-B3 says fleet transition
/// times "range from 30 s to 3 min", i.e. are heterogeneous.
std::vector<ServerSpec> make_random_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_lo,
                                          double transition_hi, Rng& rng);

/// Deterministic synthetic scale-out for large-fleet benchmarks: `count`
/// servers cycling round-robin through `types` (server i gets
/// types[i % types.size()]), all with the same transition time. No RNG and
/// no per-row enumeration — the same count always yields the same fleet, on
/// any host, which is what the sharded fleet bench's identity gates compare
/// against (bench/perf_allocators.cpp, bench/ablation_sharding.cpp). Ids are
/// 0..count-1.
std::vector<ServerSpec> make_scaled_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_time);

/// Builds a fleet with an explicit per-type count: counts[k] servers of
/// types[k]. Ids are assigned in catalog order.
std::vector<ServerSpec> make_fleet_by_counts(
    const std::vector<ServerType>& types, const std::vector<int>& counts,
    double transition_time);

/// Aggregate capacity of a fleet.
Resources total_capacity(const std::vector<ServerSpec>& servers);

}  // namespace esva
