#include "cluster/datacenter.h"

#include <cassert>

namespace esva {

std::vector<ServerSpec> make_random_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_time, Rng& rng) {
  assert(count >= 0 && !types.empty());
  std::vector<ServerSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const ServerType& type = types[rng.index(types.size())];
    fleet.push_back(make_server(type, i, transition_time));
  }
  return fleet;
}

std::vector<ServerSpec> make_random_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_lo,
                                          double transition_hi, Rng& rng) {
  assert(count >= 0 && !types.empty());
  assert(0 <= transition_lo && transition_lo <= transition_hi);
  std::vector<ServerSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const ServerType& type = types[rng.index(types.size())];
    fleet.push_back(make_server(
        type, i, rng.uniform_double(transition_lo, transition_hi)));
  }
  return fleet;
}

std::vector<ServerSpec> make_scaled_fleet(int count,
                                          const std::vector<ServerType>& types,
                                          double transition_time) {
  assert(count >= 0 && !types.empty());
  std::vector<ServerSpec> fleet;
  fleet.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const ServerType& type =
        types[static_cast<std::size_t>(i) % types.size()];
    fleet.push_back(make_server(type, i, transition_time));
  }
  return fleet;
}

std::vector<ServerSpec> make_fleet_by_counts(
    const std::vector<ServerType>& types, const std::vector<int>& counts,
    double transition_time) {
  assert(types.size() == counts.size());
  std::vector<ServerSpec> fleet;
  ServerId next_id = 0;
  for (std::size_t k = 0; k < types.size(); ++k) {
    assert(counts[k] >= 0);
    for (int i = 0; i < counts[k]; ++i)
      fleet.push_back(make_server(types[k], next_id++, transition_time));
  }
  return fleet;
}

Resources total_capacity(const std::vector<ServerSpec>& servers) {
  Resources total;
  for (const ServerSpec& s : servers) total += s.capacity;
  return total;
}

}  // namespace esva
