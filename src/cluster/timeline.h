// Per-server occupancy over the planning horizon.
//
// A ServerTimeline answers the two questions every allocator in this library
// asks, both in O(log T):
//   * feasibility — "does VM j fit on this server throughout [t^s, t^e]?"
//     (paper §III: "a subset of servers having sufficient spare resources
//     throughout its time duration"), via range-add/range-max segment trees
//     per resource dimension;
//   * structure — "what are the busy segments?" (Fig. 1), via a merged
//     IntervalSet, which the cost model turns into energy (Eq. 17).
//
// Most feasibility probes never reach the trees: the trees' O(1) window-wide
// usage envelope (max_all / min_all) lets quick_fit() accept a candidate
// whose demand fits under the window peak, or reject one whose demand
// exceeds the spare capacity of even the emptiest unit, before any O(log T)
// descent (docs/PERFORMANCE.md, "Batched feasibility kernel").
//
// Placements can be undone in LIFO order, which is what the exact
// branch-and-bound solver uses for backtracking.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "util/interval_set.h"
#include "util/segment_tree.h"
#include "util/types.h"

namespace esva {

/// Why a feasibility probe rejected a VM (observability vocabulary; the trace
/// layer serializes these verbatim).
enum class FitReject {
  None,     ///< the VM fits
  Horizon,  ///< the VM's interval falls outside the base..horizon window
  Cpu,      ///< insufficient spare CPU at some time unit
  Mem,      ///< insufficient spare memory at some time unit
};

std::string to_string(FitReject reject);

/// Diagnosed feasibility result: can_fit() plus the first violated dimension
/// and the earliest violating time unit (0 when ok or horizon-rejected).
struct FitCheck {
  bool ok = false;
  FitReject reject = FitReject::None;
  Time at = 0;
};

/// O(1) feasibility triage verdict from the window-wide usage envelope.
enum class QuickFit : std::uint8_t {
  kFits,       ///< peak + demand fits: can_fit(vm) is certainly true
  kCannotFit,  ///< demand exceeds spare everywhere (or window): certainly false
  kUnknown,    ///< undecided; a tree query is required
};

class ServerTimeline {
 public:
  /// A timeline for `spec` over times 1..horizon (inclusive).
  ServerTimeline(const ServerSpec& spec, Time horizon);

  /// A timeline over the window base..horizon (inclusive; empty when
  /// horizon == base - 1). Resource trees cover only the window, so memory
  /// is O(horizon - base); the rolling-horizon ClusterState
  /// (core/streaming.h) rebuilds timelines with an advanced base to keep
  /// state proportional to the active window. VMs starting before `base`
  /// do not fit.
  ServerTimeline(const ServerSpec& spec, Time base, Time horizon);

  const ServerSpec& spec() const { return spec_; }
  Time base() const { return base_; }
  Time horizon() const { return horizon_; }

  /// Resident window size in time units (the resource-tree footprint).
  Time window_units() const { return horizon_ - base_ + 1; }

  /// Mutation counter: bumped by every place() and undo(), never reused.
  /// Anything derived from this timeline's state (feasibility verdicts,
  /// incremental-cost deltas) stays valid exactly while the epoch is
  /// unchanged — the invariant behind the shape-keyed scan cache
  /// (core/candidate_scan.h).
  std::uint64_t epoch() const { return epoch_; }

  /// Raises the epoch to at least `floor`. A rebuilt timeline (rolling
  /// garbage collection) starts from the epoch of the timeline it replaces,
  /// so external caches keyed by epoch can never mistake the fresh state
  /// for a stale one.
  void inherit_epoch(std::uint64_t floor);

  /// Inserts a raw busy interval without reserving resources. Used when
  /// rebuilding a garbage-collected timeline: a unit sentinel at the latest
  /// retired busy endpoint preserves every future structure-cost delta
  /// (core/streaming.h explains why). May lie before `base`; the busy
  /// structure is time-indexed, not window-indexed.
  void seed_busy(Time lo, Time hi);

  /// True iff the VM's demand fits within spare capacity at every time unit
  /// of its interval. VMs whose interval falls outside the base..horizon
  /// window do not fit.
  bool can_fit(const VmSpec& vm) const;

  /// O(1) triage: decides can_fit(vm) from the window-wide usage envelope
  /// when possible, without touching the trees. kFits / kCannotFit agree
  /// with can_fit exactly (same floating-point comparisons); kUnknown means
  /// the caller must fall back to can_fit. The scan cache skips its
  /// bookkeeping entirely for probes decided here.
  QuickFit quick_fit(const VmSpec& vm) const;

  /// can_fit with a diagnosis: which dimension failed first, and where.
  /// Agrees with can_fit on `ok` for every VM (tested); rejection is
  /// localized by tree descent (RangeAddMaxTree::first_above) in O(log^2 T)
  /// rather than a per-unit scan.
  FitCheck check_fit(const VmSpec& vm) const;

  /// Everything needed to undo a placement.
  struct PlaceRecord {
    VmId vm = 0;
    IntervalSet::InsertDelta busy_delta;
  };

  /// Reserves the VM's resources and extends the busy structure. The caller
  /// must have checked can_fit (asserted in debug builds).
  PlaceRecord place(const VmSpec& vm);

  /// Reverts a placement. Records must be undone in reverse order of their
  /// place() calls (LIFO); this is asserted where cheap.
  void undo(const PlaceRecord& record, const VmSpec& vm);

  /// Merged busy segments (Fig. 1's busy-segments, in increasing order).
  const IntervalSet& busy() const { return busy_; }

  /// VM ids currently placed here, in placement order.
  const std::vector<VmId>& vms() const { return vms_; }

  /// Peak CPU / memory usage over an inclusive time range (0 if empty range
  /// semantics never arise: requires base <= lo <= hi <= horizon).
  double max_cpu_usage(Time lo, Time hi) const;
  double max_mem_usage(Time lo, Time hi) const;

  /// Usage at a single time unit.
  double cpu_usage_at(Time t) const { return max_cpu_usage(t, t); }
  double mem_usage_at(Time t) const { return max_mem_usage(t, t); }

  /// Window-wide usage envelope, O(1): the peak and floor of usage across
  /// the whole base..horizon window (0 for an empty window).
  double peak_cpu_usage() const { return cpu_.max_all(); }
  double peak_mem_usage() const { return mem_.max_all(); }
  double floor_cpu_usage() const { return cpu_.min_all(); }
  double floor_mem_usage() const { return mem_.min_all(); }

  /// Total busy time units.
  Time busy_time() const { return busy_.total_length(); }

 private:
  std::size_t index_of(Time t) const {
    return static_cast<std::size_t>(t - base_);
  }

  ServerSpec spec_;
  Time base_;
  Time horizon_;
  RangeAddMaxTree cpu_;
  RangeAddMaxTree mem_;
  IntervalSet busy_;
  std::vector<VmId> vms_;
  std::uint64_t epoch_ = 0;
};

/// Builds one timeline per server over the instance horizon.
std::vector<ServerTimeline> make_timelines(
    const std::vector<ServerSpec>& servers, Time horizon);

}  // namespace esva
