#include "cluster/resources.h"

#include <cstdio>

namespace esva {

std::string Resources::to_string() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "(%.2f CU, %.2f GiB)", cpu, mem);
  return buf;
}

}  // namespace esva
