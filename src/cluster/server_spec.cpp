#include "cluster/server_spec.h"

#include <cstdio>

namespace esva {

std::string describe(const ServerSpec& spec) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s #%d: %s, %.1fW idle / %.1fW peak, alpha=%.1f",
                spec.type_name.c_str(), spec.id,
                spec.capacity.to_string().c_str(), spec.p_idle, spec.p_peak,
                spec.transition_cost());
  return buf;
}

}  // namespace esva
