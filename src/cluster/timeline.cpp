#include "cluster/timeline.h"

#include <algorithm>
#include <cassert>

namespace esva {

ServerTimeline::ServerTimeline(const ServerSpec& spec, Time horizon)
    : ServerTimeline(spec, /*base=*/1, horizon) {}

ServerTimeline::ServerTimeline(const ServerSpec& spec, Time base, Time horizon)
    : spec_(spec),
      base_(base),
      horizon_(horizon),
      cpu_(static_cast<std::size_t>(horizon - base + 1)),
      mem_(static_cast<std::size_t>(horizon - base + 1)) {
  assert(base >= 1);
  assert(horizon >= base - 1);
}

void ServerTimeline::inherit_epoch(std::uint64_t floor) {
  epoch_ = std::max(epoch_, floor);
}

void ServerTimeline::seed_busy(Time lo, Time hi) {
  assert(lo >= 1 && lo <= hi);
  ++epoch_;
  busy_.insert(lo, hi);
}

bool ServerTimeline::can_fit(const VmSpec& vm) const {
  assert(vm.valid());
  if (vm.start < base_ || vm.end > horizon_) return false;
  const std::size_t lo = index_of(vm.start);
  const std::size_t hi = index_of(vm.end);
  // Fast path: peak demand over the whole window (exact for stable VMs,
  // a sound quick-reject for profiled ones).
  if (cpu_.max(lo, hi) + vm.demand.cpu <= spec_.capacity.cpu + kEps &&
      mem_.max(lo, hi) + vm.demand.mem <= spec_.capacity.mem + kEps)
    return true;
  if (!vm.has_profile()) return false;
  // Profiled VM: check each time unit against its own demand R_jt.
  for (Time t = vm.start; t <= vm.end; ++t) {
    const Resources r = vm.demand_at(t);
    const std::size_t k = index_of(t);
    if (cpu_.max(k, k) + r.cpu > spec_.capacity.cpu + kEps) return false;
    if (mem_.max(k, k) + r.mem > spec_.capacity.mem + kEps) return false;
  }
  return true;
}

FitCheck ServerTimeline::check_fit(const VmSpec& vm) const {
  assert(vm.valid());
  FitCheck check;
  if (vm.start < base_ || vm.end > horizon_) {
    check.reject = FitReject::Horizon;
    return check;
  }
  // Per-time-unit scan. For stable VMs this is equivalent to can_fit's
  // peak-over-window test (the demand is constant); for profiled VMs it is
  // exactly can_fit's fallback loop. Either way `ok` matches can_fit.
  for (Time t = vm.start; t <= vm.end; ++t) {
    const Resources r = vm.demand_at(t);
    const std::size_t k = index_of(t);
    if (cpu_.max(k, k) + r.cpu > spec_.capacity.cpu + kEps) {
      check.reject = FitReject::Cpu;
      check.at = t;
      return check;
    }
    if (mem_.max(k, k) + r.mem > spec_.capacity.mem + kEps) {
      check.reject = FitReject::Mem;
      check.at = t;
      return check;
    }
  }
  check.ok = true;
  return check;
}

std::string to_string(FitReject reject) {
  switch (reject) {
    case FitReject::None: return "none";
    case FitReject::Horizon: return "horizon";
    case FitReject::Cpu: return "cpu";
    case FitReject::Mem: return "mem";
  }
  return "?";
}

namespace {

/// Applies (or reverts, with sign = -1) a VM's resource footprint. `base` is
/// the timeline's window base (tree index 0).
void apply_demand(RangeAddMaxTree& cpu, RangeAddMaxTree& mem,
                  const VmSpec& vm, Time base, double sign) {
  const auto index_of = [&](Time t) {
    return static_cast<std::size_t>(t - base);
  };
  if (!vm.has_profile()) {
    cpu.add(index_of(vm.start), index_of(vm.end), sign * vm.demand.cpu);
    mem.add(index_of(vm.start), index_of(vm.end), sign * vm.demand.mem);
    return;
  }
  for (Time t = vm.start; t <= vm.end; ++t) {
    const Resources r = vm.demand_at(t);
    if (r.cpu != 0.0) cpu.add(index_of(t), index_of(t), sign * r.cpu);
    if (r.mem != 0.0) mem.add(index_of(t), index_of(t), sign * r.mem);
  }
}

}  // namespace

ServerTimeline::PlaceRecord ServerTimeline::place(const VmSpec& vm) {
  assert(can_fit(vm));
  ++epoch_;
  apply_demand(cpu_, mem_, vm, base_, +1.0);
  PlaceRecord record;
  record.vm = vm.id;
  record.busy_delta = busy_.insert(vm.start, vm.end);
  vms_.push_back(vm.id);
  return record;
}

void ServerTimeline::undo(const PlaceRecord& record, const VmSpec& vm) {
  assert(!vms_.empty() && vms_.back() == record.vm &&
         "placements must be undone in LIFO order");
  assert(vm.id == record.vm);
  ++epoch_;
  vms_.pop_back();
  apply_demand(cpu_, mem_, vm, base_, -1.0);
  // Restore the busy structure: remove the merged interval, re-add whatever
  // it absorbed.
  const Interval& merged = record.busy_delta.merged;
  busy_.erase_covered(merged.lo, merged.hi);
  for (const Interval& iv : record.busy_delta.absorbed) busy_.insert(iv.lo, iv.hi);
}

double ServerTimeline::max_cpu_usage(Time lo, Time hi) const {
  assert(base_ <= lo && lo <= hi && hi <= horizon_);
  return cpu_.max(index_of(lo), index_of(hi));
}

double ServerTimeline::max_mem_usage(Time lo, Time hi) const {
  assert(base_ <= lo && lo <= hi && hi <= horizon_);
  return mem_.max(index_of(lo), index_of(hi));
}

std::vector<ServerTimeline> make_timelines(
    const std::vector<ServerSpec>& servers, Time horizon) {
  std::vector<ServerTimeline> timelines;
  timelines.reserve(servers.size());
  for (const ServerSpec& spec : servers) timelines.emplace_back(spec, horizon);
  return timelines;
}

}  // namespace esva
