#include "cluster/timeline.h"

#include <algorithm>
#include <cassert>

namespace esva {

namespace {

/// Last time unit (<= vm.end) of the run of consecutive units whose profiled
/// demand equals `r`, starting at `t`. Stable VMs are a single run; profiled
/// VMs typically hold each demand level for many units (bursts, diurnal
/// phases), so batching runs turns O(duration) tree calls into O(#runs).
Time run_end_of(const VmSpec& vm, Time t, const Resources& r) {
  Time e = t;
  while (e < vm.end) {
    const Resources next = vm.demand_at(e + 1);
    if (next.cpu != r.cpu || next.mem != r.mem) break;
    ++e;
  }
  return e;
}

}  // namespace

ServerTimeline::ServerTimeline(const ServerSpec& spec, Time horizon)
    : ServerTimeline(spec, /*base=*/1, horizon) {}

ServerTimeline::ServerTimeline(const ServerSpec& spec, Time base, Time horizon)
    : spec_(spec),
      base_(base),
      horizon_(horizon),
      cpu_(static_cast<std::size_t>(horizon - base + 1)),
      mem_(static_cast<std::size_t>(horizon - base + 1)) {
  assert(base >= 1);
  assert(horizon >= base - 1);
}

void ServerTimeline::inherit_epoch(std::uint64_t floor) {
  epoch_ = std::max(epoch_, floor);
}

void ServerTimeline::seed_busy(Time lo, Time hi) {
  assert(lo >= 1 && lo <= hi);
  ++epoch_;
  busy_.insert(lo, hi);
}

QuickFit ServerTimeline::quick_fit(const VmSpec& vm) const {
  assert(vm.valid());
  if (vm.start < base_ || vm.end > horizon_) return QuickFit::kCannotFit;
  // Quick-accept: peak usage anywhere in the window plus peak demand fits,
  // so every unit of the VM's interval fits a fortiori. Exact for profiled
  // VMs too (vm.demand is their peak).
  const bool cpu_free =
      cpu_.max_all() + vm.demand.cpu <= spec_.capacity.cpu + kEps;
  const bool mem_free =
      mem_.max_all() + vm.demand.mem <= spec_.capacity.mem + kEps;
  if (cpu_free && mem_free) return QuickFit::kFits;
  // Quick-reject: even the emptiest unit of the window lacks spare capacity
  // for the constant demand, so every unit of the interval violates. Unsound
  // for profiled VMs (their per-unit demand dips below the peak), so only
  // stable VMs take it.
  if (!vm.has_profile()) {
    if (!cpu_free && cpu_.min_all() + vm.demand.cpu > spec_.capacity.cpu + kEps)
      return QuickFit::kCannotFit;
    if (!mem_free && mem_.min_all() + vm.demand.mem > spec_.capacity.mem + kEps)
      return QuickFit::kCannotFit;
  }
  return QuickFit::kUnknown;
}

bool ServerTimeline::can_fit(const VmSpec& vm) const {
  switch (quick_fit(vm)) {
    case QuickFit::kFits: return true;
    case QuickFit::kCannotFit: return false;
    case QuickFit::kUnknown: break;
  }
  // The envelope was inconclusive; query the trees over the VM's interval.
  // Per-dimension window-free verdicts are recomputed here (two O(1)
  // comparisons) so a dimension that already fit under the window peak skips
  // its O(log T) query.
  const bool cpu_free =
      cpu_.max_all() + vm.demand.cpu <= spec_.capacity.cpu + kEps;
  const bool mem_free =
      mem_.max_all() + vm.demand.mem <= spec_.capacity.mem + kEps;
  const std::size_t lo = index_of(vm.start);
  const std::size_t hi = index_of(vm.end);
  const bool peak_fits =
      (cpu_free || cpu_.max(lo, hi) + vm.demand.cpu <= spec_.capacity.cpu + kEps) &&
      (mem_free || mem_.max(lo, hi) + vm.demand.mem <= spec_.capacity.mem + kEps);
  if (peak_fits) return true;
  if (!vm.has_profile()) return false;
  // Profiled VM: check each equal-demand run against its own demand R_jt.
  for (Time t = vm.start; t <= vm.end;) {
    const Resources r = vm.demand_at(t);
    const Time e = run_end_of(vm, t, r);
    const std::size_t k_lo = index_of(t);
    const std::size_t k_hi = index_of(e);
    if (cpu_.max(k_lo, k_hi) + r.cpu > spec_.capacity.cpu + kEps) return false;
    if (mem_.max(k_lo, k_hi) + r.mem > spec_.capacity.mem + kEps) return false;
    t = e + 1;
  }
  return true;
}

FitCheck ServerTimeline::check_fit(const VmSpec& vm) const {
  assert(vm.valid());
  constexpr std::size_t npos = RangeAddMaxTree::npos;
  FitCheck check;
  if (vm.start < base_ || vm.end > horizon_) {
    check.reject = FitReject::Horizon;
    return check;
  }
  // Same O(1) quick-accept as can_fit/quick_fit (identical comparisons).
  const bool cpu_free =
      cpu_.max_all() + vm.demand.cpu <= spec_.capacity.cpu + kEps;
  const bool mem_free =
      mem_.max_all() + vm.demand.mem <= spec_.capacity.mem + kEps;
  if (cpu_free && mem_free) {
    check.ok = true;
    return check;
  }
  const std::size_t lo = index_of(vm.start);
  const std::size_t hi = index_of(vm.end);
  const auto cpu_pred = [&](double v) {
    return v + vm.demand.cpu > spec_.capacity.cpu + kEps;
  };
  const auto mem_pred = [&](double v) {
    return v + vm.demand.mem > spec_.capacity.mem + kEps;
  };
  if (!vm.has_profile()) {
    // first_above == npos is bit-for-bit equivalent to the range-max fitting
    // (see segment_tree.h), so `ok` matches can_fit exactly; a non-npos
    // result localizes the earliest violating unit by tree descent.
    const std::size_t cpu_at =
        cpu_free ? npos : cpu_.first_above(lo, hi, cpu_pred);
    const std::size_t mem_at =
        mem_free ? npos : mem_.first_above(lo, hi, mem_pred);
    if (cpu_at == npos && mem_at == npos) {
      check.ok = true;
      return check;
    }
    // Earliest unit wins; CPU is diagnosed first on a tie (the historical
    // per-unit scan checked CPU before memory).
    if (cpu_at <= mem_at) {
      check.reject = FitReject::Cpu;
      check.at = base_ + static_cast<Time>(cpu_at);
    } else {
      check.reject = FitReject::Mem;
      check.at = base_ + static_cast<Time>(mem_at);
    }
    return check;
  }
  // Profiled VM: mirror can_fit's peak-demand accept, then localize within
  // equal-demand runs.
  const bool peak_fits =
      (cpu_free || cpu_.max(lo, hi) + vm.demand.cpu <= spec_.capacity.cpu + kEps) &&
      (mem_free || mem_.max(lo, hi) + vm.demand.mem <= spec_.capacity.mem + kEps);
  if (peak_fits) {
    check.ok = true;
    return check;
  }
  for (Time t = vm.start; t <= vm.end;) {
    const Resources r = vm.demand_at(t);
    const Time e = run_end_of(vm, t, r);
    const std::size_t k_lo = index_of(t);
    const std::size_t k_hi = index_of(e);
    const std::size_t cpu_at = cpu_.first_above(
        k_lo, k_hi,
        [&](double v) { return v + r.cpu > spec_.capacity.cpu + kEps; });
    const std::size_t mem_at = mem_.first_above(
        k_lo, k_hi,
        [&](double v) { return v + r.mem > spec_.capacity.mem + kEps; });
    if (cpu_at != npos || mem_at != npos) {
      if (cpu_at <= mem_at) {
        check.reject = FitReject::Cpu;
        check.at = base_ + static_cast<Time>(cpu_at);
      } else {
        check.reject = FitReject::Mem;
        check.at = base_ + static_cast<Time>(mem_at);
      }
      return check;
    }
    t = e + 1;
  }
  check.ok = true;
  return check;
}

std::string to_string(FitReject reject) {
  switch (reject) {
    case FitReject::None: return "none";
    case FitReject::Horizon: return "horizon";
    case FitReject::Cpu: return "cpu";
    case FitReject::Mem: return "mem";
  }
  return "?";
}

namespace {

/// Applies (or reverts, with sign = -1) a VM's resource footprint. `base` is
/// the timeline's window base (tree index 0). Profiled VMs are applied one
/// equal-demand run at a time (range ops), not one unit at a time.
void apply_demand(RangeAddMaxTree& cpu, RangeAddMaxTree& mem,
                  const VmSpec& vm, Time base, double sign) {
  const auto index_of = [&](Time t) {
    return static_cast<std::size_t>(t - base);
  };
  if (!vm.has_profile()) {
    cpu.add(index_of(vm.start), index_of(vm.end), sign * vm.demand.cpu);
    mem.add(index_of(vm.start), index_of(vm.end), sign * vm.demand.mem);
    return;
  }
  for (Time t = vm.start; t <= vm.end;) {
    const Resources r = vm.demand_at(t);
    const Time e = run_end_of(vm, t, r);
    if (r.cpu != 0.0) cpu.add(index_of(t), index_of(e), sign * r.cpu);
    if (r.mem != 0.0) mem.add(index_of(t), index_of(e), sign * r.mem);
    t = e + 1;
  }
}

}  // namespace

ServerTimeline::PlaceRecord ServerTimeline::place(const VmSpec& vm) {
  assert(can_fit(vm));
  ++epoch_;
  apply_demand(cpu_, mem_, vm, base_, +1.0);
  PlaceRecord record;
  record.vm = vm.id;
  record.busy_delta = busy_.insert(vm.start, vm.end);
  vms_.push_back(vm.id);
  return record;
}

void ServerTimeline::undo(const PlaceRecord& record, const VmSpec& vm) {
  assert(!vms_.empty() && vms_.back() == record.vm &&
         "placements must be undone in LIFO order");
  assert(vm.id == record.vm);
  ++epoch_;
  vms_.pop_back();
  apply_demand(cpu_, mem_, vm, base_, -1.0);
  // Restore the busy structure: remove the merged interval, re-add whatever
  // it absorbed.
  const Interval& merged = record.busy_delta.merged;
  busy_.erase_covered(merged.lo, merged.hi);
  for (const Interval& iv : record.busy_delta.absorbed) busy_.insert(iv.lo, iv.hi);
}

double ServerTimeline::max_cpu_usage(Time lo, Time hi) const {
  assert(base_ <= lo && lo <= hi && hi <= horizon_);
  return cpu_.max(index_of(lo), index_of(hi));
}

double ServerTimeline::max_mem_usage(Time lo, Time hi) const {
  assert(base_ <= lo && lo <= hi && hi <= horizon_);
  return mem_.max(index_of(lo), index_of(hi));
}

std::vector<ServerTimeline> make_timelines(
    const std::vector<ServerSpec>& servers, Time horizon) {
  std::vector<ServerTimeline> timelines;
  timelines.reserve(servers.size());
  for (const ServerSpec& spec : servers) timelines.emplace_back(spec, horizon);
  return timelines;
}

}  // namespace esva
