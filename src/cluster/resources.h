// Two-dimensional resource vectors (CPU compute units, memory GiB).
//
// The paper restricts demands/capacities to CPU and memory (§I: "as for
// resource demand of VMs and capacity of servers, we only focus on CPU and
// memory" — storage is shared via the datacenter SAN).

#pragma once

#include <string>

#include "util/types.h"

namespace esva {

struct Resources {
  CpuUnits cpu = 0.0;
  GiB mem = 0.0;

  friend Resources operator+(Resources a, Resources b) {
    return {a.cpu + b.cpu, a.mem + b.mem};
  }
  friend Resources operator-(Resources a, Resources b) {
    return {a.cpu - b.cpu, a.mem - b.mem};
  }
  Resources& operator+=(Resources other) {
    cpu += other.cpu;
    mem += other.mem;
    return *this;
  }
  Resources& operator-=(Resources other) {
    cpu -= other.cpu;
    mem -= other.mem;
    return *this;
  }
  friend Resources operator*(Resources a, double k) {
    return {a.cpu * k, a.mem * k};
  }

  friend bool operator==(const Resources&, const Resources&) = default;

  /// Component-wise "fits within" with a small tolerance: true iff this
  /// demand can be served from `capacity`.
  bool fits_within(Resources capacity) const {
    return cpu <= capacity.cpu + kEps && mem <= capacity.mem + kEps;
  }

  /// True iff both components are >= 0 (within tolerance).
  bool non_negative() const { return cpu >= -kEps && mem >= -kEps; }

  std::string to_string() const;
};

}  // namespace esva
