#include "cluster/catalog.h"

#include <cassert>

namespace esva {

const std::vector<VmType>& all_vm_types() {
  // Table I — CPU in EC2 compute units, memory in GiB. Values are the 2013
  // EC2 m1/m2/c1 families (see DESIGN.md §5 for the reconstruction notes;
  // the surviving "2 7" row in the OCR confirms c1.xlarge = 20 CU / 7 GiB
  // and "15" confirms m1.xlarge memory).
  static const std::vector<VmType> kTypes = {
      {"m1.small", "standard", {1.0, 1.7}},
      {"m1.medium", "standard", {2.0, 3.75}},
      {"m1.large", "standard", {4.0, 7.5}},
      {"m1.xlarge", "standard", {8.0, 15.0}},
      {"m2.xlarge", "memory-intensive", {6.5, 17.1}},
      {"m2.2xlarge", "memory-intensive", {13.0, 34.2}},
      {"m2.4xlarge", "memory-intensive", {26.0, 68.4}},
      {"c1.medium", "cpu-intensive", {5.0, 1.7}},
      {"c1.xlarge", "cpu-intensive", {20.0, 7.0}},
  };
  return kTypes;
}

namespace {

std::vector<VmType> family_subset(const std::string& family) {
  std::vector<VmType> result;
  for (const VmType& t : all_vm_types())
    if (t.family == family) result.push_back(t);
  return result;
}

}  // namespace

std::vector<VmType> standard_vm_types() { return family_subset("standard"); }

std::vector<VmType> memory_intensive_vm_types() {
  return family_subset("memory-intensive");
}

std::vector<VmType> cpu_intensive_vm_types() {
  return family_subset("cpu-intensive");
}

const std::vector<ServerType>& all_server_types() {
  // Table II — five hypothetical servers. Anchors from the surviving text:
  // a 16 CU server corresponds to an HP ProLiant BL460c G6 blade; idle power
  // is 40–50% of peak; absolute power grows with capacity. Watts per compute
  // unit grow gently with size (small blades are the most efficient
  // hardware), which is required by the paper's own §III narrative: "The
  // servers with small resource capacity usually consume lower power than
  // those with large resource capacity. Our algorithm consolidates VMs on
  // servers with small resource capacity." (2013-era blades did beat
  // scale-up boxes on performance per watt; see the cited Dell whitepaper.)
  static const std::vector<ServerType> kTypes = {
      {"server-type-1", {10.0, 24.0}, 64.0, 128.0},   // idle = 50% of peak
      {"server-type-2", {16.0, 32.0}, 105.0, 210.0},  // 50% (BL460c anchor)
      {"server-type-3", {22.0, 48.0}, 150.0, 305.0},  // 49%
      {"server-type-4", {30.0, 72.0}, 212.0, 440.0},  // 48%
      {"server-type-5", {40.0, 96.0}, 292.0, 610.0},  // 48%
  };
  return kTypes;
}

std::vector<ServerType> server_types_1_to(int k) {
  assert(k >= 1 && k <= static_cast<int>(all_server_types().size()));
  const auto& all = all_server_types();
  return std::vector<ServerType>(all.begin(), all.begin() + k);
}

ServerSpec make_server(const ServerType& type, ServerId id,
                       double transition_time) {
  ServerSpec spec;
  spec.id = id;
  spec.type_name = type.name;
  spec.capacity = type.capacity;
  spec.p_idle = type.p_idle;
  spec.p_peak = type.p_peak;
  spec.transition_time = transition_time;
  assert(spec.valid());
  return spec;
}

}  // namespace esva
