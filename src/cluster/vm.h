// Virtual machine requests.
//
// A VM v_j is a resource demand plus a closed time interval [t^s_j, t^e_j]
// over which the demand must be reserved on exactly one server (paper §II).
// Demands are stable over the lifetime (§IV-B1: "The resource demands of each
// VM is stable"), so a single Resources value suffices.

#pragma once

#include <string>
#include <vector>

#include "cluster/resources.h"
#include "util/types.h"

namespace esva {

struct VmSpec {
  VmId id = 0;
  /// Human-readable type name ("m1.small", ...); informational only.
  std::string type_name;
  /// Peak demand over the lifetime. For stable VMs (the paper's evaluation,
  /// §IV-B1) this IS the demand at every time unit; for profiled VMs it is
  /// the component-wise maximum of `profile` (maintained by set_profile).
  Resources demand;
  /// Inclusive activity interval; 1 <= start <= end.
  Time start = 1;
  Time end = 1;
  /// Optional per-time-unit demand R_jt (the paper's Eqs. 3/9/10 general
  /// form): empty = stable demand; otherwise profile[k] is the demand at
  /// time start + k and profile.size() == duration(). Use set_profile() to
  /// keep `demand` consistent.
  std::vector<Resources> profile;

  /// Number of occupied time units: end - start + 1.
  Time duration() const { return end - start + 1; }

  bool has_profile() const { return !profile.empty(); }

  /// Demand at time unit t; requires start <= t <= end.
  Resources demand_at(Time t) const {
    return has_profile() ? profile[static_cast<std::size_t>(t - start)]
                         : demand;
  }

  /// Σ_t R^CPU_jt over the lifetime (the sum in Eq. 3).
  double total_cpu() const;

  /// Installs a per-unit profile (size must equal duration()) and sets
  /// `demand` to the component-wise peak.
  void set_profile(std::vector<Resources> new_profile);

  /// Structural validity: the interval must be well-formed, demands
  /// non-negative, and — if profiled — the profile sized to the duration
  /// with `demand` equal to its component-wise peak.
  bool valid() const;
};

/// Largest finishing time across VMs (the planning horizon T); 0 if empty.
Time horizon_of(const std::vector<VmSpec>& vms);

/// Indices of `vms` sorted by (start, end, id) — the paper's allocation order
/// ("allocates VMs in the increasing order of their starting time", §III).
std::vector<std::size_t> order_by_start(const std::vector<VmSpec>& vms);

}  // namespace esva
