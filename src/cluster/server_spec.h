// Physical server descriptions.
//
// Servers are non-homogeneous (a core premise of the paper, §I): each has its
// own capacities, affine power parameters and transition cost. The transition
// cost is modeled per §IV-B3: "During the whole time when the server switches
// on, power is consumed at peak rate. Thus, the server's transition cost is
// P_peak times of transition time."

#pragma once

#include <string>

#include "cluster/resources.h"
#include "util/types.h"

namespace esva {

struct ServerSpec {
  ServerId id = 0;
  /// Catalog type name ("server-type-1", ...); informational only.
  std::string type_name;
  Resources capacity;
  /// Power when active and idle (u = 0), watts.
  Watts p_idle = 0.0;
  /// Power at full CPU load (u = 1), watts.
  Watts p_peak = 0.0;
  /// Time to switch power-saving -> active, in time units (minutes). May be
  /// fractional (0.5 = 30 s).
  double transition_time = 1.0;

  /// Transition energy cost alpha_i = P_peak × transition time (§IV-B3).
  Energy transition_cost() const { return p_peak * transition_time; }

  /// P¹_i = (P_peak − P_idle) / C^CPU: power drawn by one CPU unit of load
  /// (Eq. 2). Requires capacity.cpu > 0.
  Watts unit_run_power() const {
    return (p_peak - p_idle) / capacity.cpu;
  }

  /// Affine power model P(u) = P_idle + (P_peak − P_idle)·u for CPU
  /// utilization u ∈ [0, 1] (Eq. 1).
  Watts power_at_load(double utilization) const {
    return p_idle + (p_peak - p_idle) * utilization;
  }

  bool valid() const {
    return capacity.cpu > 0 && capacity.mem > 0 && p_idle >= 0 &&
           p_peak >= p_idle && transition_time >= 0;
  }
};

/// One-line human description, e.g.
/// "server-type-1 #3: (16.00 CU, 32.00 GiB), 105.0W idle / 210.0W peak,
///  alpha=210.0".
std::string describe(const ServerSpec& spec);

}  // namespace esva
