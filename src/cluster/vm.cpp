#include "cluster/vm.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

namespace esva {

double VmSpec::total_cpu() const {
  if (!has_profile()) return demand.cpu * static_cast<double>(duration());
  double total = 0.0;
  for (const Resources& r : profile) total += r.cpu;
  return total;
}

void VmSpec::set_profile(std::vector<Resources> new_profile) {
  assert(static_cast<Time>(new_profile.size()) == duration());
  profile = std::move(new_profile);
  demand = Resources{};
  for (const Resources& r : profile) {
    demand.cpu = std::max(demand.cpu, r.cpu);
    demand.mem = std::max(demand.mem, r.mem);
  }
}

bool VmSpec::valid() const {
  if (start < 1 || end < start || !demand.non_negative()) return false;
  if (!has_profile()) return true;
  if (static_cast<Time>(profile.size()) != duration()) return false;
  Resources peak;
  for (const Resources& r : profile) {
    if (!r.non_negative()) return false;
    peak.cpu = std::max(peak.cpu, r.cpu);
    peak.mem = std::max(peak.mem, r.mem);
  }
  return std::abs(peak.cpu - demand.cpu) <= kEps &&
         std::abs(peak.mem - demand.mem) <= kEps;
}

Time horizon_of(const std::vector<VmSpec>& vms) {
  Time horizon = 0;
  for (const VmSpec& vm : vms) horizon = std::max(horizon, vm.end);
  return horizon;
}

std::vector<std::size_t> order_by_start(const std::vector<VmSpec>& vms) {
  std::vector<std::size_t> order(vms.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     if (vms[a].start != vms[b].start)
                       return vms[a].start < vms[b].start;
                     if (vms[a].end != vms[b].end) return vms[a].end < vms[b].end;
                     return vms[a].id < vms[b].id;
                   });
  return order;
}

}  // namespace esva
