// The paper's configuration tables.
//
// Table I (VM types) follows 2013-era Amazon EC2 instance types [paper ref
// 15]: four standard (m1.*), three memory-intensive (m2.*) and two
// CPU-intensive (c1.*) types. Table II defines five hypothetical server
// types whose idle power is 40–50% of peak (per the cited Barroso & Hölzle
// energy-proportionality argument) and whose power grows with capacity.
// The published text of the paper has OCR-damaged numerals; DESIGN.md §5
// records how each value was reconstructed.

#pragma once

#include <string>
#include <vector>

#include "cluster/resources.h"
#include "cluster/server_spec.h"

namespace esva {

/// One row of Table I.
struct VmType {
  std::string name;
  /// "standard", "memory-intensive" or "cpu-intensive".
  std::string family;
  Resources demand;
};

/// One row of Table II (without id / transition time, which are assigned when
/// the datacenter is instantiated).
struct ServerType {
  std::string name;
  Resources capacity;
  Watts p_idle = 0.0;
  Watts p_peak = 0.0;
};

/// All nine VM types of Table I.
const std::vector<VmType>& all_vm_types();

/// The four standard types only (used by §IV-F / Figs. 7–9).
std::vector<VmType> standard_vm_types();

/// The memory-intensive / CPU-intensive subsets.
std::vector<VmType> memory_intensive_vm_types();
std::vector<VmType> cpu_intensive_vm_types();

/// All five server types of Table II, ordered by increasing capacity.
const std::vector<ServerType>& all_server_types();

/// Server types 1..k (1-based, k <= 5) — §IV-F allocates standard VMs on
/// "types 1-3 of servers".
std::vector<ServerType> server_types_1_to(int k);

/// Instantiates a concrete server from a catalog type.
ServerSpec make_server(const ServerType& type, ServerId id,
                       double transition_time);

}  // namespace esva
