#include "baselines/lowest_idle_power.h"

#include "cluster/timeline.h"
#include "core/candidate_scan.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

namespace {

struct LowestIdlePowerScore {
  double operator()(const ServerTimeline& timeline,
                    const VmSpec& /*vm*/) const {
    return timeline.spec().p_idle;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> LowestIdlePowerAllocator::make_policy()
    const {
  return make_scan_policy(name(), /*score_is_energy_delta=*/false,
                          LowestIdlePowerScore{}, options_.scan, obs_);
}

Allocation LowestIdlePowerAllocator::allocate(const ProblemInstance& problem,
                                              Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, options_.order, rng, obs_,
                   options_.scan.shard_options());
}

}  // namespace esva
