#include "baselines/lowest_idle_power.h"

#include "cluster/timeline.h"
#include "util/types.h"

namespace esva {

Allocation LowestIdlePowerAllocator::allocate(const ProblemInstance& problem,
                                              Rng& /*rng*/) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best_server = kNoServer;
    Watts best_idle = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      if (timelines[i].spec().p_idle < best_idle) {
        best_idle = timelines[i].spec().p_idle;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

}  // namespace esva
