// Random Fit — places each VM on a uniformly random feasible server. The
// weakest reasonable baseline: it satisfies all constraints but ignores both
// consolidation and energy. Used as a lower anchor in comparisons.

#pragma once

#include "core/allocator.h"

namespace esva {

class RandomFitAllocator final : public Allocator {
 public:
  explicit RandomFitAllocator(VmOrder order = VmOrder::ByStartTime)
      : order_(order) {}

  std::string name() const override { return "random-fit"; }

  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  VmOrder order_;
};

}  // namespace esva
