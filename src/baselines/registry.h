// Name-based allocator factory, used by the examples and the experiment
// runner so policies can be selected from the command line.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/allocator.h"

namespace esva {

/// Known allocator names: the built-ins in canonical comparison order (the
/// paper's heuristic first, its baseline second), followed by any
/// dynamically registered extensions.
const std::vector<std::string>& allocator_names();

using AllocatorFactory = std::function<AllocatorPtr()>;

/// Registers (or replaces) a named allocator factory; the name then works
/// everywhere a built-in name does (make_allocator, ExperimentConfig).
/// Built-in names cannot be overridden.
void register_allocator(const std::string& name, AllocatorFactory factory);

/// Builds an allocator by name:
///   "min-incremental"  — the paper's heuristic (§III)
///   "ffps"             — First Fit Power Saving, one random server order for
///                        the whole run (§IV-A; see FfpsAllocator::Options)
///   "ffps-reshuffle"   — FFPS with a fresh random server order per VM
///   "ffps-noshuffle"   — plain First Fit in server-id order (deterministic)
///   "best-fit-cpu"     — tightest CPU fit
///   "random-fit"       — uniform random feasible server
///   "lowest-idle-power"— feasible server with the smallest P_idle
/// Throws std::invalid_argument on unknown names.
AllocatorPtr make_allocator(const std::string& name);

}  // namespace esva
