#include "baselines/ffps.h"

#include <numeric>

#include "cluster/timeline.h"

namespace esva {

Allocation FfpsAllocator::allocate(const ProblemInstance& problem, Rng& rng) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  // §IV-A: "servers are randomly sorted" — one shared order, optionally
  // re-drawn per VM (see Options::reshuffle_per_vm).
  std::vector<std::size_t> probe_order(problem.num_servers());
  std::iota(probe_order.begin(), probe_order.end(), std::size_t{0});
  if (options_.shuffle_servers) rng.shuffle(probe_order);

  for (std::size_t j : ordered_indices(problem, options_.order)) {
    const VmSpec& vm = problem.vms[j];
    if (options_.shuffle_servers && options_.reshuffle_per_vm)
      rng.shuffle(probe_order);
    for (std::size_t i : probe_order) {
      if (!timelines[i].can_fit(vm)) continue;
      timelines[i].place(vm);
      alloc.assignment[j] = static_cast<ServerId>(i);
      break;
    }
  }
  return alloc;
}

}  // namespace esva
