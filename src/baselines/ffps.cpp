#include "baselines/ffps.h"

#include <numeric>

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "core/streaming.h"
#include "obs/metrics.h"

namespace esva {

namespace {

/// First-fit over a (possibly shuffled) probe order, one request at a time.
/// §IV-A: "servers are randomly sorted" — one shared order drawn at begin(),
/// optionally re-drawn per VM (Options::reshuffle_per_vm).
class FfpsPolicy final : public PlacementPolicy {
 public:
  FfpsPolicy(std::string name, FfpsAllocator::Options options,
             const ObsContext& obs)
      : name_(std::move(name)), options_(options), obs_(obs) {}

  std::string name() const override { return name_; }

  void begin(const ClusterState& cluster, Rng& rng) override {
    probe_order_.resize(cluster.num_servers());
    std::iota(probe_order_.begin(), probe_order_.end(), std::size_t{0});
    if (options_.shuffle_servers) rng.shuffle(probe_order_);
  }

  PlacementDecision place_one(const ClusterState& cluster, const VmSpec& vm,
                              Rng& rng) override {
    const std::vector<ServerTimeline>& timelines = cluster.timelines();
    if (options_.shuffle_servers && options_.reshuffle_per_vm)
      rng.shuffle(probe_order_);
    const bool tracing = obs_.tracing();
    DecisionBuilder decision(obs_, name_, vm.id);
    PlacementDecision result;
    for (std::size_t i : probe_order_) {
      // First fit: the trace records only the servers actually probed —
      // rejections up to (and including) the server taken.
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections_;
          continue;
        }
        const Energy delta = incremental_cost(timelines[i], vm);
        decision.add_feasible(static_cast<ServerId>(i), delta);
        decision.commit(static_cast<ServerId>(i), delta);
        result.has_delta = true;
        result.delta = delta;
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections_;
        continue;
      }
      ++feasible_probes_;
      result.server = static_cast<ServerId>(i);
      return result;
    }
    decision.commit(kNoServer);
    return result;
  }

  void finish(std::size_t requests, std::size_t unallocated) override {
    record_allocation_metrics(obs_.metrics, name_, requests, feasible_probes_,
                              rejections_, unallocated);
  }

 private:
  std::string name_;
  FfpsAllocator::Options options_;
  ObsContext obs_;
  std::vector<std::size_t> probe_order_;
  std::int64_t feasible_probes_ = 0;
  std::int64_t rejections_ = 0;
};

}  // namespace

std::unique_ptr<PlacementPolicy> FfpsAllocator::make_policy() const {
  return std::make_unique<FfpsPolicy>(name(), options_, obs_);
}

Allocation FfpsAllocator::allocate(const ProblemInstance& problem, Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, options_.order, rng, obs_);
}

}  // namespace esva
