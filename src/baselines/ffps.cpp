#include "baselines/ffps.h"

#include <numeric>

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "obs/metrics.h"

namespace esva {

Allocation FfpsAllocator::allocate(const ProblemInstance& problem, Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const bool tracing = obs_.tracing();

  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  // §IV-A: "servers are randomly sorted" — one shared order, optionally
  // re-drawn per VM (see Options::reshuffle_per_vm).
  std::vector<std::size_t> probe_order(problem.num_servers());
  std::iota(probe_order.begin(), probe_order.end(), std::size_t{0});
  if (options_.shuffle_servers) rng.shuffle(probe_order);

  std::int64_t feasible_probes = 0;
  std::int64_t rejections = 0;
  for (std::size_t j : ordered_indices(problem, options_.order)) {
    const VmSpec& vm = problem.vms[j];
    if (options_.shuffle_servers && options_.reshuffle_per_vm)
      rng.shuffle(probe_order);
    DecisionBuilder decision(obs_, name(), vm.id);
    for (std::size_t i : probe_order) {
      // First fit: the trace records only the servers actually probed —
      // rejections up to (and including) the server taken.
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections;
          continue;
        }
        const Energy delta = incremental_cost(timelines[i], vm);
        decision.add_feasible(static_cast<ServerId>(i), delta);
        decision.commit(static_cast<ServerId>(i), delta);
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections;
        continue;
      }
      ++feasible_probes;
      timelines[i].place(vm);
      alloc.assignment[j] = static_cast<ServerId>(i);
      break;
    }
    if (alloc.assignment[j] == kNoServer) decision.commit(kNoServer);
  }

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            feasible_probes, rejections,
                            alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
