// Dot-product (vector bin packing) baseline — extension beyond the paper.
//
// Multi-dimensional packing heuristics pick the server whose remaining
// capacity vector best *aligns* with the request's demand vector (Panigrahy
// et al., "Heuristics for Vector Bin Packing"). This keeps CPU and memory
// consumption balanced so neither dimension strands the other — exactly the
// "unevenness" failure mode the paper attributes to FFPS in Fig. 3. It is
// energy-oblivious, so comparing it against MinIncrementalEnergy separates
// "pack well" from "pack where energy is cheap".

#pragma once

#include "core/allocator.h"

namespace esva {

class DotProductFitAllocator final : public Allocator {
 public:
  explicit DotProductFitAllocator(VmOrder order = VmOrder::ByStartTime)
      : order_(order) {}

  std::string name() const override { return "dot-product-fit"; }

  /// Deterministic: maximizes the cosine between the VM's demand and the
  /// server's peak remaining capacity over the VM's interval; ties toward
  /// the lower server id.
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

 private:
  VmOrder order_;
};

}  // namespace esva
