// Dot-product (vector bin packing) baseline — extension beyond the paper.
//
// Multi-dimensional packing heuristics pick the server whose remaining
// capacity vector best *aligns* with the request's demand vector (Panigrahy
// et al., "Heuristics for Vector Bin Packing"). This keeps CPU and memory
// consumption balanced so neither dimension strands the other — exactly the
// "unevenness" failure mode the paper attributes to FFPS in Fig. 3. It is
// energy-oblivious, so comparing it against MinIncrementalEnergy separates
// "pack well" from "pack where energy is cheap".

#pragma once

#include "core/allocator.h"

namespace esva {

class DotProductFitAllocator final : public Allocator {
 public:
  struct Options {
    VmOrder order = VmOrder::ByStartTime;
    /// Scan-engine knobs (core/candidate_scan.h); any setting yields the
    /// identical assignment.
    ScanConfig scan;
  };

  DotProductFitAllocator() = default;
  explicit DotProductFitAllocator(VmOrder order) { options_.order = order; }
  explicit DotProductFitAllocator(Options options) : options_(options) {}

  std::string name() const override { return "dot-product-fit"; }

  void set_scan_config(const ScanConfig& config) override {
    options_.scan = config;
  }

  /// Deterministic: maximizes the cosine between the VM's demand and the
  /// server's peak remaining capacity over the VM's interval; ties toward
  /// the lower server id.
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  Options options_;
};

}  // namespace esva
