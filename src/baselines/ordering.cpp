#include "baselines/ordering.h"

#include <stdexcept>

#include "baselines/ffps.h"
#include "core/min_incremental.h"

namespace esva {

AllocatorPtr make_with_order(const std::string& base_name, VmOrder order) {
  if (base_name == "min-incremental") {
    MinIncrementalAllocator::Options options;
    options.order = order;
    return std::make_unique<MinIncrementalAllocator>(options);
  }
  if (base_name == "ffps") {
    FfpsAllocator::Options options;
    options.order = order;
    return std::make_unique<FfpsAllocator>(options);
  }
  throw std::invalid_argument("make_with_order: unsupported allocator '" +
                              base_name + "'");
}

const std::vector<VmOrder>& all_vm_orders() {
  static const std::vector<VmOrder> kOrders = {
      VmOrder::ByStartTime, VmOrder::ByArrivalId, VmOrder::ByDurationDesc,
      VmOrder::ByCpuDesc};
  return kOrders;
}

}  // namespace esva
