// Best Fit (CPU) — classical bin-packing baseline adapted to the interval
// setting: allocate each VM to the feasible server whose peak CPU headroom
// over the VM's interval would be tightest after placement. Energy-oblivious;
// included to separate "consolidation effect" from "energy-awareness effect"
// in the ablation benches.

#pragma once

#include "core/allocator.h"

namespace esva {

class BestFitCpuAllocator final : public Allocator {
 public:
  explicit BestFitCpuAllocator(VmOrder order = VmOrder::ByStartTime)
      : order_(order) {}

  std::string name() const override { return "best-fit-cpu"; }

  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

 private:
  VmOrder order_;
};

}  // namespace esva
