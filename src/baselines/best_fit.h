// Best Fit (CPU) — classical bin-packing baseline adapted to the interval
// setting: allocate each VM to the feasible server whose peak CPU headroom
// over the VM's interval would be tightest after placement. Energy-oblivious;
// included to separate "consolidation effect" from "energy-awareness effect"
// in the ablation benches.

#pragma once

#include "core/allocator.h"

namespace esva {

class BestFitCpuAllocator final : public Allocator {
 public:
  struct Options {
    VmOrder order = VmOrder::ByStartTime;
    /// Scan-engine knobs (core/candidate_scan.h); any setting yields the
    /// identical assignment.
    ScanConfig scan;
  };

  BestFitCpuAllocator() = default;
  explicit BestFitCpuAllocator(VmOrder order) { options_.order = order; }
  explicit BestFitCpuAllocator(Options options) : options_(options) {}

  std::string name() const override { return "best-fit-cpu"; }

  void set_scan_config(const ScanConfig& config) override {
    options_.scan = config;
  }

  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  Options options_;
};

}  // namespace esva
