#include "baselines/random_fit.h"

#include "cluster/timeline.h"

namespace esva {

Allocation RandomFitAllocator::allocate(const ProblemInstance& problem,
                                        Rng& rng) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  std::vector<std::size_t> feasible;
  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    feasible.clear();
    for (std::size_t i = 0; i < timelines.size(); ++i)
      if (timelines[i].can_fit(vm)) feasible.push_back(i);
    if (feasible.empty()) continue;
    const std::size_t pick = feasible[rng.index(feasible.size())];
    timelines[pick].place(vm);
    alloc.assignment[j] = static_cast<ServerId>(pick);
  }
  return alloc;
}

}  // namespace esva
