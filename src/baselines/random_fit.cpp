#include "baselines/random_fit.h"

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "obs/metrics.h"

namespace esva {

Allocation RandomFitAllocator::allocate(const ProblemInstance& problem,
                                        Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const bool tracing = obs_.tracing();

  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  std::int64_t feasible_probes = 0;
  std::int64_t rejections = 0;
  std::vector<std::size_t> feasible;
  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    DecisionBuilder decision(obs_, name(), vm.id);
    feasible.clear();
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections;
          continue;
        }
        decision.add_feasible(static_cast<ServerId>(i),
                              incremental_cost(timelines[i], vm));
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections;
        continue;
      }
      ++feasible_probes;
      feasible.push_back(i);
    }
    if (feasible.empty()) {
      decision.commit(kNoServer);
      continue;
    }
    const std::size_t pick = feasible[rng.index(feasible.size())];
    if (decision.active())
      decision.commit(static_cast<ServerId>(pick),
                      incremental_cost(timelines[pick], vm));
    timelines[pick].place(vm);
    alloc.assignment[j] = static_cast<ServerId>(pick);
  }

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            feasible_probes, rejections,
                            alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
