#include "baselines/random_fit.h"

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "core/streaming.h"
#include "obs/metrics.h"

namespace esva {

namespace {

class RandomFitPolicy final : public PlacementPolicy {
 public:
  RandomFitPolicy(std::string name, const ObsContext& obs)
      : name_(std::move(name)), obs_(obs) {}

  std::string name() const override { return name_; }

  PlacementDecision place_one(const ClusterState& cluster, const VmSpec& vm,
                              Rng& rng) override {
    const std::vector<ServerTimeline>& timelines = cluster.timelines();
    const bool tracing = obs_.tracing();
    DecisionBuilder decision(obs_, name_, vm.id);
    feasible_.clear();
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections_;
          continue;
        }
        decision.add_feasible(static_cast<ServerId>(i),
                              incremental_cost(timelines[i], vm));
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections_;
        continue;
      }
      ++feasible_probes_;
      feasible_.push_back(i);
    }
    PlacementDecision result;
    if (feasible_.empty()) {
      decision.commit(kNoServer);
      return result;
    }
    const std::size_t pick = feasible_[rng.index(feasible_.size())];
    if (decision.active()) {
      result.has_delta = true;
      result.delta = incremental_cost(timelines[pick], vm);
      decision.commit(static_cast<ServerId>(pick), result.delta);
    }
    result.server = static_cast<ServerId>(pick);
    return result;
  }

  void finish(std::size_t requests, std::size_t unallocated) override {
    record_allocation_metrics(obs_.metrics, name_, requests, feasible_probes_,
                              rejections_, unallocated);
  }

 private:
  std::string name_;
  ObsContext obs_;
  std::vector<std::size_t> feasible_;
  std::int64_t feasible_probes_ = 0;
  std::int64_t rejections_ = 0;
};

}  // namespace

std::unique_ptr<PlacementPolicy> RandomFitAllocator::make_policy() const {
  return std::make_unique<RandomFitPolicy>(name(), obs_);
}

Allocation RandomFitAllocator::allocate(const ProblemInstance& problem,
                                        Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, order_, rng, obs_);
}

}  // namespace esva
