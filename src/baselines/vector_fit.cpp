#include "baselines/vector_fit.h"

#include <cmath>

#include "cluster/timeline.h"
#include "util/types.h"

namespace esva {

Allocation DotProductFitAllocator::allocate(const ProblemInstance& problem,
                                            Rng& /*rng*/) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    const double demand_norm =
        std::sqrt(vm.demand.cpu * vm.demand.cpu + vm.demand.mem * vm.demand.mem);
    ServerId best_server = kNoServer;
    double best_alignment = -kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      const Resources remaining{
          timelines[i].spec().capacity.cpu -
              timelines[i].max_cpu_usage(vm.start, vm.end),
          timelines[i].spec().capacity.mem -
              timelines[i].max_mem_usage(vm.start, vm.end)};
      const double remaining_norm = std::sqrt(
          remaining.cpu * remaining.cpu + remaining.mem * remaining.mem);
      // A zero-demand or exactly-full server degenerates; score it neutral.
      double alignment = 0.0;
      if (demand_norm > kEps && remaining_norm > kEps) {
        alignment = (vm.demand.cpu * remaining.cpu +
                     vm.demand.mem * remaining.mem) /
                    (demand_norm * remaining_norm);
      }
      if (alignment > best_alignment) {
        best_alignment = alignment;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

}  // namespace esva
