#include "baselines/vector_fit.h"

#include <cmath>

#include "cluster/timeline.h"
#include "core/candidate_scan.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

namespace {

/// The scan minimizes, so the score is the *negated* cosine alignment:
/// -a < -b exactly when a > b (negation is exact in IEEE754), keeping the
/// selection bit-identical to the historical maximizing loop.
struct DotProductFitScore {
  double operator()(const ServerTimeline& timeline, const VmSpec& vm) const {
    const double demand_norm = std::sqrt(
        vm.demand.cpu * vm.demand.cpu + vm.demand.mem * vm.demand.mem);
    const Resources remaining{
        timeline.spec().capacity.cpu -
            timeline.max_cpu_usage(vm.start, vm.end),
        timeline.spec().capacity.mem -
            timeline.max_mem_usage(vm.start, vm.end)};
    const double remaining_norm = std::sqrt(
        remaining.cpu * remaining.cpu + remaining.mem * remaining.mem);
    // A zero-demand or exactly-full server degenerates; score it neutral.
    double alignment = 0.0;
    if (demand_norm > kEps && remaining_norm > kEps) {
      alignment = (vm.demand.cpu * remaining.cpu +
                   vm.demand.mem * remaining.mem) /
                  (demand_norm * remaining_norm);
    }
    return -alignment;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> DotProductFitAllocator::make_policy() const {
  return make_scan_policy(name(), /*score_is_energy_delta=*/false,
                          DotProductFitScore{}, options_.scan, obs_);
}

Allocation DotProductFitAllocator::allocate(const ProblemInstance& problem,
                                            Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, options_.order, rng, obs_,
                   options_.scan.shard_options());
}

}  // namespace esva
