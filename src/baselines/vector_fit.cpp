#include "baselines/vector_fit.h"

#include <cmath>

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

Allocation DotProductFitAllocator::allocate(const ProblemInstance& problem,
                                            Rng& /*rng*/) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const bool tracing = obs_.tracing();

  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  std::int64_t feasible_probes = 0;
  std::int64_t rejections = 0;
  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    DecisionBuilder decision(obs_, name(), vm.id);
    const double demand_norm =
        std::sqrt(vm.demand.cpu * vm.demand.cpu + vm.demand.mem * vm.demand.mem);
    ServerId best_server = kNoServer;
    double best_alignment = -kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections;
          continue;
        }
        decision.add_feasible(static_cast<ServerId>(i),
                              incremental_cost(timelines[i], vm));
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections;
        continue;
      }
      ++feasible_probes;
      const Resources remaining{
          timelines[i].spec().capacity.cpu -
              timelines[i].max_cpu_usage(vm.start, vm.end),
          timelines[i].spec().capacity.mem -
              timelines[i].max_mem_usage(vm.start, vm.end)};
      const double remaining_norm = std::sqrt(
          remaining.cpu * remaining.cpu + remaining.mem * remaining.mem);
      // A zero-demand or exactly-full server degenerates; score it neutral.
      double alignment = 0.0;
      if (demand_norm > kEps && remaining_norm > kEps) {
        alignment = (vm.demand.cpu * remaining.cpu +
                     vm.demand.mem * remaining.mem) /
                    (demand_norm * remaining_norm);
      }
      if (alignment > best_alignment) {
        best_alignment = alignment;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) {
      decision.commit(kNoServer);
      continue;
    }
    const auto best = static_cast<std::size_t>(best_server);
    if (decision.active())
      decision.commit(best_server, incremental_cost(timelines[best], vm));
    timelines[best].place(vm);
    alloc.assignment[j] = best_server;
  }

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            feasible_probes, rejections,
                            alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
