// Ordering ablation support: build the two ordering-sensitive allocators
// (the paper's heuristic and FFPS) with a non-default VM presentation order.

#pragma once

#include "core/allocator.h"

namespace esva {

/// base_name must be "min-incremental" or "ffps"; returns that allocator
/// configured to present VMs in `order`. Throws std::invalid_argument for
/// other names.
AllocatorPtr make_with_order(const std::string& base_name, VmOrder order);

/// All orders, for sweep loops.
const std::vector<VmOrder>& all_vm_orders();

}  // namespace esva
