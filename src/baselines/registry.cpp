#include "baselines/registry.h"

#include <map>
#include <stdexcept>

#include "baselines/best_fit.h"
#include "baselines/ffps.h"
#include "baselines/lowest_idle_power.h"
#include "baselines/random_fit.h"
#include "baselines/vector_fit.h"
#include "core/min_incremental.h"

namespace esva {

namespace {

const std::vector<std::string>& builtin_names() {
  static const std::vector<std::string> kNames = {
      "min-incremental", "ffps",         "ffps-reshuffle",
      "ffps-noshuffle",  "best-fit-cpu", "dot-product-fit",
      "random-fit",      "lowest-idle-power"};
  return kNames;
}

std::map<std::string, AllocatorFactory>& extension_registry() {
  static std::map<std::string, AllocatorFactory> registry;
  return registry;
}

// Cached combined name list; rebuilt on registration.
std::vector<std::string>& combined_names() {
  static std::vector<std::string> names;
  return names;
}

void rebuild_combined_names() {
  auto& names = combined_names();
  names = builtin_names();
  for (const auto& [name, factory] : extension_registry())
    names.push_back(name);
}

AllocatorPtr make_builtin(const std::string& name) {
  if (name == "min-incremental")
    return std::make_unique<MinIncrementalAllocator>();
  if (name == "ffps") return std::make_unique<FfpsAllocator>();
  if (name == "ffps-reshuffle") {
    FfpsAllocator::Options options;
    options.reshuffle_per_vm = true;
    return std::make_unique<FfpsAllocator>(options);
  }
  if (name == "ffps-noshuffle") {
    FfpsAllocator::Options options;
    options.shuffle_servers = false;
    return std::make_unique<FfpsAllocator>(options);
  }
  if (name == "best-fit-cpu") return std::make_unique<BestFitCpuAllocator>();
  if (name == "dot-product-fit")
    return std::make_unique<DotProductFitAllocator>();
  if (name == "random-fit") return std::make_unique<RandomFitAllocator>();
  if (name == "lowest-idle-power")
    return std::make_unique<LowestIdlePowerAllocator>();
  return nullptr;
}

}  // namespace

const std::vector<std::string>& allocator_names() {
  if (combined_names().empty()) rebuild_combined_names();
  return combined_names();
}

void register_allocator(const std::string& name, AllocatorFactory factory) {
  if (make_builtin(name) != nullptr)
    throw std::invalid_argument("cannot override built-in allocator '" + name +
                                "'");
  if (!factory) throw std::invalid_argument("null factory for '" + name + "'");
  extension_registry()[name] = std::move(factory);
  rebuild_combined_names();
}

AllocatorPtr make_allocator(const std::string& name) {
  if (AllocatorPtr builtin = make_builtin(name)) return builtin;
  const auto& registry = extension_registry();
  if (auto it = registry.find(name); it != registry.end()) return it->second();
  throw std::invalid_argument("unknown allocator '" + name + "'");
}

}  // namespace esva
