// First Fit Power Saving — the paper's baseline (§IV-A).
//
// "VMs are allocated in the increasing order of their starting time, and
// servers are randomly sorted. Each VM is allocated on the first searched
// server which can provide sufficient resources to the VM throughout its time
// duration. After all VMs are allocated, each server's state throughout the
// entire period can be determined [optimal power-state policy] ... The energy
// cost of each server can be calculated from Eq. (17)."

#pragma once

#include "core/allocator.h"
#include "core/cost_model.h"

namespace esva {

class FfpsAllocator final : public Allocator {
 public:
  struct Options {
    /// Presentation order; the paper uses ByStartTime. Exposed for the
    /// ordering ablation.
    VmOrder order = VmOrder::ByStartTime;
    /// If false, servers are probed in id order instead of a random order —
    /// degenerates to plain First Fit (used in tests for determinism).
    bool shuffle_servers = true;
    /// The paper's "servers are randomly sorted" is ambiguous: a single
    /// random order for the whole run, or a fresh random order per VM. We
    /// default to the literal single-shuffle reading, whose measured energy
    /// reduction ratios also land in the paper's reported band (≈10–20%);
    /// per-VM reshuffling spreads VMs much more thinly and roughly doubles
    /// the reported savings. bench/ablation_ffps quantifies both readings;
    /// EXPERIMENTS.md discusses the choice.
    bool reshuffle_per_vm = false;
  };

  FfpsAllocator() = default;
  explicit FfpsAllocator(Options options) : options_(options) {}

  std::string name() const override { return "ffps"; }

  /// The server probe order is shuffled once per call using `rng`.
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  /// First-fit as a stream policy; the probe-order shuffle happens at
  /// begin(), exactly where allocate() drew it.
  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  Options options_;
};

}  // namespace esva
