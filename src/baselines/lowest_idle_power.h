// Lowest Idle Power fit — picks the feasible server with the smallest P_idle
// (ties toward lower id). A "static energy label" heuristic: it knows which
// hardware is efficient but is blind to the temporal structure (existing busy
// segments, transition costs). Separates how much of MinIncrementalEnergy's
// win comes from hardware choice vs temporal consolidation.

#pragma once

#include "core/allocator.h"

namespace esva {

class LowestIdlePowerAllocator final : public Allocator {
 public:
  struct Options {
    VmOrder order = VmOrder::ByStartTime;
    /// Scan-engine knobs (core/candidate_scan.h); any setting yields the
    /// identical assignment.
    ScanConfig scan;
  };

  LowestIdlePowerAllocator() = default;
  explicit LowestIdlePowerAllocator(VmOrder order) { options_.order = order; }
  explicit LowestIdlePowerAllocator(Options options) : options_(options) {}

  std::string name() const override { return "lowest-idle-power"; }

  void set_scan_config(const ScanConfig& config) override {
    options_.scan = config;
  }

  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  Options options_;
};

}  // namespace esva
