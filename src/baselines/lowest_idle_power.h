// Lowest Idle Power fit — picks the feasible server with the smallest P_idle
// (ties toward lower id). A "static energy label" heuristic: it knows which
// hardware is efficient but is blind to the temporal structure (existing busy
// segments, transition costs). Separates how much of MinIncrementalEnergy's
// win comes from hardware choice vs temporal consolidation.

#pragma once

#include "core/allocator.h"

namespace esva {

class LowestIdlePowerAllocator final : public Allocator {
 public:
  explicit LowestIdlePowerAllocator(VmOrder order = VmOrder::ByStartTime)
      : order_(order) {}

  std::string name() const override { return "lowest-idle-power"; }

  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

 private:
  VmOrder order_;
};

}  // namespace esva
