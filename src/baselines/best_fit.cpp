#include "baselines/best_fit.h"

#include "cluster/timeline.h"
#include "core/candidate_scan.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

Allocation BestFitCpuAllocator::allocate(const ProblemInstance& problem,
                                         Rng& /*rng*/) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));

  // The policy minimizes post-placement CPU headroom; while tracing,
  // scan_allocate prices candidates with the Eq. 17 delta separately so
  // traces stay comparable across allocators.
  ScanTotals totals;
  Allocation alloc = scan_allocate(
      problem, options_.order, options_.scan, obs_, name(),
      /*score_is_energy_delta=*/false,
      [](const ServerTimeline& timeline, const VmSpec& vm) {
        return timeline.spec().capacity.cpu -
               timeline.max_cpu_usage(vm.start, vm.end) - vm.demand.cpu;
      },
      totals);

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            totals.feasible, totals.rejected,
                            alloc.num_unallocated());
  if (options_.scan.cache)
    record_scan_cache_metrics(obs_.metrics, name(), totals.cache_hits,
                              totals.cache_misses);
  return alloc;
}

}  // namespace esva
