#include "baselines/best_fit.h"

#include "cluster/timeline.h"
#include "util/types.h"

namespace esva {

Allocation BestFitCpuAllocator::allocate(const ProblemInstance& problem,
                                         Rng& /*rng*/) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best_server = kNoServer;
    double best_headroom = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      const double headroom = timelines[i].spec().capacity.cpu -
                              timelines[i].max_cpu_usage(vm.start, vm.end) -
                              vm.demand.cpu;
      if (headroom < best_headroom) {
        best_headroom = headroom;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

}  // namespace esva
