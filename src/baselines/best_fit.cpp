#include "baselines/best_fit.h"

#include "cluster/timeline.h"
#include "core/candidate_scan.h"
#include "core/streaming.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

namespace {

/// Post-placement CPU headroom: minimizing it is classical Best Fit. While
/// tracing, ScanPolicy prices candidates with the Eq. 17 delta separately so
/// traces stay comparable across allocators.
struct BestFitCpuScore {
  double operator()(const ServerTimeline& timeline, const VmSpec& vm) const {
    return timeline.spec().capacity.cpu -
           timeline.max_cpu_usage(vm.start, vm.end) - vm.demand.cpu;
  }
};

}  // namespace

std::unique_ptr<PlacementPolicy> BestFitCpuAllocator::make_policy() const {
  return make_scan_policy(name(), /*score_is_energy_delta=*/false,
                          BestFitCpuScore{}, options_.scan, obs_);
}

Allocation BestFitCpuAllocator::allocate(const ProblemInstance& problem,
                                         Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, options_.order, rng, obs_,
                   options_.scan.shard_options());
}

}  // namespace esva
