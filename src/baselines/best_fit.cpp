#include "baselines/best_fit.h"

#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "obs/metrics.h"
#include "util/types.h"

namespace esva {

Allocation BestFitCpuAllocator::allocate(const ProblemInstance& problem,
                                         Rng& /*rng*/) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const bool tracing = obs_.tracing();

  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  std::int64_t feasible_probes = 0;
  std::int64_t rejections = 0;
  for (std::size_t j : ordered_indices(problem, order_)) {
    const VmSpec& vm = problem.vms[j];
    DecisionBuilder decision(obs_, name(), vm.id);
    ServerId best_server = kNoServer;
    double best_headroom = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (tracing) {
        const FitCheck fit = timelines[i].check_fit(vm);
        if (!fit.ok) {
          decision.add_rejected(static_cast<ServerId>(i), fit);
          ++rejections;
          continue;
        }
        // The policy picks by CPU headroom; the trace still reports the
        // incremental energy so traces are comparable across allocators.
        decision.add_feasible(static_cast<ServerId>(i),
                              incremental_cost(timelines[i], vm));
      } else if (!timelines[i].can_fit(vm)) {
        ++rejections;
        continue;
      }
      ++feasible_probes;
      const double headroom = timelines[i].spec().capacity.cpu -
                              timelines[i].max_cpu_usage(vm.start, vm.end) -
                              vm.demand.cpu;
      if (headroom < best_headroom) {
        best_headroom = headroom;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) {
      decision.commit(kNoServer);
      continue;
    }
    const auto best = static_cast<std::size_t>(best_server);
    if (decision.active())
      decision.commit(best_server, incremental_cost(timelines[best], vm));
    timelines[best].place(vm);
    alloc.assignment[j] = best_server;
  }

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            feasible_probes, rejections,
                            alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
