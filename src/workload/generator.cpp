#include "workload/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esva {

std::vector<VmSpec> generate_workload(const WorkloadConfig& config, Rng& rng) {
  assert(config.num_vms >= 0);
  assert(config.mean_interarrival > 0 && config.mean_duration > 0);
  assert(!config.vm_types.empty());

  std::vector<VmSpec> vms;
  vms.reserve(static_cast<std::size_t>(config.num_vms));

  double arrival_clock = 0.0;
  for (int j = 0; j < config.num_vms; ++j) {
    arrival_clock += rng.exponential(config.mean_interarrival);
    const Time start =
        std::max<Time>(1, static_cast<Time>(std::ceil(arrival_clock)));
    const Time duration = std::max<Time>(
        1, static_cast<Time>(std::llround(rng.exponential(config.mean_duration))));

    const VmType& type = config.vm_types[rng.index(config.vm_types.size())];
    VmSpec vm;
    vm.id = j;
    vm.type_name = type.name;
    vm.demand = type.demand;
    vm.start = start;
    vm.end = start + duration - 1;
    assert(vm.valid());
    vms.push_back(std::move(vm));
  }
  return vms;
}

std::vector<VmSpec> generate_bursty_workload(const WorkloadConfig& config,
                                             int phases, double valley_factor,
                                             Rng& rng) {
  assert(phases >= 1);
  assert(valley_factor > 0.0 && valley_factor <= 1.0);
  std::vector<VmSpec> vms = generate_workload(config, rng);
  for (VmSpec& vm : vms) {
    const auto duration = static_cast<std::size_t>(vm.duration());
    const auto segments =
        std::min<std::size_t>(static_cast<std::size_t>(phases), duration);
    const std::size_t peak_segment = rng.index(segments);
    const Resources nominal = vm.demand;

    std::vector<Resources> profile(duration);
    for (std::size_t s = 0; s < segments; ++s) {
      const double scale =
          s == peak_segment ? 1.0 : rng.uniform_double(valley_factor, 1.0);
      const std::size_t seg_begin = s * duration / segments;
      const std::size_t seg_end = (s + 1) * duration / segments;
      for (std::size_t k = seg_begin; k < seg_end; ++k)
        profile[k] = nominal * scale;
    }
    vm.set_profile(std::move(profile));
    assert(vm.valid());
  }
  return vms;
}

}  // namespace esva
