#include "workload/generator.h"

#include <algorithm>
#include <cassert>

#include "workload/arrival_stream.h"

namespace esva {

// The per-arrival draw sequence lives in PoissonArrivalStream
// (workload/arrival_stream.h); materializing is just draining it, so the
// lazy and batch request sequences cannot drift.
std::vector<VmSpec> generate_workload(const WorkloadConfig& config, Rng& rng) {
  PoissonArrivalStream stream(config, rng);
  return drain(stream);
}

std::vector<VmSpec> generate_bursty_workload(const WorkloadConfig& config,
                                             int phases, double valley_factor,
                                             Rng& rng) {
  assert(phases >= 1);
  assert(valley_factor > 0.0 && valley_factor <= 1.0);
  std::vector<VmSpec> vms = generate_workload(config, rng);
  for (VmSpec& vm : vms) {
    const auto duration = static_cast<std::size_t>(vm.duration());
    const auto segments =
        std::min<std::size_t>(static_cast<std::size_t>(phases), duration);
    const std::size_t peak_segment = rng.index(segments);
    const Resources nominal = vm.demand;

    std::vector<Resources> profile(duration);
    for (std::size_t s = 0; s < segments; ++s) {
      const double scale =
          s == peak_segment ? 1.0 : rng.uniform_double(valley_factor, 1.0);
      const std::size_t seg_begin = s * duration / segments;
      const std::size_t seg_end = (s + 1) * duration / segments;
      for (std::size_t k = seg_begin; k < seg_end; ++k)
        profile[k] = nominal * scale;
    }
    vm.set_profile(std::move(profile));
    assert(vm.valid());
  }
  return vms;
}

}  // namespace esva
