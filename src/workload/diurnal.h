// Diurnal (time-of-day) workload generation — extension beyond the paper.
//
// The paper's arrivals are a homogeneous Poisson process. Real datacenter
// request streams have a strong day/night cycle; energy-saving allocation
// matters most in the troughs. This generator draws arrivals from a
// non-homogeneous Poisson process with a sinusoidal rate
//     lambda(t) = base_rate · (1 + amplitude · sin(2π·(t - phase)/period))
// via Lewis & Shedler thinning, which is exact. Everything else (durations,
// demand types) matches the paper's generator.

#pragma once

#include <vector>

#include "cluster/catalog.h"
#include "cluster/vm.h"
#include "util/rng.h"

namespace esva {

struct DiurnalConfig {
  int num_vms = 200;
  /// Mean arrivals per time unit at the cycle's average (= 1/mean
  /// inter-arrival of the equivalent homogeneous process). Must be > 0.
  double base_rate = 0.5;
  /// Relative swing of the rate, in [0, 1): 0.8 means the peak rate is 1.8×
  /// base and the trough 0.2× base.
  double amplitude = 0.8;
  /// Cycle length in time units (a day = 1440 minutes).
  double period = 1440.0;
  /// Offset of the rate maximum within the cycle, time units.
  double phase = 360.0;
  double mean_duration = 50.0;
  std::vector<VmType> vm_types;
};

/// Instantaneous arrival rate at (continuous) time t.
double diurnal_rate(const DiurnalConfig& config, double t);

/// Generates `num_vms` requests with non-homogeneous Poisson arrivals
/// (thinning), integer start/finish times, exponential durations, uniform
/// type mix — same post-processing contract as generate_workload().
std::vector<VmSpec> generate_diurnal_workload(const DiurnalConfig& config,
                                              Rng& rng);

}  // namespace esva
