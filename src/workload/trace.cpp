#include "workload/trace.h"

#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "util/csv.h"
#include "util/parse.h"

namespace esva {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& message) {
  throw std::runtime_error("trace line " + std::to_string(line) + ": " +
                           message);
}

std::string line_context(std::size_t line) {
  return "trace line " + std::to_string(line);
}

// Shared hardened field parsers (util/parse.h): overflow, trailing garbage,
// and the narrowing into Time/VmId/ServerId are all structured errors.
double parse_double(const std::string& field, std::size_t line) {
  return parse_double_field(field, line_context(line));
}

long long parse_long(const std::string& field, std::size_t line) {
  return parse_int_field(field, line_context(line));
}

}  // namespace

namespace {

std::string encode_profile(const VmSpec& vm) {
  std::string encoded;
  for (std::size_t k = 0; k < vm.profile.size(); ++k) {
    if (k > 0) encoded.push_back('|');
    encoded += CsvWriter::field_to_string(vm.profile[k].cpu);
    encoded.push_back(':');
    encoded += CsvWriter::field_to_string(vm.profile[k].mem);
  }
  return encoded;
}

std::vector<Resources> decode_profile(const std::string& encoded,
                                      std::size_t line) {
  std::vector<Resources> profile;
  std::size_t pos = 0;
  while (pos < encoded.size()) {
    std::size_t bar = encoded.find('|', pos);
    if (bar == std::string::npos) bar = encoded.size();
    const std::string entry = encoded.substr(pos, bar - pos);
    const std::size_t colon = entry.find(':');
    if (colon == std::string::npos)
      fail(line, "profile entry missing ':' in '" + entry + "'");
    profile.push_back(Resources{parse_double(entry.substr(0, colon), line),
                                parse_double(entry.substr(colon + 1), line)});
    pos = bar + 1;
  }
  return profile;
}

}  // namespace

void write_vm_trace(std::ostream& out, const std::vector<VmSpec>& vms) {
  CsvWriter csv(out);
  bool any_profiled = false;
  for (const VmSpec& vm : vms) any_profiled = any_profiled || vm.has_profile();
  if (any_profiled) {
    // Extended 7-column format: the last column encodes R_jt as
    // "cpu:mem|cpu:mem|..." (empty for stable VMs).
    csv.row({"id", "type", "cpu", "mem", "start", "end", "profile"});
    for (const VmSpec& vm : vms) {
      csv.typed_row(vm.id, vm.type_name, vm.demand.cpu, vm.demand.mem,
                    static_cast<int>(vm.start), static_cast<int>(vm.end),
                    encode_profile(vm));
    }
    return;
  }
  csv.row({"id", "type", "cpu", "mem", "start", "end"});
  for (const VmSpec& vm : vms) {
    csv.typed_row(vm.id, vm.type_name, vm.demand.cpu, vm.demand.mem,
                  static_cast<int>(vm.start), static_cast<int>(vm.end));
  }
}

void write_server_trace(std::ostream& out,
                        const std::vector<ServerSpec>& servers) {
  CsvWriter csv(out);
  csv.row({"id", "type", "cpu", "mem", "p_idle", "p_peak", "transition_time"});
  for (const ServerSpec& s : servers) {
    csv.typed_row(s.id, s.type_name, s.capacity.cpu, s.capacity.mem, s.p_idle,
                  s.p_peak, s.transition_time);
  }
}

std::vector<VmSpec> read_vm_trace(std::istream& in, bool dense_ids) {
  const auto rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("vm trace: empty file");
  std::vector<VmSpec> vms;
  std::unordered_set<VmId> seen_ids;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // rows[0] is the header
    const auto& row = rows[r];
    const std::size_t line = r + 1;
    if (row.size() != 6 && row.size() != 7) fail(line, "expected 6 or 7 columns");
    VmSpec vm;
    vm.id = parse_field_as<VmId>(row[0], line_context(line));
    vm.type_name = row[1];
    vm.demand.cpu = parse_double(row[2], line);
    vm.demand.mem = parse_double(row[3], line);
    vm.start = parse_field_as<Time>(row[4], line_context(line));
    vm.end = parse_field_as<Time>(row[5], line_context(line));
    if (row.size() == 7 && !row[6].empty()) {
      if (vm.end < vm.start) fail(line, "invalid vm interval");
      const auto profile = decode_profile(row[6], line);
      if (static_cast<Time>(profile.size()) != vm.end - vm.start + 1)
        fail(line, "profile length != duration");
      vm.set_profile(profile);
    }
    if (!vm.valid()) fail(line, "invalid vm spec");
    if (dense_ids) {
      if (vm.id != static_cast<VmId>(vms.size()))
        fail(line, "vm ids must be dense and in order");
    } else if (!seen_ids.insert(vm.id).second) {
      fail(line, "duplicate vm id " + std::to_string(vm.id));
    }
    vms.push_back(std::move(vm));
  }
  return vms;
}

std::vector<ServerSpec> read_server_trace(std::istream& in) {
  const auto rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("server trace: empty file");
  std::vector<ServerSpec> servers;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::size_t line = r + 1;
    if (row.size() != 7) fail(line, "expected 7 columns");
    ServerSpec s;
    s.id = parse_field_as<ServerId>(row[0], line_context(line));
    s.type_name = row[1];
    s.capacity.cpu = parse_double(row[2], line);
    s.capacity.mem = parse_double(row[3], line);
    s.p_idle = parse_double(row[4], line);
    s.p_peak = parse_double(row[5], line);
    s.transition_time = parse_double(row[6], line);
    if (!s.valid()) fail(line, "invalid server spec");
    if (s.id != static_cast<ServerId>(servers.size()))
      fail(line, "server ids must be dense and in order");
    servers.push_back(std::move(s));
  }
  return servers;
}

void write_assignment(std::ostream& out, const Allocation& alloc) {
  CsvWriter csv(out);
  csv.row({"vm_id", "server_id"});
  for (std::size_t j = 0; j < alloc.assignment.size(); ++j)
    csv.typed_row(static_cast<int>(j), static_cast<int>(alloc.assignment[j]));
}

Allocation read_assignment(std::istream& in, std::size_t num_vms) {
  const auto rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("assignment trace: empty file");
  Allocation alloc;
  alloc.assignment.assign(num_vms, kNoServer);
  std::vector<bool> seen(num_vms, false);
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const auto& row = rows[r];
    const std::size_t line = r + 1;
    if (row.size() != 2) fail(line, "expected 2 columns");
    const long long vm = parse_field_as<VmId>(row[0], line_context(line));
    const long long server =
        parse_field_as<ServerId>(row[1], line_context(line));
    if (vm < 0 || static_cast<std::size_t>(vm) >= num_vms)
      fail(line, "vm_id out of range");
    if (seen[static_cast<std::size_t>(vm)])
      fail(line, "duplicate vm_id " + std::to_string(vm));
    seen[static_cast<std::size_t>(vm)] = true;
    if (server < -1) fail(line, "invalid server_id");
    alloc.assignment[static_cast<std::size_t>(vm)] =
        static_cast<ServerId>(server);
  }
  for (std::size_t j = 0; j < num_vms; ++j)
    if (!seen[j])
      throw std::runtime_error("assignment trace: vm " + std::to_string(j) +
                               " missing");
  return alloc;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  return out;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return in;
}

}  // namespace

void save_vm_trace(const std::string& path, const std::vector<VmSpec>& vms) {
  auto out = open_out(path);
  write_vm_trace(out, vms);
}

void save_server_trace(const std::string& path,
                       const std::vector<ServerSpec>& servers) {
  auto out = open_out(path);
  write_server_trace(out, servers);
}

std::vector<VmSpec> load_vm_trace(const std::string& path, bool dense_ids) {
  auto in = open_in(path);
  return read_vm_trace(in, dense_ids);
}

std::vector<ServerSpec> load_server_trace(const std::string& path) {
  auto in = open_in(path);
  return read_server_trace(in);
}

void save_assignment(const std::string& path, const Allocation& alloc) {
  auto out = open_out(path);
  write_assignment(out, alloc);
}

Allocation load_assignment(const std::string& path, std::size_t num_vms) {
  auto in = open_in(path);
  return read_assignment(in, num_vms);
}

}  // namespace esva
