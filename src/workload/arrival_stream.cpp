#include "workload/arrival_stream.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <utility>

namespace esva {

VectorArrivalStream::VectorArrivalStream(std::vector<VmSpec> vms)
    : vms_(std::move(vms)), order_(order_by_start(vms_)) {}

std::optional<VmSpec> VectorArrivalStream::next() {
  if (pos_ >= order_.size()) return std::nullopt;
  return vms_[order_[pos_++]];
}

PoissonArrivalStream::PoissonArrivalStream(const WorkloadConfig& config,
                                           Rng& rng)
    : config_(config), rng_(&rng) {
  assert(config_.num_vms >= 0);
  assert(config_.mean_interarrival > 0 && config_.mean_duration > 0);
  assert(!config_.vm_types.empty());
}

std::optional<VmSpec> PoissonArrivalStream::next() {
  if (produced_ >= config_.num_vms) return std::nullopt;
  arrival_clock_ += rng_->exponential(config_.mean_interarrival);
  const Time start =
      std::max<Time>(1, static_cast<Time>(std::ceil(arrival_clock_)));
  const Time duration = std::max<Time>(
      1, static_cast<Time>(
             std::llround(rng_->exponential(config_.mean_duration))));

  const VmType& type = config_.vm_types[rng_->index(config_.vm_types.size())];
  VmSpec vm;
  vm.id = produced_++;
  vm.type_name = type.name;
  vm.demand = type.demand;
  vm.start = start;
  vm.end = start + duration - 1;
  assert(vm.valid());
  return vm;
}

DiurnalArrivalStream::DiurnalArrivalStream(const DiurnalConfig& config,
                                           Rng& rng)
    : config_(config),
      rng_(&rng),
      // Lewis–Shedler thinning: propose arrivals at the envelope rate
      // lambda_max, accept each with probability lambda(t)/lambda_max.
      lambda_max_(config.base_rate * (1.0 + config.amplitude)) {
  assert(config_.num_vms >= 0);
  assert(config_.mean_duration > 0 && config_.period > 0);
  assert(!config_.vm_types.empty());
}

std::optional<VmSpec> DiurnalArrivalStream::next() {
  if (produced_ >= config_.num_vms) return std::nullopt;
  for (;;) {
    clock_ += rng_->exponential(1.0 / lambda_max_);
    if (rng_->next_double() * lambda_max_ > diurnal_rate(config_, clock_))
      continue;  // thinned out

    const Time start =
        std::max<Time>(1, static_cast<Time>(std::ceil(clock_)));
    const Time duration = std::max<Time>(
        1, static_cast<Time>(
               std::llround(rng_->exponential(config_.mean_duration))));
    const VmType& type =
        config_.vm_types[rng_->index(config_.vm_types.size())];

    VmSpec vm;
    vm.id = produced_++;
    vm.type_name = type.name;
    vm.demand = type.demand;
    vm.start = start;
    vm.end = start + duration - 1;
    assert(vm.valid());
    return vm;
  }
}

std::vector<VmSpec> drain(ArrivalStream& stream) {
  std::vector<VmSpec> vms;
  while (std::optional<VmSpec> vm = stream.next())
    vms.push_back(std::move(*vm));
  return vms;
}

}  // namespace esva
