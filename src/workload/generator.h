// Synthetic workload generation per the paper's simulation settings (§IV-B):
// VM requests arrive as a Poisson process (exponential inter-arrival times),
// durations are exponential with a configurable mean, start/finish times are
// integers, and each VM's stable demand is drawn uniformly from a set of
// Table I types.

#pragma once

#include <vector>

#include "cluster/catalog.h"
#include "cluster/vm.h"
#include "util/rng.h"

namespace esva {

struct WorkloadConfig {
  /// Number of VM requests to generate (the paper sweeps 100–500).
  int num_vms = 100;
  /// Mean inter-arrival time, time units (the paper sweeps 0.5–10).
  double mean_interarrival = 1.0;
  /// Mean VM duration, time units (the paper uses 20 / 50 / 100).
  double mean_duration = 50.0;
  /// Candidate demand types, sampled uniformly (all or standard-only).
  std::vector<VmType> vm_types;
};

/// Generates a workload. Start times are the Poisson arrival instants rounded
/// up to integer time units (>= 1, non-decreasing in request order);
/// durations are exponential variates rounded to the nearest integer, minimum
/// one time unit. Ids are dense in arrival order.
std::vector<VmSpec> generate_workload(const WorkloadConfig& config, Rng& rng);

/// Like generate_workload, but gives each VM a time-varying demand profile
/// (the paper's general R_jt of Eqs. 3/9/10): the lifetime is split into
/// `phases` roughly equal piecewise-constant segments, each scaled from the
/// type's nominal demand by an independent U[valley_factor, 1] draw, with
/// one randomly chosen segment pinned at scale 1 so the *peak* demand still
/// equals the catalog demand (reservation-comparable with the stable
/// workload). Requires phases >= 1 and 0 < valley_factor <= 1.
std::vector<VmSpec> generate_bursty_workload(const WorkloadConfig& config,
                                             int phases, double valley_factor,
                                             Rng& rng);

}  // namespace esva
