// Trace persistence: save/load a workload (VM requests), a server fleet and
// an assignment as CSV, so experiments can be re-run bit-identically,
// shared, or driven from externally produced traces
// (examples/trace_driven.cpp, the esva CLI tool).
//
// VM trace columns:     id,type,cpu,mem,start,end
// Server trace columns: id,type,cpu,mem,p_idle,p_peak,transition_time
// Assignment columns:   vm_id,server_id   (server_id -1 = unallocated)

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "core/allocation.h"

namespace esva {

void write_vm_trace(std::ostream& out, const std::vector<VmSpec>& vms);
void write_server_trace(std::ostream& out,
                        const std::vector<ServerSpec>& servers);

/// Parse traces; throws std::runtime_error with a line-numbered message on
/// malformed input (wrong column count, non-numeric fields, invalid specs,
/// non-dense ids). The batch pipeline indexes assignments by VM position, so
/// it keeps `dense_ids` on; `esva client` feeds arbitrary trace slices to a
/// running daemon and passes false (ids must then only be unique).
std::vector<VmSpec> read_vm_trace(std::istream& in, bool dense_ids = true);
std::vector<ServerSpec> read_server_trace(std::istream& in);

/// Assignment persistence. `num_vms` fixes the assignment vector size; rows
/// may arrive in any order but every vm_id in [0, num_vms) must appear
/// exactly once.
void write_assignment(std::ostream& out, const Allocation& alloc);
Allocation read_assignment(std::istream& in, std::size_t num_vms);

/// File-path convenience wrappers; throw std::runtime_error if the file
/// cannot be opened.
void save_vm_trace(const std::string& path, const std::vector<VmSpec>& vms);
void save_server_trace(const std::string& path,
                       const std::vector<ServerSpec>& servers);
void save_assignment(const std::string& path, const Allocation& alloc);
std::vector<VmSpec> load_vm_trace(const std::string& path,
                                  bool dense_ids = true);
std::vector<ServerSpec> load_server_trace(const std::string& path);
Allocation load_assignment(const std::string& path, std::size_t num_vms);

}  // namespace esva
