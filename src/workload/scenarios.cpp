#include "workload/scenarios.h"

#include "cluster/datacenter.h"

namespace esva {

ProblemInstance Scenario::instantiate(Rng& rng) const {
  std::vector<VmSpec> vms = generate_workload(workload, rng);
  std::vector<ServerSpec> servers =
      transition_time_max > transition_time
          ? make_random_fleet(num_servers, server_types, transition_time,
                              transition_time_max, rng)
          : make_random_fleet(num_servers, server_types, transition_time, rng);
  return make_problem(std::move(vms), std::move(servers));
}

Scenario default_scenario(int num_vms, double mean_interarrival) {
  Scenario scenario;
  scenario.name = "default";
  scenario.workload.num_vms = num_vms;
  scenario.workload.mean_interarrival = mean_interarrival;
  scenario.workload.mean_duration = 50.0;
  scenario.workload.vm_types = all_vm_types();
  scenario.server_types = all_server_types();
  scenario.num_servers = num_vms / 2;
  scenario.transition_time = 1.0;
  return scenario;
}

Scenario fig2_scenario(int num_vms, double mean_interarrival) {
  Scenario scenario = default_scenario(num_vms, mean_interarrival);
  scenario.name = "fig2";
  return scenario;
}

Scenario fig5_scenario(double mean_interarrival, double transition_time) {
  Scenario scenario = default_scenario(100, mean_interarrival);
  scenario.name = "fig5";
  scenario.num_servers = 50;
  scenario.transition_time = transition_time;
  return scenario;
}

Scenario fig6_scenario(double mean_interarrival, double mean_duration) {
  Scenario scenario = default_scenario(100, mean_interarrival);
  scenario.name = "fig6";
  scenario.num_servers = 50;
  scenario.workload.mean_duration = mean_duration;
  return scenario;
}

Scenario fig7_scenario(int num_vms, double mean_interarrival,
                       bool use_all_server_types) {
  Scenario scenario = default_scenario(num_vms, mean_interarrival);
  scenario.name = use_all_server_types ? "fig7-all-servers" : "fig7-types-1-3";
  scenario.workload.vm_types = standard_vm_types();
  scenario.server_types =
      use_all_server_types ? all_server_types() : server_types_1_to(3);
  return scenario;
}

Scenario mixed_transition_scenario(int num_vms, double mean_interarrival) {
  Scenario scenario = default_scenario(num_vms, mean_interarrival);
  scenario.name = "mixed-transitions";
  scenario.transition_time = 0.5;
  scenario.transition_time_max = 3.0;
  return scenario;
}

const std::vector<double>& interarrival_sweep() {
  static const std::vector<double> kSweep = {0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 10.0};
  return kSweep;
}

const std::vector<int>& vm_count_sweep() {
  static const std::vector<int> kSweep = {100, 200, 300, 400, 500};
  return kSweep;
}

}  // namespace esva
