// Lazy arrival streams: VM requests produced one at a time, in
// non-decreasing start-time order — the input contract of the streaming
// replay (sim/replay.h) and the `esva stream` CLI command. The Poisson and
// diurnal adapters perform exactly the draws of the materializing
// generators (generate_workload / generate_diurnal_workload are now thin
// drains over them), so a streamed run sees the identical request sequence
// without ever holding the whole workload in memory.

#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cluster/vm.h"
#include "util/rng.h"
#include "workload/diurnal.h"
#include "workload/generator.h"

namespace esva {

/// A sequence of VM requests with non-decreasing start times. next() returns
/// nullopt once exhausted (and keeps returning it).
class ArrivalStream {
 public:
  virtual ~ArrivalStream() = default;
  virtual std::optional<VmSpec> next() = 0;
};

/// Replays materialized VMs (e.g. a CSV trace) in start-time order —
/// order_by_start's (start, end, id) order, the batch presentation order, so
/// feeding this stream to a PlacementEngine reproduces allocate() exactly.
class VectorArrivalStream final : public ArrivalStream {
 public:
  explicit VectorArrivalStream(std::vector<VmSpec> vms);
  std::optional<VmSpec> next() override;

 private:
  std::vector<VmSpec> vms_;
  std::vector<std::size_t> order_;
  std::size_t pos_ = 0;
};

/// generate_workload (paper §IV-B: homogeneous Poisson arrivals) as a lazy
/// stream: the j-th next() performs exactly the draws the materializing
/// generator performs for VM j. `rng` must outlive the stream.
class PoissonArrivalStream final : public ArrivalStream {
 public:
  PoissonArrivalStream(const WorkloadConfig& config, Rng& rng);
  std::optional<VmSpec> next() override;

 private:
  WorkloadConfig config_;
  Rng* rng_;
  double arrival_clock_ = 0.0;
  int produced_ = 0;
};

/// generate_diurnal_workload (non-homogeneous Poisson via Lewis–Shedler
/// thinning) as a lazy stream. `rng` must outlive the stream.
class DiurnalArrivalStream final : public ArrivalStream {
 public:
  DiurnalArrivalStream(const DiurnalConfig& config, Rng& rng);
  std::optional<VmSpec> next() override;

 private:
  DiurnalConfig config_;
  Rng* rng_;
  double lambda_max_;
  double clock_ = 0.0;
  int produced_ = 0;
};

/// Materializes the remainder of a stream.
std::vector<VmSpec> drain(ArrivalStream& stream);

}  // namespace esva
