#include "workload/diurnal.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace esva {

double diurnal_rate(const DiurnalConfig& config, double t) {
  assert(config.base_rate > 0);
  assert(config.amplitude >= 0 && config.amplitude < 1);
  const double angle =
      2.0 * M_PI * (t - config.phase) / config.period;
  return config.base_rate * (1.0 + config.amplitude * std::sin(angle));
}

std::vector<VmSpec> generate_diurnal_workload(const DiurnalConfig& config,
                                              Rng& rng) {
  assert(config.num_vms >= 0);
  assert(config.mean_duration > 0 && config.period > 0);
  assert(!config.vm_types.empty());

  // Lewis–Shedler thinning: propose arrivals at the envelope rate
  // lambda_max, accept each with probability lambda(t)/lambda_max.
  const double lambda_max = config.base_rate * (1.0 + config.amplitude);

  std::vector<VmSpec> vms;
  vms.reserve(static_cast<std::size_t>(config.num_vms));
  double clock = 0.0;
  while (static_cast<int>(vms.size()) < config.num_vms) {
    clock += rng.exponential(1.0 / lambda_max);
    if (rng.next_double() * lambda_max > diurnal_rate(config, clock))
      continue;  // thinned out

    const Time start = std::max<Time>(1, static_cast<Time>(std::ceil(clock)));
    const Time duration = std::max<Time>(
        1,
        static_cast<Time>(std::llround(rng.exponential(config.mean_duration))));
    const VmType& type = config.vm_types[rng.index(config.vm_types.size())];

    VmSpec vm;
    vm.id = static_cast<VmId>(vms.size());
    vm.type_name = type.name;
    vm.demand = type.demand;
    vm.start = start;
    vm.end = start + duration - 1;
    assert(vm.valid());
    vms.push_back(std::move(vm));
  }
  return vms;
}

}  // namespace esva
