#include "workload/diurnal.h"

#include <cassert>
#include <cmath>

#include "workload/arrival_stream.h"

namespace esva {

double diurnal_rate(const DiurnalConfig& config, double t) {
  assert(config.base_rate > 0);
  assert(config.amplitude >= 0 && config.amplitude < 1);
  const double angle =
      2.0 * M_PI * (t - config.phase) / config.period;
  return config.base_rate * (1.0 + config.amplitude * std::sin(angle));
}

// The thinning loop lives in DiurnalArrivalStream
// (workload/arrival_stream.h); materializing is just draining it, so the
// lazy and batch request sequences cannot drift.
std::vector<VmSpec> generate_diurnal_workload(const DiurnalConfig& config,
                                              Rng& rng) {
  DiurnalArrivalStream stream(config, rng);
  return drain(stream);
}

}  // namespace esva
