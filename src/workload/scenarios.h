// Named experiment scenarios — one per figure of the paper's §IV, with the
// paper's parameter defaults baked in (see DESIGN.md §5 for the OCR
// reconstruction of each numeral).

#pragma once

#include <string>
#include <vector>

#include "cluster/catalog.h"
#include "core/problem.h"
#include "util/rng.h"
#include "workload/generator.h"

namespace esva {

/// A fully-specified random instance family: drawing with a given Rng yields
/// one concrete ProblemInstance.
struct Scenario {
  std::string name;
  WorkloadConfig workload;
  /// Candidate server types; the fleet is sampled uniformly from these.
  std::vector<ServerType> server_types;
  /// Fleet size; the paper uses VMs/2 for Figs. 2–4 and a fixed 50 for
  /// §IV-D/E/F.
  int num_servers = 50;
  /// Transition time applied to every server, in time units. If
  /// transition_time_max > transition_time, each server's transition time is
  /// instead drawn uniformly from [transition_time, transition_time_max]
  /// (§IV-B3: fleet transition times "range from 30 s to 3 min").
  double transition_time = 1.0;
  double transition_time_max = 0.0;

  /// Draws a concrete instance (workload + fleet) from this scenario.
  ProblemInstance instantiate(Rng& rng) const;
};

/// Paper defaults shared by all figures (§IV-C): mean VM length 50 min,
/// transition time 1 min, all VM types, all server types, servers = VMs/2.
Scenario default_scenario(int num_vms, double mean_interarrival);

/// Fig. 2 / Fig. 3 / Fig. 4: all VM & server types; servers = VMs/2.
Scenario fig2_scenario(int num_vms, double mean_interarrival);

/// Fig. 5 (§IV-D): 100 VMs on 50 servers, varying transition time.
Scenario fig5_scenario(double mean_interarrival, double transition_time);

/// Fig. 6 (§IV-E): 100 VMs on 50 servers, varying mean VM length.
Scenario fig6_scenario(double mean_interarrival, double mean_duration);

/// Fig. 7 / Fig. 8 / Fig. 9 (§IV-F): standard VM types only; either server
/// types 1-3 or all types.
Scenario fig7_scenario(int num_vms, double mean_interarrival,
                       bool all_server_types);

/// §IV-B3 literal reading: heterogeneous transition times drawn uniformly
/// from [0.5, 3] minutes per server; otherwise the Fig. 2 settings.
Scenario mixed_transition_scenario(int num_vms, double mean_interarrival);

/// The x-axis sweep values used in the paper's figures.
const std::vector<double>& interarrival_sweep();  // 0.5 .. 10 time units
const std::vector<int>& vm_count_sweep();         // 100 .. 500

}  // namespace esva
