#include "serve/client.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace esva::serve {

Client::Client(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("socket path too long (" +
                                std::to_string(socket_path.size()) + " >= " +
                                std::to_string(sizeof(addr.sun_path)) + ")");
  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0)
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("cannot connect to '" + socket_path +
                             "': " + std::strerror(err));
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

std::string Client::call(const std::string& line) {
  std::string buf = line;
  buf += '\n';
  std::size_t off = 0;
  while (off < buf.size()) {
    // MSG_NOSIGNAL: a daemon that died mid-call must surface as EPIPE (and
    // this throw), not kill the client process via SIGPIPE.
    const ssize_t n = ::send(fd_, buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("client write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  for (;;) {
    const std::size_t nl = inbuf_.find('\n');
    if (nl != std::string::npos) {
      std::string out = inbuf_.substr(0, nl);
      inbuf_.erase(0, nl + 1);
      if (!out.empty() && out.back() == '\r') out.pop_back();
      return out;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("client read failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) throw std::runtime_error("daemon closed the connection");
    inbuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace esva::serve
