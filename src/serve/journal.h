// Write-ahead journal of the esva serve daemon: one JSONL record per
// state-changing operation, appended *after* the engine applied it and
// fsynced (in configurable batches) before the client sees the ack.
//
// Record schema (docs/FORMATS.md#wal):
//
//   header   {"op":"hdr","format":"esva-wal","version":1,"allocator":...,
//             "seed":"S","servers":N,"retry_max":...,"retry_delay":...,
//             "retry_backoff":"0x...","retry_queue":N}
//   place    {"op":"place","seq":"K","allocator":...,"vm":J,
//             "chosen":S|null,"reject":"...",?"note":...,
//             "spec":{...encode_vm...},"energy_hex":"0x..."}
//   retire   {"op":"retire","seq":"K","vm":J,"chosen":null,
//             "server":S|null,"note":"retired"}
//   advance  {"op":"advance","seq":"K","to":T}
//   fault    {"op":"fault","seq":"K","at":T,"kind":"fail","server":S}
//   drain    {"op":"drain","seq":"K"}
//
// place and retire records are deliberate *supersets* of the decision-trace
// schema (obs/trace.h): they carry "vm" and "chosen" exactly as to_jsonl
// would, so decisions_from_wal() can feed them straight through
// load_trace_jsonl and assignment_from_trace — a WAL is also a decision
// trace of the daemon's lifetime (last-write-wins gives the final hosting,
// retires landing as kNoServer). The extra keys (op/seq/spec/energy_hex) are
// ignored by the trace loader.
//
// Recovery does NOT trust recorded outcomes: it re-runs the deterministic
// engine over the journaled *inputs* (advance and fault records trigger
// policy-invoking retries and evacuations that a record-application scheme
// could not reproduce). The recorded "chosen" and cumulative "energy_hex"
// then act as replay-fidelity checksums — any divergence from the live run
// is a hard error, not silent corruption (serve/daemon.cpp).
//
// Torn tails: a malformed LAST line, or any final line missing its
// terminating newline (the crash window of an append — a completed batch
// always ends in '\n', so a newline-less tail was never acked durable), is
// dropped and flagged; malformed records anywhere else are hard errors.
// Recovery then truncates the file back to the well-formed prefix
// (truncate_wal) before appending, so the next record starts a fresh line
// instead of being concatenated onto the torn bytes.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/vm.h"
#include "core/fault_plan.h"
#include "core/streaming.h"
#include "obs/trace.h"
#include "util/types.h"

namespace esva::serve {

/// Journal-identity header: replaying a WAL under a different configuration
/// would silently produce a different daemon, so recovery hard-errors on any
/// mismatch.
struct WalHeader {
  std::string allocator;
  std::uint64_t seed = 0;
  std::size_t num_servers = 0;
  RetryPolicy retry;
};

/// One replayable journal record (the decoded form of the schema above).
struct WalRecord {
  enum class Op { kPlace, kRetire, kAdvance, kFault, kDrain };
  Op op = Op::kPlace;
  std::uint64_t seq = 0;
  VmSpec vm;                    ///< kPlace: the submitted spec
  VmId vm_id = 0;               ///< kRetire
  Time to = 0;                  ///< kAdvance
  FaultEvent fault;             ///< kFault
  /// kPlace/kRetire replay checksums: the recorded outcome.
  ServerId chosen = kNoServer;
  bool has_energy = false;
  Energy energy_after = 0.0;    ///< cumulative engine energy after the op
  /// The verbatim journal line (decisions_from_wal re-parses it through the
  /// decision-trace loader).
  std::string raw;
};

struct WalFile {
  WalHeader header;
  /// False when the file was absent or empty (header is then meaningless).
  bool has_header = false;
  std::vector<WalRecord> records;
  /// True when a torn final line was dropped (crash mid-append).
  bool torn_tail = false;
  /// Byte offset just past the last well-formed, newline-terminated line —
  /// the prefix that survives recovery. With torn_tail set, everything past
  /// this offset is the torn bytes; truncate_wal must cut them off before a
  /// WalWriter reopens the file, or the next O_APPEND record would be
  /// concatenated onto the torn line and corrupt it.
  std::uint64_t valid_bytes = 0;
};

// --- record encoders (daemon side) -----------------------------------------

std::string encode_wal_header(const WalHeader& header);
std::string encode_place_record(std::uint64_t seq, const std::string& allocator,
                                const VmSpec& vm,
                                const PlacementDecision& decision,
                                Energy energy_after);
std::string encode_retire_record(std::uint64_t seq, VmId vm, ServerId host);
std::string encode_advance_record(std::uint64_t seq, Time to);
std::string encode_fault_record(std::uint64_t seq, const FaultEvent& event);
std::string encode_drain_record(std::uint64_t seq);

/// Parses a whole journal. Throws std::runtime_error on a missing/invalid
/// header or a malformed non-final record; a malformed final line only sets
/// torn_tail. An empty path-or-file yields an empty WalFile with a
/// default-constructed header (records empty) — callers treat that as a
/// fresh journal.
WalFile read_wal(const std::string& path);

/// Truncates the journal to its well-formed prefix (WalFile::valid_bytes)
/// and fsyncs, discarding a torn tail so the next append starts on a fresh
/// line. Recovery must call this before constructing a WalWriter whenever
/// read_wal reported torn_tail. Throws std::runtime_error on I/O failure.
void truncate_wal(const std::string& path, std::uint64_t valid_bytes);

/// The place/retire records as decision-trace entries, via the real trace
/// loader (load_trace_jsonl) — pinning that every journal line stays
/// schema-compatible with obs/trace.h. Last-write-wins over these (e.g.
/// assignment_from_trace) yields the daemon's final hosting.
std::vector<VmDecisionTrace> decisions_from_wal(
    const std::vector<WalRecord>& records);

/// Append-only journal writer over a raw fd (O_APPEND) with group commit:
/// appended records accumulate in a user-space batch buffer that reaches
/// the kernel as one write() followed by one fsync() per `sync_every`
/// records (and on explicit sync()). With sync_every == 1 every record is
/// written and durable before its ack; larger values widen the crash
/// window — a process or power crash loses at most the un-synced batch of
/// sync_every - 1 acked records, which replay-after-restart recovers from
/// the clients' perspective as at-least-once. Each batch lands in a single
/// O_APPEND write(), so concurrent writers never interleave mid-line.
class WalWriter {
 public:
  /// Opens (creating if absent) for append. `fresh_header` is written — and
  /// synced — only when the file is empty.
  WalWriter(const std::string& path, const WalHeader& fresh_header,
            int sync_every);
  /// Best-effort flush of any pending batch, then close (never throws).
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record line (newline added here). Returns true when the
  /// batch boundary was reached and the journal was fsynced.
  bool append(const std::string& line);

  /// Writes any pending batch and fsyncs (drain, snapshot, shutdown).
  void sync();

  std::uint64_t appended() const { return appended_; }

 private:
  /// write()s the pending batch buffer to the fd and clears it.
  void flush_pending();

  int fd_ = -1;
  int sync_every_ = 1;
  int since_sync_ = 0;
  std::uint64_t appended_ = 0;
  std::string pending_;  ///< buffered un-written records, capacity reused
};

}  // namespace esva::serve
