// Minimal blocking client for the esva serve wire protocol: connects to the
// daemon's unix stream socket and exchanges one line-delimited JSON request
// per response. Backs `esva client` (app/commands.cpp) and the end-to-end
// serve tests.

#pragma once

#include <string>

namespace esva::serve {

class Client {
 public:
  /// Connects to a listening daemon. Throws std::runtime_error when the
  /// socket is absent or refuses.
  explicit Client(const std::string& socket_path);
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Sends one request line (newline appended here) and blocks for the
  /// response line. Throws std::runtime_error when the daemon hangs up.
  std::string call(const std::string& line);

 private:
  int fd_ = -1;
  std::string inbuf_;
};

}  // namespace esva::serve
