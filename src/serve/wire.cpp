#include "serve/wire.h"

#include <cstdio>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/parse.h"

namespace esva::serve {

std::string to_string(OpKind op) {
  switch (op) {
    case OpKind::kPlace:
      return "place";
    case OpKind::kRetire:
      return "retire";
    case OpKind::kAdvance:
      return "advance";
    case OpKind::kFault:
      return "fault";
    case OpKind::kStats:
      return "stats";
    case OpKind::kSnapshot:
      return "snapshot";
    case OpKind::kDrain:
      return "drain";
  }
  return "?";
}

void append_hex_double(std::string& out, double value) {
  // Hand-rolled glibc-compatible "%a" for finite normals and zero —
  // "0x1.<frac, trailing zeros trimmed>p<sign><decimal exp>" — because
  // snprintf dominates the per-record journal encode cost (three hexfloats
  // per place record; the BENCH_perf.json "wal" gate bounds the whole
  // journal path at <= 5% over the bare replay). Subnormals, infinities and
  // NaNs take the snprintf path; round-tripping via strtod is exact either
  // way.
  std::uint64_t bits;
  std::memcpy(&bits, &value, sizeof bits);
  const std::uint64_t frac = bits & ((std::uint64_t{1} << 52) - 1);
  const int rawexp = static_cast<int>((bits >> 52) & 0x7ff);
  if (rawexp == 0x7ff || (rawexp == 0 && frac != 0)) {
    char buf[64];
    const int n = std::snprintf(buf, sizeof(buf), "\"%a\"", value);
    out.append(buf, static_cast<std::size_t>(n));
    return;
  }
  char buf[32];
  char* p = buf;
  *p++ = '"';
  if (bits >> 63) *p++ = '-';
  *p++ = '0';
  *p++ = 'x';
  *p++ = rawexp == 0 ? '0' : '1';  // rawexp == 0 here means +-0.0
  if (frac != 0) {
    static constexpr char kHex[] = "0123456789abcdef";
    *p++ = '.';
    int digits = 13;
    for (std::uint64_t f = frac; (f & 0xf) == 0; f >>= 4) --digits;
    for (int i = 0; i < digits; ++i)
      *p++ = kHex[(frac >> (48 - 4 * i)) & 0xf];
  }
  *p++ = 'p';
  const int exp = rawexp == 0 ? 0 : rawexp - 1023;
  *p++ = exp < 0 ? '-' : '+';
  unsigned mag = exp < 0 ? static_cast<unsigned>(-exp)
                         : static_cast<unsigned>(exp);
  char rev[8];
  int n = 0;
  do {
    rev[n++] = static_cast<char>('0' + mag % 10);
    mag /= 10;
  } while (mag != 0);
  while (n > 0) *p++ = rev[--n];
  *p++ = '"';
  out.append(buf, static_cast<std::size_t>(p - buf));
}

std::string hex_double(double value) {
  std::string out;
  append_hex_double(out, value);
  return out;
}

double number_or_hex(const json::Value& v, const std::string& context) {
  if (v.kind == json::Value::Kind::Number) return v.number;
  if (v.kind == json::Value::Kind::String)
    return parse_double_field(v.string, context);
  throw std::runtime_error(context + ": expected a number or hexfloat string");
}

double require_number_or_hex(const json::Value& obj, const std::string& key,
                             const std::string& context) {
  const json::Value* v = obj.find(key);
  if (!v)
    throw std::runtime_error(context + ": missing field '" + key + "'");
  return number_or_hex(*v, context + " field '" + key + "'");
}

namespace {

Time require_time(const json::Value& obj, const std::string& key,
                  const std::string& context) {
  return static_cast<Time>(json::require_integer(
      obj, key, std::numeric_limits<Time>::min(),
      std::numeric_limits<Time>::max(), context));
}

}  // namespace

void append_vm(std::string& out, const VmSpec& vm) {
  out += "{\"id\":";
  out += std::to_string(vm.id);
  if (!vm.type_name.empty()) {
    out += ",\"type\":";
    out += json::escape(vm.type_name);
  }
  out += ",\"cpu\":";
  append_hex_double(out, vm.demand.cpu);
  out += ",\"mem\":";
  append_hex_double(out, vm.demand.mem);
  out += ",\"start\":";
  out += std::to_string(vm.start);
  out += ",\"end\":";
  out += std::to_string(vm.end);
  if (vm.has_profile()) {
    out += ",\"profile\":[";
    for (std::size_t k = 0; k < vm.profile.size(); ++k) {
      if (k > 0) out += ',';
      out += '[';
      append_hex_double(out, vm.profile[k].cpu);
      out += ',';
      append_hex_double(out, vm.profile[k].mem);
      out += ']';
    }
    out += ']';
  }
  out += '}';
}

std::string encode_vm(const VmSpec& vm) {
  std::string out;
  out.reserve(160);
  append_vm(out, vm);
  return out;
}

VmSpec decode_vm(const json::Value& obj, const std::string& context) {
  if (obj.kind != json::Value::Kind::Object)
    throw std::runtime_error(context + ": vm must be a JSON object");
  VmSpec vm;
  vm.id = static_cast<VmId>(json::require_integer(
      obj, "id", 0, std::numeric_limits<VmId>::max(), context));
  if (const json::Value* t = obj.find("type");
      t && t->kind == json::Value::Kind::String)
    vm.type_name = t->string;
  vm.demand.cpu = require_number_or_hex(obj, "cpu", context);
  vm.demand.mem = require_number_or_hex(obj, "mem", context);
  vm.start = require_time(obj, "start", context);
  vm.end = require_time(obj, "end", context);
  if (const json::Value* p = obj.find("profile"); p && !p->is_null()) {
    if (p->kind != json::Value::Kind::Array)
      throw std::runtime_error(context + ": profile must be an array");
    std::vector<Resources> profile;
    profile.reserve(p->array.size());
    for (const json::Value& entry : p->array) {
      if (entry.kind != json::Value::Kind::Array || entry.array.size() != 2)
        throw std::runtime_error(context +
                                 ": profile entries are [cpu,mem] pairs");
      profile.push_back(
          Resources{number_or_hex(entry.array[0], context + " profile cpu"),
                    number_or_hex(entry.array[1], context + " profile mem")});
    }
    vm.set_profile(std::move(profile));
  }
  if (!vm.valid())
    throw std::runtime_error(context + ": invalid vm spec (interval or "
                                       "demands malformed)");
  return vm;
}

std::string encode_request(const Request& req) {
  std::string out = "{\"op\":" + json::escape(to_string(req.op));
  if (req.has_id) out += ",\"id\":" + std::to_string(req.id);
  switch (req.op) {
    case OpKind::kPlace:
      out += ",\"vm\":" + encode_vm(req.vm);
      break;
    case OpKind::kRetire:
      out += ",\"vm\":" + std::to_string(req.vm_id);
      break;
    case OpKind::kAdvance:
      out += ",\"to\":" + std::to_string(req.to);
      break;
    case OpKind::kFault:
      out += ",\"at\":" + std::to_string(req.fault.at);
      out += ",\"kind\":" + json::escape(esva::to_string(req.fault.kind));
      out += ",\"server\":" + std::to_string(req.fault.server);
      break;
    case OpKind::kStats:
      if (req.with_assignment) out += ",\"assignment\":true";
      break;
    case OpKind::kSnapshot:
    case OpKind::kDrain:
      break;
  }
  out += '}';
  return out;
}

Request decode_request(const std::string& line) {
  const json::Value root = json::parse(line);
  if (root.kind != json::Value::Kind::Object)
    throw std::runtime_error("request must be a JSON object");
  const std::string& op = json::require_string(root, "op", "request");

  Request req;
  if (const json::Value* id = root.find("id"); id && !id->is_null()) {
    req.id = json::require_integer(root, "id",
                                   std::numeric_limits<long long>::min(),
                                   std::numeric_limits<long long>::max(),
                                   "request");
    req.has_id = true;
  }

  if (op == "place") {
    req.op = OpKind::kPlace;
    const json::Value* vm = root.find("vm");
    if (!vm) throw std::runtime_error("place: missing field 'vm'");
    req.vm = decode_vm(*vm, "place vm");
  } else if (op == "retire") {
    req.op = OpKind::kRetire;
    req.vm_id = static_cast<VmId>(json::require_integer(
        root, "vm", 0, std::numeric_limits<VmId>::max(), "retire"));
  } else if (op == "advance") {
    req.op = OpKind::kAdvance;
    req.to = require_time(root, "to", "advance");
  } else if (op == "fault") {
    req.op = OpKind::kFault;
    req.fault.at = require_time(root, "at", "fault");
    const std::string& kind = json::require_string(root, "kind", "fault");
    if (kind == "fail")
      req.fault.kind = FaultKind::kFail;
    else if (kind == "drain")
      req.fault.kind = FaultKind::kDrain;
    else if (kind == "recover")
      req.fault.kind = FaultKind::kRecover;
    else
      throw std::runtime_error("fault: unknown kind '" + kind +
                               "' (fail|drain|recover)");
    req.fault.server = static_cast<ServerId>(json::require_integer(
        root, "server", 0, std::numeric_limits<ServerId>::max(), "fault"));
  } else if (op == "stats") {
    req.op = OpKind::kStats;
    if (const json::Value* a = root.find("assignment");
        a && a->kind == json::Value::Kind::Bool)
      req.with_assignment = a->boolean;
  } else if (op == "snapshot") {
    req.op = OpKind::kSnapshot;
  } else if (op == "drain") {
    req.op = OpKind::kDrain;
  } else {
    throw std::runtime_error(
        "unknown op '" + op +
        "' (place|retire|advance|fault|stats|snapshot|drain)");
  }
  return req;
}

}  // namespace esva::serve
