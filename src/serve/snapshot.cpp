#include "serve/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "serve/wire.h"
#include "util/json.h"
#include "util/parse.h"

namespace esva::serve {

namespace {

constexpr int kSnapshotVersion = 1;

std::string u64_field(std::uint64_t v) { return "\"" + std::to_string(v) + "\""; }

std::uint64_t require_u64(const json::Value& obj, const std::string& key,
                          const std::string& context) {
  const json::Value* v = obj.find(key);
  if (!v || v->kind != json::Value::Kind::String)
    throw std::runtime_error(context + ": missing string field '" + key + "'");
  return parse_u64_field(v->string, context + " field '" + key + "'");
}

template <typename T>
T require_int(const json::Value& obj, const std::string& key,
              const std::string& context) {
  return static_cast<T>(json::require_integer(obj, key,
                                              std::numeric_limits<T>::min(),
                                              std::numeric_limits<T>::max(),
                                              context));
}

const json::Value& require_member(const json::Value& obj,
                                  const std::string& key,
                                  json::Value::Kind kind,
                                  const std::string& context) {
  const json::Value* v = obj.find(key);
  if (!v || v->kind != kind)
    throw std::runtime_error(context + ": missing or mistyped field '" + key +
                             "'");
  return *v;
}

ServerHealth health_from_string(const std::string& s) {
  if (s == "up") return ServerHealth::kUp;
  if (s == "drained") return ServerHealth::kDrained;
  if (s == "failed") return ServerHealth::kFailed;
  throw std::runtime_error("snapshot: unknown server health '" + s + "'");
}

std::string encode_engine(const EngineStateSnapshot& e) {
  std::string out = "{\"frontier\":" + std::to_string(e.frontier);
  out += ",\"horizon\":" + std::to_string(e.horizon);
  out += ",\"requests\":" + std::to_string(e.requests);
  out += ",\"placed\":" + std::to_string(e.placed);
  out += ",\"energy_hex\":" + hex_double(e.energy);
  out += ",\"peak_resident\":" + std::to_string(e.peak_resident);
  out += ",\"fault_cursor\":" + std::to_string(e.fault_cursor);
  out += ",\"retry_seq\":" + u64_field(e.retry_seq);
  out += ",\"servers\":[";
  for (std::size_t i = 0; i < e.servers.size(); ++i) {
    const ServerStateSnapshot& s = e.servers[i];
    if (i > 0) out += ',';
    out += "{\"health\":" + json::escape(esva::to_string(s.health));
    out += ",\"retired_hi\":" + std::to_string(s.retired_hi);
    out += ",\"active\":[";
    for (std::size_t k = 0; k < s.active.size(); ++k) {
      if (k > 0) out += ',';
      out += encode_vm(s.active[k]);
    }
    out += "]}";
  }
  out += "],\"retry_queue\":[";
  for (std::size_t k = 0; k < e.retry_queue.size(); ++k) {
    const PendingSnapshot& p = e.retry_queue[k];
    if (k > 0) out += ',';
    out += "{\"vm\":" + encode_vm(p.vm);
    out += ",\"not_before\":" + std::to_string(p.not_before);
    out += ",\"attempts\":" + std::to_string(p.attempts);
    out += ",\"displaced\":";
    out += p.displaced ? "true" : "false";
    out += ",\"waiting_since\":" + std::to_string(p.waiting_since);
    out += ",\"seq\":" + u64_field(p.seq);
    out += '}';
  }
  out += "],\"fault_stats\":{";
  const FaultStats& f = e.fault_stats;
  out += "\"fault_events\":" + std::to_string(f.fault_events);
  out += ",\"late_arrivals\":" + std::to_string(f.late_arrivals);
  out += ",\"displaced\":" + std::to_string(f.displaced);
  out += ",\"evacuated\":" + std::to_string(f.evacuated);
  out += ",\"deferred\":" + std::to_string(f.deferred);
  out += ",\"retries\":" + std::to_string(f.retries);
  out += ",\"retried_placed\":" + std::to_string(f.retried_placed);
  out += ",\"rejected_final\":" + std::to_string(f.rejected_final);
  out += ",\"queue_full\":" + std::to_string(f.queue_full);
  out += ",\"downtime_units\":" + std::to_string(f.downtime_units);
  out += "},\"resolutions\":[";
  for (std::size_t k = 0; k < e.resolutions.size(); ++k) {
    if (k > 0) out += ',';
    out += '[' + std::to_string(e.resolutions[k].vm) + ',' +
           std::to_string(e.resolutions[k].server) + ']';
  }
  out += "]}";
  return out;
}

EngineStateSnapshot decode_engine(const json::Value& obj) {
  const std::string ctx = "snapshot engine";
  EngineStateSnapshot e;
  e.frontier = require_int<Time>(obj, "frontier", ctx);
  e.horizon = require_int<Time>(obj, "horizon", ctx);
  e.requests = require_int<std::int64_t>(obj, "requests", ctx);
  e.placed = require_int<std::int64_t>(obj, "placed", ctx);
  const json::Value* energy = obj.find("energy_hex");
  if (!energy || energy->kind != json::Value::Kind::String)
    throw std::runtime_error(ctx + ": missing 'energy_hex'");
  e.energy = parse_double_field(energy->string, ctx + " energy_hex");
  e.peak_resident = static_cast<std::size_t>(json::require_integer(
      obj, "peak_resident", 0, std::numeric_limits<long long>::max(), ctx));
  e.fault_cursor = static_cast<std::size_t>(json::require_integer(
      obj, "fault_cursor", 0, std::numeric_limits<long long>::max(), ctx));
  e.retry_seq = require_u64(obj, "retry_seq", ctx);

  const json::Value& servers =
      require_member(obj, "servers", json::Value::Kind::Array, ctx);
  for (const json::Value& s : servers.array) {
    ServerStateSnapshot snap;
    snap.health =
        health_from_string(json::require_string(s, "health", ctx));
    snap.retired_hi = require_int<Time>(s, "retired_hi", ctx);
    const json::Value& active =
        require_member(s, "active", json::Value::Kind::Array, ctx);
    for (const json::Value& vm : active.array)
      snap.active.push_back(decode_vm(vm, "snapshot active vm"));
    e.servers.push_back(std::move(snap));
  }

  const json::Value& queue =
      require_member(obj, "retry_queue", json::Value::Kind::Array, ctx);
  for (const json::Value& q : queue.array) {
    PendingSnapshot p;
    const json::Value* vm = q.find("vm");
    if (!vm) throw std::runtime_error(ctx + ": retry entry missing 'vm'");
    p.vm = decode_vm(*vm, "snapshot retry vm");
    p.not_before = require_int<Time>(q, "not_before", ctx);
    p.attempts = require_int<int>(q, "attempts", ctx);
    if (const json::Value* d = q.find("displaced");
        d && d->kind == json::Value::Kind::Bool)
      p.displaced = d->boolean;
    p.waiting_since = require_int<Time>(q, "waiting_since", ctx);
    p.seq = require_u64(q, "seq", ctx);
    e.retry_queue.push_back(std::move(p));
  }

  const json::Value& stats =
      require_member(obj, "fault_stats", json::Value::Kind::Object, ctx);
  e.fault_stats.fault_events =
      require_int<std::int64_t>(stats, "fault_events", ctx);
  e.fault_stats.late_arrivals =
      require_int<std::int64_t>(stats, "late_arrivals", ctx);
  e.fault_stats.displaced = require_int<std::int64_t>(stats, "displaced", ctx);
  e.fault_stats.evacuated = require_int<std::int64_t>(stats, "evacuated", ctx);
  e.fault_stats.deferred = require_int<std::int64_t>(stats, "deferred", ctx);
  e.fault_stats.retries = require_int<std::int64_t>(stats, "retries", ctx);
  e.fault_stats.retried_placed =
      require_int<std::int64_t>(stats, "retried_placed", ctx);
  e.fault_stats.rejected_final =
      require_int<std::int64_t>(stats, "rejected_final", ctx);
  e.fault_stats.queue_full =
      require_int<std::int64_t>(stats, "queue_full", ctx);
  e.fault_stats.downtime_units =
      require_int<std::int64_t>(stats, "downtime_units", ctx);

  const json::Value& resolutions =
      require_member(obj, "resolutions", json::Value::Kind::Array, ctx);
  for (const json::Value& r : resolutions.array) {
    if (r.kind != json::Value::Kind::Array || r.array.size() != 2 ||
        r.array[0].kind != json::Value::Kind::Number ||
        r.array[1].kind != json::Value::Kind::Number)
      throw std::runtime_error(ctx + ": resolutions are [vm,server] pairs");
    Resolution res;
    res.vm = checked_integer_as<VmId>(r.array[0].number,
                                      ctx + " resolution vm");
    res.server = static_cast<ServerId>(checked_integer(
        r.array[1].number, kNoServer, std::numeric_limits<ServerId>::max(),
        ctx + " resolution server"));
    e.resolutions.push_back(res);
  }
  return e;
}

}  // namespace

std::string encode_snapshot(const SnapshotData& snap) {
  std::string out = "{\"format\":\"esva-snapshot\",\"version\":" +
                    std::to_string(kSnapshotVersion);
  out += ",\"allocator\":" + json::escape(snap.allocator);
  out += ",\"seed\":" + u64_field(snap.seed);
  out += ",\"servers\":" + std::to_string(snap.num_servers);
  out += ",\"wal_seq\":" + u64_field(snap.wal_seq);
  out += ",\"rng\":[";
  for (std::size_t k = 0; k < snap.rng.size(); ++k) {
    if (k > 0) out += ',';
    out += u64_field(snap.rng[k]);
  }
  out += "],\"engine\":" + encode_engine(snap.engine);
  out += ",\"assignment\":[";
  for (std::size_t k = 0; k < snap.assignment.size(); ++k) {
    if (k > 0) out += ',';
    out += '[' + std::to_string(snap.assignment[k].first) + ',' +
           std::to_string(snap.assignment[k].second) + ']';
  }
  out += "]}";
  return out;
}

SnapshotData decode_snapshot(const std::string& text) {
  const json::Value root = json::parse(text);
  if (root.kind != json::Value::Kind::Object)
    throw std::runtime_error("snapshot: not a JSON object");
  if (const json::Value* f = root.find("format");
      !f || f->kind != json::Value::Kind::String ||
      f->string != "esva-snapshot")
    throw std::runtime_error("snapshot: not an esva-snapshot document");
  const long long version = json::require_integer(
      root, "version", 1, std::numeric_limits<int>::max(), "snapshot");
  if (version != kSnapshotVersion)
    throw std::runtime_error("snapshot: unsupported version " +
                             std::to_string(version));
  SnapshotData snap;
  snap.allocator = json::require_string(root, "allocator", "snapshot");
  snap.seed = require_u64(root, "seed", "snapshot");
  snap.num_servers = static_cast<std::size_t>(json::require_integer(
      root, "servers", 0, std::numeric_limits<long long>::max(), "snapshot"));
  snap.wal_seq = require_u64(root, "wal_seq", "snapshot");
  const json::Value& rng =
      require_member(root, "rng", json::Value::Kind::Array, "snapshot");
  if (rng.array.size() != snap.rng.size())
    throw std::runtime_error("snapshot: rng must hold 4 words");
  for (std::size_t k = 0; k < snap.rng.size(); ++k) {
    if (rng.array[k].kind != json::Value::Kind::String)
      throw std::runtime_error("snapshot: rng words are decimal strings");
    snap.rng[k] = parse_u64_field(rng.array[k].string, "snapshot rng word");
  }
  const json::Value& engine =
      require_member(root, "engine", json::Value::Kind::Object, "snapshot");
  snap.engine = decode_engine(engine);
  if (snap.engine.servers.size() != snap.num_servers)
    throw std::runtime_error("snapshot: engine.servers disagrees with the "
                             "declared fleet size");
  const json::Value& assignment =
      require_member(root, "assignment", json::Value::Kind::Array, "snapshot");
  for (const json::Value& pair : assignment.array) {
    if (pair.kind != json::Value::Kind::Array || pair.array.size() != 2 ||
        pair.array[0].kind != json::Value::Kind::Number ||
        pair.array[1].kind != json::Value::Kind::Number)
      throw std::runtime_error("snapshot: assignment entries are "
                               "[vm,server] pairs");
    const VmId vm = checked_integer_as<VmId>(pair.array[0].number,
                                             "snapshot assignment vm");
    const ServerId server = static_cast<ServerId>(checked_integer(
        pair.array[1].number, kNoServer, std::numeric_limits<ServerId>::max(),
        "snapshot assignment server"));
    snap.assignment.emplace_back(vm, server);
  }
  return snap;
}

void write_snapshot_atomic(const std::string& path, const SnapshotData& snap) {
  const std::string tmp = path + ".tmp";
  const std::string body = encode_snapshot(snap) + "\n";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0)
    throw std::runtime_error("cannot open snapshot tmp '" + tmp +
                             "': " + std::strerror(errno));
  std::size_t off = 0;
  while (off < body.size()) {
    const ssize_t n = ::write(fd, body.data() + off, body.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error(std::string("snapshot write failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    throw std::runtime_error("snapshot fsync failed");
  }
  ::close(fd);
  if (::rename(tmp.c_str(), path.c_str()) != 0)
    throw std::runtime_error("snapshot rename failed: " +
                             std::string(std::strerror(errno)));
  // Make the rename itself durable.
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  const int dirfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dirfd >= 0) {
    ::fsync(dirfd);
    ::close(dirfd);
  }
}

SnapshotData load_snapshot(const std::string& path, bool* found) {
  std::ifstream in(path);
  if (!in) {
    if (found) *found = false;
    return SnapshotData{};
  }
  if (found) *found = true;
  std::ostringstream buf;
  buf << in.rdbuf();
  return decode_snapshot(buf.str());
}

}  // namespace esva::serve
