// The esva serve daemon: a long-running scheduler wrapping a PlacementEngine
// behind the line-delimited JSON wire protocol (serve/wire.h), durable via a
// write-ahead journal (serve/journal.h) and periodic snapshots
// (serve/snapshot.h).
//
// Durability contract: every state-changing op is applied to the engine
// first, then journaled, then acked (append-after-apply; the fsync schedule
// is WalWriter's). A restarted daemon reconstructs its state by loading the
// latest snapshot (if any) and *re-running the engine* over the journal
// records after it — the same deterministic policy with the same seed makes
// replay reproduce every decision bit-for-bit, and the journal's recorded
// outcomes (chosen server, cumulative energy as hexfloat) are verified as
// replay-fidelity checksums. tests/test_serve.cpp pins that a daemon-fed
// stream — including one SIGKILLed and restarted mid-stream — produces
// assignments and total energy byte-identical to the same workload through
// `esva stream` (sim/replay.cpp).
//
// Engine configuration mirrors replay_stream exactly (grow-on-demand
// horizon, auto-advance, energy accounting, tolerated late arrivals); fault
// events arrive as client ops through PlacementEngine::apply_fault instead
// of a pre-bound plan, which runs the identical per-event code path.
//
// Threading: the daemon is single-threaded; serve_loop multiplexes
// connections with poll() and handles one request at a time, so the engine
// needs no locking and responses are totally ordered.

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/allocator.h"
#include "core/streaming.h"
#include "serve/journal.h"
#include "serve/wire.h"
#include "util/rng.h"

namespace esva::serve {

struct DaemonOptions {
  std::string allocator = "min-incremental";
  std::uint64_t seed = 42;
  /// Write-ahead journal path; required.
  std::string wal_path;
  /// Snapshot path; empty disables snapshots (recovery then replays the
  /// whole journal).
  std::string snapshot_path;
  /// Journal fsync batching (WalWriter): 1 = every op durable before its
  /// ack, N = group commit of N.
  int wal_sync_every = 1;
  /// Auto-snapshot after this many journaled ops (0 = only on explicit
  /// snapshot/drain ops). Needs snapshot_path.
  std::uint64_t snapshot_every = 0;
  /// Deferred-retry configuration, forwarded to the engine. Recorded in the
  /// journal header and validated on recovery.
  RetryPolicy retry;
  /// Candidate-scan configuration (threads/cache/shards) — a pure
  /// performance knob, decisions are identical at any setting.
  ScanConfig scan;
  CostOptions cost;
  Energy migration_cost_per_gib = 25.0;
};

class Daemon {
 public:
  /// Builds the engine and runs recovery: snapshot restore (if one exists),
  /// then journal replay of every record past it, with checksum
  /// verification. Throws std::runtime_error on header/config mismatches,
  /// mid-journal corruption, or replay divergence.
  Daemon(std::vector<ServerSpec> servers, DaemonOptions options);
  ~Daemon();
  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Handles one request line, returns one response line (never throws —
  /// failures become {"ok":false,...} responses). A journal append/sync
  /// failure (ENOSPC, EIO) is NOT an ordinary op error: the engine already
  /// applied the op, so in-memory state is ahead of the durable journal and
  /// replay could no longer reproduce it. The daemon then halts — the
  /// failing op gets its error response, every later line is refused, and
  /// serve_loop exits — matching the refuse-to-serve-on-divergence
  /// philosophy of recovery.
  std::string handle_line(const std::string& line);

  /// Non-empty once a journal write failed and the daemon refuses further
  /// ops (the message explains why).
  const std::string& fatal_error() const { return fatal_; }
  bool halted() const { return !fatal_.empty(); }

  /// End-of-stream drain: finish_stream + journal + sync + snapshot. The
  /// same code path as the wire-level drain op.
  void drain();

  /// Durability checkpoint without draining: journal sync + snapshot (when
  /// configured). Called on graceful shutdown — deliberately NOT drain(), so
  /// a restarted daemon continues the stream with its retry queue intact.
  void checkpoint();

  /// Serves the wire protocol on a unix stream socket until `stop` becomes
  /// true (checked between poll rounds; flip it from a signal handler).
  /// `on_listening` fires once the socket accepts connections (tests).
  /// Returns 0 on a clean stop, 1 when the daemon halted on a journal
  /// failure (fatal_error() has the reason — do NOT checkpoint then, the
  /// snapshot would capture state the journal never recorded); throws on
  /// socket setup failures.
  int serve_loop(const std::string& socket_path, const std::atomic<bool>& stop,
                 const std::function<void()>& on_listening = {});

  // --- introspection (tests, stats op) ------------------------------------
  const PlacementEngine& engine() const { return *engine_; }
  const std::map<VmId, ServerId>& assignment() const { return assignment_; }
  std::uint64_t last_seq() const { return next_seq_ - 1; }
  /// Records re-run during recovery and whether a torn tail was dropped.
  std::uint64_t replayed_records() const { return replayed_; }
  bool recovered_torn_tail() const { return torn_tail_; }
  bool recovered_from_snapshot() const { return from_snapshot_; }
  /// `with_id`/`id`: echo the client's correlation token like every other
  /// response does.
  std::string stats_json(bool with_assignment, bool with_id = false,
                         long long id = 0) const;

 private:
  PlacementDecision apply_place(const VmSpec& vm);
  ServerId apply_retire(VmId vm);
  void replay_record(const WalRecord& rec);
  /// Folds engine resolutions (evacuations, retry placements, unresolved
  /// displacements) accrued since the last call into the assignment map.
  void sync_resolutions();
  void journal(const std::string& record);
  /// WalWriter::append / ::sync with halt-on-failure semantics: a throw
  /// records fatal_ (the engine is ahead of the journal) and rethrows.
  void wal_append(const std::string& record);
  void wal_sync();
  void do_snapshot();
  std::string dispatch(const Request& req);

  DaemonOptions options_;
  WalHeader header_;
  AllocatorPtr allocator_;
  std::unique_ptr<PlacementPolicy> policy_;
  Rng rng_;
  std::unique_ptr<PlacementEngine> engine_;
  std::unique_ptr<WalWriter> wal_;
  std::uint64_t next_seq_ = 1;
  std::map<VmId, ServerId> assignment_;
  std::size_t resolutions_applied_ = 0;
  std::uint64_t ops_since_snapshot_ = 0;
  std::uint64_t replayed_ = 0;
  bool torn_tail_ = false;
  bool from_snapshot_ = false;
  /// Set on the first journal write failure; the daemon refuses ops after.
  std::string fatal_;
};

}  // namespace esva::serve
