// Wire protocol of the esva serve daemon: line-delimited JSON requests and
// responses over a local stream socket (docs/SERVE.md has the full schema).
// One request line in, one response line out, in order. The same codec backs
// the journal's "spec" payloads (serve/journal.h) and the snapshot's VM
// lists (serve/snapshot.h), so a VmSpec round-trips through every durable
// format with one implementation.
//
// Exactness: doubles that must survive a write/replay cycle bit-for-bit
// (demands, profiles, energies) are encoded as C99 hexfloat *strings*
// ("0x1.8p+1"); the decoder accepts either a hexfloat string or a plain JSON
// number, so handwritten client requests stay ergonomic while daemon-emitted
// records round-trip exactly.

#pragma once

#include <string>

#include "cluster/vm.h"
#include "core/fault_plan.h"
#include "util/json.h"
#include "util/types.h"

namespace esva::serve {

/// Operations a client can request.
enum class OpKind {
  kPlace,     ///< submit one VM request to the engine
  kRetire,    ///< early-terminate a VM (frees its capacity now)
  kAdvance,   ///< advance the engine frontier (fires due retries, GC)
  kFault,     ///< apply one fail/drain/recover event
  kStats,     ///< engine counters + energy; no state change, not journaled
  kSnapshot,  ///< force a durable snapshot now
  kDrain,     ///< end-of-stream: finish_stream + sync + snapshot
};

std::string to_string(OpKind op);

/// One decoded client request. `id` is an opaque client correlation token
/// echoed in the response when present.
struct Request {
  OpKind op = OpKind::kStats;
  bool has_id = false;
  long long id = 0;
  VmSpec vm;                            ///< kPlace
  VmId vm_id = 0;                       ///< kRetire
  Time to = 0;                          ///< kAdvance
  FaultEvent fault;                     ///< kFault
  bool with_assignment = false;         ///< kStats: include the vm->server map
};

/// Exact double encoding: a JSON string holding the C99 %a hexfloat.
std::string hex_double(double value);

/// hex_double appended in place — the journal hot path (encode_place_record
/// runs once per acked placement) avoids the temporary.
void append_hex_double(std::string& out, double value);

/// Accepts a plain JSON number or a hexfloat string; throws
/// std::runtime_error("<context>: ...") otherwise.
double number_or_hex(const json::Value& v, const std::string& context);

/// number_or_hex on a required object member.
double require_number_or_hex(const json::Value& obj, const std::string& key,
                             const std::string& context);

/// VmSpec as a JSON object: {"id","type","cpu","mem","start","end"} plus
/// "profile":[[cpu,mem],...] when profiled. Demands are hexfloat strings.
std::string encode_vm(const VmSpec& vm);

/// encode_vm appended in place (journal hot path).
void append_vm(std::string& out, const VmSpec& vm);

/// Inverse of encode_vm; also accepts plain numbers for the demands.
/// Validates VmSpec::valid() and throws std::runtime_error otherwise.
VmSpec decode_vm(const json::Value& obj, const std::string& context);

/// Serializes a request as one line (no trailing newline).
std::string encode_request(const Request& req);

/// Parses and validates one request line. Throws std::runtime_error with a
/// structured message on malformed JSON, unknown ops, or bad fields.
Request decode_request(const std::string& line);

}  // namespace esva::serve
