#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <stdexcept>

#include "baselines/registry.h"
#include "serve/snapshot.h"
#include "util/json.h"

namespace esva::serve {

namespace {

std::string u64_field(std::uint64_t v) { return "\"" + std::to_string(v) + "\""; }

std::string error_response(const Request* req, const std::string& what) {
  std::string out = "{\"ok\":false";
  if (req && req->has_id) out += ",\"id\":" + std::to_string(req->id);
  out += ",\"error\":" + json::escape(what) + '}';
  return out;
}

std::string fmt_energy17(Energy e) {
  std::ostringstream out;
  out.precision(17);
  out << e;
  return out.str();
}

}  // namespace

Daemon::Daemon(std::vector<ServerSpec> servers, DaemonOptions options)
    : options_(std::move(options)), rng_(options_.seed) {
  if (options_.wal_path.empty())
    throw std::invalid_argument("serve: a --wal path is required");
  if (options_.snapshot_every > 0 && options_.snapshot_path.empty())
    throw std::invalid_argument(
        "serve: --snapshot-every needs a --snapshot path");

  header_.allocator = options_.allocator;
  header_.seed = options_.seed;
  header_.num_servers = servers.size();
  header_.retry = options_.retry;

  // The engine mirrors replay_stream's configuration exactly (sim/replay.cpp)
  // so a daemon-fed stream is byte-identical to `esva stream`: grow-on-demand
  // horizon, auto-advance GC, energy accounting, tolerated stragglers. Fault
  // events arrive as ops (PlacementEngine::apply_fault), not a plan.
  allocator_ = make_allocator(options_.allocator);
  allocator_->set_scan_config(options_.scan);
  policy_ = allocator_->make_policy();
  if (!policy_)
    throw std::invalid_argument("allocator '" + options_.allocator +
                                "' is batch-only (no streaming policy)");
  EngineOptions eopts;
  eopts.initial_horizon = 0;
  eopts.auto_advance = true;
  eopts.account_energy = true;
  eopts.cost = options_.cost;
  eopts.tolerate_late_arrivals = true;
  eopts.faults = nullptr;
  eopts.retry = options_.retry;
  eopts.migration_cost_per_gib = options_.migration_cost_per_gib;
  eopts.shard = options_.scan.shard_options();
  engine_ = std::make_unique<PlacementEngine>(std::move(servers), *policy_,
                                              rng_, eopts);

  // --- recovery: snapshot restore, then journal replay past it ------------
  std::uint64_t applied = 0;
  if (!options_.snapshot_path.empty()) {
    bool found = false;
    const SnapshotData snap = load_snapshot(options_.snapshot_path, &found);
    if (found) {
      if (snap.allocator != header_.allocator || snap.seed != header_.seed ||
          snap.num_servers != header_.num_servers)
        throw std::runtime_error(
            "snapshot '" + options_.snapshot_path +
            "' was produced by a different daemon configuration "
            "(allocator/seed/fleet mismatch)");
      engine_->import_state(snap.engine);
      rng_.set_state(snap.rng);
      for (const auto& [vm, server] : snap.assignment)
        assignment_[vm] = server;
      resolutions_applied_ = engine_->resolutions().size();
      applied = snap.wal_seq;
      from_snapshot_ = true;
    }
  }

  const WalFile wal = read_wal(options_.wal_path);
  torn_tail_ = wal.torn_tail;
  if (wal.has_header) {
    if (wal.header.allocator != header_.allocator ||
        wal.header.seed != header_.seed ||
        wal.header.num_servers != header_.num_servers ||
        wal.header.retry.max_attempts != header_.retry.max_attempts ||
        wal.header.retry.base_delay != header_.retry.base_delay ||
        wal.header.retry.backoff != header_.retry.backoff ||
        wal.header.retry.queue_capacity != header_.retry.queue_capacity)
      throw std::runtime_error(
          "wal '" + options_.wal_path +
          "' was produced by a different daemon configuration "
          "(allocator/seed/fleet/retry mismatch)");
  } else if (from_snapshot_) {
    throw std::runtime_error("snapshot present but wal '" + options_.wal_path +
                             "' is missing or empty");
  }
  std::uint64_t last_seq = applied;
  for (const WalRecord& rec : wal.records) {
    last_seq = rec.seq;
    if (rec.seq <= applied) continue;  // already inside the snapshot
    replay_record(rec);
    ++replayed_;
  }
  next_seq_ = std::max(applied, last_seq) + 1;

  // A torn tail must be cut off before the O_APPEND writer reopens the
  // file, or the next record would be concatenated onto the torn bytes and
  // the merged line would read as mid-file corruption on the following
  // restart.
  if (wal.torn_tail) truncate_wal(options_.wal_path, wal.valid_bytes);

  wal_ = std::make_unique<WalWriter>(options_.wal_path, header_,
                                     options_.wal_sync_every);
}

Daemon::~Daemon() = default;

PlacementDecision Daemon::apply_place(const VmSpec& vm) {
  const PlacementDecision decision = engine_->submit(vm);
  // A submit can drain due retries for *other* requests first; fold those
  // resolutions in before recording this request's own outcome.
  sync_resolutions();
  assignment_[vm.id] = decision.server;
  return decision;
}

ServerId Daemon::apply_retire(VmId vm) {
  const ServerId host = engine_->retire_vm(vm);
  sync_resolutions();
  // Trace semantics: a retire journals "chosen":null, so last-write-wins
  // over the journal resolves this VM to kNoServer — mirror that here.
  assignment_[vm] = kNoServer;
  return host;
}

void Daemon::replay_record(const WalRecord& rec) {
  const std::string where = "wal replay (seq " + std::to_string(rec.seq) + ")";
  switch (rec.op) {
    case WalRecord::Op::kPlace: {
      const PlacementDecision decision = apply_place(rec.vm);
      // Fidelity checksums: the deterministic re-run must land exactly where
      // the live run did — on the same server, at the same cumulative
      // energy (bit-exact, hence hexfloat). Divergence means the journal
      // and the engine configuration no longer agree; refusing to serve is
      // the only safe answer.
      if (decision.server != rec.chosen)
        throw std::runtime_error(
            where + ": replay chose server " +
            std::to_string(decision.server) + ", journal recorded " +
            std::to_string(rec.chosen));
      if (rec.has_energy && engine_->total_energy() != rec.energy_after)
        throw std::runtime_error(where +
                                 ": replay energy diverged from the journal");
      break;
    }
    case WalRecord::Op::kRetire: {
      const ServerId host = apply_retire(rec.vm_id);
      if (host != rec.chosen)
        throw std::runtime_error(
            where + ": replay retired from server " + std::to_string(host) +
            ", journal recorded " + std::to_string(rec.chosen));
      break;
    }
    case WalRecord::Op::kAdvance:
      engine_->advance_to(rec.to);
      sync_resolutions();
      break;
    case WalRecord::Op::kFault:
      engine_->apply_fault(rec.fault);
      sync_resolutions();
      break;
    case WalRecord::Op::kDrain:
      engine_->finish_stream();
      sync_resolutions();
      break;
  }
}

void Daemon::sync_resolutions() {
  const std::vector<Resolution>& rs = engine_->resolutions();
  for (; resolutions_applied_ < rs.size(); ++resolutions_applied_)
    assignment_[rs[resolutions_applied_].vm] = rs[resolutions_applied_].server;
}

void Daemon::wal_append(const std::string& record) {
  try {
    wal_->append(record);
  } catch (const std::exception& e) {
    // The engine already applied the op this record describes: in-memory
    // state is now ahead of the durable journal, and every later record's
    // chosen/energy checksums would be computed from state a replay can
    // never reach. Serving on would be silent divergence — halt instead.
    fatal_ = std::string("journal append failed (") + e.what() +
             "); engine state is ahead of the durable journal, halting";
    throw std::runtime_error(fatal_);
  }
}

void Daemon::wal_sync() {
  try {
    wal_->sync();
  } catch (const std::exception& e) {
    fatal_ = std::string("journal sync failed (") + e.what() +
             "); acked records may not be durable, halting";
    throw std::runtime_error(fatal_);
  }
}

void Daemon::journal(const std::string& record) {
  wal_append(record);
  ++next_seq_;
  if (options_.snapshot_every > 0 &&
      ++ops_since_snapshot_ >= options_.snapshot_every)
    do_snapshot();
}

void Daemon::do_snapshot() {
  if (options_.snapshot_path.empty()) return;
  // Everything the snapshot claims as applied must be durable in the
  // journal first, or a crash between the two could leave a snapshot ahead
  // of its own journal.
  wal_sync();
  SnapshotData snap;
  snap.allocator = header_.allocator;
  snap.seed = header_.seed;
  snap.num_servers = header_.num_servers;
  snap.wal_seq = next_seq_ - 1;
  snap.engine = engine_->export_state();
  snap.rng = rng_.state();
  snap.assignment.assign(assignment_.begin(), assignment_.end());
  write_snapshot_atomic(options_.snapshot_path, snap);
  ops_since_snapshot_ = 0;
}

void Daemon::drain() {
  engine_->finish_stream();
  sync_resolutions();
  journal(encode_drain_record(next_seq_));
  wal_sync();
  do_snapshot();
}

void Daemon::checkpoint() {
  wal_sync();
  do_snapshot();
}

std::string Daemon::stats_json(bool with_assignment, bool with_id,
                               long long id) const {
  const FaultStats& f = engine_->fault_stats();
  std::string out = "{\"ok\":true";
  if (with_id) out += ",\"id\":" + std::to_string(id);
  out += ",\"op\":\"stats\"";
  out += ",\"allocator\":" + json::escape(options_.allocator);
  out += ",\"requests\":" + std::to_string(engine_->requests());
  out += ",\"placed\":" + std::to_string(engine_->placed());
  out += ",\"active_vms\":" + std::to_string(engine_->cluster().active_vms());
  out += ",\"frontier\":" + std::to_string(engine_->cluster().frontier());
  out += ",\"energy\":" + fmt_energy17(engine_->total_energy());
  out += ",\"energy_hex\":" + hex_double(engine_->total_energy());
  out += ",\"peak_resident\":" +
         std::to_string(engine_->peak_resident_time_units());
  out += ",\"wal_seq\":" + u64_field(next_seq_ - 1);
  out += ",\"replayed\":" + std::to_string(replayed_);
  out += ",\"torn_tail_recovered\":";
  out += torn_tail_ ? "true" : "false";
  out += ",\"fault_events\":" + std::to_string(f.fault_events);
  out += ",\"late_arrivals\":" + std::to_string(f.late_arrivals);
  out += ",\"displaced\":" + std::to_string(f.displaced);
  out += ",\"evacuated\":" + std::to_string(f.evacuated);
  out += ",\"deferred\":" + std::to_string(f.deferred);
  out += ",\"retries\":" + std::to_string(f.retries);
  out += ",\"retried_placed\":" + std::to_string(f.retried_placed);
  out += ",\"rejected_final\":" + std::to_string(f.rejected_final);
  out += ",\"queue_full\":" + std::to_string(f.queue_full);
  out += ",\"downtime_units\":" + std::to_string(f.downtime_units);
  if (with_assignment) {
    out += ",\"assignment\":[";
    bool first = true;
    for (const auto& [vm, server] : assignment_) {
      if (!first) out += ',';
      first = false;
      out += '[' + std::to_string(vm) + ',' + std::to_string(server) + ']';
    }
    out += ']';
  }
  out += '}';
  return out;
}

std::string Daemon::dispatch(const Request& req) {
  std::string out = "{\"ok\":true";
  if (req.has_id) out += ",\"id\":" + std::to_string(req.id);
  out += ",\"op\":" + json::escape(to_string(req.op));
  switch (req.op) {
    case OpKind::kPlace: {
      const PlacementDecision decision = apply_place(req.vm);
      const std::uint64_t seq = next_seq_;
      journal(encode_place_record(seq, options_.allocator, req.vm, decision,
                                  engine_->total_energy()));
      out += ",\"seq\":" + u64_field(seq);
      out += ",\"vm\":" + std::to_string(req.vm.id);
      out += ",\"server\":";
      out += decision.server == kNoServer ? "null"
                                          : std::to_string(decision.server);
      out += ",\"reject\":" + json::escape(esva::to_string(decision.reject));
      break;
    }
    case OpKind::kRetire: {
      const ServerId host = apply_retire(req.vm_id);
      const std::uint64_t seq = next_seq_;
      journal(encode_retire_record(seq, req.vm_id, host));
      out += ",\"seq\":" + u64_field(seq);
      out += ",\"vm\":" + std::to_string(req.vm_id);
      out += ",\"server\":";
      out += host == kNoServer ? "null" : std::to_string(host);
      break;
    }
    case OpKind::kAdvance: {
      engine_->advance_to(req.to);
      sync_resolutions();
      const std::uint64_t seq = next_seq_;
      journal(encode_advance_record(seq, req.to));
      out += ",\"seq\":" + u64_field(seq);
      out += ",\"frontier\":" +
             std::to_string(engine_->cluster().frontier());
      break;
    }
    case OpKind::kFault: {
      engine_->apply_fault(req.fault);
      sync_resolutions();
      const std::uint64_t seq = next_seq_;
      journal(encode_fault_record(seq, req.fault));
      out += ",\"seq\":" + u64_field(seq);
      break;
    }
    case OpKind::kStats:
      return stats_json(req.with_assignment, req.has_id, req.id);
    case OpKind::kSnapshot: {
      if (options_.snapshot_path.empty())
        throw std::runtime_error("daemon runs without a --snapshot path");
      do_snapshot();
      out += ",\"path\":" + json::escape(options_.snapshot_path);
      out += ",\"wal_seq\":" + u64_field(next_seq_ - 1);
      break;
    }
    case OpKind::kDrain: {
      drain();
      out += ",\"requests\":" + std::to_string(engine_->requests());
      out += ",\"placed\":" + std::to_string(engine_->placed());
      out += ",\"energy_hex\":" + hex_double(engine_->total_energy());
      out += ",\"frontier\":" +
             std::to_string(engine_->cluster().frontier());
      break;
    }
  }
  out += '}';
  return out;
}

std::string Daemon::handle_line(const std::string& line) {
  if (halted()) return error_response(nullptr, "daemon halted: " + fatal_);
  Request req;
  try {
    req = decode_request(line);
  } catch (const std::exception& e) {
    return error_response(nullptr, e.what());
  }
  try {
    return dispatch(req);
  } catch (const std::exception& e) {
    return error_response(&req, e.what());
  }
}

// ---------------------------------------------------------------------------
// Socket loop
// ---------------------------------------------------------------------------

namespace {

struct Connection {
  int fd = -1;
  std::string inbuf;
};

void write_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    // send(MSG_NOSIGNAL), not write(): a peer that closed its socket before
    // the response must surface as EPIPE, not terminate the daemon via the
    // default SIGPIPE disposition.
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer vanished; the connection is reaped on the next poll
    }
    off += static_cast<std::size_t>(n);
  }
}

}  // namespace

int Daemon::serve_loop(const std::string& socket_path,
                       const std::atomic<bool>& stop,
                       const std::function<void()>& on_listening) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path))
    throw std::invalid_argument("socket path too long (" +
                                std::to_string(socket_path.size()) + " >= " +
                                std::to_string(sizeof(addr.sun_path)) + ")");
  const int listener = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listener < 0)
    throw std::runtime_error(std::string("socket() failed: ") +
                             std::strerror(errno));
  ::unlink(socket_path.c_str());  // a stale socket from a killed daemon
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::bind(listener, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listener);
    throw std::runtime_error("bind('" + socket_path +
                             "') failed: " + std::strerror(err));
  }
  if (::listen(listener, 16) != 0) {
    const int err = errno;
    ::close(listener);
    ::unlink(socket_path.c_str());
    throw std::runtime_error(std::string("listen() failed: ") +
                             std::strerror(err));
  }
  if (on_listening) on_listening();

  std::vector<Connection> conns;
  while (!stop.load(std::memory_order_relaxed)) {
    std::vector<pollfd> fds;
    fds.push_back({listener, POLLIN, 0});
    for (const Connection& c : conns) fds.push_back({c.fd, POLLIN, 0});
    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;  // signal: re-check stop
      break;
    }
    if (ready == 0) continue;

    // fds[k + 1] pairs with conns[k] only while conns is untouched: scan
    // exactly the connections the pollfds were built from, mark dead ones,
    // and only compact / accept afterwards — erasing mid-scan would shift
    // survivors onto the wrong pollfd's revents (a blocking read() on an
    // idle socket), and accepting first would grow conns past fds.
    const std::size_t scanned = fds.size() - 1;
    for (std::size_t k = 0; k < scanned && !halted(); ++k) {
      const short revents = fds[k + 1].revents;
      if (!(revents & (POLLIN | POLLHUP | POLLERR))) continue;
      Connection& c = conns[k];
      char buf[4096];
      const ssize_t n = ::read(c.fd, buf, sizeof(buf));
      if (n <= 0 && !(n < 0 && errno == EINTR)) {
        ::close(c.fd);
        c.fd = -1;  // compacted below
        continue;
      }
      if (n <= 0) continue;  // EINTR
      c.inbuf.append(buf, static_cast<std::size_t>(n));
      std::size_t nl;
      while ((nl = c.inbuf.find('\n')) != std::string::npos) {
        std::string line = c.inbuf.substr(0, nl);
        c.inbuf.erase(0, nl + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        write_all(c.fd, handle_line(line) + "\n");
        if (halted()) break;  // journal failure: stop accepting ops
      }
    }
    conns.erase(std::remove_if(conns.begin(), conns.end(),
                               [](const Connection& c) { return c.fd < 0; }),
                conns.end());
    if (halted()) break;
    if (fds[0].revents & POLLIN) {
      const int fd = ::accept(listener, nullptr, nullptr);
      if (fd >= 0) conns.push_back({fd, {}});
    }
  }
  for (const Connection& c : conns) ::close(c.fd);
  ::close(listener);
  ::unlink(socket_path.c_str());
  return halted() ? 1 : 0;
}

}  // namespace esva::serve
