// Durable snapshots of the esva serve daemon: the complete restorable engine
// state (core/streaming.h EngineStateSnapshot) plus the pieces the engine
// cannot carry itself — the Rng's four state words, the daemon's vm->server
// assignment map, and a config header validated on restore. One JSON
// document per file, written atomically (tmp + fsync + rename + directory
// fsync) so a crash mid-snapshot leaves the previous snapshot intact.
//
// Exactness rules (docs/FORMATS.md#snapshot): every double rides as a C99
// hexfloat string (bit-exact round trip, so the restored engine's cumulative
// energy compares == against WAL checksums); every u64 (seed, sequence
// numbers, rng words) rides as a decimal string, because a double-backed
// JSON number cannot carry 64 bits.
//
// A restored daemon replays the WAL records with seq > wal_seq on top of the
// snapshot — snapshotting just bounds replay work; it never changes state.

#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/streaming.h"
#include "util/types.h"

namespace esva::serve {

struct SnapshotData {
  // --- identity (validated against the daemon's own config on restore) ----
  std::string allocator;
  std::uint64_t seed = 0;
  std::size_t num_servers = 0;
  /// Last WAL sequence number applied into this snapshot; recovery replays
  /// strictly-greater records.
  std::uint64_t wal_seq = 0;

  EngineStateSnapshot engine;
  /// xoshiro256** words (Rng::state), restoring the policy's random stream.
  std::array<std::uint64_t, 4> rng{};
  /// The daemon's current vm -> server map (kNoServer = rejected/retired),
  /// sorted by vm id.
  std::vector<std::pair<VmId, ServerId>> assignment;
};

std::string encode_snapshot(const SnapshotData& snap);

/// Throws std::runtime_error on malformed or version-mismatched input.
SnapshotData decode_snapshot(const std::string& text);

/// Atomic durable write: <path>.tmp + fsync + rename + fsync(dirname).
void write_snapshot_atomic(const std::string& path, const SnapshotData& snap);

/// Loads and decodes; `found` reports whether the file existed (absent is
/// not an error — a daemon's first run has no snapshot).
SnapshotData load_snapshot(const std::string& path, bool* found);

}  // namespace esva::serve
