#include "serve/journal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "serve/wire.h"
#include "util/json.h"
#include "util/parse.h"

namespace esva::serve {

namespace {

constexpr int kWalVersion = 1;

/// u64 quantities (seq, seed) ride as decimal strings: a double-backed JSON
/// number loses exactness past 2^53.
std::string u64_field(std::uint64_t v) {
  std::string out(1, '"');
  out += std::to_string(v);
  out += '"';
  return out;
}

std::uint64_t require_u64(const json::Value& obj, const std::string& key,
                          const std::string& context) {
  const json::Value* v = obj.find(key);
  if (!v || v->kind != json::Value::Kind::String)
    throw std::runtime_error(context + ": missing string field '" + key + "'");
  return parse_u64_field(v->string, context + " field '" + key + "'");
}

[[noreturn]] void fail_line(std::size_t line, const std::string& what) {
  throw std::runtime_error("wal line " + std::to_string(line) + ": " + what);
}

WalHeader decode_header(const json::Value& root, std::size_t line) {
  if (const json::Value* f = root.find("format");
      !f || f->kind != json::Value::Kind::String || f->string != "esva-wal")
    fail_line(line, "not an esva-wal header");
  const long long version = json::require_integer(
      root, "version", 1, std::numeric_limits<int>::max(), "wal header");
  if (version != kWalVersion)
    fail_line(line, "unsupported wal version " + std::to_string(version));
  WalHeader h;
  h.allocator = json::require_string(root, "allocator", "wal header");
  h.seed = require_u64(root, "seed", "wal header");
  h.num_servers = static_cast<std::size_t>(json::require_integer(
      root, "servers", 0, std::numeric_limits<long long>::max(),
      "wal header"));
  h.retry.max_attempts = static_cast<int>(json::require_integer(
      root, "retry_max", 0, std::numeric_limits<int>::max(), "wal header"));
  h.retry.base_delay = static_cast<Time>(json::require_integer(
      root, "retry_delay", 0, std::numeric_limits<Time>::max(), "wal header"));
  h.retry.backoff =
      require_number_or_hex(root, "retry_backoff", "wal header");
  h.retry.queue_capacity = static_cast<std::size_t>(json::require_integer(
      root, "retry_queue", 0, std::numeric_limits<long long>::max(),
      "wal header"));
  return h;
}

WalRecord decode_record(const json::Value& root, const std::string& op,
                        const std::string& raw, std::size_t line) {
  WalRecord rec;
  rec.raw = raw;
  rec.seq = require_u64(root, "seq", "wal record");
  const std::string ctx = "wal record";
  if (op == "place") {
    rec.op = WalRecord::Op::kPlace;
    const json::Value* spec = root.find("spec");
    if (!spec) fail_line(line, "place record missing 'spec'");
    rec.vm = decode_vm(*spec, "wal place spec");
    if (const json::Value* c = root.find("chosen"); c && c->is_null())
      rec.chosen = kNoServer;
    else
      rec.chosen = static_cast<ServerId>(json::require_integer(
          root, "chosen", kNoServer, std::numeric_limits<ServerId>::max(),
          ctx));
    if (const json::Value* e = root.find("energy_hex");
        e && e->kind == json::Value::Kind::String) {
      rec.has_energy = true;
      rec.energy_after =
          parse_double_field(e->string, ctx + " field 'energy_hex'");
    }
  } else if (op == "retire") {
    rec.op = WalRecord::Op::kRetire;
    rec.vm_id = static_cast<VmId>(json::require_integer(
        root, "vm", 0, std::numeric_limits<VmId>::max(), ctx));
    if (const json::Value* s = root.find("server"); s && !s->is_null())
      rec.chosen = static_cast<ServerId>(json::require_integer(
          root, "server", kNoServer, std::numeric_limits<ServerId>::max(),
          ctx));
  } else if (op == "advance") {
    rec.op = WalRecord::Op::kAdvance;
    rec.to = static_cast<Time>(json::require_integer(
        root, "to", std::numeric_limits<Time>::min(),
        std::numeric_limits<Time>::max(), ctx));
  } else if (op == "fault") {
    rec.op = WalRecord::Op::kFault;
    rec.fault.at = static_cast<Time>(json::require_integer(
        root, "at", 1, std::numeric_limits<Time>::max(), ctx));
    const std::string& kind = json::require_string(root, "kind", ctx);
    if (kind == "fail")
      rec.fault.kind = FaultKind::kFail;
    else if (kind == "drain")
      rec.fault.kind = FaultKind::kDrain;
    else if (kind == "recover")
      rec.fault.kind = FaultKind::kRecover;
    else
      fail_line(line, "unknown fault kind '" + kind + "'");
    rec.fault.server = static_cast<ServerId>(json::require_integer(
        root, "server", 0, std::numeric_limits<ServerId>::max(), ctx));
  } else if (op == "drain") {
    rec.op = WalRecord::Op::kDrain;
  } else {
    fail_line(line, "unknown record op '" + op + "'");
  }
  return rec;
}

}  // namespace

std::string encode_wal_header(const WalHeader& header) {
  std::string out = "{\"op\":\"hdr\",\"format\":\"esva-wal\",\"version\":" +
                    std::to_string(kWalVersion);
  out += ",\"allocator\":" + json::escape(header.allocator);
  out += ",\"seed\":" + u64_field(header.seed);
  out += ",\"servers\":" + std::to_string(header.num_servers);
  out += ",\"retry_max\":" + std::to_string(header.retry.max_attempts);
  out += ",\"retry_delay\":" + std::to_string(header.retry.base_delay);
  out += ",\"retry_backoff\":" + hex_double(header.retry.backoff);
  out += ",\"retry_queue\":" + std::to_string(header.retry.queue_capacity);
  out += '}';
  return out;
}

std::string encode_place_record(std::uint64_t seq, const std::string& allocator,
                                const VmSpec& vm,
                                const PlacementDecision& decision,
                                Energy energy_after) {
  // Key-compatible with to_jsonl(VmDecisionTrace): "vm" and "chosen" mean
  // exactly what the trace loader expects; everything else is a superset.
  // Append-only construction: this runs once per acked placement, and the
  // BENCH_perf.json "wal" gate holds the whole journal path to <= 5% over
  // the bare stream replay.
  std::string out;
  out.reserve(288);
  out += "{\"op\":\"place\",\"seq\":\"";
  out += std::to_string(seq);
  out += "\",\"allocator\":";
  out += json::escape(allocator);
  out += ",\"vm\":";
  out += std::to_string(vm.id);
  out += ",\"chosen\":";
  out += decision.server == kNoServer ? "null" : std::to_string(decision.server);
  out += ",\"reject\":";
  out += json::escape(esva::to_string(decision.reject));
  out += ",\"spec\":";
  append_vm(out, vm);
  out += ",\"energy_hex\":";
  append_hex_double(out, energy_after);
  out += '}';
  return out;
}

std::string encode_retire_record(std::uint64_t seq, VmId vm, ServerId host) {
  std::string out = "{\"op\":\"retire\",\"seq\":" + u64_field(seq);
  out += ",\"vm\":" + std::to_string(vm);
  // "chosen":null is the trace-schema half: last-write-wins over the journal
  // resolves a retired VM to kNoServer, exactly like a rejected one.
  out += ",\"chosen\":null,\"note\":\"retired\"";
  out += ",\"server\":";
  out += host == kNoServer ? "null" : std::to_string(host);
  out += '}';
  return out;
}

std::string encode_advance_record(std::uint64_t seq, Time to) {
  return "{\"op\":\"advance\",\"seq\":" + u64_field(seq) +
         ",\"to\":" + std::to_string(to) + '}';
}

std::string encode_fault_record(std::uint64_t seq, const FaultEvent& event) {
  std::string out = "{\"op\":\"fault\",\"seq\":" + u64_field(seq);
  out += ",\"at\":" + std::to_string(event.at);
  out += ",\"kind\":" + json::escape(esva::to_string(event.kind));
  out += ",\"server\":" + std::to_string(event.server);
  out += '}';
  return out;
}

std::string encode_drain_record(std::uint64_t seq) {
  return "{\"op\":\"drain\",\"seq\":" + u64_field(seq) + '}';
}

WalFile read_wal(const std::string& path) {
  WalFile wal;
  std::ifstream in(path, std::ios::binary);
  if (!in) return wal;  // no journal yet: fresh daemon

  std::ostringstream raw;
  raw << in.rdbuf();
  const std::string data = raw.str();

  // Split on '\n' by hand (not getline) so every line keeps its byte-exact
  // end offset — valid_bytes, the truncate-to point after a torn tail — and
  // so a missing final newline is observable.
  struct Line {
    std::string text;        // without the trailing '\n' (may keep a '\r')
    std::size_t number = 0;  // 1-based physical line, for error messages
    std::uint64_t end = 0;   // offset just past this line's '\n'
    bool newline = false;
  };
  std::vector<Line> lines;
  std::size_t pos = 0, number = 0;
  while (pos < data.size()) {
    const std::size_t nl = data.find('\n', pos);
    const bool has_nl = nl != std::string::npos;
    const std::size_t end = has_nl ? nl + 1 : data.size();
    ++number;
    std::string text = data.substr(pos, (has_nl ? nl : data.size()) - pos);
    if (text.find_first_not_of(" \t\r") != std::string::npos)
      lines.push_back({std::move(text), number, end, has_nl});
    pos = end;
  }
  if (lines.empty()) return wal;

  bool have_header = false;
  std::uint64_t prev_seq = 0;
  for (std::size_t k = 0; k < lines.size(); ++k) {
    const bool last = k + 1 == lines.size();
    if (last && !lines[k].newline) {
      // A completed append batch always ends in '\n', so a newline-less
      // tail — even one that happens to parse — is a partial write whose op
      // was never acked as durable: drop it.
      wal.torn_tail = true;
      break;
    }
    try {
      const json::Value root = json::parse(lines[k].text);
      if (root.kind != json::Value::Kind::Object)
        fail_line(lines[k].number, "record is not a JSON object");
      const std::string& op = json::require_string(root, "op", "wal record");
      if (op == "hdr") {
        if (have_header) fail_line(lines[k].number, "duplicate header");
        if (k != 0) fail_line(lines[k].number, "header not on the first line");
        wal.header = decode_header(root, lines[k].number);
        wal.has_header = true;
        have_header = true;
        wal.valid_bytes = lines[k].end;
        continue;
      }
      if (!have_header)
        fail_line(lines[k].number, "journal does not start with a header");
      WalRecord rec = decode_record(root, op, lines[k].text, lines[k].number);
      if (rec.seq <= prev_seq)
        fail_line(lines[k].number,
                  "sequence numbers must strictly increase (" +
                      std::to_string(rec.seq) + " after " +
                      std::to_string(prev_seq) + ")");
      prev_seq = rec.seq;
      wal.records.push_back(std::move(rec));
      wal.valid_bytes = lines[k].end;
    } catch (const std::exception&) {
      if (last) {
        // The crash window of an append: a torn final line is dropped, not
        // fatal — the op it would have recorded was never acked as durable.
        wal.torn_tail = true;
        break;
      }
      throw;  // mid-file corruption is a hard error, never skipped
    }
  }
  return wal;
}

void truncate_wal(const std::string& path, std::uint64_t valid_bytes) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0)
    throw std::runtime_error("cannot open wal '" + path +
                             "' to drop its torn tail: " +
                             std::strerror(errno));
  if (::ftruncate(fd, static_cast<off_t>(valid_bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot truncate wal '" + path +
                             "': " + std::strerror(err));
  }
  if (::fsync(fd) != 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("cannot fsync truncated wal '" + path +
                             "': " + std::strerror(err));
  }
  ::close(fd);
}

std::vector<VmDecisionTrace> decisions_from_wal(
    const std::vector<WalRecord>& records) {
  std::string jsonl;
  for (const WalRecord& rec : records)
    if (rec.op == WalRecord::Op::kPlace || rec.op == WalRecord::Op::kRetire) {
      jsonl += rec.raw;
      jsonl += '\n';
    }
  std::istringstream in(jsonl);
  return load_trace_jsonl(in);
}

WalWriter::WalWriter(const std::string& path, const WalHeader& fresh_header,
                     int sync_every)
    : sync_every_(sync_every < 1 ? 1 : sync_every) {
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC, 0644);
  if (fd_ < 0)
    throw std::runtime_error("cannot open wal '" + path +
                             "': " + std::strerror(errno));
  struct stat st{};
  if (::fstat(fd_, &st) != 0) {
    ::close(fd_);
    throw std::runtime_error("cannot stat wal '" + path + "'");
  }
  if (st.st_size == 0) {
    append(encode_wal_header(fresh_header));
    sync();
  }
}

WalWriter::~WalWriter() {
  // Best-effort flush of a pending batch (a clean destruction mid-batch
  // should reach the kernel like every completed batch did), then close.
  // Durability against power loss stays the sync schedule's job, not the
  // destructor's, and destructor errors are swallowed — a crashing daemon
  // never gets here, which is exactly what the SIGKILL recovery tests
  // simulate.
  if (fd_ < 0) return;
  try {
    flush_pending();
  } catch (...) {
  }
  ::close(fd_);
}

bool WalWriter::append(const std::string& line) {
  // Group commit: records accumulate in the user-space batch buffer and hit
  // the kernel as one write() + one fsync() per sync_every records (the
  // write() syscall, not the encode, dominates per-record journal cost —
  // see the BENCH_perf.json "wal" gate). With sync_every == 1 this is the
  // classic write+fsync before every ack. The batch write is a single
  // O_APPEND write(), so concurrent writers interleave at batch
  // granularity, never mid-line.
  pending_ += line;
  pending_ += '\n';
  ++appended_;
  if (++since_sync_ >= sync_every_) {
    sync();
    return true;
  }
  return false;
}

void WalWriter::flush_pending() {
  std::size_t off = 0;
  while (off < pending_.size()) {
    const ssize_t n = ::write(fd_, pending_.data() + off,
                              pending_.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("wal append failed: ") +
                               std::strerror(errno));
    }
    off += static_cast<std::size_t>(n);
  }
  pending_.clear();
}

void WalWriter::sync() {
  flush_pending();
  if (fd_ >= 0 && ::fsync(fd_) != 0)
    throw std::runtime_error(std::string("wal fsync failed: ") +
                             std::strerror(errno));
  since_sync_ = 0;
}

}  // namespace esva::serve
