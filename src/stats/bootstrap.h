// Percentile-bootstrap confidence intervals.
//
// With only 5 runs per sweep point (the paper's protocol), normal-theory
// intervals on ratios are shaky; the bootstrap makes no distributional
// assumption. Used by the experiment reporting to attach honest uncertainty
// to energy-reduction ratios, and available for any statistic expressible as
// a function of a resampled sample.

#pragma once

#include <functional>
#include <span>

#include "util/rng.h"

namespace esva {

struct BootstrapInterval {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
  bool valid = false;  ///< false for empty samples
};

/// Statistic over a sample (e.g. the mean, a trimmed mean, a ratio of
/// sums when applied to paired transforms).
using Statistic = std::function<double(std::span<const double>)>;

/// Percentile bootstrap: resamples `xs` with replacement `resamples` times,
/// evaluates `statistic` on each, and returns the [alpha/2, 1-alpha/2]
/// percentile interval. Deterministic given `rng`.
BootstrapInterval bootstrap_interval(std::span<const double> xs,
                                     const Statistic& statistic, Rng& rng,
                                     int resamples = 2000,
                                     double alpha = 0.05);

/// Convenience: bootstrap CI of the sample mean.
BootstrapInterval bootstrap_mean(std::span<const double> xs, Rng& rng,
                                 int resamples = 2000, double alpha = 0.05);

}  // namespace esva
