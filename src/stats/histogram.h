// Fixed-bin histogram used for utilization and duration distributions in the
// examples and for sanity-checking generated workloads in tests.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace esva {

class Histogram {
 public:
  /// Uniform bins over [lo, hi); values outside are counted in underflow /
  /// overflow. Requires lo < hi and bins >= 1.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t underflow() const { return underflow_; }
  std::size_t overflow() const { return overflow_; }
  std::size_t total() const { return total_; }

  /// Inclusive-exclusive bounds of a bin.
  std::pair<double, double> bin_range(std::size_t bin) const;

  /// Fraction of in-range samples at or below the bin containing x.
  double cdf(double x) const;

  /// ASCII rendering with proportional bars, for example output.
  std::string render(std::size_t max_bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t underflow_ = 0;
  std::size_t overflow_ = 0;
  std::size_t total_ = 0;
};

}  // namespace esva
