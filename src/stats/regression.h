// Least-squares curve fits with adjusted R².
//
// The paper annotates every figure with a fitted trend and its adjusted
// r-square ("Adj.R^2"): linear fits in Figs. 2, 5, 9; logarithm fits in
// Figs. 4, 6, 7; an exponential fit in Fig. 5 (3-minute transition series).
// The bench harness reproduces those annotations with this module.

#pragma once

#include <span>
#include <string>

namespace esva {

enum class FitModel {
  /// y = a + b·x
  Linear,
  /// y = a + b·ln(x); requires x > 0
  Logarithmic,
  /// y = a·exp(b·x); fit on ln(y), requires y > 0
  Exponential,
};

struct Fit {
  FitModel model = FitModel::Linear;
  /// Model parameters (see FitModel documentation).
  double a = 0.0;
  double b = 0.0;
  /// Coefficient of determination on the original (x, y) data, and the
  /// adjusted value 1 - (1-R²)(n-1)/(n-p-1) with p = 1 predictor.
  double r2 = 0.0;
  double adj_r2 = 0.0;
  std::size_t n = 0;
  bool valid = false;

  /// Evaluates the fitted model at x.
  double predict(double x) const;

  /// e.g. "y = 0.021·x + 0.013 (Adj.R² = 0.96)".
  std::string to_string() const;
};

/// Fits y = a + b·x. Needs >= 2 points with distinct x; otherwise
/// returns Fit{.valid = false}.
Fit fit_linear(std::span<const double> xs, std::span<const double> ys);

/// Fits y = a + b·ln(x). Points with x <= 0 make the fit invalid.
Fit fit_logarithmic(std::span<const double> xs, std::span<const double> ys);

/// Fits y = a·exp(b·x) via linear regression on ln(y). Points with y <= 0
/// make the fit invalid. R² is reported on the original scale.
Fit fit_exponential(std::span<const double> xs, std::span<const double> ys);

/// Fits all three models and returns the one with the best adjusted R²
/// (invalid fits lose). Mirrors how the paper picks per-series trend shapes.
Fit fit_best(std::span<const double> xs, std::span<const double> ys);

}  // namespace esva
