#include "stats/bootstrap.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

namespace esva {

BootstrapInterval bootstrap_interval(std::span<const double> xs,
                                     const Statistic& statistic, Rng& rng,
                                     int resamples, double alpha) {
  assert(resamples > 0 && alpha > 0.0 && alpha < 1.0);
  BootstrapInterval interval;
  if (xs.empty()) return interval;

  interval.point = statistic(xs);

  std::vector<double> replicates;
  replicates.reserve(static_cast<std::size_t>(resamples));
  std::vector<double> resample(xs.size());
  for (int r = 0; r < resamples; ++r) {
    for (double& value : resample) value = xs[rng.index(xs.size())];
    replicates.push_back(statistic(resample));
  }
  std::sort(replicates.begin(), replicates.end());

  // Nearest-rank percentiles, clamped to valid indices.
  auto percentile = [&](double q) {
    const double rank = q * static_cast<double>(replicates.size() - 1);
    const auto idx = static_cast<std::size_t>(std::llround(rank));
    return replicates[std::min(idx, replicates.size() - 1)];
  };
  interval.lo = percentile(alpha / 2.0);
  interval.hi = percentile(1.0 - alpha / 2.0);
  interval.valid = true;
  return interval;
}

BootstrapInterval bootstrap_mean(std::span<const double> xs, Rng& rng,
                                 int resamples, double alpha) {
  return bootstrap_interval(
      xs,
      [](std::span<const double> sample) {
        double total = 0.0;
        for (double x : sample) total += x;
        return total / static_cast<double>(sample.size());
      },
      rng, resamples, alpha);
}

}  // namespace esva
