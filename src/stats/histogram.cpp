#include "stats/histogram.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace esva {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(lo < hi && bins >= 1);
}

void Histogram::add(double x) {
  ++total_;
  if (x < lo_) {
    ++underflow_;
    return;
  }
  if (x >= hi_) {
    ++overflow_;
    return;
  }
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::size_t>((x - lo_) / width);
  bin = std::min(bin, counts_.size() - 1);  // guards x just below hi_
  ++counts_[bin];
}

std::pair<double, double> Histogram::bin_range(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return {lo_ + width * static_cast<double>(bin),
          lo_ + width * static_cast<double>(bin + 1)};
}

double Histogram::cdf(double x) const {
  const std::size_t in_range = total_ - underflow_ - overflow_;
  if (in_range == 0) return 0.0;
  std::size_t at_or_below = 0;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    if (bin_range(b).first > x) break;
    at_or_below += counts_[b];
  }
  return static_cast<double>(at_or_below) / static_cast<double>(in_range);
}

std::string Histogram::render(std::size_t max_bar_width) const {
  std::size_t peak = 1;
  for (std::size_t c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    auto [blo, bhi] = bin_range(b);
    char label[64];
    std::snprintf(label, sizeof label, "[%8.2f, %8.2f)", blo, bhi);
    const std::size_t bar =
        counts_[b] == 0
            ? 0
            : std::max<std::size_t>(1, counts_[b] * max_bar_width / peak);
    out << label << ' ' << std::string(bar, '#') << ' ' << counts_[b] << '\n';
  }
  if (underflow_ > 0) out << "underflow: " << underflow_ << '\n';
  if (overflow_ > 0) out << "overflow:  " << overflow_ << '\n';
  return out.str();
}

}  // namespace esva
