// Descriptive statistics over simulation outputs. Every figure point in the
// paper is the mean of 5 random runs; the experiment runner aggregates via
// these helpers and also reports dispersion so readers can judge noise.

#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace esva {

/// One-pass (Welford) accumulator for mean/variance; numerically stable.
class Accumulator {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  /// Mean of the added samples; 0 if empty.
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 if fewer than 2 samples.
  double variance() const;
  double stddev() const;
  /// Standard error of the mean; 0 if fewer than 2 samples.
  double stderr_mean() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(n_); }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const Accumulator& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Snapshot of the usual descriptive statistics.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;
  double min = 0.0;
  double max = 0.0;
  /// Half-width of the normal-approximation 95% confidence interval
  /// (1.96 × stderr). With n = 5 runs this understates slightly vs. a
  /// t-interval; we report it as an indication, matching common practice.
  double ci95_halfwidth = 0.0;
};

/// Summarizes a sample; all-zero summary for an empty span.
Summary summarize(std::span<const double> xs);

/// Sample p-quantile (p in [0, 1]) with linear interpolation between order
/// statistics; 0 for an empty sample. Sorts a copy — intended for
/// end-of-run reporting (latency percentiles), not hot paths.
double quantile(std::span<const double> xs, double p);

/// Several quantiles of one sample, sorting the copy once (vs. one sort per
/// quantile() call). Result i corresponds to ps[i]; each entry agrees
/// exactly with quantile(xs, ps[i]). All zeros for an empty sample.
std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> ps);

}  // namespace esva
