#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace esva {

void Accumulator::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

namespace {

/// Interpolated p-quantile of an already-sorted non-empty sample.
double sorted_quantile(const std::vector<double>& sorted, double p) {
  p = std::clamp(p, 0.0, 1.0);
  const double h = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(h);
  if (lo + 1 >= sorted.size()) return sorted.back();
  const double frac = h - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[lo + 1] - sorted[lo]);
}

}  // namespace

double quantile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return sorted_quantile(sorted, p);
}

std::vector<double> quantiles(std::span<const double> xs,
                              std::span<const double> ps) {
  std::vector<double> out(ps.size(), 0.0);
  if (xs.empty()) return out;
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 0; i < ps.size(); ++i)
    out[i] = sorted_quantile(sorted, ps[i]);
  return out;
}

Summary summarize(std::span<const double> xs) {
  Accumulator acc;
  for (double x : xs) acc.add(x);
  Summary s;
  s.n = acc.count();
  s.mean = acc.mean();
  s.stddev = acc.stddev();
  s.stderr_mean = acc.stderr_mean();
  s.min = acc.min();
  s.max = acc.max();
  s.ci95_halfwidth = 1.96 * s.stderr_mean;
  return s;
}

}  // namespace esva
