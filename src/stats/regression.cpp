#include "stats/regression.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <vector>

namespace esva {

namespace {

struct LsqResult {
  double a = 0.0;
  double b = 0.0;
  bool ok = false;
};

/// Ordinary least squares of y on x.
LsqResult least_squares(std::span<const double> xs,
                        std::span<const double> ys) {
  LsqResult r;
  const std::size_t n = xs.size();
  if (n < 2 || ys.size() != n) return r;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += xs[i];
    sy += ys[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxx += (xs[i] - mx) * (xs[i] - mx);
    sxy += (xs[i] - mx) * (ys[i] - my);
  }
  if (sxx == 0.0) return r;  // all x identical
  r.b = sxy / sxx;
  r.a = my - r.b * mx;
  r.ok = true;
  return r;
}

/// R² of predictions against observations on the original scale.
double r_squared(std::span<const double> ys,
                 const std::vector<double>& predictions) {
  const std::size_t n = ys.size();
  double my = 0;
  for (double y : ys) my += y;
  my /= static_cast<double>(n);
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < n; ++i) {
    ss_res += (ys[i] - predictions[i]) * (ys[i] - predictions[i]);
    ss_tot += (ys[i] - my) * (ys[i] - my);
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double adjust_r2(double r2, std::size_t n) {
  // One predictor (p = 1); undefined for n <= 2.
  if (n <= 2) return r2;
  return 1.0 - (1.0 - r2) * (static_cast<double>(n) - 1.0) /
                   (static_cast<double>(n) - 2.0);
}

Fit finalize(FitModel model, double a, double b, std::span<const double> xs,
             std::span<const double> ys) {
  Fit fit;
  fit.model = model;
  fit.a = a;
  fit.b = b;
  fit.n = xs.size();
  fit.valid = true;
  std::vector<double> predictions;
  predictions.reserve(xs.size());
  for (double x : xs) predictions.push_back(fit.predict(x));
  fit.r2 = r_squared(ys, predictions);
  fit.adj_r2 = adjust_r2(fit.r2, fit.n);
  return fit;
}

}  // namespace

double Fit::predict(double x) const {
  switch (model) {
    case FitModel::Linear: return a + b * x;
    case FitModel::Logarithmic: return a + b * std::log(x);
    case FitModel::Exponential: return a * std::exp(b * x);
  }
  return 0.0;
}

std::string Fit::to_string() const {
  if (!valid) return "(no fit)";
  char buf[128];
  switch (model) {
    case FitModel::Linear:
      std::snprintf(buf, sizeof buf, "y = %.4f + %.4f*x (Adj.R2 = %.3f)", a, b,
                    adj_r2);
      break;
    case FitModel::Logarithmic:
      std::snprintf(buf, sizeof buf, "y = %.4f + %.4f*ln(x) (Adj.R2 = %.3f)",
                    a, b, adj_r2);
      break;
    case FitModel::Exponential:
      std::snprintf(buf, sizeof buf, "y = %.4f*exp(%.4f*x) (Adj.R2 = %.3f)", a,
                    b, adj_r2);
      break;
  }
  return buf;
}

Fit fit_linear(std::span<const double> xs, std::span<const double> ys) {
  const LsqResult r = least_squares(xs, ys);
  if (!r.ok) return Fit{.model = FitModel::Linear};
  return finalize(FitModel::Linear, r.a, r.b, xs, ys);
}

Fit fit_logarithmic(std::span<const double> xs, std::span<const double> ys) {
  Fit invalid{.model = FitModel::Logarithmic};
  if (xs.size() != ys.size()) return invalid;
  std::vector<double> lx;
  lx.reserve(xs.size());
  for (double x : xs) {
    if (x <= 0.0) return invalid;
    lx.push_back(std::log(x));
  }
  const LsqResult r = least_squares(lx, ys);
  if (!r.ok) return invalid;
  return finalize(FitModel::Logarithmic, r.a, r.b, xs, ys);
}

Fit fit_exponential(std::span<const double> xs, std::span<const double> ys) {
  Fit invalid{.model = FitModel::Exponential};
  if (xs.size() != ys.size()) return invalid;
  std::vector<double> ly;
  ly.reserve(ys.size());
  for (double y : ys) {
    if (y <= 0.0) return invalid;
    ly.push_back(std::log(y));
  }
  const LsqResult r = least_squares(xs, ly);
  if (!r.ok) return invalid;
  return finalize(FitModel::Exponential, std::exp(r.a), r.b, xs, ys);
}

Fit fit_best(std::span<const double> xs, std::span<const double> ys) {
  Fit best = fit_linear(xs, ys);
  for (Fit candidate : {fit_logarithmic(xs, ys), fit_exponential(xs, ys)}) {
    if (!candidate.valid) continue;
    if (!best.valid || candidate.adj_r2 > best.adj_r2) best = candidate;
  }
  return best;
}

}  // namespace esva
