#include "ilp/validate.h"

#include <cassert>

#include "core/power_model.h"
#include "core/segments.h"

namespace esva {

std::vector<IntervalSet> derive_active_sets(const ProblemInstance& problem,
                                            const Allocation& alloc) {
  std::vector<IntervalSet> active_sets(problem.num_servers());
  const auto grouped = vms_by_server(problem, alloc);
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    const IntervalSet busy = busy_union(grouped[i]);
    for (const Interval& iv :
         active_intervals(busy, problem.servers[i]))
      active_sets[i].insert(iv.lo, iv.hi);
  }
  return active_sets;
}

Energy objective_eq7(const ProblemInstance& problem, const Allocation& alloc,
                     const std::vector<IntervalSet>& active_sets) {
  assert(active_sets.size() == problem.num_servers());
  Energy total = 0.0;

  // Σ W_ij x_ij
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const ServerId server = alloc.assignment[j];
    if (server == kNoServer) continue;
    total += run_cost(problem.servers[static_cast<std::size_t>(server)],
                      problem.vms[j]);
  }

  // Σ P_idle y_it + Σ alpha (y_it − y_i,t−1)^+ — each maximal active interval
  // contributes P_idle × length and exactly one switch-on (y_i,0 = 0).
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    const ServerSpec& server = problem.servers[i];
    for (const Interval& iv : active_sets[i].intervals()) {
      total += server.p_idle * static_cast<double>(iv.length());
      total += server.transition_cost();
    }
  }
  return total;
}

std::string check_constraints(const ProblemInstance& problem,
                              const Allocation& alloc,
                              const std::vector<IntervalSet>& active_sets) {
  // (9)-(11) are what validate_allocation checks, given that a VM's whole
  // window must also be active (12); capacity is vacuously satisfiable only
  // on active servers because usage > 0 forces y = 1 via (9)-(10).
  if (std::string err = validate_allocation(problem, alloc, true);
      !err.empty())
    return err;

  // (12): each VM's window must lie inside its server's active set.
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const ServerId server = alloc.assignment[j];
    if (server == kNoServer) continue;
    const VmSpec& vm = problem.vms[j];
    const IntervalSet& active = active_sets[static_cast<std::size_t>(server)];
    for (Time t = vm.start; t <= vm.end; ++t) {
      if (!active.contains(t))
        return "constraint (12): vm " + std::to_string(j) + " active at t=" +
               std::to_string(t) + " but server " + std::to_string(server) +
               " is powered down";
    }
  }
  return {};
}

std::vector<double> to_variable_assignment(
    const IlpModel& model, const ProblemInstance& problem,
    const Allocation& alloc, const std::vector<IntervalSet>& active_sets) {
  std::vector<double> values(model.num_vars(), 0.0);
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const ServerId server = alloc.assignment[j];
    if (server == kNoServer) continue;
    values[model.x_index(server, static_cast<int>(j))] = 1.0;
  }
  for (int i = 0; i < model.num_servers; ++i) {
    const IntervalSet& active = active_sets[static_cast<std::size_t>(i)];
    for (const Interval& iv : active.intervals()) {
      for (Time t = iv.lo; t <= iv.hi; ++t)
        values[model.y_index(i, t)] = 1.0;
      values[model.z_index(i, iv.lo)] = 1.0;  // the switch-on at iv.lo
    }
  }
  return values;
}

}  // namespace esva
