// Cross-validation between the closed-form cost model (Eq. 17) and the ILP
// objective (Eq. 7): derive the optimal power states y for a fixed
// assignment, evaluate Eq. 7 directly, and optionally check the full
// constraint system. Used heavily by the integration tests.

#pragma once

#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/problem.h"
#include "ilp/model.h"
#include "util/interval_set.h"

namespace esva {

/// Per-server active-time intervals under the optimal power-state policy
/// given the allocation (the y_it = 1 regions).
std::vector<IntervalSet> derive_active_sets(const ProblemInstance& problem,
                                            const Allocation& alloc);

/// Evaluates the paper's Eq. 7 objective literally:
///   Σ_ij W_ij x_ij + Σ_it P_idle,i y_it + Σ_it alpha_i (y_it − y_i,t−1)^+
/// with y_i,0 = 0. (Always charges the first switch-on, i.e. matches
/// CostOptions::charge_initial_transition = true.)
Energy objective_eq7(const ProblemInstance& problem, const Allocation& alloc,
                     const std::vector<IntervalSet>& active_sets);

/// Checks constraints (9)-(12) for the given x (allocation) and y (active
/// sets). Returns "" when satisfied, else the first violation.
std::string check_constraints(const ProblemInstance& problem,
                              const Allocation& alloc,
                              const std::vector<IntervalSet>& active_sets);

/// Expands (x, y) into a flat variable assignment for `model`
/// (z_it = (y_it − y_i,t−1)^+), suitable for IlpModel::objective_value /
/// first_violation.
std::vector<double> to_variable_assignment(
    const IlpModel& model, const ProblemInstance& problem,
    const Allocation& alloc, const std::vector<IntervalSet>& active_sets);

}  // namespace esva
