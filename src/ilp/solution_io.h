// External-solver round trip: read a MILP solution file produced by an
// external solver (HiGHS `--solution_file`, CBC `solve … solution`, SCIP
// `write solution` and plain `<name> <value>` dumps share the same shape:
// one variable per line, names as emitted by our LP exporter), recover the
// allocation x_ij, and validate it against the instance. Together with
// ilp/lp_export.h this closes the loop:
//     save_lp -> external solver -> read_solution -> validate/evaluate.

#pragma once

#include <iosfwd>
#include <map>
#include <string>

#include "core/allocation.h"
#include "core/problem.h"

namespace esva {

struct SolverSolution {
  /// Values keyed by variable name ("x_2_7" = 1, "y_0_13" = 1, ...).
  /// Only variables present in the file appear; absent means 0.
  std::map<std::string, double> values;
  /// Objective value if the file carried one ("Objective ..." header lines);
  /// NaN otherwise.
  double objective = 0.0;
  bool has_objective = false;
};

/// Parses a solution stream. Recognized line shapes (others are skipped):
///   x_1_2 1            — plain pairs (HiGHS/CBC columns sections)
///   3 x_1_2 1 0        — CBC "index name value reduced-cost"
///   Objective value: 123.4   /  Objective 123.4
/// Throws std::runtime_error on malformed numeric fields in recognized lines.
SolverSolution read_solution(std::istream& in);

/// File convenience wrapper; throws std::runtime_error if unreadable.
SolverSolution load_solution(const std::string& path);

/// Extracts the assignment from x_{i}_{j} variables (values >= 0.5 count as
/// chosen). Returns kNoServer for VMs with no selected server; duplicate
/// selections for one VM throw std::runtime_error.
Allocation allocation_from_solution(const SolverSolution& solution,
                                    const ProblemInstance& problem);

}  // namespace esva
