#include "ilp/branch_and_bound.h"

#include <algorithm>
#include <cassert>
#include <tuple>
#include <vector>

#include "cluster/timeline.h"
#include "core/power_model.h"

namespace esva {

namespace {

class BnbSearch {
 public:
  BnbSearch(const ProblemInstance& problem, const ExactOptions& options)
      : problem_(problem),
        options_(options),
        timelines_(make_timelines(problem.servers, problem.horizon)) {
    result_.best.assignment.assign(problem.num_vms(), kNoServer);
    result_.cost = options.initial_upper_bound;
    current_.assign(problem.num_vms(), kNoServer);

    // Pre-place fixed VMs (in start order, accumulating their incremental
    // cost — the sum telescopes to their exact joint cost), then branch
    // only over the free ones.
    assert(options.fixed_assignment.empty() ||
           options.fixed_assignment.size() == problem.num_vms());
    for (std::size_t j : order_by_start(problem.vms)) {
      const ServerId fixed = options.fixed_assignment.empty()
                                 ? kNoServer
                                 : options.fixed_assignment[j];
      if (fixed == kNoServer) {
        order_.push_back(j);
        continue;
      }
      const auto i = static_cast<std::size_t>(fixed);
      assert(i < timelines_.size() && timelines_[i].can_fit(problem.vms[j]));
      fixed_cost_ += incremental_cost(timelines_[i], problem.vms[j],
                                      options_.cost);
      timelines_[i].place(problem.vms[j]);
      current_[j] = fixed;
    }
    compute_min_run_costs();
  }

  ExactResult run() {
    dfs(0, fixed_cost_);
    if (!aborted_ && result_.feasible) result_.optimal = true;
    // An initial upper bound without a stored assignment is not a solution.
    if (!result_.feasible) result_.cost = kInf;
    return result_;
  }

 private:
  /// tail_bound_[k] = Σ over positions k.. of the position's VM's minimal
  /// possible run cost (over capacity-compatible servers).
  void compute_min_run_costs() {
    tail_bound_.assign(order_.size() + 1, 0.0);
    for (std::size_t pos = order_.size(); pos-- > 0;) {
      const VmSpec& vm = problem_.vms[order_[pos]];
      Energy best = kInf;
      for (const ServerSpec& server : problem_.servers) {
        if (!vm.demand.fits_within(server.capacity)) continue;
        best = std::min(best, run_cost(server, vm));
      }
      // A VM that fits nowhere makes the whole instance infeasible; the
      // search will discover that, the bound just must stay finite.
      if (best == kInf) best = 0.0;
      tail_bound_[pos] = tail_bound_[pos + 1] + best;
    }
  }

  /// Identical empty servers are interchangeable: branch only on the first.
  bool symmetric_duplicate_of_earlier_empty(std::size_t i) const {
    if (!timelines_[i].vms().empty()) return false;
    const ServerSpec& a = problem_.servers[i];
    for (std::size_t k = 0; k < i; ++k) {
      if (!timelines_[k].vms().empty()) continue;
      const ServerSpec& b = problem_.servers[k];
      if (a.capacity == b.capacity && a.p_idle == b.p_idle &&
          a.p_peak == b.p_peak && a.transition_time == b.transition_time)
        return true;
    }
    return false;
  }

  void dfs(std::size_t pos, Energy cost_so_far) {
    if (aborted_) return;
    if (++result_.nodes_explored > options_.node_limit) {
      aborted_ = true;
      return;
    }
    if (pos == order_.size()) {
      if (cost_so_far < result_.cost) {
        result_.cost = cost_so_far;
        result_.best.assignment = current_;
        result_.feasible = true;
      }
      return;
    }
    if (cost_so_far + tail_bound_[pos] >= result_.cost) return;  // prune

    const std::size_t j = order_[pos];
    const VmSpec& vm = problem_.vms[j];

    // Branch order: cheapest incremental cost first (good incumbents early).
    std::vector<std::pair<Energy, std::size_t>> branches;
    for (std::size_t i = 0; i < timelines_.size(); ++i) {
      if (!timelines_[i].can_fit(vm)) continue;
      if (symmetric_duplicate_of_earlier_empty(i)) continue;
      branches.emplace_back(incremental_cost(timelines_[i], vm, options_.cost),
                            i);
    }
    std::sort(branches.begin(), branches.end());

    for (const auto& [delta, i] : branches) {
      if (cost_so_far + delta + tail_bound_[pos + 1] >= result_.cost) continue;
      const auto record = timelines_[i].place(vm);
      current_[j] = static_cast<ServerId>(i);
      dfs(pos + 1, cost_so_far + delta);
      current_[j] = kNoServer;
      timelines_[i].undo(record, vm);
      if (aborted_) return;
    }
  }

  const ProblemInstance& problem_;
  const ExactOptions& options_;
  std::vector<std::size_t> order_;  ///< free VMs, in start order
  std::vector<ServerTimeline> timelines_;
  std::vector<ServerId> current_;
  std::vector<Energy> tail_bound_;
  Energy fixed_cost_ = 0.0;
  ExactResult result_;
  bool aborted_ = false;
};

}  // namespace

ExactResult solve_exact(const ProblemInstance& problem,
                        const ExactOptions& options) {
  return BnbSearch(problem, options).run();
}

}  // namespace esva
