#include "ilp/solution_io.h"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/parse.h"

namespace esva {

namespace {

bool is_number(const std::string& token) {
  if (token.empty()) return false;
  char* end = nullptr;
  std::strtod(token.c_str(), &end);
  return end == token.c_str() + token.size();
}

double parse_number(const std::string& token) {
  try {
    std::size_t consumed = 0;
    const double value = std::stod(token, &consumed);
    if (consumed != token.size())
      throw std::runtime_error("solution: bad number '" + token + "'");
    return value;
  } catch (const std::logic_error&) {
    throw std::runtime_error("solution: bad number '" + token + "'");
  }
}

bool looks_like_variable(const std::string& token) {
  // Our exporter emits x_/y_/z_ prefixed names.
  return token.size() > 2 &&
         (token[0] == 'x' || token[0] == 'y' || token[0] == 'z') &&
         token[1] == '_';
}

}  // namespace

SolverSolution read_solution(std::istream& in) {
  SolverSolution solution;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream tokens(line);
    std::vector<std::string> fields;
    std::string field;
    while (tokens >> field) fields.push_back(field);
    if (fields.empty()) continue;

    // Objective header lines: "Objective value: X" / "Objective X" /
    // "objective X".
    if (fields[0] == "Objective" || fields[0] == "objective") {
      for (std::size_t k = fields.size(); k-- > 1;) {
        if (is_number(fields[k])) {
          solution.objective = parse_number(fields[k]);
          solution.has_objective = true;
          break;
        }
      }
      continue;
    }

    // "name value [...]" — HiGHS / SCIP style.
    if (looks_like_variable(fields[0]) && fields.size() >= 2 &&
        is_number(fields[1])) {
      solution.values[fields[0]] = parse_number(fields[1]);
      continue;
    }
    // "index name value [reduced-cost]" — CBC style.
    if (fields.size() >= 3 && is_number(fields[0]) &&
        looks_like_variable(fields[1]) && is_number(fields[2])) {
      solution.values[fields[1]] = parse_number(fields[2]);
      continue;
    }
    // Anything else (status banners, comments) is skipped.
  }
  return solution;
}

SolverSolution load_solution(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open for reading: " + path);
  return read_solution(in);
}

Allocation allocation_from_solution(const SolverSolution& solution,
                                    const ProblemInstance& problem) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);
  for (const auto& [name, value] : solution.values) {
    if (name.rfind("x_", 0) != 0 || value < 0.5) continue;
    const std::size_t sep = name.find('_', 2);
    if (sep == std::string::npos)
      throw std::runtime_error("solution: malformed x variable '" + name + "'");
    // Range-checked: an overflowing index like "x_99999999999999_1" is a
    // structured error, not an uncaught std::out_of_range (util/parse.h).
    const int server = parse_field_as<int>(name.substr(2, sep - 2),
                                           "solution variable '" + name + "'");
    const int vm = parse_field_as<int>(name.substr(sep + 1),
                                       "solution variable '" + name + "'");
    if (server < 0 || static_cast<std::size_t>(server) >= problem.num_servers() ||
        vm < 0 || static_cast<std::size_t>(vm) >= problem.num_vms())
      throw std::runtime_error("solution: out-of-range variable '" + name + "'");
    if (alloc.assignment[static_cast<std::size_t>(vm)] != kNoServer)
      throw std::runtime_error("solution: vm " + std::to_string(vm) +
                               " assigned to two servers");
    alloc.assignment[static_cast<std::size_t>(vm)] =
        static_cast<ServerId>(server);
  }
  return alloc;
}

}  // namespace esva
