// Exact branch-and-bound solver for small instances.
//
// Searches over assignments x (VMs in start-time order, one branch per
// feasible server); for any partial assignment the optimal power states are
// implied (Eq. 17), so only x is branched on. Two facts make the bound
// admissible:
//   1. structure-cost monotonicity — adding a VM interval to a server never
//      decreases its optimal-policy structure cost (proved in DESIGN.md §1,
//      property-tested in tests/test_cost_model.cpp);
//   2. every unassigned VM j will eventually pay at least
//      min_i { W_ij : capacity permits j on i } in run cost, independent of
//      all other decisions.
// Hence lower_bound = cost(partial) + Σ_unassigned min-run-cost.
//
// Symmetry breaking: among servers with identical specs that are still
// empty, only the lowest-id one is branched on.
//
// Intended scale: m ≲ 12 VMs, n ≲ 5 servers (bench/ilp_gap); the node limit
// makes larger calls fail gracefully (optimal = false).

#pragma once

#include <cstdint>

#include "core/allocation.h"
#include "core/cost_model.h"
#include "core/problem.h"

namespace esva {

struct ExactOptions {
  CostOptions cost;
  /// Abort after this many search nodes; the incumbent is returned with
  /// optimal = false.
  std::uint64_t node_limit = 20'000'000;
  /// Warm-start upper bound (e.g. the heuristic's cost); kInf to disable.
  Energy initial_upper_bound = kInf;
  /// Optional partial assignment: VMs with a server id here are pre-placed
  /// and not branched on; the solver optimizes only the kNoServer entries,
  /// conditioned on the fixed load. Empty = everything free. This is what
  /// makes the solver usable as an exact *re-optimizer* over a VM subset
  /// (ext/window_reopt). Must be capacity-feasible if non-empty.
  std::vector<ServerId> fixed_assignment;
};

struct ExactResult {
  Allocation best;
  Energy cost = kInf;
  bool optimal = false;
  /// True iff a complete assignment was found at all.
  bool feasible = false;
  std::uint64_t nodes_explored = 0;
};

/// Minimizes total energy (Eq. 7 / Eq. 17 with the configured CostOptions)
/// over complete assignments (respecting options.fixed_assignment if set;
/// the returned cost always covers ALL VMs, fixed ones included).
ExactResult solve_exact(const ProblemInstance& problem,
                        const ExactOptions& options = {});

}  // namespace esva
