#include "ilp/model.h"

#include <cassert>
#include <cmath>

#include "core/power_model.h"

namespace esva {

std::size_t IlpModel::x_index(int server, int vm) const {
  assert(server >= 0 && server < num_servers && vm >= 0 && vm < num_vms);
  return static_cast<std::size_t>(server) * static_cast<std::size_t>(num_vms) +
         static_cast<std::size_t>(vm);
}

std::size_t IlpModel::y_index(int server, Time t) const {
  assert(server >= 0 && server < num_servers && t >= 1 && t <= horizon);
  return num_x() +
         static_cast<std::size_t>(server) * static_cast<std::size_t>(horizon) +
         static_cast<std::size_t>(t - 1);
}

std::size_t IlpModel::z_index(int server, Time t) const {
  return y_index(server, t) + num_y();
}

std::size_t IlpModel::num_x() const {
  return static_cast<std::size_t>(num_servers) *
         static_cast<std::size_t>(num_vms);
}

std::size_t IlpModel::num_y() const {
  return static_cast<std::size_t>(num_servers) *
         static_cast<std::size_t>(horizon);
}

std::string IlpModel::var_name(std::size_t var) const {
  assert(var < num_vars());
  if (var < num_x()) {
    const std::size_t i = var / static_cast<std::size_t>(num_vms);
    const std::size_t j = var % static_cast<std::size_t>(num_vms);
    return "x_" + std::to_string(i) + "_" + std::to_string(j);
  }
  const bool is_z = var >= num_x() + num_y();
  const std::size_t offset = var - num_x() - (is_z ? num_y() : 0);
  const std::size_t i = offset / static_cast<std::size_t>(horizon);
  const std::size_t t = offset % static_cast<std::size_t>(horizon) + 1;
  return std::string(is_z ? "z_" : "y_") + std::to_string(i) + "_" +
         std::to_string(t);
}

double IlpModel::objective_value(const std::vector<double>& values) const {
  assert(values.size() == num_vars());
  double total = 0.0;
  for (std::size_t v = 0; v < values.size(); ++v)
    total += objective[v] * values[v];
  return total;
}

std::string IlpModel::first_violation(const std::vector<double>& values) const {
  assert(values.size() == num_vars());
  for (const Row& row : rows) {
    double lhs = 0.0;
    for (const Term& term : row.terms) lhs += term.coefficient * values[term.var];
    const bool ok = row.sense == Sense::Equal ? std::abs(lhs - row.rhs) <= 1e-6
                                              : lhs <= row.rhs + 1e-6;
    if (!ok) return row.name;
  }
  return {};
}

IlpModel build_ilp(const ProblemInstance& problem) {
  IlpModel model;
  model.num_vms = static_cast<int>(problem.num_vms());
  model.num_servers = static_cast<int>(problem.num_servers());
  model.horizon = problem.horizon;
  model.objective.assign(model.num_vars(), 0.0);

  // Objective: W_ij on x, P_idle on y, alpha on z (Eq. 8 with the (·)^+
  // linearized through z).
  for (int i = 0; i < model.num_servers; ++i) {
    const ServerSpec& server = problem.servers[static_cast<std::size_t>(i)];
    for (int j = 0; j < model.num_vms; ++j)
      model.objective[model.x_index(i, j)] =
          run_cost(server, problem.vms[static_cast<std::size_t>(j)]);
    for (Time t = 1; t <= model.horizon; ++t) {
      model.objective[model.y_index(i, t)] = server.p_idle;
      model.objective[model.z_index(i, t)] = server.transition_cost();
    }
  }

  // Capacity constraints (9)-(10): per server, per time unit.
  for (int i = 0; i < model.num_servers; ++i) {
    const ServerSpec& server = problem.servers[static_cast<std::size_t>(i)];
    for (Time t = 1; t <= model.horizon; ++t) {
      IlpModel::Row cpu_row;
      IlpModel::Row mem_row;
      cpu_row.name = "cap_cpu_" + std::to_string(i) + "_" + std::to_string(t);
      mem_row.name = "cap_mem_" + std::to_string(i) + "_" + std::to_string(t);
      for (int j = 0; j < model.num_vms; ++j) {
        const VmSpec& vm = problem.vms[static_cast<std::size_t>(j)];
        if (vm.start > t || vm.end < t) continue;  // R_jt = 0 outside window
        const Resources r = vm.demand_at(t);       // R_jt (Eqs. 9-10)
        cpu_row.terms.push_back({model.x_index(i, j), r.cpu});
        mem_row.terms.push_back({model.x_index(i, j), r.mem});
      }
      if (cpu_row.terms.empty()) continue;  // vacuous at this time unit
      cpu_row.terms.push_back({model.y_index(i, t), -server.capacity.cpu});
      mem_row.terms.push_back({model.y_index(i, t), -server.capacity.mem});
      model.rows.push_back(std::move(cpu_row));
      model.rows.push_back(std::move(mem_row));
    }
  }

  // Assignment constraints (11): each VM on exactly one server.
  for (int j = 0; j < model.num_vms; ++j) {
    IlpModel::Row row;
    row.name = "assign_" + std::to_string(j);
    row.sense = IlpModel::Sense::Equal;
    row.rhs = 1.0;
    for (int i = 0; i < model.num_servers; ++i)
      row.terms.push_back({model.x_index(i, j), 1.0});
    model.rows.push_back(std::move(row));
  }

  // Activity coupling (12): x_ij <= y_it for t within the VM's window.
  for (int i = 0; i < model.num_servers; ++i) {
    for (int j = 0; j < model.num_vms; ++j) {
      const VmSpec& vm = problem.vms[static_cast<std::size_t>(j)];
      for (Time t = vm.start; t <= vm.end; ++t) {
        IlpModel::Row row;
        row.name = "active_" + std::to_string(i) + "_" + std::to_string(j) +
                   "_" + std::to_string(t);
        row.terms.push_back({model.x_index(i, j), 1.0});
        row.terms.push_back({model.y_index(i, t), -1.0});
        model.rows.push_back(std::move(row));
      }
    }
  }

  // Transition linearization: y_it - y_i,t-1 - z_it <= 0, with y_i0 = 0.
  for (int i = 0; i < model.num_servers; ++i) {
    for (Time t = 1; t <= model.horizon; ++t) {
      IlpModel::Row row;
      row.name = "switch_" + std::to_string(i) + "_" + std::to_string(t);
      row.terms.push_back({model.y_index(i, t), 1.0});
      if (t > 1) row.terms.push_back({model.y_index(i, t - 1), -1.0});
      row.terms.push_back({model.z_index(i, t), -1.0});
      model.rows.push_back(std::move(row));
    }
  }

  return model;
}

}  // namespace esva
