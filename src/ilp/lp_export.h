// CPLEX-LP text export of the boolean program, so instances can be solved
// with any external MILP solver (cplex, gurobi, scip, cbc, highs):
//     esva::save_lp("instance.lp", build_ilp(problem));
//     $ highs instance.lp        # or: cbc instance.lp, scip -f instance.lp
// This is the substitute for linking proprietary solver bindings
// (DESIGN.md §2).

#pragma once

#include <iosfwd>
#include <string>

#include "ilp/model.h"

namespace esva {

/// Writes the model in CPLEX-LP format (Minimize / Subject To / Bounds /
/// Binary / End).
void write_lp(std::ostream& out, const IlpModel& model);

/// File convenience wrapper; throws std::runtime_error if the file cannot be
/// opened.
void save_lp(const std::string& path, const IlpModel& model);

}  // namespace esva
