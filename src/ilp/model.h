// Materialization of the paper's boolean integer linear program (Eqs. 8–14).
//
// Variables:
//   x_ij ∈ {0,1}   VM j hosted on server i                  (n·m variables)
//   y_it ∈ {0,1}   server i active during time unit t       (n·T variables)
//   z_it ∈ [0,1]   switch-on indicator, the standard linearization of the
//                  (y_it − y_i,t−1)^+ term in Eq. 7:
//                      z_it ≥ y_it − y_i,t−1,  z_it ≥ 0
//                  (z is continuous; integrality follows at any optimum).
// Objective (Eq. 8): Σ W_ij x_ij + Σ P_idle,i y_it + Σ alpha_i z_it.
// Constraints: capacity (9)–(10), assignment (11), activity coupling (12).
//
// This model exists for two purposes: exporting to the CPLEX-LP text format
// (ilp/lp_export.h) so users with an external MILP solver can solve instances
// directly, and documenting the exact formulation the in-tree exact solver
// (ilp/branch_and_bound.h) optimizes. Size grows as O(n·m·T); build it for
// small instances only.

#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/problem.h"

namespace esva {

struct IlpModel {
  enum class Sense { LessEqual, Equal };

  struct Term {
    std::size_t var = 0;
    double coefficient = 0.0;
  };

  struct Row {
    std::string name;
    std::vector<Term> terms;
    Sense sense = Sense::LessEqual;
    double rhs = 0.0;
  };

  int num_vms = 0;
  int num_servers = 0;
  Time horizon = 0;

  /// Objective coefficients, one per variable.
  std::vector<double> objective;
  std::vector<Row> rows;

  // --- variable indexing ------------------------------------------------
  std::size_t x_index(int server, int vm) const;
  std::size_t y_index(int server, Time t) const;
  std::size_t z_index(int server, Time t) const;
  std::size_t num_x() const;
  std::size_t num_y() const;
  std::size_t num_z() const { return num_y(); }
  std::size_t num_vars() const { return num_x() + num_y() + num_z(); }

  /// Human-readable variable name ("x_2_7", "y_0_13", "z_0_13").
  std::string var_name(std::size_t var) const;

  /// True for x and y variables (declared binary); z is continuous in [0,1].
  bool is_binary(std::size_t var) const { return var < num_x() + num_y(); }

  /// Objective value of a full variable assignment.
  double objective_value(const std::vector<double>& values) const;

  /// First violated row for a full variable assignment, or "" if feasible.
  std::string first_violation(const std::vector<double>& values) const;
};

/// Builds the full model for an instance.
IlpModel build_ilp(const ProblemInstance& problem);

}  // namespace esva
