#include "ilp/lp_export.h"

#include <cmath>
#include <fstream>
#include <ostream>
#include <stdexcept>

namespace esva {

namespace {

/// LP format wants explicit signs between terms; this emits " + 3.5 x_0_1"
/// or " - 2 y_0_3" style fragments, wrapping lines at a soft limit.
class TermEmitter {
 public:
  TermEmitter(std::ostream& out, const IlpModel& model)
      : out_(out), model_(model) {}

  void emit(double coefficient, std::size_t var, bool first) {
    if (coefficient == 0.0) return;
    const double magnitude = std::abs(coefficient);
    if (first)
      out_ << (coefficient < 0 ? "- " : "");
    else
      out_ << (coefficient < 0 ? " - " : " + ");
    out_ << magnitude << ' ' << model_.var_name(var);
    if (++terms_on_line_ >= 8) {
      out_ << "\n   ";
      terms_on_line_ = 0;
    }
  }

 private:
  std::ostream& out_;
  const IlpModel& model_;
  int terms_on_line_ = 0;
};

}  // namespace

void write_lp(std::ostream& out, const IlpModel& model) {
  out << "\\ esva VM-allocation ILP (Xie et al., ICDCSW'13, Eqs. 8-14)\n";
  out << "\\ vms=" << model.num_vms << " servers=" << model.num_servers
      << " horizon=" << model.horizon << "\n";

  out << "Minimize\n obj: ";
  {
    TermEmitter emitter(out, model);
    bool first = true;
    for (std::size_t v = 0; v < model.objective.size(); ++v) {
      if (model.objective[v] == 0.0) continue;
      emitter.emit(model.objective[v], v, first);
      first = false;
    }
    if (first) out << "0 " << model.var_name(0);
  }
  out << "\nSubject To\n";
  for (const IlpModel::Row& row : model.rows) {
    out << ' ' << row.name << ": ";
    TermEmitter emitter(out, model);
    bool first = true;
    for (const IlpModel::Term& term : row.terms) {
      emitter.emit(term.coefficient, term.var, first);
      first = false;
    }
    out << (row.sense == IlpModel::Sense::Equal ? " = " : " <= ") << row.rhs
        << '\n';
  }

  out << "Bounds\n";
  for (std::size_t v = model.num_x() + model.num_y(); v < model.num_vars();
       ++v)
    out << " 0 <= " << model.var_name(v) << " <= 1\n";

  out << "Binary\n";
  for (std::size_t v = 0; v < model.num_x() + model.num_y(); ++v)
    out << ' ' << model.var_name(v) << '\n';

  out << "End\n";
}

void save_lp(const std::string& path, const IlpModel& model) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open for writing: " + path);
  write_lp(out, model);
}

}  // namespace esva
