#include "app/commands.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cstddef>
#include <fstream>
#include <memory>
#include <optional>
#include <ostream>
#include <sstream>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "core/fault_plan.h"
#include "ext/register.h"
#include "ext/timeout_policy.h"
#include "ilp/lp_export.h"
#include "ilp/model.h"
#include "ilp/solution_io.h"
#include "ilp/validate.h"
#include "obs/energy_ledger.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/wire.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "sim/replay.h"
#include "util/cli.h"
#include "util/csv.h"
#include "util/logging.h"
#include "util/sparkline.h"
#include "util/table.h"
#include "workload/diurnal.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace esva::app {

namespace {

/// Adapts a std::vector<std::string> to CliParser's argv interface.
bool parse_args(CliParser& parser, const std::vector<std::string>& args) {
  std::vector<const char*> argv{"esva"};
  for (const std::string& arg : args) argv.push_back(arg.c_str());
  return parser.parse(static_cast<int>(argv.size()), argv.data());
}

int parser_exit_code(const CliParser& parser) {
  return parser.parse_error() ? 2 : 0;
}

std::vector<VmType> vm_types_by_name(const std::string& which) {
  if (which == "all") return all_vm_types();
  if (which == "standard") return standard_vm_types();
  if (which == "memory-intensive") return memory_intensive_vm_types();
  if (which == "cpu-intensive") return cpu_intensive_vm_types();
  throw std::invalid_argument("unknown VM type set '" + which +
                              "' (all|standard|memory-intensive|cpu-intensive)");
}

std::vector<ServerType> server_types_by_name(const std::string& which) {
  if (which == "all") return all_server_types();
  if (which.rfind("1-", 0) == 0)
    return server_types_1_to(std::stoi(which.substr(2)));
  throw std::invalid_argument("unknown server type set '" + which +
                              "' (all|1-K)");
}

/// Loads the (vms, servers) pair every evaluation-style command needs.
ProblemInstance load_problem(const CliParser& parser) {
  std::vector<VmSpec> vms = load_vm_trace(parser.get_string("vms"));
  std::vector<ServerSpec> servers =
      load_server_trace(parser.get_string("servers"));
  ProblemInstance problem = make_problem(std::move(vms), std::move(servers));
  if (std::string issue = validate_problem(problem); !issue.empty())
    throw std::runtime_error("invalid instance: " + issue);
  return problem;
}

/// Writes a metrics-registry snapshot as JSON; throws on I/O failure.
void write_stats(const std::string& path, const MetricsRegistry& metrics) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("cannot open stats file '" + path + "'");
  file << metrics.to_json();
}

/// True when an output path asks for JSON Lines rather than CSV.
bool wants_jsonl(const std::string& path) {
  return path.size() >= 6 && path.compare(path.size() - 6, 6, ".jsonl") == 0;
}

/// The request source shared by `stream` and `top`: a lazy generator
/// (--generate, optionally --diurnal) or a trace replay (--vms). The caller's
/// trace_vms vector backs the trace stream and must outlive it.
std::unique_ptr<ArrivalStream> make_arrival_stream(
    const CliParser& parser, Rng& workload_rng,
    std::vector<VmSpec>& trace_vms) {
  if (parser.get_int("generate") > 0) {
    if (parser.get_bool("diurnal")) {
      DiurnalConfig config;
      config.num_vms = static_cast<int>(parser.get_int("generate"));
      config.base_rate = 1.0 / parser.get_double("interarrival");
      config.amplitude = parser.get_double("amplitude");
      config.mean_duration = parser.get_double("duration");
      config.vm_types = vm_types_by_name(parser.get_string("vm-types"));
      return std::make_unique<DiurnalArrivalStream>(config, workload_rng);
    }
    WorkloadConfig config;
    config.num_vms = static_cast<int>(parser.get_int("generate"));
    config.mean_interarrival = parser.get_double("interarrival");
    config.mean_duration = parser.get_double("duration");
    config.vm_types = vm_types_by_name(parser.get_string("vm-types"));
    return std::make_unique<PoissonArrivalStream>(config, workload_rng);
  }
  trace_vms = load_vm_trace(parser.get_string("vms"));
  return std::make_unique<VectorArrivalStream>(trace_vms);
}

void print_metrics(std::ostream& out, const ProblemInstance& problem,
                   const Allocation& alloc) {
  const AllocationMetrics metrics = compute_metrics(problem, alloc);
  TextTable table;
  table.set_header({"metric", "value"});
  table.add_row({"total energy (W*min)", fmt_double(metrics.cost.total(), 1)});
  table.add_row({"  run", fmt_double(metrics.cost.breakdown.run, 1)});
  table.add_row({"  idle", fmt_double(metrics.cost.breakdown.idle, 1)});
  table.add_row(
      {"  transition", fmt_double(metrics.cost.breakdown.transition, 1)});
  table.add_row({"cpu utilization", fmt_percent(metrics.utilization.avg_cpu)});
  table.add_row({"mem utilization", fmt_percent(metrics.utilization.avg_mem)});
  table.add_row({"servers used",
                 std::to_string(metrics.servers_used) + "/" +
                     std::to_string(problem.num_servers())});
  table.add_row({"unallocated VMs", std::to_string(metrics.unallocated)});
  out << table.render();
}

}  // namespace

int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliParser parser("esva generate — synthesize a workload + fleet");
  parser.add_int("vms", 200, "number of VM requests");
  parser.add_double("interarrival", 2.0, "mean inter-arrival time (min)");
  parser.add_double("duration", 50.0, "mean VM duration (min)");
  parser.add_string("vm-types", "all",
                    "all|standard|memory-intensive|cpu-intensive");
  parser.add_int("servers", 100, "fleet size");
  parser.add_string("server-types", "all", "all|1-K (catalog prefix)");
  parser.add_double("transition", 1.0, "server transition time (min)");
  parser.add_bool("diurnal", "use the day/night arrival process");
  parser.add_double("amplitude", 0.8, "diurnal swing in [0,1)");
  parser.add_int("seed", 42, "seed");
  parser.add_string("out-vms", "vms.csv", "VM trace output path");
  parser.add_string("out-servers", "servers.csv", "server trace output path");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    std::vector<VmSpec> vms;
    if (parser.get_bool("diurnal")) {
      DiurnalConfig config;
      config.num_vms = static_cast<int>(parser.get_int("vms"));
      config.base_rate = 1.0 / parser.get_double("interarrival");
      config.amplitude = parser.get_double("amplitude");
      config.mean_duration = parser.get_double("duration");
      config.vm_types = vm_types_by_name(parser.get_string("vm-types"));
      vms = generate_diurnal_workload(config, rng);
    } else {
      WorkloadConfig config;
      config.num_vms = static_cast<int>(parser.get_int("vms"));
      config.mean_interarrival = parser.get_double("interarrival");
      config.mean_duration = parser.get_double("duration");
      config.vm_types = vm_types_by_name(parser.get_string("vm-types"));
      vms = generate_workload(config, rng);
    }
    const std::vector<ServerSpec> servers = make_random_fleet(
        static_cast<int>(parser.get_int("servers")),
        server_types_by_name(parser.get_string("server-types")),
        parser.get_double("transition"), rng);

    save_vm_trace(parser.get_string("out-vms"), vms);
    save_server_trace(parser.get_string("out-servers"), servers);
    out << "wrote " << vms.size() << " VMs to " << parser.get_string("out-vms")
        << " and " << servers.size() << " servers to "
        << parser.get_string("out-servers") << " (horizon " << horizon_of(vms)
        << " min)\n";
    return 0;
  } catch (const std::exception& e) {
    err << "generate: " << e.what() << '\n';
    return 1;
  }
}

int cmd_allocate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliParser parser("esva allocate — run an allocator over traces");
  parser.add_string("vms", "vms.csv", "VM trace");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("allocator", "min-incremental", "policy name");
  parser.add_int("seed", 42, "seed for stochastic allocators");
  parser.add_int("threads", 1,
                 "candidate-scan threads: 1 = serial (default), 0 = hardware "
                 "concurrency, N = exactly N; identical results at any count");
  parser.add_bool("cache",
                  "enable the shape-keyed scan cache (identical results; "
                  "faster when VM shapes repeat — see docs/PERFORMANCE.md)");
  parser.add_int("cache-warmup", 1024,
                 "memo probes answered before the hit rate is judged once "
                 "against --cache-min-hit-rate (with --cache)");
  parser.add_double("cache-min-hit-rate", 0.05,
                    "hit-rate floor below which the cache auto-disables after "
                    "warmup; decisions are unchanged (with --cache)");
  parser.add_bool("no-envelope",
                  "disable the SoA envelope triage pass (identical results; "
                  "for A/B timing — see docs/PERFORMANCE.md)");
  parser.add_int("shards", 1,
                 "fleet shard count for the two-level candidate scan "
                 "(identical results at any count; see docs/PERFORMANCE.md)");
  parser.add_string("shard-by", "contiguous",
                    "shard layout: contiguous|type|band|hash (with --shards)");
  parser.add_string("out-assignment", "", "assignment CSV output (optional)");
  parser.add_string("trace", "",
                    "JSONL decision trace output: one record per VM with "
                    "candidates, rejection reasons and cost deltas (optional)");
  parser.add_string("stats", "",
                    "metrics JSON output: timers and counters (optional)");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    register_extension_allocators();
    MetricsRegistry metrics;
    std::unique_ptr<JsonlTraceSink> trace_sink;
    if (!parser.get_string("trace").empty())
      trace_sink = std::make_unique<JsonlTraceSink>(parser.get_string("trace"));

    const ProblemInstance problem = [&] {
      ScopedTimer timer(&metrics.timer("cli.load_ms"));
      return load_problem(parser);
    }();
    log_debug() << "loaded " << problem.num_vms() << " VMs / "
                << problem.num_servers() << " servers (horizon "
                << problem.horizon << ")";
    AllocatorPtr allocator = make_allocator(parser.get_string("allocator"));
    ScanConfig scan;
    scan.threads = static_cast<int>(parser.get_int("threads"));
    scan.cache = parser.get_bool("cache");
    scan.cache_warmup_probes = static_cast<int>(parser.get_int("cache-warmup"));
    scan.cache_min_hit_rate = parser.get_double("cache-min-hit-rate");
    scan.envelope = !parser.get_bool("no-envelope");
    scan.shards = static_cast<int>(parser.get_int("shards"));
    if (!parse_shard_by(parser.get_string("shard-by"), &scan.shard_by))
      throw std::invalid_argument(
          "unknown --shard-by '" + parser.get_string("shard-by") +
          "' (expected contiguous|type|band|hash)");
    allocator->set_scan_config(scan);
    ObsContext obs;
    obs.trace = trace_sink.get();
    obs.metrics = &metrics;
    allocator->set_observability(obs);
    Rng rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    const Allocation alloc = allocator->allocate(problem, rng);
    log_info() << allocator->name() << " placed "
               << (problem.num_vms() - alloc.num_unallocated()) << "/"
               << problem.num_vms() << " VMs in "
               << metrics.timer("allocator." + allocator->name() +
                                ".allocate_ms")
                      .stats()
                      .total_ms
               << " ms";
    out << "allocator: " << allocator->name() << '\n';
    {
      ScopedTimer timer(&metrics.timer("cli.evaluate_ms"));
      print_metrics(out, problem, alloc);
    }
    if (!parser.get_string("out-assignment").empty()) {
      save_assignment(parser.get_string("out-assignment"), alloc);
      out << "assignment written to " << parser.get_string("out-assignment")
          << '\n';
    }
    if (trace_sink) {
      trace_sink.reset();  // flush + close before reporting
      out << "decision trace written to " << parser.get_string("trace")
          << '\n';
    }
    if (!parser.get_string("stats").empty()) {
      metrics.set("instance.vms", static_cast<double>(problem.num_vms()));
      metrics.set("instance.servers",
                  static_cast<double>(problem.num_servers()));
      write_stats(parser.get_string("stats"), metrics);
      out << "stats written to " << parser.get_string("stats") << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    err << "allocate: " << e.what() << '\n';
    return 1;
  }
}

int cmd_stream(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  CliParser parser(
      "esva stream — event-driven replay through the streaming engine");
  parser.add_string("vms", "",
                    "VM trace to replay in start-time order (exclusive with "
                    "--generate)");
  parser.add_int("generate", 0,
                 "synthesize N requests lazily instead of reading --vms");
  parser.add_double("interarrival", 2.0,
                    "mean inter-arrival time (min, with --generate)");
  parser.add_double("duration", 50.0, "mean VM duration (min, with --generate)");
  parser.add_string("vm-types", "all",
                    "all|standard|memory-intensive|cpu-intensive "
                    "(with --generate)");
  parser.add_bool("diurnal", "day/night arrival process (with --generate)");
  parser.add_double("amplitude", 0.8, "diurnal swing in [0,1)");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("allocator", "min-incremental", "policy name");
  parser.add_int("seed", 42, "seed");
  parser.add_int("threads", 1,
                 "candidate-scan threads: 1 = serial (default), 0 = hardware "
                 "concurrency, N = exactly N; identical results at any count");
  parser.add_bool("cache", "enable the shape-keyed scan cache");
  parser.add_int("cache-warmup", 1024,
                 "memo probes answered before the hit rate is judged once "
                 "against --cache-min-hit-rate (with --cache)");
  parser.add_double("cache-min-hit-rate", 0.05,
                    "hit-rate floor below which the cache auto-disables after "
                    "warmup; decisions are unchanged (with --cache)");
  parser.add_bool("no-envelope",
                  "disable the SoA envelope triage pass (identical results; "
                  "for A/B timing)");
  parser.add_int("shards", 1,
                 "fleet shard count for the two-level candidate scan "
                 "(identical results at any count; sharded fleets add a "
                 "per-shard breakdown to --timeseries-out JSONL)");
  parser.add_string("shard-by", "contiguous",
                    "shard layout: contiguous|type|band|hash (with --shards)");
  parser.add_bool("no-gc",
                  "keep full history instead of garbage-collecting behind the "
                  "frontier (identical decisions; more memory)");
  parser.add_string("faults", "",
                    "fault-plan CSV (time,event,server with event in "
                    "fail|drain|recover) applied at frontier advances "
                    "(optional)");
  parser.add_int("retry-max", 1,
                 "total placement attempts per request (initial included); "
                 "1 disables the retry queue");
  parser.add_int("retry-delay", 8,
                 "base delay before the first retry (time units)");
  parser.add_double("retry-backoff", 2.0,
                    "multiplier applied to the delay after each failed retry");
  parser.add_int("retry-queue", 64,
                 "retry queue capacity; admissions beyond it are rejected");
  parser.add_string("out-assignment", "", "assignment CSV output (optional)");
  parser.add_string("latency-json", "",
                    "per-request latency report output: requests/sec plus "
                    "p50/p99 submit latency as JSON (optional)");
  parser.add_string("trace", "", "JSONL decision trace output (optional)");
  parser.add_string("stats", "",
                    "metrics JSON output: engine.submit_ms, engine.requests "
                    "and allocator.* (optional)");
  parser.add_string("prom-out", "",
                    "metrics in Prometheus text exposition format (optional)");
  parser.add_string("timeseries-out", "",
                    "fleet time-series output — CSV, or JSONL when the path "
                    "ends in .jsonl (optional)");
  parser.add_int("timeseries-every", 1,
                 "time units between fleet samples (with --timeseries-out)");
  parser.add_string("ledger-out", "",
                    "energy-attribution ledger output — CSV, or JSONL when "
                    "the path ends in .jsonl (optional)");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    register_extension_allocators();
    const bool generate = parser.get_int("generate") > 0;
    if (generate == !parser.get_string("vms").empty())
      throw std::invalid_argument(
          "pass exactly one of --vms <trace> or --generate <n>");

    MetricsRegistry metrics;
    std::unique_ptr<JsonlTraceSink> trace_sink;
    if (!parser.get_string("trace").empty())
      trace_sink = std::make_unique<JsonlTraceSink>(parser.get_string("trace"));

    const std::vector<ServerSpec> servers =
        load_server_trace(parser.get_string("servers"));

    AllocatorPtr allocator = make_allocator(parser.get_string("allocator"));
    ScanConfig scan;
    scan.threads = static_cast<int>(parser.get_int("threads"));
    scan.cache = parser.get_bool("cache");
    scan.cache_warmup_probes = static_cast<int>(parser.get_int("cache-warmup"));
    scan.cache_min_hit_rate = parser.get_double("cache-min-hit-rate");
    scan.envelope = !parser.get_bool("no-envelope");
    scan.shards = static_cast<int>(parser.get_int("shards"));
    if (!parse_shard_by(parser.get_string("shard-by"), &scan.shard_by))
      throw std::invalid_argument(
          "unknown --shard-by '" + parser.get_string("shard-by") +
          "' (expected contiguous|type|band|hash)");
    allocator->set_scan_config(scan);
    ObsContext obs;
    obs.trace = trace_sink.get();
    obs.metrics = &metrics;
    allocator->set_observability(obs);
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    if (!policy)
      throw std::invalid_argument("allocator '" + allocator->name() +
                                  "' is batch-only (no streaming policy)");

    // The request source and the policy draw from independent generators,
    // matching the generate-then-allocate two-command pipeline.
    Rng workload_rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    Rng policy_rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    std::vector<VmSpec> trace_vms;
    std::unique_ptr<ArrivalStream> arrivals =
        make_arrival_stream(parser, workload_rng, trace_vms);

    FaultPlan fault_plan;
    ReplayOptions options;
    options.rolling_gc = !parser.get_bool("no-gc");
    if (!parser.get_string("faults").empty()) {
      fault_plan = load_fault_plan(parser.get_string("faults"));
      fault_plan.validate(servers.size());
      options.faults = &fault_plan;
    }
    options.retry.max_attempts = static_cast<int>(parser.get_int("retry-max"));
    options.retry.base_delay =
        static_cast<Time>(parser.get_int("retry-delay"));
    options.retry.backoff = parser.get_double("retry-backoff");
    options.retry.queue_capacity =
        static_cast<std::size_t>(parser.get_int("retry-queue"));
    options.shard = scan.shard_options();
    options.obs.metrics = &metrics;
    // Telemetry sinks are bound only when their output was requested; none
    // of them changes a single decision (docs/OBSERVABILITY.md).
    TimeSeriesOptions ts_options;
    ts_options.every = static_cast<Time>(
        std::max<std::int64_t>(1, parser.get_int("timeseries-every")));
    ts_options.capacity = 0;  // file export wants the complete series
    TimeSeriesSampler sampler(ts_options);
    EnergyLedger ledger;
    if (!parser.get_string("timeseries-out").empty())
      options.timeseries = &sampler;
    if (!parser.get_string("ledger-out").empty()) options.ledger = &ledger;
    const ReplayReport report =
        replay_stream(*arrivals, servers, *policy, policy_rng, options);
    log_info() << allocator->name() << " streamed " << report.placed << "/"
               << report.requests << " requests at " << report.requests_per_sec
               << " req/s";

    out << "allocator: " << allocator->name() << '\n';
    TextTable table;
    table.set_header({"metric", "value"});
    table.add_row({"requests", std::to_string(report.requests)});
    table.add_row({"placed", std::to_string(report.placed)});
    table.add_row({"rejected", std::to_string(report.rejected)});
    table.add_row(
        {"requests/sec", fmt_double(report.requests_per_sec, 1)});
    table.add_row(
        {"submit latency p50 (ms)", fmt_double(report.latency.p50_ms, 4)});
    table.add_row(
        {"submit latency p99 (ms)", fmt_double(report.latency.p99_ms, 4)});
    table.add_row(
        {"submit latency max (ms)", fmt_double(report.latency.max_ms, 4)});
    table.add_row({"submit latency p50 hist (ms)",
                   fmt_double(report.latency.hist_p50_ms, 4)});
    table.add_row({"submit latency p99 hist (ms)",
                   fmt_double(report.latency.hist_p99_ms, 4)});
    table.add_row(
        {"total energy (W*min)", fmt_double(report.total_energy, 1)});
    if (options.ledger) {
      table.add_row({"ledger run (W*min)",
                     fmt_double(ledger.total_for(EnergyCause::kRun), 1)});
      table.add_row({"ledger idle (W*min)",
                     fmt_double(ledger.total_for(EnergyCause::kIdle), 1)});
      table.add_row(
          {"ledger transition (W*min)",
           fmt_double(ledger.total_for(EnergyCause::kTransition), 1)});
      table.add_row(
          {"ledger migration (W*min)",
           fmt_double(ledger.total_for(EnergyCause::kMigration), 1)});
      table.add_row({"ledger total (W*min)", fmt_double(ledger.total(), 1)});
      table.add_row({"ledger conserves energy",
                     ledger.conserves(report.total_energy) ? "yes" : "NO"});
    }
    table.add_row({"peak resident time units",
                   std::to_string(report.peak_resident_time_units)});
    table.add_row({"final resident time units",
                   std::to_string(report.final_resident_time_units)});
    table.add_row(
        {"peak active VMs", std::to_string(report.peak_active_vms)});
    table.add_row({"final frontier", std::to_string(report.final_frontier)});
    if (options.faults || options.retry.enabled() ||
        report.faults.late_arrivals > 0) {
      const FaultStats& fs = report.faults;
      table.add_row({"fault events", std::to_string(fs.fault_events)});
      table.add_row({"late arrivals", std::to_string(fs.late_arrivals)});
      table.add_row({"displaced", std::to_string(fs.displaced)});
      table.add_row({"evacuated", std::to_string(fs.evacuated)});
      table.add_row({"retries", std::to_string(fs.retries)});
      table.add_row({"retried placed", std::to_string(fs.retried_placed)});
      table.add_row({"rejected final", std::to_string(fs.rejected_final)});
      table.add_row({"downtime (units)", std::to_string(fs.downtime_units)});
    }
    out << table.render();

    if (!parser.get_string("out-assignment").empty()) {
      // Allocation is indexed by the trace's VM position; the replay report
      // by VmId — remap so the CSV lines up with `esva allocate` output.
      Allocation alloc;
      if (generate) {
        alloc.assignment = report.assignment;  // generated ids are positional
        alloc.assignment.resize(report.requests, kNoServer);
      } else {
        alloc.assignment.assign(trace_vms.size(), kNoServer);
        for (std::size_t j = 0; j < trace_vms.size(); ++j) {
          const auto id = static_cast<std::size_t>(trace_vms[j].id);
          if (id < report.assignment.size())
            alloc.assignment[j] = report.assignment[id];
        }
      }
      save_assignment(parser.get_string("out-assignment"), alloc);
      out << "assignment written to " << parser.get_string("out-assignment")
          << '\n';
    }
    if (!parser.get_string("latency-json").empty()) {
      const std::string path = parser.get_string("latency-json");
      std::ofstream file(path);
      if (!file)
        throw std::runtime_error("cannot open latency file '" + path + "'");
      file.precision(17);
      file << "{\n"
           << "  \"allocator\": \"" << allocator->name() << "\",\n"
           << "  \"rolling_gc\": " << (options.rolling_gc ? "true" : "false")
           << ",\n"
           << "  \"requests\": " << report.requests << ",\n"
           << "  \"placed\": " << report.placed << ",\n"
           << "  \"rejected\": " << report.rejected << ",\n"
           << "  \"requests_per_sec\": " << report.requests_per_sec << ",\n"
           << "  \"submit_latency_ms\": {\n"
           << "    \"mean\": " << report.latency.mean_ms << ",\n"
           << "    \"p50\": " << report.latency.p50_ms << ",\n"
           << "    \"p99\": " << report.latency.p99_ms << ",\n"
           << "    \"max\": " << report.latency.max_ms << ",\n"
           << "    \"p50_hist\": " << report.latency.hist_p50_ms << ",\n"
           << "    \"p90_hist\": " << report.latency.hist_p90_ms << ",\n"
           << "    \"p99_hist\": " << report.latency.hist_p99_ms << "\n"
           << "  },\n"
           << "  \"total_energy\": " << report.total_energy << ",\n"
           << "  \"peak_resident_time_units\": "
           << report.peak_resident_time_units << ",\n"
           << "  \"final_resident_time_units\": "
           << report.final_resident_time_units << ",\n"
           << "  \"peak_active_vms\": " << report.peak_active_vms << ",\n"
           << "  \"final_frontier\": " << report.final_frontier << ",\n"
           << "  \"faults\": {\n"
           << "    \"fault_events\": " << report.faults.fault_events << ",\n"
           << "    \"late_arrivals\": " << report.faults.late_arrivals << ",\n"
           << "    \"displaced\": " << report.faults.displaced << ",\n"
           << "    \"evacuated\": " << report.faults.evacuated << ",\n"
           << "    \"deferred\": " << report.faults.deferred << ",\n"
           << "    \"retries\": " << report.faults.retries << ",\n"
           << "    \"retried_placed\": " << report.faults.retried_placed
           << ",\n"
           << "    \"rejected_final\": " << report.faults.rejected_final
           << ",\n"
           << "    \"queue_full\": " << report.faults.queue_full << ",\n"
           << "    \"downtime_units\": " << report.faults.downtime_units
           << "\n"
           << "  }\n"
           << "}\n";
      out << "latency report written to " << path << '\n';
    }
    if (trace_sink) {
      trace_sink.reset();  // flush + close before reporting
      out << "decision trace written to " << parser.get_string("trace")
          << '\n';
    }
    if (!parser.get_string("stats").empty()) {
      metrics.set("instance.servers", static_cast<double>(servers.size()));
      write_stats(parser.get_string("stats"), metrics);
      out << "stats written to " << parser.get_string("stats") << '\n';
    }
    if (!parser.get_string("prom-out").empty()) {
      const std::string path = parser.get_string("prom-out");
      std::ofstream file(path);
      if (!file)
        throw std::runtime_error("cannot open prometheus file '" + path +
                                 "'");
      file << metrics.to_prometheus();
      out << "prometheus metrics written to " << path << '\n';
    }
    if (!parser.get_string("timeseries-out").empty()) {
      const std::string path = parser.get_string("timeseries-out");
      std::ofstream file(path);
      if (!file)
        throw std::runtime_error("cannot open time-series file '" + path +
                                 "'");
      if (wants_jsonl(path))
        sampler.write_jsonl(file);
      else
        sampler.write_csv(file);
      out << "time series (" << sampler.size() << " samples) written to "
          << path << '\n';
    }
    if (!parser.get_string("ledger-out").empty()) {
      const std::string path = parser.get_string("ledger-out");
      std::ofstream file(path);
      if (!file)
        throw std::runtime_error("cannot open ledger file '" + path + "'");
      if (wants_jsonl(path))
        ledger.write_jsonl(file);
      else
        ledger.write_csv(file);
      out << "energy ledger (" << ledger.size() << " entries) written to "
          << path << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    err << "stream: " << e.what() << '\n';
    return 1;
  }
}

namespace {

/// serve_loop polls with a short timeout and re-checks this between rounds;
/// the handler itself only flips the flag (async-signal-safe).
std::atomic<bool> g_serve_stop{false};

void serve_stop_handler(int) { g_serve_stop.store(true); }

}  // namespace

int cmd_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err) {
  CliParser parser(
      "esva serve — durable scheduler daemon: line-delimited JSON over a unix "
      "socket, write-ahead journal + snapshots (docs/SERVE.md)");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("socket", "", "unix socket path to listen on (required)");
  parser.add_string("wal", "",
                    "write-ahead journal path (required); an existing journal "
                    "is replayed on startup");
  parser.add_string("snapshot", "",
                    "snapshot path (optional); bounds startup replay to the "
                    "journal suffix past the snapshot");
  parser.add_int("wal-sync-every", 1,
                 "fsync the journal every N records; 1 = every op durable "
                 "before its ack, N > 1 = group commit");
  parser.add_int("snapshot-every", 0,
                 "auto-snapshot after N journaled ops (0 = only on explicit "
                 "snapshot/drain ops; needs --snapshot)");
  parser.add_string("allocator", "min-incremental", "policy name");
  parser.add_int("seed", 42, "seed");
  parser.add_int("threads", 1,
                 "candidate-scan threads: 1 = serial (default), 0 = hardware "
                 "concurrency, N = exactly N; identical results at any count");
  parser.add_int("shards", 1,
                 "fleet shard count for the two-level candidate scan "
                 "(identical results at any count)");
  parser.add_string("shard-by", "contiguous",
                    "shard layout: contiguous|type|band|hash (with --shards)");
  parser.add_int("retry-max", 1,
                 "total placement attempts per request (initial included); "
                 "1 disables the retry queue");
  parser.add_int("retry-delay", 8,
                 "base delay before the first retry (time units)");
  parser.add_double("retry-backoff", 2.0,
                    "multiplier applied to the delay after each failed retry");
  parser.add_int("retry-queue", 64,
                 "retry queue capacity; admissions beyond it are rejected");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    register_extension_allocators();
    if (parser.get_string("socket").empty())
      throw std::invalid_argument("--socket is required");

    std::vector<ServerSpec> servers =
        load_server_trace(parser.get_string("servers"));

    serve::DaemonOptions dopts;
    dopts.allocator = parser.get_string("allocator");
    dopts.seed = static_cast<std::uint64_t>(parser.get_int("seed"));
    dopts.wal_path = parser.get_string("wal");
    dopts.snapshot_path = parser.get_string("snapshot");
    dopts.wal_sync_every = static_cast<int>(parser.get_int("wal-sync-every"));
    dopts.snapshot_every =
        static_cast<std::uint64_t>(parser.get_int("snapshot-every"));
    dopts.retry.max_attempts = static_cast<int>(parser.get_int("retry-max"));
    dopts.retry.base_delay = static_cast<Time>(parser.get_int("retry-delay"));
    dopts.retry.backoff = parser.get_double("retry-backoff");
    dopts.retry.queue_capacity =
        static_cast<std::size_t>(parser.get_int("retry-queue"));
    dopts.scan.threads = static_cast<int>(parser.get_int("threads"));
    dopts.scan.shards = static_cast<int>(parser.get_int("shards"));
    if (!parse_shard_by(parser.get_string("shard-by"), &dopts.scan.shard_by))
      throw std::invalid_argument(
          "unknown --shard-by '" + parser.get_string("shard-by") +
          "' (expected contiguous|type|band|hash)");

    serve::Daemon daemon(std::move(servers), dopts);
    if (daemon.recovered_from_snapshot() || daemon.replayed_records() > 0)
      out << "recovered: snapshot="
          << (daemon.recovered_from_snapshot() ? "yes" : "no")
          << " replayed=" << daemon.replayed_records()
          << " torn_tail=" << (daemon.recovered_torn_tail() ? "yes" : "no")
          << " wal_seq=" << daemon.last_seq() << '\n'
          << std::flush;

    g_serve_stop.store(false);
    struct sigaction sa{};
    sa.sa_handler = serve_stop_handler;  // no SA_RESTART: poll returns EINTR
    sigemptyset(&sa.sa_mask);
    sigaction(SIGINT, &sa, nullptr);
    sigaction(SIGTERM, &sa, nullptr);

    const int rc =
        daemon.serve_loop(parser.get_string("socket"), g_serve_stop, [&] {
          out << "listening on " << parser.get_string("socket") << '\n'
              << std::flush;
        });
    if (rc != 0) {
      // Journal failure: the engine is ahead of the durable journal. Do NOT
      // checkpoint — a snapshot here would capture state the journal never
      // recorded and poison the next recovery.
      err << "serve: " << daemon.fatal_error() << '\n';
      return 1;
    }
    // Graceful shutdown checkpoints (journal sync + snapshot) WITHOUT
    // draining, so a restarted daemon continues the stream mid-flight.
    daemon.checkpoint();
    out << "stopped after " << daemon.last_seq() << " journaled ops\n";
    return 0;
  } catch (const std::exception& e) {
    err << "serve: " << e.what() << '\n';
    return 1;
  }
}

int cmd_client(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err) {
  CliParser parser(
      "esva client — send requests to a running esva serve daemon; positional "
      "arguments are raw JSON request lines sent verbatim (first)");
  parser.add_string("socket", "", "daemon socket path (required)");
  parser.add_string("place-vms", "",
                    "VM trace CSV; each request is sent as a place op in "
                    "start-time order");
  parser.add_string("faults", "",
                    "fault-plan CSV; events are interleaved with --place-vms "
                    "by time (an event at t <= a VM's start precedes it)");
  parser.add_int("advance", -1, "advance the engine frontier to this time");
  parser.add_int("retire", -1, "retire this VM id (frees its capacity now)");
  parser.add_bool("drain", "end-of-stream drain (finish retries, settle)");
  parser.add_bool("snapshot", "force a durable snapshot");
  parser.add_bool("stats", "request engine counters + energy (sent last)");
  parser.add_bool("assignment",
                  "include the vm->server map in --stats output");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    if (parser.get_string("socket").empty())
      throw std::invalid_argument("--socket is required");
    serve::Client client(parser.get_string("socket"));

    bool failed = false;
    const auto send = [&](const std::string& line) {
      const std::string response = client.call(line);
      out << response << '\n';
      if (response.rfind("{\"ok\":false", 0) == 0) failed = true;
    };

    for (const std::string& raw : parser.positional()) send(raw);

    std::vector<FaultEvent> fault_events;
    if (!parser.get_string("faults").empty())
      fault_events = load_fault_plan(parser.get_string("faults")).events();
    const auto send_fault = [&](const FaultEvent& event) {
      serve::Request req;
      req.op = serve::OpKind::kFault;
      req.fault = event;
      send(serve::encode_request(req));
    };

    std::size_t next_fault = 0;
    if (!parser.get_string("place-vms").empty()) {
      const std::vector<VmSpec> vms = load_vm_trace(
          parser.get_string("place-vms"), /*dense_ids=*/false);
      for (const std::size_t j : order_by_start(vms)) {
        const VmSpec& vm = vms[j];
        // Mirrors the engine's plan-driven ordering: a fault that fires at
        // or before this request's start is applied first.
        while (next_fault < fault_events.size() &&
               fault_events[next_fault].at <= vm.start)
          send_fault(fault_events[next_fault++]);
        serve::Request req;
        req.op = serve::OpKind::kPlace;
        req.vm = vm;
        send(serve::encode_request(req));
      }
    }
    while (next_fault < fault_events.size())
      send_fault(fault_events[next_fault++]);

    if (parser.get_int("advance") >= 0) {
      serve::Request req;
      req.op = serve::OpKind::kAdvance;
      req.to = static_cast<Time>(parser.get_int("advance"));
      send(serve::encode_request(req));
    }
    if (parser.get_int("retire") >= 0) {
      serve::Request req;
      req.op = serve::OpKind::kRetire;
      req.vm_id = static_cast<VmId>(parser.get_int("retire"));
      send(serve::encode_request(req));
    }
    if (parser.get_bool("drain")) {
      serve::Request req;
      req.op = serve::OpKind::kDrain;
      send(serve::encode_request(req));
    }
    if (parser.get_bool("snapshot")) {
      serve::Request req;
      req.op = serve::OpKind::kSnapshot;
      send(serve::encode_request(req));
    }
    if (parser.get_bool("stats")) {
      serve::Request req;
      req.op = serve::OpKind::kStats;
      req.with_assignment = parser.get_bool("assignment");
      send(serve::encode_request(req));
    }
    return failed ? 1 : 0;
  } catch (const std::exception& e) {
    err << "client: " << e.what() << '\n';
    return 1;
  }
}

int cmd_top(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  CliParser parser(
      "esva top — replay a workload and render a fleet telemetry dashboard");
  parser.add_string("vms", "",
                    "VM trace to replay in start-time order (exclusive with "
                    "--generate)");
  parser.add_int("generate", 0,
                 "synthesize N requests lazily instead of reading --vms");
  parser.add_double("interarrival", 2.0,
                    "mean inter-arrival time (min, with --generate)");
  parser.add_double("duration", 50.0,
                    "mean VM duration (min, with --generate)");
  parser.add_string("vm-types", "all",
                    "all|standard|memory-intensive|cpu-intensive "
                    "(with --generate)");
  parser.add_bool("diurnal", "day/night arrival process (with --generate)");
  parser.add_double("amplitude", 0.8, "diurnal swing in [0,1)");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("allocator", "min-incremental", "policy name");
  parser.add_int("seed", 42, "seed");
  parser.add_int("every", 1, "time units between fleet samples");
  parser.add_int("width", 60, "sparkline width, characters");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    register_extension_allocators();
    const bool generate = parser.get_int("generate") > 0;
    if (generate == !parser.get_string("vms").empty())
      throw std::invalid_argument(
          "pass exactly one of --vms <trace> or --generate <n>");

    MetricsRegistry metrics;
    const std::vector<ServerSpec> servers =
        load_server_trace(parser.get_string("servers"));
    AllocatorPtr allocator = make_allocator(parser.get_string("allocator"));
    ObsContext obs;
    obs.metrics = &metrics;
    allocator->set_observability(obs);
    std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
    if (!policy)
      throw std::invalid_argument("allocator '" + allocator->name() +
                                  "' is batch-only (no streaming policy)");

    Rng workload_rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    Rng policy_rng(static_cast<std::uint64_t>(parser.get_int("seed")));
    std::vector<VmSpec> trace_vms;
    std::unique_ptr<ArrivalStream> arrivals =
        make_arrival_stream(parser, workload_rng, trace_vms);

    TimeSeriesOptions ts_options;
    ts_options.every = static_cast<Time>(
        std::max<std::int64_t>(1, parser.get_int("every")));
    ts_options.capacity = 0;
    TimeSeriesSampler sampler(ts_options);
    EnergyLedger ledger;
    ReplayOptions options;
    options.obs.metrics = &metrics;
    options.timeseries = &sampler;
    options.ledger = &ledger;
    const ReplayReport report =
        replay_stream(*arrivals, servers, *policy, policy_rng, options);

    const std::vector<FleetSample> samples = sampler.samples();
    const int width =
        std::max(8, static_cast<int>(parser.get_int("width")));
    out << "allocator: " << allocator->name() << "   requests: "
        << report.requests << "   placed: " << report.placed
        << "   frontier: " << report.final_frontier << "   samples: "
        << samples.size() << '\n';

    TextTable table;
    table.set_header({"series", "trend", "min", "last", "max"});
    const auto add_series = [&](const std::string& label, auto getter,
                                int precision) {
      std::vector<double> values;
      values.reserve(samples.size());
      for (const FleetSample& s : samples)
        values.push_back(static_cast<double>(getter(s)));
      if (values.empty()) return;
      const auto [lo, hi] = std::minmax_element(values.begin(), values.end());
      table.add_row({label, sparkline(values, width),
                     fmt_double(*lo, precision),
                     fmt_double(values.back(), precision),
                     fmt_double(*hi, precision)});
    };
    add_series("active VMs", [](const FleetSample& s) { return s.active_vms; },
               0);
    add_series("busy servers",
               [](const FleetSample& s) { return s.busy_servers; }, 0);
    add_series("power (W)",
               [](const FleetSample& s) { return s.total_power_w; }, 1);
    add_series("spare CPU", [](const FleetSample& s) { return s.spare_cpu; },
               1);
    add_series("spare MEM", [](const FleetSample& s) { return s.spare_mem; },
               1);
    add_series("retry depth",
               [](const FleetSample& s) { return s.retry_queue_depth; }, 0);
    add_series("energy (W*min)",
               [](const FleetSample& s) { return s.total_energy; }, 1);
    out << table.render();

    out << "submit latency (ms): p50 "
        << fmt_double(report.latency.hist_p50_ms, 4) << "  p90 "
        << fmt_double(report.latency.hist_p90_ms, 4) << "  p99 "
        << fmt_double(report.latency.hist_p99_ms, 4) << "  max "
        << fmt_double(report.latency.max_ms, 4) << '\n';

    TextTable attribution;
    attribution.set_header({"energy cause", "W*min", "share"});
    const Energy total = ledger.total();
    for (const EnergyCause cause :
         {EnergyCause::kRun, EnergyCause::kIdle, EnergyCause::kTransition,
          EnergyCause::kMigration}) {
      const Energy part = ledger.total_for(cause);
      attribution.add_row(
          {to_string(cause), fmt_double(part, 1),
           total != 0.0 ? fmt_percent(part / total) : "-"});
    }
    attribution.add_row({"total", fmt_double(total, 1),
                         ledger.conserves(report.total_energy)
                             ? "conserved"
                             : "NOT CONSERVED"});
    out << attribution.render();
    return 0;
  } catch (const std::exception& e) {
    err << "top: " << e.what() << '\n';
    return 1;
  }
}

int cmd_evaluate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliParser parser("esva evaluate — price an existing assignment");
  parser.add_string("vms", "vms.csv", "VM trace");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("assignment", "assignment.csv", "assignment CSV");
  parser.add_int("timeout", -1,
                 "also price a fixed-timeout power policy (minutes; -1 off)");
  parser.add_string("trace", "",
                    "JSONL placement replay of the assignment: per-VM "
                    "incremental cost in start-time order (optional)");
  parser.add_string("stats", "",
                    "metrics JSON output: timers and gauges (optional)");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    MetricsRegistry metrics;
    const ProblemInstance problem = [&] {
      ScopedTimer timer(&metrics.timer("cli.load_ms"));
      return load_problem(parser);
    }();
    const Allocation alloc =
        load_assignment(parser.get_string("assignment"), problem.num_vms());
    if (std::string issue = validate_allocation(problem, alloc, false);
        !issue.empty())
      throw std::runtime_error("infeasible assignment: " + issue);
    {
      ScopedTimer timer(&metrics.timer("cli.evaluate_ms"));
      print_metrics(out, problem, alloc);
    }
    if (!parser.get_string("trace").empty()) {
      JsonlTraceSink sink(parser.get_string("trace"));
      trace_assignment(problem, alloc, sink);
      out << "placement trace written to " << parser.get_string("trace")
          << '\n';
    }
    if (!parser.get_string("stats").empty()) {
      const CostReport cost = evaluate_cost(problem, alloc);
      metrics.set("cost.total", cost.total());
      metrics.set("cost.run", cost.breakdown.run);
      metrics.set("cost.idle", cost.breakdown.idle);
      metrics.set("cost.transition", cost.breakdown.transition);
      metrics.set("instance.vms", static_cast<double>(problem.num_vms()));
      metrics.set("instance.servers",
                  static_cast<double>(problem.num_servers()));
      metrics.set("assignment.unallocated",
                  static_cast<double>(alloc.num_unallocated()));
      write_stats(parser.get_string("stats"), metrics);
      out << "stats written to " << parser.get_string("stats") << '\n';
    }
    if (parser.get_int("timeout") >= 0) {
      const TimeoutPolicy policy{
          static_cast<Time>(parser.get_int("timeout"))};
      out << "with fixed timeout " << parser.get_int("timeout") << " min: "
          << fmt_double(evaluate_cost_with_timeout(problem, alloc, policy), 1)
          << " W*min\n";
    }
    return 0;
  } catch (const std::exception& e) {
    err << "evaluate: " << e.what() << '\n';
    return 1;
  }
}

int cmd_simulate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err) {
  CliParser parser("esva simulate — event-driven replay with power samples");
  parser.add_string("vms", "vms.csv", "VM trace");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("assignment", "assignment.csv", "assignment CSV");
  parser.add_string("power-csv", "", "per-minute power samples output");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    const ProblemInstance problem = load_problem(parser);
    const Allocation alloc =
        load_assignment(parser.get_string("assignment"), problem.num_vms());
    const SimulationResult result =
        SimulationEngine(problem, alloc).run(true);
    out << "simulated energy: " << fmt_double(result.total_energy(), 1)
        << " W*min (run " << fmt_double(result.total.run, 1) << ", idle "
        << fmt_double(result.total.idle, 1) << ", transition "
        << fmt_double(result.total.transition, 1) << ")\n";
    Watts peak = 0.0;
    std::vector<double> profile;
    profile.reserve(result.samples.size());
    for (const PowerSample& sample : result.samples) {
      peak = std::max(peak, sample.total_power);
      profile.push_back(sample.total_power);
    }
    out << "peak power: " << fmt_double(peak, 1) << " W over "
        << result.samples.size() << " sampled minutes\n";
    out << "profile: " << sparkline(profile, 72) << '\n';
    if (!parser.get_string("power-csv").empty()) {
      std::ofstream file(parser.get_string("power-csv"));
      if (!file)
        throw std::runtime_error("cannot open " +
                                 parser.get_string("power-csv"));
      CsvWriter csv(file);
      csv.row({"t", "total_power_w", "active_servers", "running_vms"});
      for (const PowerSample& sample : result.samples)
        csv.typed_row(static_cast<int>(sample.t), sample.total_power,
                      sample.active_servers, sample.running_vms);
      out << "power samples written to " << parser.get_string("power-csv")
          << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    err << "simulate: " << e.what() << '\n';
    return 1;
  }
}

int cmd_export_lp(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err) {
  CliParser parser("esva export-lp — write the boolean ILP in CPLEX-LP form");
  parser.add_string("vms", "vms.csv", "VM trace");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("out", "instance.lp", "LP output path");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    const ProblemInstance problem = load_problem(parser);
    const IlpModel model = build_ilp(problem);
    save_lp(parser.get_string("out"), model);
    out << "wrote " << model.num_vars() << " variables / "
        << model.rows.size() << " constraints to " << parser.get_string("out")
        << '\n';
    out << "solve with e.g.: highs " << parser.get_string("out")
        << "  (then: esva import-solution --solution <file>)\n";
    return 0;
  } catch (const std::exception& e) {
    err << "export-lp: " << e.what() << '\n';
    return 1;
  }
}

int cmd_import_solution(const std::vector<std::string>& args,
                        std::ostream& out, std::ostream& err) {
  CliParser parser(
      "esva import-solution — validate an external solver's solution");
  parser.add_string("vms", "vms.csv", "VM trace");
  parser.add_string("servers", "servers.csv", "server trace");
  parser.add_string("solution", "instance.sol", "solver solution file");
  parser.add_string("out-assignment", "", "assignment CSV output (optional)");
  if (!parse_args(parser, args)) return parser_exit_code(parser);

  try {
    const ProblemInstance problem = load_problem(parser);
    const SolverSolution solution =
        load_solution(parser.get_string("solution"));
    const Allocation alloc = allocation_from_solution(solution, problem);
    if (std::string issue = validate_allocation(problem, alloc, true);
        !issue.empty())
      throw std::runtime_error("solver solution infeasible: " + issue);
    const Energy cost = evaluate_cost(problem, alloc).total();
    out << "solution is feasible; energy " << fmt_double(cost, 1)
        << " W*min\n";
    if (solution.has_objective) {
      out << "solver-reported objective: "
          << fmt_double(solution.objective, 1)
          << (std::abs(solution.objective - cost) <= 1e-3 * (1.0 + cost)
                  ? " (matches)"
                  : " (MISMATCH vs our accounting)")
          << '\n';
    }
    print_metrics(out, problem, alloc);
    if (!parser.get_string("out-assignment").empty()) {
      save_assignment(parser.get_string("out-assignment"), alloc);
      out << "assignment written to " << parser.get_string("out-assignment")
          << '\n';
    }
    return 0;
  } catch (const std::exception& e) {
    err << "import-solution: " << e.what() << '\n';
    return 1;
  }
}

std::string usage() {
  return
      "esva — energy-saving VM allocation toolkit\n"
      "\n"
      "subcommands:\n"
      "  generate         synthesize a workload + fleet as CSV traces\n"
      "  allocate         run an allocation policy over traces\n"
      "  stream           feed requests one at a time through the streaming\n"
      "                   engine; per-request latency + rolling-horizon GC\n"
      "  serve            long-running scheduler daemon: JSON over a unix\n"
      "                   socket, write-ahead journal + snapshot recovery\n"
      "  client           send place/fault/advance/stats requests to a\n"
      "                   running serve daemon\n"
      "  top              replay a workload and render a terminal fleet\n"
      "                   dashboard (sparklines, latency, energy ledger)\n"
      "  evaluate         price an existing assignment (Eq. 17)\n"
      "  simulate         event-driven replay; per-minute power samples\n"
      "  export-lp        write the boolean ILP in CPLEX-LP format\n"
      "  import-solution  validate/evaluate an external solver's solution\n"
      "  help             this message\n"
      "\n"
      "global flags (any position):\n"
      "  --log-level {debug,info,warn,error,off}   stderr logging threshold\n"
      "                                            (default: warn)\n"
      "\n"
      "run `esva <subcommand> --help` for per-command flags.\n";
}

int esva_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err) {
  // Strip the global --log-level flag (valid in any position) before
  // dispatching; subcommand parsers never see it.
  std::vector<std::string> cli(argv + 1, argv + argc);
  for (std::size_t k = 0; k < cli.size();) {
    std::string value;
    if (cli[k] == "--log-level") {
      if (k + 1 >= cli.size()) {
        err << "--log-level requires a value "
               "(debug|info|warn|error|off)\n";
        return 2;
      }
      value = cli[k + 1];
      cli.erase(cli.begin() + static_cast<std::ptrdiff_t>(k),
                cli.begin() + static_cast<std::ptrdiff_t>(k) + 2);
    } else if (cli[k].rfind("--log-level=", 0) == 0) {
      value = cli[k].substr(std::string("--log-level=").size());
      cli.erase(cli.begin() + static_cast<std::ptrdiff_t>(k));
    } else {
      ++k;
      continue;
    }
    const std::optional<LogLevel> level = parse_log_level(value);
    if (!level) {
      err << "--log-level: unknown level '" << value
          << "' (debug|info|warn|error|off)\n";
      return 2;
    }
    set_log_level(*level);
  }

  if (cli.empty()) {
    err << usage();
    return 2;
  }
  const std::string command = cli.front();
  const std::vector<std::string> args(cli.begin() + 1, cli.end());
  if (command == "help" || command == "--help" || command == "-h") {
    out << usage();
    return 0;
  }
  if (command == "generate") return cmd_generate(args, out, err);
  if (command == "allocate") return cmd_allocate(args, out, err);
  if (command == "stream") return cmd_stream(args, out, err);
  if (command == "serve") return cmd_serve(args, out, err);
  if (command == "client") return cmd_client(args, out, err);
  if (command == "top") return cmd_top(args, out, err);
  if (command == "evaluate") return cmd_evaluate(args, out, err);
  if (command == "simulate") return cmd_simulate(args, out, err);
  if (command == "export-lp") return cmd_export_lp(args, out, err);
  if (command == "import-solution") return cmd_import_solution(args, out, err);
  err << "unknown subcommand '" << command << "'\n\n" << usage();
  return 2;
}

}  // namespace esva::app
