// The `esva` command-line tool, as a library so every subcommand is unit
// testable. Subcommands operate on the CSV trace formats (workload/trace.h)
// and the LP/solution formats (ilp/), so a full workflow can be scripted:
//
//   esva generate  --vms 200 --out-vms vms.csv --out-servers servers.csv
//   esva allocate  --vms vms.csv --servers servers.csv
//                  --allocator min-incremental --out-assignment assign.csv
//                  --trace decisions.jsonl --stats stats.json
//   esva stream    --vms vms.csv --servers servers.csv
//                  --allocator min-incremental --latency-json latency.json
//   esva evaluate  --vms vms.csv --servers servers.csv --assignment assign.csv
//   esva simulate  --vms vms.csv --servers servers.csv --assignment assign.csv
//                  --power-csv power.csv
//   esva export-lp --vms vms.csv --servers servers.csv --out instance.lp
//   esva import-solution --vms vms.csv --servers servers.csv
//                  --solution instance.sol --out-assignment assign.csv
//
// Every function returns a process exit code (0 = success) and writes its
// human-readable report to `out` and errors to `err`.

#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace esva::app {

/// Dispatches argv[1] to a subcommand; prints usage on unknown/missing
/// subcommands and on `esva help`.
int esva_main(int argc, const char* const* argv, std::ostream& out,
              std::ostream& err);

/// Individual subcommands (args exclude the program and subcommand names).
int cmd_generate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_allocate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_stream(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int cmd_serve(const std::vector<std::string>& args, std::ostream& out,
              std::ostream& err);
int cmd_client(const std::vector<std::string>& args, std::ostream& out,
               std::ostream& err);
int cmd_top(const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err);
int cmd_evaluate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_simulate(const std::vector<std::string>& args, std::ostream& out,
                 std::ostream& err);
int cmd_export_lp(const std::vector<std::string>& args, std::ostream& out,
                  std::ostream& err);
int cmd_import_solution(const std::vector<std::string>& args,
                        std::ostream& out, std::ostream& err);

/// Top-level usage text.
std::string usage();

}  // namespace esva::app
