#include "core/problem.h"

#include <cassert>

namespace esva {

ProblemInstance make_problem(std::vector<VmSpec> vms,
                             std::vector<ServerSpec> servers) {
  ProblemInstance problem;
  problem.horizon = horizon_of(vms);
  problem.vms = std::move(vms);
  problem.servers = std::move(servers);
  for (std::size_t j = 0; j < problem.vms.size(); ++j)
    assert(problem.vms[j].id == static_cast<VmId>(j));
  for (std::size_t i = 0; i < problem.servers.size(); ++i)
    assert(problem.servers[i].id == static_cast<ServerId>(i));
  return problem;
}

std::string validate_problem(const ProblemInstance& problem) {
  for (std::size_t j = 0; j < problem.vms.size(); ++j) {
    const VmSpec& vm = problem.vms[j];
    if (vm.id != static_cast<VmId>(j))
      return "vm ids must be dense: vms[" + std::to_string(j) + "].id == " +
             std::to_string(vm.id);
    if (!vm.valid())
      return "vm " + std::to_string(j) + " is structurally invalid";
    if (vm.end > problem.horizon)
      return "vm " + std::to_string(j) + " ends after the horizon";
    bool fits_somewhere = false;
    for (const ServerSpec& server : problem.servers) {
      if (vm.demand.fits_within(server.capacity)) {
        fits_somewhere = true;
        break;
      }
    }
    if (!fits_somewhere)
      return "vm " + std::to_string(j) + " with demand " +
             vm.demand.to_string() + " fits on no server";
  }
  for (std::size_t i = 0; i < problem.servers.size(); ++i) {
    const ServerSpec& server = problem.servers[i];
    if (server.id != static_cast<ServerId>(i))
      return "server ids must be dense: servers[" + std::to_string(i) +
             "].id == " + std::to_string(server.id);
    if (!server.valid())
      return "server " + std::to_string(i) + " is structurally invalid";
  }
  return {};
}

}  // namespace esva
