// Problem instance: the input of the allocation problem (paper §II).

#pragma once

#include <string>
#include <vector>

#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "util/types.h"

namespace esva {

struct ProblemInstance {
  std::vector<VmSpec> vms;
  std::vector<ServerSpec> servers;
  /// Planning horizon T; every VM interval must lie within [1, horizon].
  Time horizon = 0;

  std::size_t num_vms() const { return vms.size(); }
  std::size_t num_servers() const { return servers.size(); }
};

/// Builds an instance, setting the horizon to the latest VM finishing time
/// and asserting ids are dense (vm[i].id == i, server[i].id == i).
ProblemInstance make_problem(std::vector<VmSpec> vms,
                             std::vector<ServerSpec> servers);

/// Structural validation; returns an empty string if the instance is
/// well-formed, otherwise a description of the first problem found. Checks:
/// dense ids, valid specs, intervals within [1, horizon], and that every VM
/// fits on at least one *empty* server (otherwise it can never be placed).
std::string validate_problem(const ProblemInstance& problem);

}  // namespace esva
