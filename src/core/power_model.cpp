#include "core/power_model.h"

#include <cassert>

namespace esva {

Energy run_cost(const ServerSpec& server, const VmSpec& vm) {
  assert(server.valid() && vm.valid());
  // W_ij = P¹_i · Σ_t R^CPU_jt (Eq. 3); for stable demand the sum is
  // demand × duration.
  return server.unit_run_power() * vm.total_cpu();
}

Watts power_at_usage(const ServerSpec& server, CpuUnits cpu_usage) {
  assert(server.valid());
  return server.p_idle + server.unit_run_power() * cpu_usage;
}

}  // namespace esva
