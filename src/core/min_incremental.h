// The paper's contribution (§III): Minimum Incremental Energy allocation.
//
// VMs are processed in increasing start-time order. For each VM:
//   1. collect the subset S_j of servers with sufficient spare CPU *and*
//      memory throughout the VM's time duration;
//   2. for every server in S_j, evaluate the incremental energy cost of
//      hosting the VM there (Eq. 17: run cost + change in busy/idle/
//      transition structure cost under the optimal power-state policy);
//   3. allocate to the server with the minimum incremental cost.
//
// Why this saves energy (paper §III): it gravitates to energy-efficient
// servers (low P¹ and low P_idle), consolidates onto already-busy servers
// (a VM overlapping an existing busy segment adds no idle cost), and prefers
// servers with low transition cost when everything is powered down.
//
// Complexity: O(m · n · log T) — per VM, each server needs an O(log T)
// feasibility probe (segment trees) plus an O(local) structure-cost delta.
// The per-VM scan runs through the candidate-scan engine
// (core/candidate_scan.h): Options::scan parallelizes it across a thread
// pool and/or memoizes per-(server, shape) probes, bit-identical to the
// serial scan by construction.

#pragma once

#include "core/allocator.h"
#include "core/cost_model.h"

namespace esva {

class MinIncrementalAllocator final : public Allocator {
 public:
  struct Options {
    CostOptions cost;
    /// Presentation order; the paper uses ByStartTime. Exposed for the
    /// ordering ablation.
    VmOrder order = VmOrder::ByStartTime;
    /// Scan-engine knobs (threads, shape cache); defaults are the serial
    /// uncached loop. Any setting yields the identical assignment.
    ScanConfig scan;
  };

  MinIncrementalAllocator() = default;
  explicit MinIncrementalAllocator(Options options) : options_(options) {}

  std::string name() const override { return "min-incremental"; }

  void set_scan_config(const ScanConfig& config) override {
    options_.scan = config;
  }

  /// Deterministic (ignores rng): ties on incremental cost break toward the
  /// lowest server id, at every thread count.
  Allocation allocate(const ProblemInstance& problem, Rng& rng) override;

  /// The same decision loop as allocate(), one request at a time
  /// (core/streaming.h).
  std::unique_ptr<PlacementPolicy> make_policy() const override;

 private:
  Options options_;
};

}  // namespace esva
