// Allocation results: the assignment x_ij produced by an allocator, plus
// validation and total-cost evaluation against an instance.

#pragma once

#include <string>
#include <vector>

#include "core/cost_model.h"
#include "core/problem.h"
#include "obs/trace.h"
#include "util/types.h"

namespace esva {

struct Allocation {
  /// assignment[j] = server hosting VM j, or kNoServer if it could not be
  /// placed (the paper assumes sufficient capacity; we surface failures).
  std::vector<ServerId> assignment;

  std::size_t num_unallocated() const;
  bool fully_allocated() const { return num_unallocated() == 0; }
};

/// Per-instance cost report under the optimal power-state policy.
struct CostReport {
  CostBreakdown breakdown;           ///< datacenter-wide components
  std::vector<Energy> per_server;    ///< Eq. 17 cost of each server
  std::vector<int> used_servers;     ///< servers hosting >= 1 VM

  Energy total() const { return breakdown.total(); }
};

/// Groups VM specs by their assigned server; unallocated VMs are skipped.
std::vector<std::vector<VmSpec>> vms_by_server(const ProblemInstance& problem,
                                               const Allocation& alloc);

/// Evaluates Eq. 17 (summed over servers) for an allocation.
CostReport evaluate_cost(const ProblemInstance& problem,
                         const Allocation& alloc,
                         const CostOptions& opts = {});

/// Checks that the allocation is feasible: assignment vector sized to the VM
/// count, server ids in range, every allocated VM's demand within capacity at
/// every time unit (constraints 9–10), and — if `require_complete` — that all
/// VMs are allocated (constraint 11). Returns "" when valid, else the first
/// violation found.
std::string validate_allocation(const ProblemInstance& problem,
                                const Allocation& alloc,
                                bool require_complete = true);

/// Replays an existing assignment through the trace pipeline: placing VMs in
/// start-time order onto their assigned servers, it emits one decision per VM
/// (allocator "assignment", the assigned server as the only candidate, and
/// the incremental cost the placement had at that point). Used by
/// `esva evaluate --trace` to audit external assignments. The allocation must
/// be capacity-feasible.
void trace_assignment(const ProblemInstance& problem, const Allocation& alloc,
                      TraceSink& sink, const CostOptions& opts = {});

}  // namespace esva
