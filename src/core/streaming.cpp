#include "core/streaming.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/power_model.h"
#include "obs/energy_ledger.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace esva {

std::string to_string(ServerHealth health) {
  switch (health) {
    case ServerHealth::kUp:
      return "up";
    case ServerHealth::kDrained:
      return "drained";
    case ServerHealth::kFailed:
      return "failed";
  }
  return "?";
}

std::string to_string(PlacementReject reject) {
  switch (reject) {
    case PlacementReject::kNone:
      return "none";
    case PlacementReject::kNoCapacity:
      return "no-capacity";
    case PlacementReject::kLateArrival:
      return "late-arrival";
    case PlacementReject::kDeferred:
      return "deferred";
    case PlacementReject::kQueueFull:
      return "queue-full";
  }
  return "?";
}

ClusterState::ClusterState(std::vector<ServerSpec> servers,
                           Time initial_horizon, ShardOptions shard)
    : servers_(std::move(servers)),
      partition_(servers_, shard),
      shard_epochs_(partition_.num_shards(), 0),
      active_(servers_.size()),
      retired_hi_(servers_.size(), 0),
      health_(servers_.size(), ServerHealth::kUp),
      horizon_(std::max<Time>(initial_horizon, 0)) {
  timelines_.reserve(servers_.size());
  for (const ServerSpec& spec : servers_)
    timelines_.emplace_back(spec, /*base=*/1, horizon_);
  envelopes_.reset(timelines_, partition_.original_of());
  resident_units_ =
      servers_.size() * static_cast<std::size_t>(horizon_);
}

void ClusterState::refresh_envelope(std::size_t i) {
  envelopes_.refresh(partition_.storage_of(i), timelines_[i]);
  ++shard_epochs_[partition_.shard_of(i)];
}

Time ClusterState::window_base(std::size_t i) const {
  // Every active VM must stay inside the window, and the next request may
  // start exactly at the frontier.
  Time base = frontier_;
  for (const VmSpec& vm : active_[i]) base = std::min(base, vm.start);
  return base;
}

bool ClusterState::should_rebuild(std::size_t i) const {
  const Time dead = window_base(i) - timelines_[i].base();
  if (dead <= 0) return false;
  if (eager_rebuild_) return true;
  // Rebuild once the dead prefix rivals the live window (2x amortization):
  // each unit of rebuild work is paid for by a unit of frontier progress,
  // and resident memory stays within 2x the active window plus slack.
  const Time live = horizon_ - window_base(i) + 1;
  return dead >= std::max<Time>(32, live);
}

void ClusterState::rebuild(std::size_t i, Time base, Time horizon) {
  // The frontier can outrun the lazily-extended planning horizon (a fault
  // event or an arrival far past every previous VM's end). Nothing can be
  // active there — place() ensured end <= horizon_ and the sweep retired the
  // rest — so rebuild an empty window; the next ensure_horizon (every later
  // request has end >= start >= frontier) extends and rebuilds it for real.
  horizon = std::max(horizon, base - 1);
  ServerTimeline fresh(servers_[i], base, horizon);
  // Epochs must stay unique across rebuilds or the scan cache could mistake
  // the fresh timeline for a stale snapshot it has entries for.
  fresh.inherit_epoch(timelines_[i].epoch() + 1);
  if (retired_hi_[i] > 0) fresh.seed_busy(retired_hi_[i], retired_hi_[i]);
  for (const VmSpec& vm : active_[i]) fresh.place(vm);
  resident_units_ += static_cast<std::size_t>(fresh.window_units()) -
                     static_cast<std::size_t>(timelines_[i].window_units());
  timelines_[i] = std::move(fresh);
  refresh_envelope(i);
}

void ClusterState::stub_timeline(std::size_t i) {
  // Empty window base..base-1 at the frontier: can_fit rejects every VM
  // (Horizon), so the server disappears from every policy scan; the window
  // holds no resource trees, so it costs no resident memory.
  ServerTimeline stub(servers_[i], frontier_, frontier_ - 1);
  stub.inherit_epoch(timelines_[i].epoch() + 1);
  resident_units_ -= static_cast<std::size_t>(timelines_[i].window_units());
  timelines_[i] = std::move(stub);
  refresh_envelope(i);
}

void ClusterState::recompute_next_retire() {
  next_retire_ = 0;
  for (const std::vector<VmSpec>& vms : active_)
    for (const VmSpec& vm : vms)
      next_retire_ = next_retire_ == 0 ? vm.end : std::min(next_retire_, vm.end);
}

void ClusterState::ensure_horizon(Time end) {
  if (end <= horizon_) return;
  // Double the forward window (with a floor) so repeated small extensions
  // cost O(1) rebuild work per time unit, amortized.
  const Time slack = std::max<Time>(256, horizon_ - frontier_ + 1);
  horizon_ = std::max<Time>(end, horizon_ + slack);
  for (std::size_t i = 0; i < timelines_.size(); ++i)
    if (placeable(i)) rebuild(i, window_base(i), horizon_);
}

void ClusterState::place(std::size_t server, const VmSpec& vm) {
  assert(server < timelines_.size());
  assert(placeable(server));
  timelines_[server].place(vm);
  refresh_envelope(server);
  next_retire_ = next_retire_ == 0 ? vm.end : std::min(next_retire_, vm.end);
  active_[server].push_back(vm);
  ++active_count_;
}

void ClusterState::advance_to(Time t) {
  if (t <= frontier_) return;
  frontier_ = t;
  if (next_retire_ == 0 || next_retire_ >= frontier_) return;

  Time next = 0;
  for (std::size_t i = 0; i < timelines_.size(); ++i) {
    std::vector<VmSpec>& vms = active_[i];
    std::size_t kept = 0;
    for (std::size_t k = 0; k < vms.size(); ++k) {
      VmSpec& vm = vms[k];
      if (vm.end < frontier_) {
        retired_hi_[i] = std::max(retired_hi_[i], vm.end);
        --active_count_;
      } else {
        next = next == 0 ? vm.end : std::min(next, vm.end);
        // Compact in place, keeping placement order; guard against
        // self-move, which would gut the profile vector.
        if (kept != k) vms[kept] = std::move(vm);
        ++kept;
      }
    }
    vms.resize(kept);
    // Stubs stay stubs: rebuilding a non-up server would resurrect its
    // capacity for policy scans.
    if (placeable(i) && should_rebuild(i)) rebuild(i, window_base(i), horizon_);
  }
  next_retire_ = next;
  assert(active_count_ == active_vms_scan());
}

std::size_t ClusterState::active_vms_scan() const {
  std::size_t total = 0;
  for (const std::vector<VmSpec>& vms : active_) total += vms.size();
  return total;
}

FleetSample ClusterState::sample(Time t) const {
  FleetSample s;
  s.t = t;
  s.active_vms = static_cast<std::uint32_t>(active_count_);
  // Partitioned fleets get the per-shard load breakdown alongside the
  // fleet-wide totals; single-shard clusters leave it empty (the historical
  // sample shape).
  const bool per_shard = partition_.num_shards() > 1;
  if (per_shard) s.shards.resize(partition_.num_shards());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    ShardLoad* shard = per_shard ? &s.shards[partition_.shard_of(i)] : nullptr;
    if (shard)
      shard->active_vms += static_cast<std::uint32_t>(active_[i].size());
    if (health_[i] == ServerHealth::kFailed) {
      ++s.failed_servers;
      continue;
    }
    // Instantaneous usage from the active VM lists — drained servers' VMs
    // keep running on timeline stubs, so the timelines can't be trusted
    // here, but active_ can.
    double cpu = 0.0;
    double mem = 0.0;
    for (const VmSpec& vm : active_[i]) {
      if (vm.start <= t && t <= vm.end) {
        const Resources demand = vm.demand_at(t);
        cpu += demand.cpu;
        mem += demand.mem;
      }
    }
    const bool hosting = cpu > 0.0 || mem > 0.0;
    if (hosting) {
      const double power = power_at_usage(servers_[i], cpu);
      s.total_power_w += power;
      if (shard) shard->power_w += power;
    }
    if (health_[i] == ServerHealth::kDrained) {
      ++s.drained_servers;
      continue;  // not placeable: no spare capacity contribution
    }
    if (hosting) {
      ++s.busy_servers;
      if (shard) ++shard->busy_servers;
    } else {
      ++s.idle_servers;
      if (shard) ++shard->idle_servers;
    }
    s.spare_cpu += servers_[i].capacity.cpu - cpu;
    s.spare_mem += servers_[i].capacity.mem - mem;
  }
  return s;
}

std::vector<VmSpec> ClusterState::fail_server(std::size_t i) {
  assert(i < timelines_.size());
  if (health_[i] == ServerHealth::kFailed) return {};
  health_[i] = ServerHealth::kFailed;
  std::vector<VmSpec> displaced = std::move(active_[i]);
  active_[i].clear();
  active_count_ -= displaced.size();
  assert(active_count_ == active_vms_scan());
  // Occupancy ran right up to the failure instant; anchor future structure
  // deltas (after recovery) at the last completed unit.
  if (!displaced.empty() && frontier_ > 1)
    retired_hi_[i] = std::max(retired_hi_[i], frontier_ - 1);
  stub_timeline(i);
  recompute_next_retire();
  return displaced;
}

void ClusterState::drain_server(std::size_t i) {
  assert(i < timelines_.size());
  if (health_[i] != ServerHealth::kUp) return;
  health_[i] = ServerHealth::kDrained;
  // Active VMs stay in active_[i] and retire through the normal sweep; only
  // the placement surface disappears.
  stub_timeline(i);
}

void ClusterState::recover_server(std::size_t i) {
  assert(i < timelines_.size());
  if (health_[i] == ServerHealth::kUp) return;
  health_[i] = ServerHealth::kUp;
  rebuild(i, window_base(i), horizon_);
}

ServerId ClusterState::retire_active(VmId vm) {
  for (std::size_t i = 0; i < active_.size(); ++i) {
    std::vector<VmSpec>& vms = active_[i];
    for (std::size_t k = 0; k < vms.size(); ++k) {
      if (vms[k].id != vm) continue;
      vms.erase(vms.begin() + static_cast<std::ptrdiff_t>(k));
      --active_count_;
      // The VM occupied its server through the last completed unit; anchor
      // future structure deltas there, exactly like the fail_server path.
      if (frontier_ > 1) retired_hi_[i] = std::max(retired_hi_[i], frontier_ - 1);
      // Placeable hosts must drop the freed occupancy from their timeline;
      // a drained host's timeline is already a stub holding nothing.
      if (placeable(i)) rebuild(i, window_base(i), horizon_);
      recompute_next_retire();
      assert(active_count_ == active_vms_scan());
      return static_cast<ServerId>(i);
    }
  }
  return kNoServer;
}

std::vector<ServerStateSnapshot> ClusterState::export_servers() const {
  std::vector<ServerStateSnapshot> out(servers_.size());
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    out[i].health = health_[i];
    out[i].retired_hi = retired_hi_[i];
    out[i].active = active_[i];
  }
  return out;
}

void ClusterState::restore(Time frontier, Time horizon,
                           const std::vector<ServerStateSnapshot>& servers) {
  if (servers.size() != servers_.size())
    throw std::invalid_argument(
        "ClusterState::restore: snapshot covers " +
        std::to_string(servers.size()) + " servers, fleet has " +
        std::to_string(servers_.size()));
  frontier_ = std::max<Time>(1, frontier);
  horizon_ = std::max<Time>(0, horizon);
  resident_units_ = 0;
  active_count_ = 0;
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    const ServerStateSnapshot& snap = servers[i];
    if (snap.health == ServerHealth::kFailed && !snap.active.empty())
      throw std::invalid_argument(
          "ClusterState::restore: failed server " + std::to_string(i) +
          " has active VMs (fail_server displaces them)");
    for (const VmSpec& vm : snap.active) {
      if (!vm.valid() || vm.end > horizon_)
        throw std::invalid_argument(
            "ClusterState::restore: active VM " + std::to_string(vm.id) +
            " on server " + std::to_string(i) +
            " is invalid or ends past the horizon");
    }
    health_[i] = snap.health;
    retired_hi_[i] = std::max<Time>(0, snap.retired_hi);
    active_[i] = snap.active;
    active_count_ += active_[i].size();
  }
  // Timelines are rebuilt from scratch: placeable servers get the full
  // window with sentinel + actives replayed (byte-identical future deltas,
  // per the GC-invariance argument), non-up servers the frontier stub.
  for (std::size_t i = 0; i < servers_.size(); ++i) {
    if (placeable(i)) {
      const Time base = window_base(i);
      ServerTimeline fresh(servers_[i], base, std::max(horizon_, base - 1));
      fresh.inherit_epoch(timelines_[i].epoch() + 1);
      if (retired_hi_[i] > 0) fresh.seed_busy(retired_hi_[i], retired_hi_[i]);
      for (const VmSpec& vm : active_[i]) fresh.place(vm);
      resident_units_ += static_cast<std::size_t>(fresh.window_units());
      timelines_[i] = std::move(fresh);
    } else {
      ServerTimeline stub(servers_[i], frontier_, frontier_ - 1);
      stub.inherit_epoch(timelines_[i].epoch() + 1);
      timelines_[i] = std::move(stub);
    }
    refresh_envelope(i);
  }
  recompute_next_retire();
  assert(active_count_ == active_vms_scan());
}

void PlacementPolicy::begin(const ClusterState& /*cluster*/, Rng& /*rng*/) {}

void PlacementPolicy::finish(std::size_t /*requests*/,
                             std::size_t /*unallocated*/) {}

Time RetryPolicy::delay_for(int attempts) const {
  assert(attempts >= 1);
  const double delay = static_cast<double>(base_delay) *
                       std::pow(backoff, static_cast<double>(attempts - 1));
  return std::max<Time>(1, static_cast<Time>(std::llround(delay)));
}

VmSpec clip_to(VmSpec vm, Time t) {
  if (vm.start >= t) return vm;
  assert(vm.end >= t);
  if (vm.has_profile()) {
    std::vector<Resources> tail(
        vm.profile.begin() + static_cast<std::ptrdiff_t>(t - vm.start),
        vm.profile.end());
    vm.start = t;
    vm.set_profile(std::move(tail));
  } else {
    vm.start = t;
  }
  return vm;
}

PlacementEngine::PlacementEngine(std::vector<ServerSpec> servers,
                                 PlacementPolicy& policy, Rng& rng,
                                 EngineOptions options)
    : cluster_(std::move(servers), options.initial_horizon, options.shard),
      policy_(policy),
      rng_(rng),
      options_(options) {
  if (options_.faults) options_.faults->validate(cluster_.num_servers());
  if (options_.obs.metrics) {
    // Histogram-backed: esva stream --latency-json and the Prometheus
    // summary read p50/p90/p99 off this timer.
    submit_timer_ = &options_.obs.metrics->histogram_timer("engine.submit_ms");
    request_counter_ = &options_.obs.metrics->counter("engine.requests");
    late_counter_ = &options_.obs.metrics->counter("engine.late_arrivals");
    evacuated_counter_ = &options_.obs.metrics->counter("engine.evacuated");
    retry_counter_ = &options_.obs.metrics->counter("engine.retries");
    rejected_final_counter_ =
        &options_.obs.metrics->counter("engine.rejected_final");
    downtime_counter_ =
        &options_.obs.metrics->counter("engine.downtime_units");
  }
  policy_.begin(cluster_, rng_);
}

PlacementDecision PlacementEngine::submit(const VmSpec& vm) {
  ScopedTimer timer(submit_timer_);
  if (options_.auto_advance) step_to(vm.start);
  ++requests_;
  if (request_counter_) request_counter_->inc();
  if (vm.start < cluster_.frontier()) {
    if (!options_.tolerate_late_arrivals)
      throw std::invalid_argument(
          "PlacementEngine: request starts before the frontier");
    // Structured rejection: the request's window may already be collected,
    // so one straggler must not abort the whole replay.
    ++faults_.late_arrivals;
    if (late_counter_) late_counter_->inc();
    PlacementDecision late;
    late.reject = PlacementReject::kLateArrival;
    return late;
  }
  cluster_.ensure_horizon(vm.end);
  PlacementDecision decision = policy_.place_one(cluster_, vm, rng_);
  if (decision.server != kNoServer) {
    commit(decision, vm, /*charge_migration=*/false);
    ++placed_;
  } else {
    decision.reject =
        defer_or_reject(vm, cluster_.frontier(), /*displaced=*/false,
                        /*attempts=*/1);
  }
  peak_resident_ = std::max(peak_resident_, cluster_.resident_time_units());
  return decision;
}

void PlacementEngine::advance_to(Time t) { step_to(t); }

void PlacementEngine::step_to(Time t) {
  if (options_.faults) {
    const std::vector<FaultEvent>& events = options_.faults->events();
    while (fault_cursor_ < events.size() && events[fault_cursor_].at <= t) {
      const FaultEvent& event = events[fault_cursor_++];
      cluster_.advance_to(event.at);
      // Retries due strictly before the event fire against the pre-event
      // cluster; at the exact instant the fault wins (a failure at t
      // affects placements made at t).
      drain_retries(event.at - 1);
      apply_event(event);
      // Post-event snapshot, so a failure's displaced load and power drop
      // are visible at the event instant rather than the next cadence tick.
      maybe_sample();
    }
  }
  cluster_.advance_to(t);
  drain_retries(t);
  maybe_sample();
}

void PlacementEngine::finish_stream() {
  const std::vector<FaultEvent>* events =
      options_.faults ? &options_.faults->events() : nullptr;
  while ((events && fault_cursor_ < events->size()) || !retry_queue_.empty()) {
    Time next = std::numeric_limits<Time>::max();
    if (events && fault_cursor_ < events->size())
      next = (*events)[fault_cursor_].at;
    if (!retry_queue_.empty())
      next = std::min(next, retry_queue_.front().not_before);
    step_to(next);
  }
}

void PlacementEngine::apply_fault(const FaultEvent& event) {
  if (event.at < 1)
    throw std::invalid_argument("apply_fault: event time " +
                                std::to_string(event.at) + " precedes time 1");
  if (event.server < 0 ||
      static_cast<std::size_t>(event.server) >= cluster_.num_servers())
    throw std::invalid_argument(
        "apply_fault: server " + std::to_string(event.server) +
        " outside the fleet of " + std::to_string(cluster_.num_servers()));
  // The per-event block of step_to, verbatim: advance to the instant, fire
  // retries due strictly before it against the pre-event cluster, apply,
  // then the post-event sample. A later advance_to(t) completes the pattern
  // exactly as the plan-driven path would.
  cluster_.advance_to(event.at);
  drain_retries(event.at - 1);
  apply_event(event);
  maybe_sample();
}

ServerId PlacementEngine::retire_vm(VmId vm) {
  const ServerId host = cluster_.retire_active(vm);
  if (host != kNoServer) {
    peak_resident_ = std::max(peak_resident_, cluster_.resident_time_units());
    return host;
  }
  // Not active: cancel any queued retry attempts for this id (a client
  // tearing down a VM that is still waiting for capacity).
  retry_queue_.erase(
      std::remove_if(retry_queue_.begin(), retry_queue_.end(),
                     [vm](const PendingRequest& p) { return p.vm.id == vm; }),
      retry_queue_.end());
  return kNoServer;
}

EngineStateSnapshot PlacementEngine::export_state() const {
  EngineStateSnapshot snap;
  snap.frontier = cluster_.frontier();
  snap.horizon = cluster_.horizon();
  snap.servers = cluster_.export_servers();
  snap.requests = requests_;
  snap.placed = placed_;
  snap.energy = energy_;
  snap.peak_resident = peak_resident_;
  snap.fault_cursor = fault_cursor_;
  snap.retry_seq = retry_seq_;
  snap.retry_queue.reserve(retry_queue_.size());
  for (const PendingRequest& p : retry_queue_)
    snap.retry_queue.push_back(
        {p.vm, p.not_before, p.attempts, p.displaced, p.waiting_since, p.seq});
  snap.fault_stats = faults_;
  snap.resolutions = resolutions_;
  return snap;
}

void PlacementEngine::import_state(const EngineStateSnapshot& snap) {
  cluster_.restore(snap.frontier, snap.horizon, snap.servers);
  requests_ = snap.requests;
  placed_ = snap.placed;
  energy_ = snap.energy;
  peak_resident_ = snap.peak_resident;
  fault_cursor_ = snap.fault_cursor;
  retry_seq_ = snap.retry_seq;
  retry_queue_.clear();
  retry_queue_.reserve(snap.retry_queue.size());
  for (const PendingSnapshot& p : snap.retry_queue) {
    PendingRequest pending;
    pending.vm = p.vm;
    pending.not_before = p.not_before;
    pending.attempts = p.attempts;
    pending.displaced = p.displaced;
    pending.waiting_since = p.waiting_since;
    pending.seq = p.seq;
    retry_queue_.push_back(std::move(pending));
  }
  faults_ = snap.fault_stats;
  resolutions_ = snap.resolutions;
}

void PlacementEngine::apply_event(const FaultEvent& event) {
  ++faults_.fault_events;
  const auto i = static_cast<std::size_t>(event.server);
  switch (event.kind) {
    case FaultKind::kFail: {
      std::vector<VmSpec> displaced = cluster_.fail_server(i);
      faults_.displaced += static_cast<std::int64_t>(displaced.size());
      for (VmSpec& vm : displaced) evacuate(std::move(vm), event.at);
      break;
    }
    case FaultKind::kDrain:
      cluster_.drain_server(i);
      break;
    case FaultKind::kRecover:
      cluster_.recover_server(i);
      break;
  }
  peak_resident_ = std::max(peak_resident_, cluster_.resident_time_units());
}

void PlacementEngine::evacuate(VmSpec vm, Time now) {
  // The VM already ran [start, now); only the remainder needs a new home.
  VmSpec remainder = clip_to(std::move(vm), now);
  cluster_.ensure_horizon(remainder.end);
  const PlacementDecision decision =
      policy_.place_one(cluster_, remainder, rng_);
  if (decision.server != kNoServer) {
    commit(decision, remainder, /*charge_migration=*/true);
    ++faults_.evacuated;
    if (evacuated_counter_) evacuated_counter_->inc();
    resolutions_.push_back({remainder.id, decision.server});
    return;
  }
  // Off its old host either way — downtime starts now; the retry queue may
  // still bring it back.
  resolutions_.push_back({remainder.id, kNoServer});
  defer_or_reject(std::move(remainder), now, /*displaced=*/true,
                  /*attempts=*/1);
}

void PlacementEngine::commit(const PlacementDecision& decision,
                             const VmSpec& vm, bool charge_migration) {
  const auto i = static_cast<std::size_t>(decision.server);
  if (options_.account_energy) {
    energy_ += decision.has_delta
                   ? decision.delta
                   : incremental_cost(cluster_.timelines()[i], vm,
                                      options_.cost);
    if (charge_migration)
      energy_ += migration_energy(vm, options_.migration_cost_per_gib);
  }
  if (options_.ledger) {
    // Attribution is recomputed through the breakdown path against the
    // pre-place timeline — the energy_ accumulation above is deliberately
    // untouched, so binding a ledger cannot perturb decisions or totals
    // (the two agree to rounding; EnergyLedger::conserves checks it).
    const Time at = cluster_.frontier();
    const CostBreakdown split =
        incremental_breakdown(cluster_.timelines()[i], vm, options_.cost);
    options_.ledger->post(at, vm.id, decision.server, EnergyCause::kRun,
                          split.run);
    if (split.idle != 0.0)
      options_.ledger->post(at, vm.id, decision.server, EnergyCause::kIdle,
                            split.idle);
    if (split.transition != 0.0)
      options_.ledger->post(at, vm.id, decision.server,
                            EnergyCause::kTransition, split.transition);
    if (charge_migration)
      options_.ledger->post(
          at, vm.id, decision.server, EnergyCause::kMigration,
          migration_energy(vm, options_.migration_cost_per_gib));
  }
  cluster_.place(i, vm);
}

void PlacementEngine::maybe_sample() {
  if (options_.timeseries && options_.timeseries->due(cluster_.frontier()))
    take_sample(cluster_.frontier());
}

void PlacementEngine::sample_now() {
  if (options_.timeseries) take_sample(cluster_.frontier());
}

void PlacementEngine::take_sample(Time t) {
  FleetSample s = cluster_.sample(t);
  s.retry_queue_depth = static_cast<std::uint32_t>(retry_queue_.size());
  s.requests = requests_;
  s.evacuated = faults_.evacuated;
  s.displaced = faults_.displaced;
  s.rejected_final = faults_.rejected_final;
  s.total_energy = energy_;
  options_.timeseries->record(s);
}

PlacementReject PlacementEngine::defer_or_reject(VmSpec vm, Time now,
                                                 bool displaced,
                                                 int attempts) {
  if (options_.retry.enabled() && attempts < options_.retry.max_attempts) {
    if (retry_queue_.size() < options_.retry.queue_capacity) {
      PendingRequest pending;
      pending.not_before = now + options_.retry.delay_for(attempts);
      pending.attempts = attempts;
      pending.displaced = displaced;
      pending.waiting_since = displaced ? now : vm.start;
      pending.vm = std::move(vm);
      enqueue(std::move(pending));
      ++faults_.deferred;
      return PlacementReject::kDeferred;
    }
    ++faults_.queue_full;
    PendingRequest bounced;
    bounced.displaced = displaced;
    bounced.waiting_since = now;
    bounced.vm = std::move(vm);
    final_reject(bounced);
    return PlacementReject::kQueueFull;
  }
  PendingRequest terminal;
  terminal.displaced = displaced;
  terminal.waiting_since = now;
  terminal.vm = std::move(vm);
  final_reject(terminal);
  return PlacementReject::kNoCapacity;
}

void PlacementEngine::final_reject(const PendingRequest& pending) {
  ++faults_.rejected_final;
  if (rejected_final_counter_) rejected_final_counter_->inc();
  if (pending.displaced) {
    // A displaced VM that never finds a new home sits unserved from its
    // displacement instant through its end: downtime, not a crash.
    const Time down =
        std::max<Time>(0, pending.vm.end - pending.waiting_since + 1);
    faults_.downtime_units += down;
    if (downtime_counter_) downtime_counter_->inc(down);
  }
}

void PlacementEngine::enqueue(PendingRequest pending) {
  pending.seq = retry_seq_++;
  const auto pos = std::upper_bound(
      retry_queue_.begin(), retry_queue_.end(), pending,
      [](const PendingRequest& a, const PendingRequest& b) {
        return a.not_before != b.not_before ? a.not_before < b.not_before
                                            : a.seq < b.seq;
      });
  retry_queue_.insert(pos, std::move(pending));
}

void PlacementEngine::drain_retries(Time now) {
  while (!retry_queue_.empty() && retry_queue_.front().not_before <= now) {
    PendingRequest pending = std::move(retry_queue_.front());
    retry_queue_.erase(retry_queue_.begin());
    ++faults_.retries;
    if (retry_counter_) retry_counter_->inc();
    // The cluster has been advanced at least to `now`; attempt at the
    // frontier so the request's collected prefix is clipped away.
    const Time at = cluster_.frontier();
    if (pending.vm.end < at) {
      final_reject(pending);
      continue;
    }
    const VmSpec attempt_vm = clip_to(pending.vm, at);
    cluster_.ensure_horizon(attempt_vm.end);
    const PlacementDecision decision =
        policy_.place_one(cluster_, attempt_vm, rng_);
    if (decision.server != kNoServer) {
      commit(decision, attempt_vm, /*charge_migration=*/pending.displaced);
      ++faults_.retried_placed;
      resolutions_.push_back({attempt_vm.id, decision.server});
      if (pending.displaced) {
        const Time down = at - pending.waiting_since;
        faults_.downtime_units += down;
        if (downtime_counter_) downtime_counter_->inc(down);
        ++faults_.evacuated;
        if (evacuated_counter_) evacuated_counter_->inc();
      } else {
        ++placed_;
      }
      peak_resident_ =
          std::max(peak_resident_, cluster_.resident_time_units());
      continue;
    }
    const int attempts = pending.attempts + 1;
    if (attempts >= options_.retry.max_attempts) {
      final_reject(pending);
    } else if (retry_queue_.size() >= options_.retry.queue_capacity) {
      ++faults_.queue_full;
      final_reject(pending);
    } else {
      pending.attempts = attempts;
      pending.not_before = at + options_.retry.delay_for(attempts);
      enqueue(std::move(pending));
    }
  }
}

Allocation run_batch(const ProblemInstance& problem, PlacementPolicy& policy,
                     VmOrder order, Rng& rng, const ObsContext& obs,
                     const ShardOptions& shard) {
  EngineOptions options;
  options.initial_horizon = problem.horizon;
  options.obs = obs;
  options.shard = shard;
  PlacementEngine engine(problem.servers, policy, rng, options);
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);
  for (std::size_t j : ordered_indices(problem, order))
    alloc.assignment[j] = engine.submit(problem.vms[j]).server;
  policy.finish(problem.num_vms(), alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
