#include "core/streaming.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <utility>

#include "obs/metrics.h"

namespace esva {

ClusterState::ClusterState(std::vector<ServerSpec> servers,
                           Time initial_horizon)
    : servers_(std::move(servers)),
      active_(servers_.size()),
      retired_hi_(servers_.size(), 0),
      horizon_(std::max<Time>(initial_horizon, 0)) {
  timelines_.reserve(servers_.size());
  for (const ServerSpec& spec : servers_)
    timelines_.emplace_back(spec, /*base=*/1, horizon_);
  resident_units_ =
      servers_.size() * static_cast<std::size_t>(horizon_);
}

Time ClusterState::window_base(std::size_t i) const {
  // Every active VM must stay inside the window, and the next request may
  // start exactly at the frontier.
  Time base = frontier_;
  for (const VmSpec& vm : active_[i]) base = std::min(base, vm.start);
  return base;
}

bool ClusterState::should_rebuild(std::size_t i) const {
  const Time dead = window_base(i) - timelines_[i].base();
  if (dead <= 0) return false;
  // Rebuild once the dead prefix rivals the live window (2x amortization):
  // each unit of rebuild work is paid for by a unit of frontier progress,
  // and resident memory stays within 2x the active window plus slack.
  const Time live = horizon_ - window_base(i) + 1;
  return dead >= std::max<Time>(32, live);
}

void ClusterState::rebuild(std::size_t i, Time base, Time horizon) {
  ServerTimeline fresh(servers_[i], base, horizon);
  // Epochs must stay unique across rebuilds or the scan cache could mistake
  // the fresh timeline for a stale snapshot it has entries for.
  fresh.inherit_epoch(timelines_[i].epoch() + 1);
  if (retired_hi_[i] > 0) fresh.seed_busy(retired_hi_[i], retired_hi_[i]);
  for (const VmSpec& vm : active_[i]) fresh.place(vm);
  resident_units_ += static_cast<std::size_t>(fresh.window_units()) -
                     static_cast<std::size_t>(timelines_[i].window_units());
  timelines_[i] = std::move(fresh);
}

void ClusterState::ensure_horizon(Time end) {
  if (end <= horizon_) return;
  // Double the forward window (with a floor) so repeated small extensions
  // cost O(1) rebuild work per time unit, amortized.
  const Time slack = std::max<Time>(256, horizon_ - frontier_ + 1);
  horizon_ = std::max<Time>(end, horizon_ + slack);
  for (std::size_t i = 0; i < timelines_.size(); ++i)
    rebuild(i, window_base(i), horizon_);
}

void ClusterState::place(std::size_t server, const VmSpec& vm) {
  assert(server < timelines_.size());
  timelines_[server].place(vm);
  next_retire_ = next_retire_ == 0 ? vm.end : std::min(next_retire_, vm.end);
  active_[server].push_back(vm);
}

void ClusterState::advance_to(Time t) {
  if (t <= frontier_) return;
  frontier_ = t;
  if (next_retire_ == 0 || next_retire_ >= frontier_) return;

  Time next = 0;
  for (std::size_t i = 0; i < timelines_.size(); ++i) {
    std::vector<VmSpec>& vms = active_[i];
    std::size_t kept = 0;
    for (std::size_t k = 0; k < vms.size(); ++k) {
      VmSpec& vm = vms[k];
      if (vm.end < frontier_) {
        retired_hi_[i] = std::max(retired_hi_[i], vm.end);
      } else {
        next = next == 0 ? vm.end : std::min(next, vm.end);
        // Compact in place, keeping placement order; guard against
        // self-move, which would gut the profile vector.
        if (kept != k) vms[kept] = std::move(vm);
        ++kept;
      }
    }
    vms.resize(kept);
    if (should_rebuild(i)) rebuild(i, window_base(i), horizon_);
  }
  next_retire_ = next;
}

std::size_t ClusterState::active_vms() const {
  std::size_t total = 0;
  for (const std::vector<VmSpec>& vms : active_) total += vms.size();
  return total;
}

void PlacementPolicy::begin(const ClusterState& /*cluster*/, Rng& /*rng*/) {}

void PlacementPolicy::finish(std::size_t /*requests*/,
                             std::size_t /*unallocated*/) {}

PlacementEngine::PlacementEngine(std::vector<ServerSpec> servers,
                                 PlacementPolicy& policy, Rng& rng,
                                 EngineOptions options)
    : cluster_(std::move(servers), options.initial_horizon),
      policy_(policy),
      rng_(rng),
      options_(options) {
  if (options_.obs.metrics) {
    submit_timer_ = &options_.obs.metrics->timer("engine.submit_ms");
    request_counter_ = &options_.obs.metrics->counter("engine.requests");
  }
  policy_.begin(cluster_, rng_);
}

PlacementDecision PlacementEngine::submit(const VmSpec& vm) {
  ScopedTimer timer(submit_timer_);
  if (options_.auto_advance) cluster_.advance_to(vm.start);
  if (vm.start < cluster_.frontier())
    throw std::invalid_argument(
        "PlacementEngine: request starts before the frontier");
  cluster_.ensure_horizon(vm.end);
  const PlacementDecision decision = policy_.place_one(cluster_, vm, rng_);
  ++requests_;
  if (request_counter_) request_counter_->inc();
  if (decision.server != kNoServer) {
    const auto i = static_cast<std::size_t>(decision.server);
    if (options_.account_energy)
      energy_ += decision.has_delta
                     ? decision.delta
                     : incremental_cost(cluster_.timelines()[i], vm,
                                        options_.cost);
    cluster_.place(i, vm);
    ++placed_;
  }
  peak_resident_ = std::max(peak_resident_, cluster_.resident_time_units());
  return decision;
}

void PlacementEngine::advance_to(Time t) { cluster_.advance_to(t); }

Allocation run_batch(const ProblemInstance& problem, PlacementPolicy& policy,
                     VmOrder order, Rng& rng) {
  EngineOptions options;
  options.initial_horizon = problem.horizon;
  PlacementEngine engine(problem.servers, policy, rng, options);
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);
  for (std::size_t j : ordered_indices(problem, order))
    alloc.assignment[j] = engine.submit(problem.vms[j]).server;
  policy.finish(problem.num_vms(), alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
