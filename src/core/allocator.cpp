#include "core/allocator.h"

#include <algorithm>
#include <numeric>
#include <thread>

#include "core/streaming.h"
#include "obs/metrics.h"

namespace esva {

std::unique_ptr<PlacementPolicy> Allocator::make_policy() const {
  return nullptr;
}

int ScanConfig::resolved_threads() const {
  if (threads > 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

Timer* allocate_timer(MetricsRegistry* metrics, const std::string& allocator) {
  if (!metrics) return nullptr;
  return &metrics->timer("allocator." + allocator + ".allocate_ms");
}

void record_allocation_metrics(MetricsRegistry* metrics,
                               const std::string& allocator, std::size_t vms,
                               std::int64_t feasible_candidates,
                               std::int64_t rejections,
                               std::size_t unallocated) {
  if (!metrics) return;
  const std::string prefix = "allocator." + allocator + ".";
  metrics->inc(prefix + "vms", static_cast<std::int64_t>(vms));
  metrics->inc(prefix + "feasible_candidates", feasible_candidates);
  metrics->inc(prefix + "rejections", rejections);
  metrics->inc(prefix + "unallocated", static_cast<std::int64_t>(unallocated));
}

void record_scan_cache_metrics(MetricsRegistry* metrics,
                               const std::string& allocator,
                               std::int64_t cache_hits,
                               std::int64_t cache_misses,
                               std::int64_t cache_quick_decided,
                               bool cache_auto_disabled) {
  if (!metrics) return;
  const std::string prefix = "allocator." + allocator + ".";
  metrics->inc(prefix + "cache_hits", cache_hits);
  metrics->inc(prefix + "cache_misses", cache_misses);
  metrics->inc(prefix + "cache_quick_decided", cache_quick_decided);
  metrics->inc(prefix + "cache_auto_disabled", cache_auto_disabled ? 1 : 0);
}

std::string to_string(VmOrder order) {
  switch (order) {
    case VmOrder::ByStartTime: return "by-start-time";
    case VmOrder::ByArrivalId: return "by-arrival-id";
    case VmOrder::ByDurationDesc: return "by-duration-desc";
    case VmOrder::ByCpuDesc: return "by-cpu-desc";
  }
  return "?";
}

std::vector<std::size_t> ordered_indices(const ProblemInstance& problem,
                                         VmOrder order) {
  const auto& vms = problem.vms;
  std::vector<std::size_t> indices(vms.size());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  switch (order) {
    case VmOrder::ByStartTime:
      return order_by_start(vms);
    case VmOrder::ByArrivalId:
      return indices;  // ids are dense and in arrival order
    case VmOrder::ByDurationDesc:
      std::stable_sort(indices.begin(), indices.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (vms[a].duration() != vms[b].duration())
                           return vms[a].duration() > vms[b].duration();
                         return vms[a].id < vms[b].id;
                       });
      return indices;
    case VmOrder::ByCpuDesc:
      std::stable_sort(indices.begin(), indices.end(),
                       [&](std::size_t a, std::size_t b) {
                         if (vms[a].demand.cpu != vms[b].demand.cpu)
                           return vms[a].demand.cpu > vms[b].demand.cpu;
                         return vms[a].id < vms[b].id;
                       });
      return indices;
  }
  return indices;
}

}  // namespace esva
