// The paper's power/energy model (Eqs. 1–3).
//
// Power of an active server is affine in CPU utilization (Eq. 1):
//     P(u) = P_idle + (P_peak − P_idle)·u.
// The marginal power of one CPU unit of demand is P¹_i (Eq. 2), and the run
// cost of VM j on server i over its whole duration is W_ij (Eq. 3). With
// stable demands, W_ij = P¹_i · R^CPU_j · duration_j.

#pragma once

#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "util/types.h"

namespace esva {

/// W_ij — energy attributable to running VM `vm` on server `server` for its
/// entire duration (Eq. 3, with stable demand).
Energy run_cost(const ServerSpec& server, const VmSpec& vm);

/// Instantaneous power of `server` when active with the given CPU usage
/// (absolute compute units, not a ratio). Clamped to [P_idle, P_peak] only by
/// the physics of usage <= capacity, not by this function.
Watts power_at_usage(const ServerSpec& server, CpuUnits cpu_usage);

}  // namespace esva
