#include "core/segments.h"

namespace esva {

IntervalSet busy_union(const std::vector<VmSpec>& vms) {
  IntervalSet set;
  for (const VmSpec& vm : vms) set.insert(vm.start, vm.end);
  return set;
}

bool stays_active_through_gap(const ServerSpec& server, Time gap_length) {
  return server.p_idle * static_cast<double>(gap_length) <=
         server.transition_cost() + kEps;
}

std::vector<Interval> active_intervals(const IntervalSet& busy,
                                       const ServerSpec& server) {
  std::vector<Interval> result;
  for (const Interval& segment : busy.intervals()) {
    if (!result.empty()) {
      const Time gap = segment.lo - result.back().hi - 1;
      if (stays_active_through_gap(server, gap)) {
        result.back().hi = segment.hi;  // bridge the gap, stay active
        continue;
      }
    }
    result.push_back(segment);
  }
  return result;
}

int transition_count(const IntervalSet& busy, const ServerSpec& server) {
  return static_cast<int>(active_intervals(busy, server).size());
}

}  // namespace esva
