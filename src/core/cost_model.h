// Energy cost of a server under the optimal power-state policy (Eqs. 15–17).
//
// Given the VMs placed on a server, its energy over [1, T] decomposes into:
//   run cost        Σ W_ij                      (Eq. 3 / Eq. 15, first term)
//   idle/base cost  P_idle × (active time)      (Eq. 5 under the optimal y)
//   transition cost alpha × (#switch-ons)       (Eq. 6 under the optimal y)
// where the optimal y keeps the server active through an interior gap iff
// P_idle·gap <= alpha, i.e. each interior gap contributes
// min(P_idle·gap, alpha) — exactly Eq. 16.
//
// NOTE on Eq. 17 vs the ILP objective: the paper's Eq. 17 omits the alpha for
// the server's *first* switch-on, which Eq. 7 does charge (y_i,0 = 0). We
// default to the ILP-consistent accounting and expose
// CostOptions::charge_initial_transition=false for the literal Eq. 17
// (see DESIGN.md §1 and bench/ablation_cost_terms).

#pragma once

#include "cluster/server_spec.h"
#include "cluster/timeline.h"
#include "cluster/vm.h"
#include "util/interval_set.h"
#include "util/types.h"

namespace esva {

struct CostOptions {
  /// Charge alpha for the first power-saving -> active transition (the ILP
  /// objective does; the literal Eq. 17 does not).
  bool charge_initial_transition = true;
};

/// Energy components of one server (or a whole datacenter when aggregated).
struct CostBreakdown {
  Energy run = 0.0;         ///< Σ W_ij — marginal energy of VM load
  Energy idle = 0.0;        ///< P_idle × active time units
  Energy transition = 0.0;  ///< alpha × number of switch-ons

  Energy total() const { return run + idle + transition; }

  CostBreakdown& operator+=(const CostBreakdown& other) {
    run += other.run;
    idle += other.idle;
    transition += other.transition;
    return *this;
  }
};

/// min(P_idle·gap, alpha): the optimal cost of surviving an interior idle
/// gap (Eq. 16's summand).
Energy gap_cost(const ServerSpec& server, Time gap_length);

/// The busy/idle structure cost of a server: everything in Eq. 17 except the
/// Σ W_ij term (plus the initial transition, per CostOptions).
Energy structure_cost(const IntervalSet& busy, const ServerSpec& server,
                      const CostOptions& opts = {});

/// Same, split into idle vs transition energy.
CostBreakdown structure_breakdown(const IntervalSet& busy,
                                  const ServerSpec& server,
                                  const CostOptions& opts = {});

/// structure_cost(busy ∪ [lo,hi]) − structure_cost(busy), computed from the
/// local neighborhood in O(|absorbed| + log |busy|) without mutating `busy`.
Energy structure_cost_delta(const IntervalSet& busy, Time lo, Time hi,
                            const ServerSpec& server,
                            const CostOptions& opts = {});

/// structure_cost_delta split into idle vs transition energy. Computed by a
/// parallel walk — deliberately NOT by refactoring structure_cost_delta,
/// whose exact floating-point summation order allocator decisions depend on;
/// idle + transition here equals structure_cost_delta up to rounding only.
/// Feeds the energy ledger (obs/energy_ledger.h).
CostBreakdown structure_breakdown_delta(const IntervalSet& busy, Time lo,
                                        Time hi, const ServerSpec& server,
                                        const CostOptions& opts = {});

/// Full Eq. 17 cost of one server hosting exactly `vms`.
Energy server_cost(const ServerSpec& server, const std::vector<VmSpec>& vms,
                   const CostOptions& opts = {});

/// Incremental energy of placing `vm` on the server behind `timeline`
/// (the quantity the paper's heuristic minimizes, §III):
/// run_cost + structure_cost_delta.
Energy incremental_cost(const ServerTimeline& timeline, const VmSpec& vm,
                        const CostOptions& opts = {});

/// incremental_cost split into run / idle / transition components — the
/// energy ledger's attribution source. total() equals incremental_cost up to
/// rounding (see structure_breakdown_delta).
CostBreakdown incremental_breakdown(const ServerTimeline& timeline,
                                    const VmSpec& vm,
                                    const CostOptions& opts = {});

/// First-order live-migration energy of relocating `vm`:
/// cost_per_gib × R^MEM_j — traffic and service degradation scale with the
/// memory footprint. Shared by the migration post-pass (ext/migration.h) and
/// the streaming engine's failure evacuation (core/streaming.h) so both
/// charge the same term.
Energy migration_energy(const VmSpec& vm, Energy cost_per_gib);

}  // namespace esva
