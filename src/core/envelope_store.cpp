#include "core/envelope_store.h"

#include <cassert>

namespace esva {

void EnvelopeStore::reset(const std::vector<ServerTimeline>& timelines) {
  count_ = timelines.size();
  peak_cpu_.resize(count_);
  peak_mem_.resize(count_);
  floor_cpu_.resize(count_);
  floor_mem_.resize(count_);
  cap_cpu_.resize(count_);
  cap_mem_.resize(count_);
  base_.resize(count_);
  horizon_.resize(count_);
  epoch_.resize(count_);
  for (std::size_t i = 0; i < count_; ++i) refresh(i, timelines[i]);
}

void EnvelopeStore::reset(const std::vector<ServerTimeline>& timelines,
                          const std::vector<std::size_t>& original_of) {
  assert(original_of.size() == timelines.size());
  reset(timelines);
  for (std::size_t r = 0; r < count_; ++r) refresh(r, timelines[original_of[r]]);
}

void EnvelopeStore::refresh(std::size_t i, const ServerTimeline& timeline) {
  assert(i < count_);
  peak_cpu_[i] = timeline.peak_cpu_usage();
  peak_mem_[i] = timeline.peak_mem_usage();
  floor_cpu_[i] = timeline.floor_cpu_usage();
  floor_mem_[i] = timeline.floor_mem_usage();
  cap_cpu_[i] = timeline.spec().capacity.cpu;
  cap_mem_[i] = timeline.spec().capacity.mem;
  base_[i] = timeline.base();
  horizon_[i] = timeline.horizon();
  epoch_[i] = timeline.epoch();
}

void EnvelopeStore::classify(const Probe& probe, std::size_t lo,
                             std::size_t hi, std::uint8_t* verdicts) const {
  // The branch-free verdict arithmetic below encodes the selects as
  // (!fits) * (2 - reject), which maps (fits, reject) onto the enum values.
  static_assert(static_cast<int>(QuickFit::kFits) == 0);
  static_assert(static_cast<int>(QuickFit::kCannotFit) == 1);
  static_assert(static_cast<int>(QuickFit::kUnknown) == 2);
  assert(lo <= hi && hi <= count_);
  const double cpu = probe.cpu;
  const double mem = probe.mem;
  const Time start = probe.start;
  const Time end = probe.end;
  const bool stable = !probe.profiled;
  const double* peak_cpu = peak_cpu_.data();
  const double* peak_mem = peak_mem_.data();
  const double* floor_cpu = floor_cpu_.data();
  const double* floor_mem = floor_mem_.data();
  const double* cap_cpu = cap_cpu_.data();
  const double* cap_mem = cap_mem_.data();
  const Time* base = base_.data();
  const Time* horizon = horizon_.data();
  // The verdict bytes cannot alias the const double/Time rows (writes through
  // `out` would otherwise pin every row load inside the loop).
  std::uint8_t* __restrict__ out = verdicts;
  // quick_fit's decision tree, if-converted: all five comparisons are
  // evaluated unconditionally (they are pure, so evaluating a comparison
  // quick_fit short-circuits past cannot change any verdict), then combined
  // with non-short-circuiting & / | into two selects. No branches in the
  // loop body -> the compiler vectorizes the sweep across servers.
  for (std::size_t i = lo; i < hi; ++i) {
    const bool window_ok = (start >= base[i]) & (end <= horizon[i]);
    const bool cpu_free = peak_cpu[i] + cpu <= cap_cpu[i] + kEps;
    const bool mem_free = peak_mem[i] + mem <= cap_mem[i] + kEps;
    const bool cpu_full = floor_cpu[i] + cpu > cap_cpu[i] + kEps;
    const bool mem_full = floor_mem[i] + mem > cap_mem[i] + kEps;
    const int fits = window_ok & cpu_free & mem_free;
    const int reject =
        (!window_ok) |
        (stable & ((!cpu_free) & cpu_full)) |
        (stable & ((!mem_free) & mem_full));
    out[i] = static_cast<std::uint8_t>((1 - fits) * (2 - reject));
  }
}

bool EnvelopeStore::debug_validate(
    const std::vector<ServerTimeline>& timelines) const {
  if (timelines.size() != count_) return false;
  for (std::size_t i = 0; i < count_; ++i) {
    const ServerTimeline& t = timelines[i];
    if (peak_cpu_[i] != t.peak_cpu_usage()) return false;
    if (peak_mem_[i] != t.peak_mem_usage()) return false;
    if (floor_cpu_[i] != t.floor_cpu_usage()) return false;
    if (floor_mem_[i] != t.floor_mem_usage()) return false;
    if (cap_cpu_[i] != t.spec().capacity.cpu) return false;
    if (cap_mem_[i] != t.spec().capacity.mem) return false;
    if (base_[i] != t.base()) return false;
    if (horizon_[i] != t.horizon()) return false;
    if (epoch_[i] != t.epoch()) return false;
  }
  return true;
}

bool EnvelopeStore::debug_validate(
    const std::vector<ServerTimeline>& timelines,
    const std::vector<std::size_t>& original_of) const {
  if (timelines.size() != count_ || original_of.size() != count_) return false;
  for (std::size_t r = 0; r < count_; ++r) {
    const ServerTimeline& t = timelines[original_of[r]];
    if (peak_cpu_[r] != t.peak_cpu_usage()) return false;
    if (peak_mem_[r] != t.peak_mem_usage()) return false;
    if (floor_cpu_[r] != t.floor_cpu_usage()) return false;
    if (floor_mem_[r] != t.floor_mem_usage()) return false;
    if (cap_cpu_[r] != t.spec().capacity.cpu) return false;
    if (cap_mem_[r] != t.spec().capacity.mem) return false;
    if (base_[r] != t.base()) return false;
    if (horizon_[r] != t.horizon()) return false;
    if (epoch_[r] != t.epoch()) return false;
  }
  return true;
}

}  // namespace esva
