#include "core/min_incremental.h"

#include "core/candidate_scan.h"
#include "core/streaming.h"
#include "obs/metrics.h"

namespace esva {

namespace {

/// The Eq. 17 incremental energy — the score *is* the quantity the paper
/// minimizes, which is also what the trace reports.
struct MinIncrementalScore {
  CostOptions cost;
  double operator()(const ServerTimeline& timeline, const VmSpec& vm) const {
    return incremental_cost(timeline, vm, cost);
  }
};

}  // namespace

// The whole decision loop — traced and untraced, serial and parallel, cached
// and uncached — lives in ScanPolicy (core/candidate_scan.h), so the traced
// twin can never drift from the fast path (the equivalence test in
// tests/test_obs_trace.cpp pins them together) and the batch and streaming
// drivers share one code path (tests/test_streaming.cpp).
std::unique_ptr<PlacementPolicy> MinIncrementalAllocator::make_policy() const {
  return make_scan_policy(name(), /*score_is_energy_delta=*/true,
                          MinIncrementalScore{options_.cost}, options_.scan,
                          obs_);
}

Allocation MinIncrementalAllocator::allocate(const ProblemInstance& problem,
                                             Rng& rng) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));
  const std::unique_ptr<PlacementPolicy> policy = make_policy();
  return run_batch(problem, *policy, options_.order, rng, obs_,
                   options_.scan.shard_options());
}

}  // namespace esva
