#include "core/min_incremental.h"

#include "cluster/timeline.h"
#include "obs/metrics.h"

namespace esva {

namespace {

/// Untraced allocation loop. Kept free of any per-candidate observability
/// branching so a null ObsContext pays nothing (the zero-overhead contract
/// enforced by bench/perf_allocators); the traced twin below mirrors it.
Allocation allocate_fast(const ProblemInstance& problem,
                         const MinIncrementalAllocator::Options& options,
                         std::int64_t& feasible_probes,
                         std::int64_t& rejections) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, options.order)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best_server = kNoServer;
    Energy best_delta = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) {
        ++rejections;
        continue;
      }
      ++feasible_probes;
      const Energy delta = incremental_cost(timelines[i], vm, options.cost);
      if (delta < best_delta) {
        best_delta = delta;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;  // reported as unallocated
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

/// Traced twin of allocate_fast: identical decisions, but every probe goes
/// through check_fit (which resource, which time unit) and is recorded.
Allocation allocate_traced(const ProblemInstance& problem,
                           const MinIncrementalAllocator::Options& options,
                           const ObsContext& obs, const std::string& name,
                           std::int64_t& feasible_probes,
                           std::int64_t& rejections) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, options.order)) {
    const VmSpec& vm = problem.vms[j];
    DecisionBuilder decision(obs, name, vm.id);
    ServerId best_server = kNoServer;
    Energy best_delta = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      const FitCheck fit = timelines[i].check_fit(vm);
      if (!fit.ok) {
        decision.add_rejected(static_cast<ServerId>(i), fit);
        ++rejections;
        continue;
      }
      ++feasible_probes;
      const Energy delta = incremental_cost(timelines[i], vm, options.cost);
      decision.add_feasible(static_cast<ServerId>(i), delta);
      if (delta < best_delta) {
        best_delta = delta;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) {
      decision.commit(kNoServer);
      continue;  // reported as unallocated
    }
    decision.commit(best_server, best_delta);
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

}  // namespace

Allocation MinIncrementalAllocator::allocate(const ProblemInstance& problem,
                                             Rng& /*rng*/) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));

  std::int64_t feasible_probes = 0;
  std::int64_t rejections = 0;
  Allocation alloc =
      obs_.tracing()
          ? allocate_traced(problem, options_, obs_, name(), feasible_probes,
                            rejections)
          : allocate_fast(problem, options_, feasible_probes, rejections);

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            feasible_probes, rejections,
                            alloc.num_unallocated());
  return alloc;
}

}  // namespace esva
