#include "core/min_incremental.h"

#include "core/candidate_scan.h"
#include "obs/metrics.h"

namespace esva {

// The whole decision loop — traced and untraced, serial and parallel, cached
// and uncached — lives in scan_allocate (core/candidate_scan.h), so the
// traced twin can never drift from the fast path (the equivalence test in
// tests/test_obs_trace.cpp pins them together). The score *is* the Eq. 17
// incremental energy, which is also what the trace reports.
Allocation MinIncrementalAllocator::allocate(const ProblemInstance& problem,
                                             Rng& /*rng*/) {
  ScopedTimer total_timer(allocate_timer(obs_.metrics, name()));

  ScanTotals totals;
  const CostOptions cost = options_.cost;
  Allocation alloc = scan_allocate(
      problem, options_.order, options_.scan, obs_, name(),
      /*score_is_energy_delta=*/true,
      [&cost](const ServerTimeline& timeline, const VmSpec& vm) {
        return incremental_cost(timeline, vm, cost);
      },
      totals);

  record_allocation_metrics(obs_.metrics, name(), problem.num_vms(),
                            totals.feasible, totals.rejected,
                            alloc.num_unallocated());
  if (options_.scan.cache)
    record_scan_cache_metrics(obs_.metrics, name(), totals.cache_hits,
                              totals.cache_misses);
  return alloc;
}

}  // namespace esva
