#include "core/min_incremental.h"

#include "cluster/timeline.h"

namespace esva {

Allocation MinIncrementalAllocator::allocate(const ProblemInstance& problem,
                                             Rng& /*rng*/) {
  Allocation alloc;
  alloc.assignment.assign(problem.num_vms(), kNoServer);

  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);

  for (std::size_t j : ordered_indices(problem, options_.order)) {
    const VmSpec& vm = problem.vms[j];
    ServerId best_server = kNoServer;
    Energy best_delta = kInf;
    for (std::size_t i = 0; i < timelines.size(); ++i) {
      if (!timelines[i].can_fit(vm)) continue;
      const Energy delta = incremental_cost(timelines[i], vm, options_.cost);
      if (delta < best_delta) {
        best_delta = delta;
        best_server = static_cast<ServerId>(i);
      }
    }
    if (best_server == kNoServer) continue;  // reported as unallocated
    timelines[static_cast<std::size_t>(best_server)].place(vm);
    alloc.assignment[j] = best_server;
  }
  return alloc;
}

}  // namespace esva
