#include "core/cost_model.h"

#include <algorithm>
#include <cassert>
#include <optional>
#include <span>

#include "core/power_model.h"
#include "core/segments.h"

namespace esva {

Energy gap_cost(const ServerSpec& server, Time gap_length) {
  assert(gap_length >= 1);
  return std::min(server.p_idle * static_cast<double>(gap_length),
                  server.transition_cost());
}

Energy structure_cost(const IntervalSet& busy, const ServerSpec& server,
                      const CostOptions& opts) {
  return structure_breakdown(busy, server, opts).total();
}

CostBreakdown structure_breakdown(const IntervalSet& busy,
                                  const ServerSpec& server,
                                  const CostOptions& opts) {
  CostBreakdown cost;
  if (busy.empty()) return cost;
  cost.idle = server.p_idle * static_cast<double>(busy.total_length());
  if (opts.charge_initial_transition)
    cost.transition += server.transition_cost();
  for (const Interval& gap : busy.gaps()) {
    if (stays_active_through_gap(server, gap.length()))
      cost.idle += server.p_idle * static_cast<double>(gap.length());
    else
      cost.transition += server.transition_cost();
  }
  return cost;
}

namespace {

/// Structure cost restricted to a neighborhood: a run of busy intervals plus
/// the (optional) gap to a surviving left/right neighbor. Shared by the
/// before/after sides of the delta computation.
Energy local_structure_cost(const ServerSpec& server,
                            std::optional<Time> prev_hi,
                            std::span<const Interval> run,
                            std::optional<Time> next_lo) {
  Energy cost = 0.0;
  std::optional<Time> last_hi = prev_hi;
  for (const Interval& iv : run) {
    if (last_hi) cost += gap_cost(server, iv.lo - *last_hi - 1);
    cost += server.p_idle * static_cast<double>(iv.length());
    last_hi = iv.hi;
  }
  if (next_lo && last_hi) cost += gap_cost(server, *next_lo - *last_hi - 1);
  return cost;
}

/// Breakdown twin of local_structure_cost: same neighborhood walk, but each
/// gap's min(P_idle·gap, alpha) is classified as idle vs transition energy.
/// Kept separate so local_structure_cost's summation order (which allocator
/// decisions depend on bitwise) stays untouched.
CostBreakdown local_structure_breakdown(const ServerSpec& server,
                                        std::optional<Time> prev_hi,
                                        std::span<const Interval> run,
                                        std::optional<Time> next_lo) {
  CostBreakdown cost;
  const auto add_gap = [&](Time gap_length) {
    if (stays_active_through_gap(server, gap_length))
      cost.idle += server.p_idle * static_cast<double>(gap_length);
    else
      cost.transition += server.transition_cost();
  };
  std::optional<Time> last_hi = prev_hi;
  for (const Interval& iv : run) {
    if (last_hi) add_gap(iv.lo - *last_hi - 1);
    cost.idle += server.p_idle * static_cast<double>(iv.length());
    last_hi = iv.hi;
  }
  if (next_lo && last_hi) add_gap(*next_lo - *last_hi - 1);
  return cost;
}

}  // namespace

Energy structure_cost_delta(const IntervalSet& busy, Time lo, Time hi,
                            const ServerSpec& server,
                            const CostOptions& opts) {
  assert(lo <= hi);
  // The view variant: `absorbed` aliases busy's storage (no per-call heap
  // allocation on the scan hot path) and is consumed before returning.
  const IntervalSet::PreviewView preview = busy.preview_insert_view(lo, hi);
  std::optional<Time> prev_hi;
  if (preview.has_left) prev_hi = preview.left.hi;
  std::optional<Time> next_lo;
  if (preview.has_right) next_lo = preview.right.lo;

  const Energy before =
      local_structure_cost(server, prev_hi, preview.absorbed, next_lo);
  const Energy after = local_structure_cost(
      server, prev_hi, std::span<const Interval>(&preview.merged, 1), next_lo);

  Energy delta = after - before;
  if (busy.empty() && opts.charge_initial_transition)
    delta += server.transition_cost();
  return delta;
}

CostBreakdown structure_breakdown_delta(const IntervalSet& busy, Time lo,
                                        Time hi, const ServerSpec& server,
                                        const CostOptions& opts) {
  assert(lo <= hi);
  const IntervalSet::PreviewView preview = busy.preview_insert_view(lo, hi);
  std::optional<Time> prev_hi;
  if (preview.has_left) prev_hi = preview.left.hi;
  std::optional<Time> next_lo;
  if (preview.has_right) next_lo = preview.right.lo;

  const CostBreakdown before =
      local_structure_breakdown(server, prev_hi, preview.absorbed, next_lo);
  const CostBreakdown after = local_structure_breakdown(
      server, prev_hi, std::span<const Interval>(&preview.merged, 1), next_lo);

  CostBreakdown delta;
  delta.idle = after.idle - before.idle;
  delta.transition = after.transition - before.transition;
  if (busy.empty() && opts.charge_initial_transition)
    delta.transition += server.transition_cost();
  return delta;
}

Energy server_cost(const ServerSpec& server, const std::vector<VmSpec>& vms,
                   const CostOptions& opts) {
  Energy cost = structure_cost(busy_union(vms), server, opts);
  for (const VmSpec& vm : vms) cost += run_cost(server, vm);
  return cost;
}

Energy incremental_cost(const ServerTimeline& timeline, const VmSpec& vm,
                        const CostOptions& opts) {
  return run_cost(timeline.spec(), vm) +
         structure_cost_delta(timeline.busy(), vm.start, vm.end,
                              timeline.spec(), opts);
}

CostBreakdown incremental_breakdown(const ServerTimeline& timeline,
                                    const VmSpec& vm,
                                    const CostOptions& opts) {
  CostBreakdown delta = structure_breakdown_delta(
      timeline.busy(), vm.start, vm.end, timeline.spec(), opts);
  delta.run = run_cost(timeline.spec(), vm);
  return delta;
}

Energy migration_energy(const VmSpec& vm, Energy cost_per_gib) {
  return cost_per_gib * vm.demand.mem;
}

}  // namespace esva
