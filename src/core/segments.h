// Busy/idle segmentation and the optimal power-state policy.
//
// Fig. 1 of the paper: a server hosting a VM set experiences alternating
// busy-segments (>= 1 VM running) and idle-segments. Given the busy
// structure, the cost-optimal power-state schedule is closed-form: the server
// is active through every busy segment, stays active through an interior idle
// gap iff that is cheaper than a transition (P_idle·gap <= alpha), and is in
// the power-saving state before its first and after its last busy segment.

#pragma once

#include <vector>

#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "util/interval_set.h"

namespace esva {

/// Merged busy intervals of a VM set (the busy-segments of Fig. 1).
IntervalSet busy_union(const std::vector<VmSpec>& vms);

/// True iff, under the optimal policy, the server stays active through an
/// interior idle gap of the given length: P_idle·gap <= alpha. (Ties go to
/// staying active, which avoids a pointless power cycle at equal cost.)
bool stays_active_through_gap(const ServerSpec& server, Time gap_length);

/// The maximal intervals during which the server is ACTIVE under the optimal
/// policy, given its busy segments: busy segments, coalesced across the
/// interior gaps the server bridges while staying active.
std::vector<Interval> active_intervals(const IntervalSet& busy,
                                       const ServerSpec& server);

/// Number of power-saving -> active transitions under the optimal policy
/// (= number of active intervals, since the server starts powered down).
int transition_count(const IntervalSet& busy, const ServerSpec& server);

}  // namespace esva
