#include "core/shard.h"

#include <algorithm>
#include <cassert>
#include <cstdint>

namespace esva {

std::string to_string(ShardBy by) {
  switch (by) {
    case ShardBy::kContiguous:
      return "contiguous";
    case ShardBy::kType:
      return "type";
    case ShardBy::kBand:
      return "band";
    case ShardBy::kHash:
      return "hash";
  }
  return "?";
}

bool parse_shard_by(const std::string& text, ShardBy* out) {
  if (text == "contiguous") {
    *out = ShardBy::kContiguous;
  } else if (text == "type") {
    *out = ShardBy::kType;
  } else if (text == "band") {
    *out = ShardBy::kBand;
  } else if (text == "hash") {
    *out = ShardBy::kHash;
  } else {
    return false;
  }
  return true;
}

namespace {

/// splitmix64 finalizer — the same mixing family the scan's VmShapeHash
/// uses; a pure function of the index, so the hash layout is deterministic.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Shard id per server for one strategy (header comment). `shards` >= 1.
std::vector<std::size_t> assign_shards(const std::vector<ServerSpec>& servers,
                                       std::size_t shards, ShardBy by) {
  const std::size_t n = servers.size();
  std::vector<std::size_t> shard(n, 0);
  if (shards <= 1) return shard;
  switch (by) {
    case ShardBy::kContiguous:
      for (std::size_t i = 0; i < n; ++i) shard[i] = i * shards / n;
      break;
    case ShardBy::kType: {
      // Rank = position in the sorted distinct type_name list; adjacent
      // ranks share a shard when there are more types than shards, and
      // spread across distinct shards otherwise. Lexicographic order makes
      // the ranking independent of fleet order.
      std::vector<std::string> names;
      names.reserve(n);
      for (const ServerSpec& s : servers) names.push_back(s.type_name);
      std::sort(names.begin(), names.end());
      names.erase(std::unique(names.begin(), names.end()), names.end());
      const std::size_t types = names.size();
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t rank = static_cast<std::size_t>(
            std::lower_bound(names.begin(), names.end(),
                             servers[i].type_name) -
            names.begin());
        shard[i] = rank * shards / types;
      }
      break;
    }
    case ShardBy::kBand: {
      // Linear buckets of the Eq. 1 marginal run power per CPU unit between
      // the fleet's min and max: shard 0 holds the most power-efficient
      // servers. A homogeneous fleet collapses into band 0.
      double lo = servers[0].unit_run_power();
      double hi = lo;
      for (const ServerSpec& s : servers) {
        lo = std::min(lo, s.unit_run_power());
        hi = std::max(hi, s.unit_run_power());
      }
      const double span = hi - lo;
      for (std::size_t i = 0; i < n; ++i) {
        if (span <= 0.0) continue;  // shard[i] stays 0
        const double frac = (servers[i].unit_run_power() - lo) / span;
        shard[i] = std::min(
            shards - 1, static_cast<std::size_t>(
                            frac * static_cast<double>(shards)));
      }
      break;
    }
    case ShardBy::kHash:
      for (std::size_t i = 0; i < n; ++i)
        shard[i] = static_cast<std::size_t>(
            mix64(static_cast<std::uint64_t>(i)) % shards);
      break;
  }
  return shard;
}

}  // namespace

FleetPartition::FleetPartition(const std::vector<ServerSpec>& servers,
                               ShardOptions options)
    : options_(options) {
  const std::size_t n = servers.size();
  const std::size_t shards = n == 0
                                 ? 1
                                 : std::min<std::size_t>(
                                       std::max(1, options.shards), n);
  options_.shards = static_cast<int>(shards);
  shard_of_ = assign_shards(servers, shards, options.by);

  // Counting sort by shard id: storage rows are assigned in ascending
  // original order within each shard (stability — the determinism argument
  // in the header relies on it).
  begin_.assign(shards + 1, 0);
  for (std::size_t s : shard_of_) ++begin_[s + 1];
  for (std::size_t s = 0; s < shards; ++s) begin_[s + 1] += begin_[s];
  storage_of_.resize(n);
  original_of_.resize(n);
  std::vector<std::size_t> cursor(begin_.begin(), begin_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = cursor[shard_of_[i]]++;
    storage_of_[i] = row;
    original_of_[row] = i;
  }
  identity_ = true;
  for (std::size_t i = 0; i < n; ++i) {
    if (storage_of_[i] != i) {
      identity_ = false;
      break;
    }
  }
  assert(debug_validate());
}

bool FleetPartition::debug_validate() const {
  const std::size_t n = shard_of_.size();
  const std::size_t shards = num_shards();
  if (storage_of_.size() != n || original_of_.size() != n) return false;
  if (begin_.size() != shards + 1) return false;
  if (begin_.front() != 0 || begin_.back() != n) return false;
  for (std::size_t s = 0; s < shards; ++s)
    if (begin_[s] > begin_[s + 1]) return false;
  std::vector<bool> seen(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t row = storage_of_[i];
    if (row >= n || seen[row]) return false;
    seen[row] = true;
    if (original_of_[row] != i) return false;
    const std::size_t s = shard_of_[i];
    if (s >= shards) return false;
    if (row < begin_[s] || row >= begin_[s + 1]) return false;
  }
  // Ascending original indices within each block.
  for (std::size_t s = 0; s < shards; ++s)
    for (std::size_t r = begin_[s] + 1; r < begin_[s + 1]; ++r)
      if (original_of_[r - 1] >= original_of_[r]) return false;
  return true;
}

}  // namespace esva
