// Fleet partitioning: deterministic, contiguous shard blocks over the server
// fleet.
//
// A FleetPartition maps every server (by its original ServerId) into exactly
// one shard, and lays the fleet out as a *storage permutation* in which each
// shard occupies one contiguous block [shard_begin(s), shard_end(s)). The
// EnvelopeStore keeps its packed SoA rows in storage order (PR 7 built the
// store precisely so "a shard becomes a contiguous envelope block"), so the
// candidate scan's two-level sharded sweep (core/candidate_scan.h) streams
// one cache-friendly block per shard task.
//
// Two properties make sharding a pure layout/parallelism knob, never a
// quality knob:
//
//   * Determinism — the permutation is a pure function of the server specs
//     and the ShardOptions: no RNG, no pointer order, no thread count.
//     Rebuilding the same fleet with the same options yields the same
//     partition on every host.
//
//   * Within-shard stability — inside each shard block, servers appear in
//     ascending original index. The per-shard arg-min therefore visits its
//     members in the same relative order the unsharded serial scan does, so
//     plain strict-< keeps the shard's lowest-index winner; the cross-shard
//     merge then compares (score, original index) lexicographically, which
//     reproduces the unsharded serial winner exactly at any shard count
//     (tests/test_sharded_scan.cpp pins this byte-for-byte).
//
// Strategies (CLI --shard-by):
//   * contiguous — balanced index ranges; the storage permutation is the
//     identity, so shards=1 is exactly the historical unsharded layout.
//   * type — group servers by catalog type (lexicographic type_name rank),
//     adjacent ranks sharing a shard when shards < distinct types.
//   * band — group by power efficiency: the Eq. 1 marginal run power per CPU
//     unit (ServerSpec::unit_run_power), linearly bucketed into `shards`
//     bands between the fleet's min and max.
//   * hash — splitmix64 of the original index, modulo shards: a load-spread
//     layout deliberately uncorrelated with the catalog.

#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "cluster/server_spec.h"

namespace esva {

/// Shard-assignment strategy (header comment).
enum class ShardBy {
  kContiguous,  ///< balanced index ranges (identity permutation)
  kType,        ///< by catalog type_name rank
  kBand,        ///< by power-efficiency band (unit run power)
  kHash,        ///< splitmix64(index) % shards
};

std::string to_string(ShardBy by);
/// Parses "contiguous" / "type" / "band" / "hash"; returns false (and leaves
/// `out` untouched) on anything else.
bool parse_shard_by(const std::string& text, ShardBy* out);

/// How to partition the fleet. The defaults (one contiguous shard) reproduce
/// the unsharded layout exactly.
struct ShardOptions {
  /// Shard count; clamped to [1, num_servers] at partition build time.
  int shards = 1;
  ShardBy by = ShardBy::kContiguous;
};

/// The deterministic server -> shard-block mapping (header comment). Built
/// once per ClusterState and immutable afterwards.
class FleetPartition {
 public:
  /// One server, one shard, identity permutation — the unsharded layout for
  /// an empty fleet placeholder (ClusterState default-constructs through the
  /// real constructor, so this exists only for containers).
  FleetPartition() = default;

  FleetPartition(const std::vector<ServerSpec>& servers, ShardOptions options);

  std::size_t num_servers() const { return shard_of_.size(); }
  /// Shard count after clamping (>= 1 whenever the fleet is non-empty).
  std::size_t num_shards() const { return begin_.empty() ? 0 : begin_.size() - 1; }
  const ShardOptions& options() const { return options_; }

  /// True when the storage permutation is the identity (always for
  /// kContiguous; coincidentally possible for the others). The scan engine
  /// keeps the historical single-level chunked path when a partition is
  /// single-shard, which is always identity.
  bool identity() const { return identity_; }

  std::size_t shard_of(std::size_t original) const {
    return shard_of_[original];
  }
  /// Storage row of a server (the EnvelopeStore row index).
  std::size_t storage_of(std::size_t original) const {
    return storage_of_[original];
  }
  /// Storage -> original index map, ascending within each shard block.
  const std::vector<std::size_t>& original_of() const { return original_of_; }

  /// Shard s occupies storage rows [shard_begin(s), shard_end(s)); blocks
  /// are adjacent and cover [0, num_servers) exactly. A shard may be empty
  /// (e.g. more shards than catalog types under kType).
  std::size_t shard_begin(std::size_t s) const { return begin_[s]; }
  std::size_t shard_end(std::size_t s) const { return begin_[s + 1]; }

  /// Structural invariants: the permutation is a bijection, blocks tile
  /// [0, n), members sit inside their shard's block, and original indices
  /// ascend within each block. O(n); tests only.
  bool debug_validate() const;

 private:
  ShardOptions options_;
  bool identity_ = true;
  std::vector<std::size_t> shard_of_;     ///< original -> shard
  std::vector<std::size_t> storage_of_;   ///< original -> storage row
  std::vector<std::size_t> original_of_;  ///< storage row -> original
  std::vector<std::size_t> begin_;        ///< shard -> first storage row (n+1 entries)
};

}  // namespace esva
