// Deterministic fault schedules for the streaming engine (core/streaming.h).
//
// A FaultPlan is an ordered list of server fail / recover / drain events that
// a PlacementEngine applies at advance_to boundaries: the cluster is advanced
// to each event's time (retiring VMs that finished first), then the event
// fires. Plans are plain data — parsed from CSV (`time,event,server`, see
// docs/FORMATS.md), written back out, or synthesized from a seeded Rng — so a
// chaos run is exactly as reproducible as a fault-free one: the same plan and
// seed replay bit-identically (tests/test_faults.cpp).
//
// Semantics of the three event kinds (implemented by ClusterState):
//   * fail    — the server goes dark: its still-active VMs are displaced and
//               handed back to the engine for evacuation, and no policy can
//               place on it until it recovers.
//   * drain   — graceful decommission: hosted VMs run to completion, but the
//               server accepts no new placements.
//   * recover — the server returns to service (from failed or drained).

#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/types.h"

namespace esva {

enum class FaultKind {
  kFail,     ///< server loss: displace active VMs, refuse new placements
  kDrain,    ///< graceful decommission: keep active VMs, refuse new ones
  kRecover,  ///< return to service
};

std::string to_string(FaultKind kind);

struct FaultEvent {
  Time at = 1;  ///< fires when the engine's frontier reaches this time
  FaultKind kind = FaultKind::kFail;
  ServerId server = 0;
};

/// An immutable schedule of fault events, ordered by time. Same-time events
/// keep their input order (stable sort), so a plan's effect is a pure
/// function of its contents.
class FaultPlan {
 public:
  FaultPlan() = default;
  explicit FaultPlan(std::vector<FaultEvent> events);

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<FaultEvent>& events() const { return events_; }

  /// Throws std::invalid_argument if any event targets a server outside
  /// [0, num_servers) or fires before time 1.
  void validate(std::size_t num_servers) const;

 private:
  std::vector<FaultEvent> events_;
};

/// CSV persistence: header `time,event,server`, one event per row, event in
/// {fail, drain, recover}. Throws std::runtime_error with a line-numbered
/// message on malformed input (same contract as workload/trace.h).
void write_fault_plan(std::ostream& out, const FaultPlan& plan);
FaultPlan read_fault_plan(std::istream& in);
void save_fault_plan(const std::string& path, const FaultPlan& plan);
FaultPlan load_fault_plan(const std::string& path);

/// Knobs for synthesizing a random fail/recover plan (the bench chaos
/// section and `tests/test_faults.cpp` reproducibility checks).
struct ChaosConfig {
  std::size_t num_servers = 0;  ///< fleet size events are drawn over
  int failures = 4;             ///< number of fail events
  Time window_lo = 1;           ///< earliest failure time
  Time window_hi = 1000;        ///< latest failure time
  Time mean_repair = 120;       ///< mean fail -> recover delay (exponential)
};

/// A seeded schedule of `failures` fail events uniform over
/// [window_lo, window_hi], each paired with a recover event after an
/// exponential repair delay. Deterministic in (config, seed).
FaultPlan random_fault_plan(const ChaosConfig& config, Rng& rng);

}  // namespace esva
