// Packed per-server window envelopes: the data-oriented twin of
// ServerTimeline::quick_fit.
//
// The PR 5 kernel made feasibility triage O(1) per server, but each probe
// still chases a ServerTimeline pointer — the spec, the window bounds, and
// the two tree roots live on three-plus scattered cache lines per server, so
// a fleet scan is bound by misses, not arithmetic. EnvelopeStore keeps the
// eight scalars that triage actually reads in structure-of-arrays form
// (peak/floor usage and capacity per resource dimension, plus the window
// bounds), contiguous and ascending by server index. classify() sweeps the
// block once per scanned VM and emits a QuickFit verdict byte per server;
// the loop is branch-free over straight arrays, so the compiler
// autovectorizes it 8-16 servers wide (4 doubles per AVX2 lane x the unroll).
//
// The contract that makes the pass transparent: classify() evaluates the
// *same floating-point comparisons* quick_fit evaluates, on copies of the
// same doubles —
//
//     window:        vm.start >= base       && vm.end <= horizon
//     quick-accept:  peak  + demand <= capacity + kEps   (both dimensions)
//     quick-reject:  floor + demand >  capacity + kEps   (stable VMs only,
//                                                         per failing dim)
//
// IEEE comparisons are deterministic functions of their operands, so verdicts
// are bit-for-bit quick_fit's at every server — spare capacity is represented
// as the (capacity, peak) pair rather than a precomputed difference precisely
// so no comparison is algebraically rearranged. The store is owned by
// ClusterState (core/streaming.h), which refreshes the mutated row — O(1),
// five loads off the timeline — at every place, GC rebuild, fault stub, and
// recovery; the row carries the timeline's epoch so coherence is checkable.
// tests/test_envelope_scan.cpp fuzzes verdict equality and row coherence
// (debug_validate) across randomized engine lifecycles.

#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cluster/timeline.h"
#include "cluster/vm.h"
#include "util/types.h"

namespace esva {

class EnvelopeStore {
 public:
  /// The per-VM constants of one classify() sweep, hoisted out of the
  /// per-server loop (the analogue of ScanCache::Key for triage).
  struct Probe {
    double cpu = 0.0;      ///< peak CPU demand
    double mem = 0.0;      ///< peak memory demand
    Time start = 0;
    Time end = 0;
    bool profiled = false; ///< time-varying demand: quick-reject is unsound
  };

  static Probe probe_of(const VmSpec& vm) {
    return Probe{vm.demand.cpu, vm.demand.mem, vm.start, vm.end,
                 vm.has_profile()};
  }

  /// Rebuilds every row from `timelines` (the ClusterState constructor),
  /// row i mirroring timelines[i] (identity layout).
  void reset(const std::vector<ServerTimeline>& timelines);

  /// Permuted reset: row r mirrors timelines[original_of[r]]. ClusterState
  /// uses this to lay rows out in *shard storage order* (core/shard.h), so
  /// each shard's rows form one contiguous block the two-level scan sweeps
  /// independently. `original_of` must be a permutation of
  /// [0, timelines.size()).
  void reset(const std::vector<ServerTimeline>& timelines,
             const std::vector<std::size_t>& original_of);

  /// Re-reads row `i` from its timeline: peak/floor envelope (O(1) tree
  /// roots), capacity, window bounds, epoch. Called after every mutation of
  /// the mirrored timeline; under a sharded layout `i` is the *storage row*
  /// (FleetPartition::storage_of), not the server index.
  void refresh(std::size_t i, const ServerTimeline& timeline);

  std::size_t size() const { return count_; }

  /// Writes quick_fit(vm)'s verdict for every server into verdicts[0..size),
  /// as QuickFit bytes (cast back with static_cast<QuickFit>). One
  /// contiguous, branch-free sweep over the SoA block; verdict order is
  /// ascending by server index, so the scan's strict-< arg-min reduction is
  /// untouched. Bit-for-bit equal to calling timelines[i].quick_fit(vm) for
  /// each i (header comment; fuzzed in tests/test_envelope_scan.cpp).
  void classify(const Probe& probe, std::uint8_t* verdicts) const {
    classify(probe, 0, count_, verdicts);
  }

  /// Block view of the sweep: classifies rows [lo, hi) only, writing
  /// verdicts[lo..hi) and touching nothing else. The sharded scan runs one
  /// block per shard task — blocks are disjoint, so concurrent sweeps into a
  /// shared verdict buffer are race-free. Row-for-row identical to the
  /// full-fleet sweep (the loop body is the same arithmetic on the same
  /// rows; splitting a contiguous sweep cannot change any verdict).
  void classify(const Probe& probe, std::size_t lo, std::size_t hi,
                std::uint8_t* verdicts) const;

  /// The epoch stored with row `i` — equals timelines[i].epoch() whenever
  /// the store is coherent.
  std::uint64_t epoch(std::size_t i) const { return epoch_[i]; }

  /// Coherence check for tests: every stored field equals the value
  /// recomputed from scratch off the timeline (exact ==, including the O(1)
  /// segment-tree roots max_all/min_all and the epoch). Never called on hot
  /// paths — it is O(servers) and asserts stay live in release builds here.
  bool debug_validate(const std::vector<ServerTimeline>& timelines) const;

  /// Permuted coherence check: row r must mirror timelines[original_of[r]]
  /// (the sharded storage layout's twin of debug_validate).
  bool debug_validate(const std::vector<ServerTimeline>& timelines,
                      const std::vector<std::size_t>& original_of) const;

 private:
  std::size_t count_ = 0;
  // One row per server, split by field. Kept as parallel arrays (not an
  // array of structs) so classify() streams each field sequentially.
  std::vector<double> peak_cpu_;
  std::vector<double> peak_mem_;
  std::vector<double> floor_cpu_;
  std::vector<double> floor_mem_;
  std::vector<double> cap_cpu_;
  std::vector<double> cap_mem_;
  std::vector<Time> base_;
  std::vector<Time> horizon_;
  std::vector<std::uint64_t> epoch_;
};

}  // namespace esva
