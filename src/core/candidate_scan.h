// The candidate-scan engine: every exhaustive allocator in the library spends
// its time in the same loop — for each VM, probe all n server timelines
// (feasibility + a per-server score) and keep the arg-min. This header owns
// that loop once, in four layers:
//
//   * the SoA envelope pass (core/envelope_store.h) — before each arg-min,
//     one contiguous sweep over packed per-server envelope rows classifies
//     every server quick-accept / quick-reject / needs-tree with
//     ServerTimeline::quick_fit's exact comparisons (autovectorized; the
//     fleet's triage no longer chases a timeline pointer per server). Only
//     needs-tree servers fall through to segment-tree can_fit. Verdicts are
//     bit-for-bit quick_fit's, so scan results, cache counters, and final
//     assignments are byte-identical with the pass on or off at any thread
//     count (tests/test_envelope_scan.cpp differential fuzz).
//
//   * scan_candidates() — the arg-min itself, serial or partitioned across a
//     ThreadPool. Deterministic by construction: each thread takes one
//     contiguous index chunk and runs the *same* strict-< loop the serial
//     scan runs, and the per-chunk minima are reduced in increasing chunk
//     order with the same strict <. Chunks are contiguous and ascending, so
//     "first index with a strictly smaller score" — the serial winner — wins
//     the reduction at any thread count; scores are computed independently
//     per server, so they are bit-identical to the serial run's. Verified
//     byte-for-byte in tests/test_parallel_scan.cpp.
//
//   * the two-level sharded scan (core/shard.h) — when the cluster is
//     partitioned, shards sweep concurrently (one task per shard: envelope
//     triage over the shard's contiguous block, tree queries only for
//     survivors) and the per-shard minima merge in ascending shard order
//     with a lexicographic (score, original index) strict-<, which is
//     exactly the order the unsharded serial loop induces — so assignments
//     are byte-identical at any shard count and thread count
//     (tests/test_sharded_scan.cpp differential fuzz).
//
//   * ScanCache — per-(server, shape) memoization of feasibility + score,
//     keyed by the VM's (CPU, MEM, start, end) shape and guarded by the
//     timeline's epoch (cluster/timeline.h): the cached value is the very
//     double the uncached probe would recompute, valid until the probed
//     timeline actually mutates. Each scan probes each server exactly once,
//     so per-server cache state evolves identically at any thread count.
//     Probes that ServerTimeline::quick_fit decides in O(1) skip the memo
//     entirely (no hash, no lookup, no insert); the shape hash is computed
//     once per VM, not once per server; and after a warmup window the cache
//     auto-disables when its observed hit rate cannot repay the bookkeeping
//     (ScanConfig::cache_warmup_probes / cache_min_hit_rate) — decisions are
//     unchanged in every case, the cache is transparent by construction.
//     Profiled VMs (time-varying demand) bypass the cache — their demand is
//     not captured by the shape key.
//
//   * ScanPolicy — the per-request decision loop shared by min-incremental
//     and the scan-based baselines, as a streaming PlacementPolicy
//     (core/streaming.h): tracing (serial, uncached — decision records are
//     inherently ordered and need check_fit diagnostics), scoring, and probe
//     accounting. Batch allocate() runs the same policy through run_batch
//     ("sort by start time, feed the stream"), so the fast path with default
//     ScanConfig is the exact pre-engine serial loop, preserving the
//     null-sink zero-overhead contract (bench/perf_allocators).

#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cluster/timeline.h"
#include "core/allocator.h"
#include "core/cost_model.h"
#include "core/envelope_store.h"
#include "core/shard.h"
#include "core/streaming.h"
#include "obs/trace.h"
#include "util/thread_pool.h"
#include "util/types.h"

namespace esva {

/// "No feasible candidate" marker for ScanOutcome::best.
inline constexpr std::size_t kNoCandidate = static_cast<std::size_t>(-1);

/// Result of one arg-min scan over [0, n) candidates.
struct ScanOutcome {
  std::size_t best = kNoCandidate;
  double best_score = kInf;
  std::int64_t feasible = 0;
  std::int64_t rejected = 0;
};

/// The one arg-min loop every allocator variant funnels through (the serial
/// scan, one parallel chunk, and the traced scan are all instantiations).
/// `eval(i)` returns the candidate's score, or nullopt when infeasible;
/// strictly smaller scores win, ties keep the lowest index.
template <typename Eval>
ScanOutcome scan_range(std::size_t lo, std::size_t hi, const Eval& eval) {
  ScanOutcome out;
  for (std::size_t i = lo; i < hi; ++i) {
    const std::optional<double> score = eval(i);
    if (!score) {
      ++out.rejected;
      continue;
    }
    ++out.feasible;
    if (*score < out.best_score) {
      out.best_score = *score;
      out.best = i;
    }
  }
  return out;
}

/// Arg-min over [0, n): serial when `pool` is null (or the fleet is too small
/// for fan-out to pay), otherwise partitioned into pool->size() + 1
/// contiguous chunks — the calling thread scans the first chunk while the
/// workers scan the rest. Bit-identical to scan_range(0, n, eval) at any
/// thread count (header comment); exceptions from `eval` propagate.
template <typename Eval>
ScanOutcome scan_candidates(std::size_t n, const Eval& eval,
                            ThreadPool* pool) {
  // Below this fleet size a scan is microseconds of work; waking workers
  // would cost more than it saves. Purely a latency guard — the result is
  // identical either way.
  constexpr std::size_t kMinParallelCandidates = 8;
  if (pool == nullptr || n < kMinParallelCandidates)
    return scan_range(std::size_t{0}, n, eval);

  const std::size_t chunks = std::min(pool->size() + 1, n);
  std::vector<std::future<ScanOutcome>> pending;
  pending.reserve(chunks - 1);
  const auto chunk_begin = [&](std::size_t c) { return n * c / chunks; };
  for (std::size_t c = 1; c < chunks; ++c) {
    const std::size_t lo = chunk_begin(c);
    const std::size_t hi = chunk_begin(c + 1);
    pending.push_back(
        pool->submit([&eval, lo, hi] { return scan_range(lo, hi, eval); }));
  }
  ScanOutcome total = scan_range(chunk_begin(0), chunk_begin(1), eval);
  for (std::future<ScanOutcome>& future : pending) {
    const ScanOutcome chunk = future.get();
    total.feasible += chunk.feasible;
    total.rejected += chunk.rejected;
    if (chunk.best != kNoCandidate && chunk.best_score < total.best_score) {
      total.best_score = chunk.best_score;
      total.best = chunk.best;
    }
  }
  return total;
}

/// Arg-min over one contiguous *storage* block [lo, hi) of a sharded layout
/// (core/shard.h): rows are visited ascending, each mapped back to its
/// original server index through `original_of`, and `eval(original, row)`
/// scores it. The partition keeps original indices ascending within a shard
/// block, so the same strict-< that scan_range uses keeps the shard's
/// lowest-original-index winner; ScanOutcome::best is the *original* index.
template <typename Eval>
ScanOutcome scan_block(std::size_t lo, std::size_t hi,
                       const std::size_t* original_of, const Eval& eval) {
  ScanOutcome out;
  for (std::size_t r = lo; r < hi; ++r) {
    const std::size_t i = original_of[r];
    const std::optional<double> score = eval(i, r);
    if (!score) {
      ++out.rejected;
      continue;
    }
    ++out.feasible;
    if (*score < out.best_score) {
      out.best_score = *score;
      out.best = i;
    }
  }
  return out;
}

/// Folds one shard's arg-min into the running total. Shards do not cover
/// ascending index ranges in general (type/band/hash layouts interleave the
/// fleet), so — unlike the chunked reduction above, where plain strict-<
/// suffices — ties on score must break to the lower *original* index
/// explicitly: the lexicographic (score, index) strict-< below is exactly
/// the order the unsharded serial scan's "first strictly smaller score wins"
/// loop induces, so the merged winner is the serial winner at any shard
/// count. Scores are computed independently per server, hence bit-identical
/// to the unsharded run's (tests/test_sharded_scan.cpp).
inline void merge_shard_outcome(ScanOutcome& total, const ScanOutcome& shard) {
  total.feasible += shard.feasible;
  total.rejected += shard.rejected;
  if (shard.best == kNoCandidate) return;
  if (shard.best_score < total.best_score ||
      (shard.best_score == total.best_score && shard.best < total.best)) {
    total.best_score = shard.best_score;
    total.best = shard.best;
  }
}

/// Two-level sharded arg-min: `sweep(s)` scans shard s's block (typically
/// envelope triage + scan_block) and the per-shard minima are merged in
/// ascending shard order with the lexicographic reduction above. Shards
/// sweep concurrently on the pool (one task per shard; the calling thread
/// takes shard 0) or serially when `pool` is null — the merge order and
/// therefore the result are identical either way.
template <typename Sweep>
ScanOutcome scan_shards(std::size_t num_shards, const Sweep& sweep,
                        ThreadPool* pool) {
  ScanOutcome total;
  if (pool == nullptr || num_shards <= 1) {
    for (std::size_t s = 0; s < num_shards; ++s)
      merge_shard_outcome(total, sweep(s));
    return total;
  }
  std::vector<std::future<ScanOutcome>> pending;
  pending.reserve(num_shards - 1);
  for (std::size_t s = 1; s < num_shards; ++s)
    pending.push_back(pool->submit([&sweep, s] { return sweep(s); }));
  total = sweep(0);
  for (std::future<ScanOutcome>& future : pending)
    merge_shard_outcome(total, future.get());
  return total;
}

/// The (CPU, MEM, interval) shape of a stable VM — the cache key. Exact
/// double equality is intended: VMs instantiated from the same catalog type
/// carry bit-identical demands.
struct VmShape {
  double cpu = 0.0;
  double mem = 0.0;
  Time start = 0;
  Time end = 0;

  bool operator==(const VmShape& other) const {
    return cpu == other.cpu && mem == other.mem && start == other.start &&
           end == other.end;
  }
};

/// One multiplicative round per 64-bit word (splitmix64-style finalization),
/// reading the doubles' bit patterns directly — cheaper than chaining four
/// std::hash calls, and exact-equality keys make bit hashing sound.
struct VmShapeHash {
  std::size_t operator()(const VmShape& shape) const {
    const auto mix = [](std::uint64_t h, std::uint64_t v) {
      h ^= v * 0x9e3779b97f4a7c15ULL;
      return (h ^ (h >> 29)) * 0xbf58476d1ce4e5b9ULL;
    };
    std::uint64_t h = std::bit_cast<std::uint64_t>(shape.cpu);
    h = mix(h, std::bit_cast<std::uint64_t>(shape.mem));
    h = mix(h, (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                    shape.start))
                << 32) |
                   static_cast<std::uint32_t>(shape.end));
    return static_cast<std::size_t>(h ^ (h >> 32));
  }
};

/// Epoch-validated memo of (feasible, score) per (server, shape). Thread-safe
/// under the scan engine's access pattern: a scan partitions servers across
/// threads disjointly, so each per-server slot is touched by one thread at a
/// time.
class ScanCache {
 public:
  /// A VM's shape with its hash precomputed — once per scanned VM, not once
  /// per probed server (the map's hasher just reads it back).
  struct Key {
    VmShape shape;
    std::size_t hash = 0;
  };

  static Key key_of(const VmSpec& vm) {
    const VmShape shape{vm.demand.cpu, vm.demand.mem, vm.start, vm.end};
    return Key{shape, VmShapeHash{}(shape)};
  }

  void resize(std::size_t num_servers) { servers_.resize(num_servers); }
  bool enabled() const { return !servers_.empty(); }

  /// Drops every slot and stops answering probes (enabled() turns false);
  /// the counters survive into hits()/misses()/quick_decided(). Called by
  /// the policy layer when the post-warmup hit rate cannot repay the
  /// bookkeeping (auto-disable) — subsequent scans run uncached, which is
  /// behaviorally identical because the cache is transparent.
  void disable() {
    base_hits_ += sum(&Slot::hits);
    base_misses_ += sum(&Slot::misses);
    base_quick_ += sum(&Slot::quick);
    servers_.clear();
  }

  /// Cached equivalent of "can_fit(vm) ? score(timeline, vm) : nullopt" for
  /// server `i`. The caller supplies the O(1) triage verdict `quick` —
  /// either timeline.quick_fit(vm) or the envelope pass's bit-identical
  /// precomputed copy (ScanPolicy computes it once per scan either way, so
  /// cache counters and memo contents evolve identically with the envelope
  /// pass on or off). Probes the triage decides never touch the memo (no
  /// lookup, no insert — recomputing a quick-accepted score is cheaper than
  /// memoizing it). Otherwise a stored entry is reused iff the timeline's
  /// epoch is unchanged since it was stored; the first such probe after a
  /// mutation drops the server's entries. The caller routes profiled VMs
  /// around the cache entirely (their demand is not captured by `key`).
  template <typename ScoreFn>
  std::optional<double> probe(std::size_t i, const ServerTimeline& timeline,
                              const VmSpec& vm, const Key& key, QuickFit quick,
                              const ScoreFn& score) {
    Slot& slot = servers_[i];
    switch (quick) {
      case QuickFit::kFits:
        ++slot.quick;
        return score(timeline, vm);
      case QuickFit::kCannotFit:
        ++slot.quick;
        return std::nullopt;
      case QuickFit::kUnknown: break;
    }
    if (slot.epoch != timeline.epoch() || !slot.valid) {
      slot.entries.clear();
      slot.epoch = timeline.epoch();
      slot.valid = true;
    }
    if (const auto it = slot.entries.find(key); it != slot.entries.end()) {
      ++slot.hits;
      if (!it->second.feasible) return std::nullopt;
      return it->second.score;
    }
    ++slot.misses;
    Entry entry;
    entry.feasible = timeline.can_fit(vm);
    if (entry.feasible) entry.score = score(timeline, vm);
    slot.entries.emplace(key, entry);
    if (!entry.feasible) return std::nullopt;
    return entry.score;
  }

  std::int64_t hits() const { return base_hits_ + sum(&Slot::hits); }
  std::int64_t misses() const { return base_misses_ + sum(&Slot::misses); }

  /// Probes answered by the O(1) quick_fit triage without touching the memo.
  std::int64_t quick_decided() const { return base_quick_ + sum(&Slot::quick); }

 private:
  struct Entry {
    bool feasible = false;
    double score = 0.0;
  };
  struct KeyHash {
    std::size_t operator()(const Key& key) const { return key.hash; }
  };
  struct KeyEq {
    bool operator()(const Key& a, const Key& b) const {
      return a.shape == b.shape;
    }
  };
  struct Slot {
    std::uint64_t epoch = 0;
    bool valid = false;  ///< false until the first probe adopts an epoch
    std::unordered_map<Key, Entry, KeyHash, KeyEq> entries;
    std::int64_t hits = 0;
    std::int64_t misses = 0;
    std::int64_t quick = 0;
  };

  std::int64_t sum(std::int64_t Slot::* field) const {
    std::int64_t total = 0;
    for (const Slot& slot : servers_) total += slot.*field;
    return total;
  }

  std::vector<Slot> servers_;
  std::int64_t base_hits_ = 0;
  std::int64_t base_misses_ = 0;
  std::int64_t base_quick_ = 0;
};

/// Probe accounting for one allocate() run.
struct ScanTotals {
  std::int64_t feasible = 0;
  std::int64_t rejected = 0;
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;
  std::int64_t cache_quick_decided = 0;
  bool cache_auto_disabled = false;
};

/// The per-request decision loop shared by every scan-based allocator, as a
/// streaming policy: arg-min-scans the fleet with `score` (lower is better;
/// ties to the lowest server index). Batch allocate() and the streaming
/// replay both run exactly this code (core/streaming.h run_batch /
/// PlacementEngine), so they cannot diverge.
///
/// While tracing, the scan runs serial and uncached — decision records are
/// inherently ordered, and rejection diagnostics need check_fit — but flows
/// through the same scan_candidates arg-min, so traced and untraced runs
/// cannot diverge (tests/test_obs_trace.cpp). `score_is_energy_delta` tells
/// the tracer whether `score` already *is* the Eq. 17 incremental energy;
/// otherwise candidates are priced separately for the trace, as the baselines
/// always did.
template <typename ScoreFn>
class ScanPolicy final : public PlacementPolicy {
 public:
  ScanPolicy(std::string name, bool score_is_energy_delta, ScoreFn score,
             const ScanConfig& config, const ObsContext& obs)
      : name_(std::move(name)),
        score_is_energy_delta_(score_is_energy_delta),
        score_(std::move(score)),
        config_(config),
        obs_(obs) {}

  std::string name() const override { return name_; }
  const ScanTotals& totals() const { return totals_; }

  void begin(const ClusterState& cluster, Rng& /*rng*/) override {
    const std::size_t n = cluster.num_servers();
    if (!obs_.tracing() && config_.resolved_threads() > 1 && n > 1)
      pool_ = std::make_unique<ThreadPool>(
          static_cast<std::size_t>(config_.resolved_threads()) - 1);
    if (!obs_.tracing() && config_.cache) cache_.resize(n);
  }

  PlacementDecision place_one(const ClusterState& cluster, const VmSpec& vm,
                              Rng& /*rng*/) override {
    const std::vector<ServerTimeline>& timelines = cluster.timelines();
    const std::size_t n = timelines.size();
    PlacementDecision result;
    if (obs_.tracing()) {
      DecisionBuilder decision(obs_, name_, vm.id);
      const ScanOutcome out = scan_candidates(
          n,
          [&](std::size_t i) -> std::optional<double> {
            const FitCheck fit = timelines[i].check_fit(vm);
            if (!fit.ok) {
              decision.add_rejected(static_cast<ServerId>(i), fit);
              return std::nullopt;
            }
            const double s = score_(timelines[i], vm);
            decision.add_feasible(static_cast<ServerId>(i),
                                  score_is_energy_delta_
                                      ? s
                                      : incremental_cost(timelines[i], vm));
            return s;
          },
          nullptr);
      totals_.feasible += out.feasible;
      totals_.rejected += out.rejected;
      if (out.best == kNoCandidate) {
        decision.commit(kNoServer);
        return result;  // reported as unallocated
      }
      result.server = static_cast<ServerId>(out.best);
      result.has_delta = true;
      result.delta = score_is_energy_delta_
                         ? out.best_score
                         : incremental_cost(timelines[out.best], vm);
      decision.commit(result.server, result.delta);
      return result;
    }

    // Hoisted VM-loop invariant: the shape key (and its hash) is computed
    // once here, not inside the per-server loop. Profiled VMs take the
    // uncached scan — their time-varying demand is not captured by the key.
    const bool use_cache = cache_.enabled() && !vm.has_profile();
    const ScanCache::Key key = use_cache ? ScanCache::key_of(vm)
                                         : ScanCache::Key{};
    // SoA envelope pass (core/envelope_store.h): one contiguous sweep
    // classifies the whole fleet with quick_fit's exact comparisons before
    // the (possibly parallel) arg-min touches any timeline; only servers the
    // sweep leaves kUnknown fall through to the segment trees. The verdict
    // buffer is written here, serially, before any worker task is submitted
    // (scan_candidates' future machinery orders the reads after), and read
    // by index — contiguous ascending like the scan itself.
    const bool use_envelope = config_.envelope;
    // Two-level sharded scan (core/shard.h): when the cluster is partitioned,
    // each shard's task triages its own contiguous envelope block and
    // arg-mins it (scan_block, ascending original indices within the block),
    // and the per-shard minima merge with the lexicographic (score, index)
    // reduction — the serial unsharded winner at any shard and thread count.
    // The verdict buffer is sized serially here; shard tasks write and read
    // disjoint [shard_begin, shard_end) slices of it, so the concurrent
    // sweeps are race-free.
    const FleetPartition& partition = cluster.partition();
    const bool sharded = partition.num_shards() > 1;
    if (use_envelope) {
      verdicts_.resize(n);
      if (!sharded)
        cluster.envelopes().classify(EnvelopeStore::probe_of(vm),
                                     verdicts_.data());
    }
    const ScanOutcome out = [&] {
      if (sharded) {
        const std::size_t* original_of = partition.original_of().data();
        const EnvelopeStore::Probe probe = EnvelopeStore::probe_of(vm);
        // use_cache / use_envelope are loop-invariant; the branches below
        // predict perfectly, so one eval covers all four dispatch modes the
        // unsharded path specializes.
        const auto eval_row = [&](std::size_t i,
                                  std::size_t r) -> std::optional<double> {
          const QuickFit quick = use_envelope
                                     ? static_cast<QuickFit>(verdicts_[r])
                                     : timelines[i].quick_fit(vm);
          if (use_cache)
            return cache_.probe(i, timelines[i], vm, key, quick, score_);
          switch (quick) {
            case QuickFit::kFits: return score_(timelines[i], vm);
            case QuickFit::kCannotFit: return std::nullopt;
            case QuickFit::kUnknown: break;
          }
          if (!timelines[i].can_fit(vm)) return std::nullopt;
          return score_(timelines[i], vm);
        };
        const auto sweep = [&](std::size_t s) -> ScanOutcome {
          const std::size_t lo = partition.shard_begin(s);
          const std::size_t hi = partition.shard_end(s);
          if (use_envelope && lo < hi)
            cluster.envelopes().classify(probe, lo, hi, verdicts_.data());
          return scan_block(lo, hi, original_of, eval_row);
        };
        return scan_shards(partition.num_shards(), sweep, pool_.get());
      }
      if (use_cache) {
        if (use_envelope)
          return scan_candidates(
              n,
              [&](std::size_t i) -> std::optional<double> {
                return cache_.probe(i, timelines[i], vm, key,
                                    static_cast<QuickFit>(verdicts_[i]),
                                    score_);
              },
              pool_.get());
        return scan_candidates(
            n,
            [&](std::size_t i) -> std::optional<double> {
              return cache_.probe(i, timelines[i], vm, key,
                                  timelines[i].quick_fit(vm), score_);
            },
            pool_.get());
      }
      if (use_envelope)
        return scan_candidates(
            n,
            [&](std::size_t i) -> std::optional<double> {
              switch (static_cast<QuickFit>(verdicts_[i])) {
                case QuickFit::kFits: return score_(timelines[i], vm);
                case QuickFit::kCannotFit: return std::nullopt;
                case QuickFit::kUnknown: break;
              }
              if (!timelines[i].can_fit(vm)) return std::nullopt;
              return score_(timelines[i], vm);
            },
            pool_.get());
      return scan_candidates(
          n,
          [&](std::size_t i) -> std::optional<double> {
            if (!timelines[i].can_fit(vm)) return std::nullopt;
            return score_(timelines[i], vm);
          },
          pool_.get());
    }();
    totals_.feasible += out.feasible;
    totals_.rejected += out.rejected;
    // Auto-disable check, once, at a serial point between scans: per-slot
    // counters evolve identically at any thread count, so the verdict (and
    // everything downstream) is deterministic.
    if (cache_.enabled() && !cache_warmup_judged_) {
      const std::int64_t answered = cache_.hits() + cache_.misses();
      if (answered >= config_.cache_warmup_probes) {
        cache_warmup_judged_ = true;
        const double hit_rate =
            static_cast<double>(cache_.hits()) / static_cast<double>(answered);
        if (hit_rate < config_.cache_min_hit_rate) {
          cache_.disable();
          totals_.cache_auto_disabled = true;
        }
      }
    }
    if (out.best == kNoCandidate) return result;  // reported as unallocated
    result.server = static_cast<ServerId>(out.best);
    if (score_is_energy_delta_) {
      result.has_delta = true;
      result.delta = out.best_score;
    }
    return result;
  }

  void finish(std::size_t requests, std::size_t unallocated) override {
    totals_.cache_hits = cache_.hits();
    totals_.cache_misses = cache_.misses();
    totals_.cache_quick_decided = cache_.quick_decided();
    record_allocation_metrics(obs_.metrics, name_, requests, totals_.feasible,
                              totals_.rejected, unallocated);
    if (config_.cache)
      record_scan_cache_metrics(obs_.metrics, name_, totals_.cache_hits,
                                totals_.cache_misses,
                                totals_.cache_quick_decided,
                                totals_.cache_auto_disabled);
  }

 private:
  std::string name_;
  bool score_is_energy_delta_;
  ScoreFn score_;
  ScanConfig config_;
  ObsContext obs_;
  std::unique_ptr<ThreadPool> pool_;
  ScanCache cache_;
  ScanTotals totals_;
  /// Per-scan QuickFit verdict bytes from the envelope pass, indexed by
  /// server. Written serially before each scan fans out; workers only read.
  std::vector<std::uint8_t> verdicts_;
  bool cache_warmup_judged_ = false;
};

/// Deduces the ScoreFn type; the scan-based allocators' make_policy() and
/// allocate() both construct their policy through this.
template <typename ScoreFn>
std::unique_ptr<ScanPolicy<ScoreFn>> make_scan_policy(
    std::string name, bool score_is_energy_delta, ScoreFn score,
    const ScanConfig& config, const ObsContext& obs) {
  return std::make_unique<ScanPolicy<ScoreFn>>(std::move(name),
                                               score_is_energy_delta,
                                               std::move(score), config, obs);
}

}  // namespace esva
