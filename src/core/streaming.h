// Streaming allocation core: the event-driven counterpart of the batch
// Allocator interface. The paper's heuristic is already online in start-time
// order (§III) — this layer makes that operational: requests are submitted
// one at a time to a stateful PlacementEngine, and advance_to(t) garbage-
// collects occupancy structure strictly before the time frontier so resident
// state is O(active window), not O(horizon).
//
// Three pieces:
//
//   * ClusterState — owns one ServerTimeline per server over a rolling
//     window [base_i, horizon]. advance_to(t) retires VMs that finish before
//     the frontier and, amortized, rebuilds each timeline with an advanced
//     base; ensure_horizon(end) grows the forward window with doubling so
//     per-request growth is O(1) amortized.
//
//   * PlacementPolicy — the incremental `place_one` interface every
//     streamable allocator implements (the scan-based ScanPolicy in
//     core/candidate_scan.h, first-fit and random-fit policies in
//     baselines/). A policy only *chooses* a server; the engine commits the
//     placement, so batch and streaming drivers share one decision path.
//
//   * PlacementEngine — submit(VmSpec) -> PlacementDecision per request,
//     plus advance_to(t). run_batch() reimplements the historical
//     Allocator::allocate() as "sort by start time, feed the stream",
//     bit-identical to the pre-refactor batch loops
//     (tests/test_streaming.cpp).
//
// Why garbage collection cannot change decisions: a future placement's
// feasibility depends only on usage within its own interval (at or after the
// frontier), and its structure-cost delta (core/cost_model.h) depends only
// on the IntervalSet::preview_insert neighborhood — the left neighbor's hi,
// the right neighbor's lo, the absorbed intervals, and whether the busy set
// is empty. Every busy interval dropped by GC ends strictly before the
// frontier, so the only observable trace it could leave on a future delta is
// the hi of the *latest* dropped interval (as left-gap anchor) and busy
// non-emptiness. Rebuilding with a unit sentinel interval at that endpoint
// (ServerTimeline::seed_busy) preserves both exactly, so every subsequent
// delta — and therefore every subsequent decision — is bitwise unchanged.
// tests/test_streaming.cpp pins this property differentially.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/server_spec.h"
#include "cluster/timeline.h"
#include "cluster/vm.h"
#include "core/allocator.h"
#include "core/cost_model.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/types.h"

namespace esva {

class Counter;  // obs/metrics.h

/// Per-server timelines behind a rolling time frontier.
class ClusterState {
 public:
  /// Timelines over [1, initial_horizon]; pass 0 to grow on demand via
  /// ensure_horizon (the streaming replay default).
  ClusterState(std::vector<ServerSpec> servers, Time initial_horizon);

  std::size_t num_servers() const { return timelines_.size(); }
  const std::vector<ServerTimeline>& timelines() const { return timelines_; }
  const ServerSpec& server(std::size_t i) const { return servers_[i]; }

  /// Requests must start at or after the frontier; structure strictly before
  /// it is garbage-collectible.
  Time frontier() const { return frontier_; }
  Time horizon() const { return horizon_; }

  /// Grows the horizon to cover `end` (amortized doubling of the forward
  /// window). No-op when already covered.
  void ensure_horizon(Time end);

  /// Commits a placement chosen by a policy. The VM must fit (asserted by
  /// the timeline) and is tracked as active until it retires.
  void place(std::size_t server, const VmSpec& vm);

  /// Advances the frontier to `t` (no-op backwards), retires VMs ending
  /// before it, and — amortized — rebuilds timelines over the shrunken
  /// window. Never changes any subsequent decision (header comment).
  void advance_to(Time t);

  /// VMs placed and not yet retired by advance_to.
  std::size_t active_vms() const;

  /// Total resident window size, in time units summed over servers — the
  /// resource-tree memory footprint the rolling horizon bounds. O(1).
  std::size_t resident_time_units() const { return resident_units_; }

 private:
  Time window_base(std::size_t i) const;
  bool should_rebuild(std::size_t i) const;
  void rebuild(std::size_t i, Time base, Time horizon);

  std::vector<ServerSpec> servers_;
  std::vector<ServerTimeline> timelines_;
  /// Active VMs per server, in placement order (rebuild replays them).
  std::vector<std::vector<VmSpec>> active_;
  /// Latest end among retired VMs per server (0 = none): the sentinel busy
  /// endpoint seeded into rebuilt timelines.
  std::vector<Time> retired_hi_;
  Time frontier_ = 1;
  Time horizon_ = 0;
  /// Earliest end among all active VMs (0 = none): advance_to's fast path.
  Time next_retire_ = 0;
  std::size_t resident_units_ = 0;
};

/// One placement decision. `delta` carries the Eq. 17 incremental energy
/// when the policy priced the winner anyway (min-incremental, traced runs);
/// consumers needing energy otherwise price it themselves.
struct PlacementDecision {
  ServerId server = kNoServer;
  bool has_delta = false;
  Energy delta = 0.0;
};

/// The incremental interface every streamable allocator implements. A policy
/// instance drives one run: begin() binds it to the cluster (FFPS draws its
/// probe order here), place_one() chooses a server per request without
/// mutating the cluster, finish() flushes per-run metrics.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Short stable name used in metrics ("min-incremental", "ffps", ...).
  virtual std::string name() const = 0;

  /// Called once, before the first request.
  virtual void begin(const ClusterState& cluster, Rng& rng);

  /// Chooses a server for `vm` (kNoServer when infeasible everywhere). Must
  /// not mutate the cluster — the engine commits the placement.
  virtual PlacementDecision place_one(const ClusterState& cluster,
                                      const VmSpec& vm, Rng& rng) = 0;

  /// Called once, after the last request. `requests` is the number
  /// submitted, `unallocated` how many found no server.
  virtual void finish(std::size_t requests, std::size_t unallocated);
};

struct EngineOptions {
  /// Fixed horizon to pre-build timelines for; 0 grows on demand.
  Time initial_horizon = 0;
  /// Advance the frontier to each request's start time on submit — the
  /// streaming replay mode. Off for the batch driver, where ablation orders
  /// present VMs with non-monotone start times.
  bool auto_advance = false;
  /// Accumulate the Eq. 17 incremental energy of every placement (the
  /// telescoped total equals the batch post-hoc evaluation). Off by default:
  /// policies that don't price candidates would pay an extra delta per
  /// request.
  bool account_energy = false;
  /// Cost options used when account_energy prices a placement itself.
  CostOptions cost;
  /// Engine-level observability: the "engine.submit_ms" timer and
  /// "engine.requests" counter (docs/OBSERVABILITY.md). Policies carry
  /// their own ObsContext for tracing and allocator.* metrics.
  ObsContext obs;
};

/// Stateful streaming allocator: submit requests in non-decreasing
/// start-time order (enforced against the frontier), get a decision each.
class PlacementEngine {
 public:
  /// Binds `policy` (begin() is called here) to a fresh cluster. The policy
  /// and rng must outlive the engine; one policy instance drives one engine.
  PlacementEngine(std::vector<ServerSpec> servers, PlacementPolicy& policy,
                  Rng& rng, EngineOptions options = {});

  /// Places one request. Throws std::invalid_argument if vm.start is
  /// already behind the frontier (its window may have been collected).
  PlacementDecision submit(const VmSpec& vm);

  /// Forwards to ClusterState::advance_to.
  void advance_to(Time t);

  const ClusterState& cluster() const { return cluster_; }

  std::int64_t requests() const { return requests_; }
  std::int64_t placed() const { return placed_; }
  /// Telescoped incremental energy of all placements; 0 unless
  /// EngineOptions::account_energy.
  Energy total_energy() const { return energy_; }
  /// High-water mark of ClusterState::resident_time_units().
  std::size_t peak_resident_time_units() const { return peak_resident_; }

 private:
  ClusterState cluster_;
  PlacementPolicy& policy_;
  Rng& rng_;
  EngineOptions options_;
  Timer* submit_timer_ = nullptr;
  Counter* request_counter_ = nullptr;
  std::int64_t requests_ = 0;
  std::int64_t placed_ = 0;
  Energy energy_ = 0.0;
  std::size_t peak_resident_ = 0;
};

/// The historical batch contract as a stream driver: presents problem.vms in
/// `order` to a PlacementEngine over a fixed problem.horizon window and
/// collects the assignment. With the policy an allocator's make_policy()
/// returns, this *is* that allocator's allocate() — bit-identical to the
/// pre-streaming batch loops (tests/test_streaming.cpp).
Allocation run_batch(const ProblemInstance& problem, PlacementPolicy& policy,
                     VmOrder order, Rng& rng);

}  // namespace esva
