// Streaming allocation core: the event-driven counterpart of the batch
// Allocator interface. The paper's heuristic is already online in start-time
// order (§III) — this layer makes that operational: requests are submitted
// one at a time to a stateful PlacementEngine, and advance_to(t) garbage-
// collects occupancy structure strictly before the time frontier so resident
// state is O(active window), not O(horizon).
//
// Three pieces:
//
//   * ClusterState — owns one ServerTimeline per server over a rolling
//     window [base_i, horizon]. advance_to(t) retires VMs that finish before
//     the frontier and, amortized, rebuilds each timeline with an advanced
//     base; ensure_horizon(end) grows the forward window with doubling so
//     per-request growth is O(1) amortized. Servers also carry a health
//     state (up / drained / failed): a non-up server's timeline is replaced
//     by an empty-window stub, so every policy's can_fit probe rejects it —
//     failed capacity vanishes from every scan without per-policy checks.
//
//   * PlacementPolicy — the incremental `place_one` interface every
//     streamable allocator implements (the scan-based ScanPolicy in
//     core/candidate_scan.h, first-fit and random-fit policies in
//     baselines/). A policy only *chooses* a server; the engine commits the
//     placement, so batch and streaming drivers share one decision path.
//
//   * PlacementEngine — submit(VmSpec) -> PlacementDecision per request,
//     plus advance_to(t). run_batch() reimplements the historical
//     Allocator::allocate() as "sort by start time, feed the stream",
//     bit-identical to the pre-refactor batch loops
//     (tests/test_streaming.cpp). The engine is also the fault-tolerance
//     layer: it steps through an optional FaultPlan at advance_to
//     boundaries, evacuates VMs displaced by server failures through the
//     bound policy (charging ext/migration's first-order energy term), and
//     runs a bounded retry queue with exponential backoff for infeasible and
//     displaced requests. With no plan and retries disabled, every fault
//     path is dormant and the engine is bit-identical to the fault-free one
//     (tests/test_faults.cpp pins this differentially).
//
// Why garbage collection cannot change decisions: a future placement's
// feasibility depends only on usage within its own interval (at or after the
// frontier), and its structure-cost delta (core/cost_model.h) depends only
// on the IntervalSet::preview_insert neighborhood — the left neighbor's hi,
// the right neighbor's lo, the absorbed intervals, and whether the busy set
// is empty. Every busy interval dropped by GC ends strictly before the
// frontier, so the only observable trace it could leave on a future delta is
// the hi of the *latest* dropped interval (as left-gap anchor) and busy
// non-emptiness. Rebuilding with a unit sentinel interval at that endpoint
// (ServerTimeline::seed_busy) preserves both exactly, so every subsequent
// delta — and therefore every subsequent decision — is bitwise unchanged.
// tests/test_streaming.cpp pins this property differentially.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/server_spec.h"
#include "cluster/timeline.h"
#include "cluster/vm.h"
#include "core/allocator.h"
#include "core/envelope_store.h"
#include "core/cost_model.h"
#include "core/fault_plan.h"
#include "core/shard.h"
#include "obs/trace.h"
#include "util/rng.h"
#include "util/types.h"

namespace esva {

class Counter;          // obs/metrics.h
struct FleetSample;     // obs/timeseries.h
class TimeSeriesSampler;  // obs/timeseries.h
class EnergyLedger;     // obs/energy_ledger.h

/// Availability of one server in a ClusterState.
enum class ServerHealth {
  kUp,       ///< accepting placements
  kDrained,  ///< hosted VMs run to completion; no new placements
  kFailed,   ///< dark: active VMs were displaced; no new placements
};

std::string to_string(ServerHealth health);

/// Per-server timelines behind a rolling time frontier.
class ClusterState {
 public:
  /// Timelines over [1, initial_horizon]; pass 0 to grow on demand via
  /// ensure_horizon (the streaming replay default). `shard` partitions the
  /// fleet into contiguous envelope blocks (core/shard.h); the default
  /// single-shard partition reproduces the historical unsharded layout.
  ClusterState(std::vector<ServerSpec> servers, Time initial_horizon,
               ShardOptions shard = {});

  std::size_t num_servers() const { return timelines_.size(); }
  const std::vector<ServerTimeline>& timelines() const { return timelines_; }
  const ServerSpec& server(std::size_t i) const { return servers_[i]; }

  /// Packed SoA mirror of every timeline's window envelope
  /// (core/envelope_store.h), refreshed O(1) at each timeline mutation —
  /// place, GC rebuild, fault stub, recovery — so the candidate scan's
  /// envelope triage pass always reads coherent rows. Rows are laid out in
  /// the partition's *storage order* (one contiguous block per shard); row
  /// partition().storage_of(i) mirrors timelines()[i] and carries its
  /// epoch(). Under the default single-shard partition storage order is the
  /// identity, exactly the historical layout. Coherence is fuzzed via
  /// EnvelopeStore::debug_validate in tests/test_envelope_scan.cpp and
  /// tests/test_sharded_scan.cpp.
  const EnvelopeStore& envelopes() const { return envelopes_; }

  /// The deterministic server -> shard-block mapping the envelope rows are
  /// laid out by. Immutable for the cluster's lifetime.
  const FleetPartition& partition() const { return partition_; }

  /// Per-shard mutation counter: bumped whenever any timeline in shard `s`
  /// mutates (place, GC rebuild, fault stub, recovery). Faults and rebuilds
  /// are per-server operations, so activity in one shard never advances
  /// another shard's epoch — the isolation property behind per-shard
  /// incremental consumers (tests/test_sharded_scan.cpp pins it). The one
  /// deliberate exception is ensure_horizon growth, which rebuilds every
  /// placeable timeline and therefore advances every shard.
  std::uint64_t shard_epoch(std::size_t s) const { return shard_epochs_[s]; }

  /// Requests must start at or after the frontier; structure strictly before
  /// it is garbage-collectible.
  Time frontier() const { return frontier_; }
  Time horizon() const { return horizon_; }

  /// Grows the horizon to cover `end` (amortized doubling of the forward
  /// window). No-op when already covered.
  void ensure_horizon(Time end);

  /// Commits a placement chosen by a policy. The VM must fit (asserted by
  /// the timeline), the server must be up, and the VM is tracked as active
  /// until it retires.
  void place(std::size_t server, const VmSpec& vm);

  /// Advances the frontier to `t` (no-op backwards), retires VMs ending
  /// before it, and — amortized — rebuilds timelines over the shrunken
  /// window. Never changes any subsequent decision (header comment).
  void advance_to(Time t);

  /// VMs placed and not yet retired by advance_to. O(1) — place() and the
  /// retire sweep maintain a running count, asserted against
  /// active_vms_scan() wherever the sweep already walks the fleet.
  std::size_t active_vms() const { return active_count_; }

  /// The O(num_servers) verification twin of active_vms(): recounts from
  /// the per-server lists. Tests and debug asserts only.
  std::size_t active_vms_scan() const;

  /// Fleet-wide snapshot at instant `t` for the time-series sampler: usage
  /// is recomputed from the active VM lists (not the timelines, whose stubs
  /// hide drained servers' load), power via the Eq. 1 model for servers
  /// hosting load. Engine-level fields (retry depth, counters) are left zero
  /// for PlacementEngine to fill. O(active VMs + servers).
  FleetSample sample(Time t) const;

  /// Total resident window size, in time units summed over servers — the
  /// resource-tree memory footprint the rolling horizon bounds. O(1).
  std::size_t resident_time_units() const { return resident_units_; }

  // --- server health (core/fault_plan.h events) ----------------------------

  ServerHealth health(std::size_t i) const { return health_[i]; }
  bool placeable(std::size_t i) const {
    return health_[i] == ServerHealth::kUp;
  }

  /// Marks the server failed and returns its still-active VMs in placement
  /// order (the engine evacuates them). The timeline becomes an empty-window
  /// stub every can_fit probe rejects; occupancy up to the failure instant
  /// stays anchored via the retired-busy sentinel. No-op (empty result) if
  /// already failed.
  std::vector<VmSpec> fail_server(std::size_t i);

  /// Graceful decommission: active VMs keep running (and retire normally),
  /// but the timeline becomes a stub so nothing new lands here. Only
  /// meaningful from the up state.
  void drain_server(std::size_t i);

  /// Returns a failed or drained server to service: its timeline is rebuilt
  /// over the current window with surviving active VMs replayed and the
  /// retired-busy sentinel seeded. No-op if already up.
  void recover_server(std::size_t i);

  /// Test/debug knob: rebuild a timeline whenever any dead prefix exists
  /// (instead of the 2x-amortized threshold). Forces the retired-sentinel
  /// path on every advance_to tick — decisions must not change
  /// (tests/test_streaming.cpp).
  void set_eager_rebuild(bool eager) { eager_rebuild_ = eager; }

  // --- restorable state (serve-daemon snapshots, src/serve/snapshot.h) -----

  /// Per-server restorable occupancy: health, the rebuild sentinel, and the
  /// active VM list in placement order.
  std::vector<struct ServerStateSnapshot> export_servers() const;

  /// Rebuilds this cluster to a previously exported state: every placeable
  /// timeline is freshly rebuilt over [window_base, horizon] with the
  /// retired-busy sentinel seeded and active VMs replayed in order; non-up
  /// servers get the frontier stub. By the GC-invariance argument in the
  /// header comment, every decision taken after restore is byte-identical to
  /// one taken on the cluster the state was exported from. Throws
  /// std::invalid_argument on a fleet-size mismatch or inconsistent state
  /// (active VMs on a failed server, a VM ending past the horizon).
  void restore(Time frontier, Time horizon,
               const std::vector<struct ServerStateSnapshot>& servers);

  /// Early retirement of an active VM (client-requested teardown before
  /// vm.end): removes it from its host's active list, re-anchors the rebuild
  /// sentinel at frontier-1 (the VM occupied its server through the last
  /// completed unit), and rebuilds the host timeline so the freed capacity is
  /// visible to the next scan. Returns the host server, or kNoServer when no
  /// active VM carries this id.
  ServerId retire_active(VmId vm);

 private:
  Time window_base(std::size_t i) const;
  bool should_rebuild(std::size_t i) const;
  void rebuild(std::size_t i, Time base, Time horizon);
  /// Replaces timeline `i` with an empty-window stub at the frontier
  /// (epoch-advanced so scan caches cannot confuse it with live state).
  void stub_timeline(std::size_t i);
  void recompute_next_retire();
  /// Re-reads server i's envelope row (at its storage position) after a
  /// timeline mutation, and advances its shard's epoch.
  void refresh_envelope(std::size_t i);

  std::vector<ServerSpec> servers_;
  /// Deterministic shard layout (built from servers_ at construction).
  FleetPartition partition_;
  std::vector<ServerTimeline> timelines_;
  /// SoA envelope rows mirroring timelines_, in storage order (envelopes()).
  EnvelopeStore envelopes_;
  /// Per-shard mutation counters (shard_epoch()).
  std::vector<std::uint64_t> shard_epochs_;
  /// Active VMs per server, in placement order (rebuild replays them).
  std::vector<std::vector<VmSpec>> active_;
  /// Latest end among retired VMs per server (0 = none): the sentinel busy
  /// endpoint seeded into rebuilt timelines.
  std::vector<Time> retired_hi_;
  std::vector<ServerHealth> health_;
  Time frontier_ = 1;
  Time horizon_ = 0;
  /// Earliest end among all active VMs (0 = none): advance_to's fast path.
  Time next_retire_ = 0;
  std::size_t resident_units_ = 0;
  std::size_t active_count_ = 0;
  bool eager_rebuild_ = false;
};

/// Why a request was not placed (PlacementDecision::reject). Policies leave
/// this kNone; the engine classifies the outcome.
enum class PlacementReject {
  kNone,         ///< placed
  kNoCapacity,   ///< no feasible server (terminal when retries are off)
  kLateArrival,  ///< start behind the frontier on the tolerant path
  kDeferred,     ///< admitted to the retry queue; may still be placed
  kQueueFull,    ///< retry queue at capacity — terminal
};

std::string to_string(PlacementReject reject);

/// One placement decision. `delta` carries the Eq. 17 incremental energy
/// when the policy priced the winner anyway (min-incremental, traced runs);
/// consumers needing energy otherwise price it themselves.
struct PlacementDecision {
  ServerId server = kNoServer;
  bool has_delta = false;
  Energy delta = 0.0;
  PlacementReject reject = PlacementReject::kNone;
};

/// The incremental interface every streamable allocator implements. A policy
/// instance drives one run: begin() binds it to the cluster (FFPS draws its
/// probe order here), place_one() chooses a server per request without
/// mutating the cluster, finish() flushes per-run metrics.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  /// Short stable name used in metrics ("min-incremental", "ffps", ...).
  virtual std::string name() const = 0;

  /// Called once, before the first request.
  virtual void begin(const ClusterState& cluster, Rng& rng);

  /// Chooses a server for `vm` (kNoServer when infeasible everywhere). Must
  /// not mutate the cluster — the engine commits the placement.
  virtual PlacementDecision place_one(const ClusterState& cluster,
                                      const VmSpec& vm, Rng& rng) = 0;

  /// Called once, after the last request. `requests` is the number
  /// submitted, `unallocated` how many found no server.
  virtual void finish(std::size_t requests, std::size_t unallocated);
};

/// Bounded deferred-retry configuration: infeasible and displaced requests
/// wait in a capacity-limited queue and are re-attempted at advance_to
/// boundaries under exponential backoff. Defaults disable retries, keeping
/// the engine bit-identical to the historical one.
struct RetryPolicy {
  /// Total placement attempts per request, the initial one included;
  /// <= 1 disables the retry queue entirely.
  int max_attempts = 1;
  /// Queue capacity; admissions beyond it are rejected with kQueueFull.
  std::size_t queue_capacity = 64;
  /// Attempt k+1 fires base_delay × backoff^(k-1) time units after attempt
  /// k fails (k >= 1), rounded, floored at one unit.
  Time base_delay = 8;
  double backoff = 2.0;

  bool enabled() const { return max_attempts > 1 && queue_capacity > 0; }
  /// Delay before the attempt following `attempts` failed ones.
  Time delay_for(int attempts) const;
};

struct EngineOptions {
  /// Fixed horizon to pre-build timelines for; 0 grows on demand.
  Time initial_horizon = 0;
  /// Advance the frontier to each request's start time on submit — the
  /// streaming replay mode. Off for the batch driver, where ablation orders
  /// present VMs with non-monotone start times.
  bool auto_advance = false;
  /// Accumulate the Eq. 17 incremental energy of every placement (the
  /// telescoped total equals the batch post-hoc evaluation). Off by default:
  /// policies that don't price candidates would pay an extra delta per
  /// request.
  bool account_energy = false;
  /// Cost options used when account_energy prices a placement itself.
  CostOptions cost;
  /// Tolerate requests that start behind the frontier: return a structured
  /// kLateArrival rejection instead of throwing. Off by default — on the
  /// batch driver a late submit is a programmer error and keeps the throw.
  bool tolerate_late_arrivals = false;
  /// Deterministic fail/recover/drain schedule applied at advance_to
  /// boundaries; null = no faults. Must outlive the engine; validated
  /// against the fleet size at construction.
  const FaultPlan* faults = nullptr;
  /// Deferred-retry configuration (disabled by default).
  RetryPolicy retry;
  /// Live-migration energy per GiB of displaced VM memory, charged when an
  /// evacuated VM is re-placed (ext/migration's first-order model, via
  /// migration_energy()). Only used with account_energy.
  Energy migration_cost_per_gib = 25.0;
  /// Engine-level observability: the "engine.submit_ms" timer (histogram-
  /// backed for percentile extraction) and "engine.requests" counter, plus
  /// the engine.* fault counters (docs/OBSERVABILITY.md). Policies carry
  /// their own ObsContext for tracing and allocator.* metrics.
  ObsContext obs;
  /// Fleet time-series sampler, fed at advance_to boundaries whenever the
  /// frontier has progressed past the sampler's cadence (obs/timeseries.h);
  /// null = no sampling. Must outlive the engine. Like the metrics sink,
  /// binding a sampler never changes any decision.
  TimeSeriesSampler* timeseries = nullptr;
  /// Energy-attribution ledger: every commit posts its cause-tagged deltas
  /// (obs/energy_ledger.h); null = no ledger. Must outlive the engine. The
  /// ledger recomputes attribution through the cost model's breakdown path —
  /// the engine's own energy accumulation is untouched, so assignments and
  /// total_energy() stay byte-identical with or without a ledger bound.
  EnergyLedger* ledger = nullptr;
  /// Fleet partition for the cluster (core/shard.h). A pure layout /
  /// parallelism knob: decisions are byte-identical at any shard count
  /// (tests/test_sharded_scan.cpp).
  ShardOptions shard;
};

/// Graceful-degradation counters of one engine run (mirrored into the obs
/// registry as engine.* when a MetricsRegistry is bound).
struct FaultStats {
  std::int64_t fault_events = 0;   ///< fail/drain/recover events applied
  std::int64_t late_arrivals = 0;  ///< structured kLateArrival rejections
  std::int64_t displaced = 0;      ///< VMs knocked off failed servers
  std::int64_t evacuated = 0;      ///< displaced VMs successfully re-placed
  std::int64_t deferred = 0;       ///< admissions into the retry queue
  std::int64_t retries = 0;        ///< retry attempts drained from the queue
  std::int64_t retried_placed = 0; ///< requests placed by a retry attempt
  std::int64_t rejected_final = 0; ///< terminal rejections (all causes)
  std::int64_t queue_full = 0;     ///< admissions bounced off a full queue
  std::int64_t downtime_units = 0; ///< Σ time units displaced VMs sat unserved
};

/// A late resolution of a request's hosting: evacuation re-placements,
/// retry placements, and displacements that never found a new home
/// (server == kNoServer). Applied in order over a submit-time assignment,
/// they yield the final hosting (sim/replay.cpp does exactly this).
struct Resolution {
  VmId vm = 0;
  ServerId server = kNoServer;
};

/// Restorable per-server occupancy (EngineStateSnapshot::servers).
struct ServerStateSnapshot {
  ServerHealth health = ServerHealth::kUp;
  /// Latest end among retired VMs — the rebuild sentinel endpoint; 0 = none.
  Time retired_hi = 0;
  /// Active VMs in placement order (restore replays them in this order).
  std::vector<VmSpec> active;
};

/// A retry-queue entry in restorable form (mirrors PendingRequest).
struct PendingSnapshot {
  VmSpec vm;
  Time not_before = 0;
  int attempts = 0;
  bool displaced = false;
  Time waiting_since = 0;
  std::uint64_t seq = 0;
};

/// The complete restorable state of a PlacementEngine, minus the two pieces
/// a restore supplies out-of-band: the policy (reconstructed by name with the
/// same seed, so begin() redraws its original probe order) and the Rng words
/// (Rng::set_state). Export on a live engine, import into a freshly
/// constructed one over the same fleet: the decision stream continues
/// byte-identically (tests/test_serve.cpp pins this against an
/// uninterrupted run). src/serve/snapshot.h is the durable serialization.
struct EngineStateSnapshot {
  Time frontier = 1;
  Time horizon = 0;
  std::vector<ServerStateSnapshot> servers;
  std::int64_t requests = 0;
  std::int64_t placed = 0;
  Energy energy = 0.0;
  std::size_t peak_resident = 0;
  std::size_t fault_cursor = 0;
  std::uint64_t retry_seq = 0;
  /// Sorted by (not_before, seq), exactly the live queue order.
  std::vector<PendingSnapshot> retry_queue;
  FaultStats fault_stats;
  std::vector<Resolution> resolutions;
};

/// Stateful streaming allocator: submit requests in non-decreasing
/// start-time order (enforced against the frontier), get a decision each.
class PlacementEngine {
 public:
  /// Binds `policy` (begin() is called here) to a fresh cluster. The policy
  /// and rng must outlive the engine; one policy instance drives one engine.
  PlacementEngine(std::vector<ServerSpec> servers, PlacementPolicy& policy,
                  Rng& rng, EngineOptions options = {});

  /// Places one request. If vm.start is already behind the frontier (its
  /// window may have been collected), throws std::invalid_argument — or,
  /// with EngineOptions::tolerate_late_arrivals, returns a kLateArrival
  /// rejection instead.
  PlacementDecision submit(const VmSpec& vm);

  /// Advances the frontier to `t`: fault events scheduled at or before `t`
  /// fire in order (each after the cluster is advanced to its instant, with
  /// earlier-due retries drained first), and the retry queue is drained up
  /// to `t`.
  void advance_to(Time t);

  /// End-of-stream drain: applies every remaining fault event and gives
  /// every queued retry its (bounded) remaining attempts, so no request is
  /// left in limbo. Idempotent.
  void finish_stream();

  /// Applies one fault event now — the daemon-driven counterpart of a
  /// FaultPlan bound at construction. Runs exactly the per-event block a
  /// plan-driven step_to runs (advance the cluster to event.at, fire retries
  /// due strictly before the instant, then the event), so a journaled fault
  /// replays byte-identically to the same event in a plan
  /// (tests/test_serve.cpp pins the equivalence). Throws
  /// std::invalid_argument on an out-of-fleet server or event.at < 1.
  void apply_fault(const FaultEvent& event);

  /// Early retirement of VM `vm` (client-requested teardown): if active,
  /// removes it from its host (ClusterState::retire_active) and returns the
  /// host; otherwise cancels any retry-queue entries carrying this id and
  /// returns kNoServer. Deterministic either way, so a journaled retire
  /// replays exactly.
  ServerId retire_vm(VmId vm);

  // --- restorable state (serve-daemon snapshots) ---------------------------

  /// Everything needed to continue this engine's decision stream in a fresh
  /// process (EngineStateSnapshot doc). Export at a quiescent point — not
  /// mid-submit.
  EngineStateSnapshot export_state() const;

  /// Restores an exported state into this engine. Call on a freshly
  /// constructed engine over the same fleet/policy/options, then restore the
  /// Rng via Rng::set_state — construction already re-ran policy.begin()
  /// with the original seed, so the policy's own begin-time draws match.
  /// Throws std::invalid_argument on a fleet-size mismatch.
  void import_state(const EngineStateSnapshot& snap);

  const ClusterState& cluster() const { return cluster_; }
  /// Test/debug passthrough to ClusterState::set_eager_rebuild.
  void set_eager_rebuild(bool eager) { cluster_.set_eager_rebuild(eager); }

  std::int64_t requests() const { return requests_; }
  /// Requests hosted at submit time or via a later retry.
  std::int64_t placed() const { return placed_; }
  /// Telescoped incremental energy of all placements (plus migration energy
  /// of evacuations); 0 unless EngineOptions::account_energy.
  Energy total_energy() const { return energy_; }
  /// High-water mark of ClusterState::resident_time_units().
  std::size_t peak_resident_time_units() const { return peak_resident_; }

  const FaultStats& fault_stats() const { return faults_; }
  /// Post-submit hosting changes, in application order.
  const std::vector<Resolution>& resolutions() const { return resolutions_; }

  /// Forces a time-series sample at the current frontier, ignoring the
  /// sampler's cadence (end-of-stream final state). No-op without a sampler.
  void sample_now();

 private:
  struct PendingRequest {
    VmSpec vm;
    Time not_before = 0;      ///< earliest next attempt
    int attempts = 0;         ///< placement attempts so far
    bool displaced = false;   ///< evacuation (vs. fresh infeasible request)
    Time waiting_since = 0;   ///< displacement instant (downtime accounting)
    std::uint64_t seq = 0;    ///< admission order — the FIFO tiebreak
  };

  /// Advances the cluster to `t`, interleaving fault events and retry
  /// drains in deterministic time order.
  void step_to(Time t);
  void apply_event(const FaultEvent& event);
  void evacuate(VmSpec vm, Time now);
  /// Commits a policy decision (energy accounting + cluster placement).
  void commit(const PlacementDecision& decision, const VmSpec& vm,
              bool charge_migration);
  /// Queues the request for retry, or terminally rejects it. Returns the
  /// classification for the caller's decision.
  PlacementReject defer_or_reject(VmSpec vm, Time now, bool displaced,
                                  int attempts);
  void final_reject(const PendingRequest& pending);
  void drain_retries(Time now);
  void enqueue(PendingRequest pending);
  /// Samples at the frontier if the sampler's cadence is due.
  void maybe_sample();
  /// Unconditional sample at `t` (cluster state + engine counters).
  void take_sample(Time t);

  ClusterState cluster_;
  PlacementPolicy& policy_;
  Rng& rng_;
  EngineOptions options_;
  Timer* submit_timer_ = nullptr;
  Counter* request_counter_ = nullptr;
  Counter* late_counter_ = nullptr;
  Counter* evacuated_counter_ = nullptr;
  Counter* retry_counter_ = nullptr;
  Counter* rejected_final_counter_ = nullptr;
  Counter* downtime_counter_ = nullptr;
  std::int64_t requests_ = 0;
  std::int64_t placed_ = 0;
  Energy energy_ = 0.0;
  std::size_t peak_resident_ = 0;
  std::size_t fault_cursor_ = 0;
  std::uint64_t retry_seq_ = 0;
  /// Sorted by (not_before, seq); drained from the front.
  std::vector<PendingRequest> retry_queue_;
  FaultStats faults_;
  std::vector<Resolution> resolutions_;
};

/// Truncates a request to begin no earlier than `t` (profile prefix dropped,
/// peak demand recomputed). Returns `vm` unchanged when vm.start >= t.
/// Requires vm.end >= t.
VmSpec clip_to(VmSpec vm, Time t);

/// The historical batch contract as a stream driver: presents problem.vms in
/// `order` to a PlacementEngine over a fixed problem.horizon window and
/// collects the assignment. With the policy an allocator's make_policy()
/// returns, this *is* that allocator's allocate() — bit-identical to the
/// pre-streaming batch loops (tests/test_streaming.cpp).
/// `obs` flows into EngineOptions::obs so the engine's submit timer and
/// request counters record under the caller's registry (the Allocator
/// subclasses pass their own ObsContext; default = null sinks). `shard`
/// flows into EngineOptions::shard (the scan allocators pass
/// ScanConfig::shard_options(); the default is the unsharded layout).
Allocation run_batch(const ProblemInstance& problem, PlacementPolicy& policy,
                     VmOrder order, Rng& rng, const ObsContext& obs = {},
                     const ShardOptions& shard = {});

}  // namespace esva
