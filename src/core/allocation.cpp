#include "core/allocation.h"

#include <algorithm>
#include <cassert>

#include "core/power_model.h"
#include "core/segments.h"

namespace esva {

std::size_t Allocation::num_unallocated() const {
  return static_cast<std::size_t>(
      std::count(assignment.begin(), assignment.end(), kNoServer));
}

std::vector<std::vector<VmSpec>> vms_by_server(const ProblemInstance& problem,
                                               const Allocation& alloc) {
  assert(alloc.assignment.size() == problem.num_vms());
  std::vector<std::vector<VmSpec>> grouped(problem.num_servers());
  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const ServerId server = alloc.assignment[j];
    if (server == kNoServer) continue;
    assert(server >= 0 && static_cast<std::size_t>(server) < grouped.size());
    grouped[static_cast<std::size_t>(server)].push_back(problem.vms[j]);
  }
  return grouped;
}

CostReport evaluate_cost(const ProblemInstance& problem,
                         const Allocation& alloc, const CostOptions& opts) {
  CostReport report;
  report.per_server.resize(problem.num_servers(), 0.0);
  const auto grouped = vms_by_server(problem, alloc);
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    if (grouped[i].empty()) continue;
    const ServerSpec& server = problem.servers[i];
    CostBreakdown breakdown =
        structure_breakdown(busy_union(grouped[i]), server, opts);
    for (const VmSpec& vm : grouped[i]) breakdown.run += run_cost(server, vm);
    report.per_server[i] = breakdown.total();
    report.breakdown += breakdown;
    report.used_servers.push_back(static_cast<int>(i));
  }
  return report;
}

void trace_assignment(const ProblemInstance& problem, const Allocation& alloc,
                      TraceSink& sink, const CostOptions& opts) {
  assert(alloc.assignment.size() == problem.num_vms());
  std::vector<ServerTimeline> timelines =
      make_timelines(problem.servers, problem.horizon);
  ObsContext obs;
  obs.trace = &sink;
  for (std::size_t j : order_by_start(problem.vms)) {
    const VmSpec& vm = problem.vms[j];
    const ServerId server = alloc.assignment[j];
    DecisionBuilder decision(obs, "assignment", vm.id);
    if (server == kNoServer) {
      decision.commit(kNoServer);
      continue;
    }
    const auto i = static_cast<std::size_t>(server);
    const Energy delta = incremental_cost(timelines[i], vm, opts);
    decision.add_feasible(server, delta);
    decision.commit(server, delta);
    timelines[i].place(vm);
  }
}

std::string validate_allocation(const ProblemInstance& problem,
                                const Allocation& alloc,
                                bool require_complete) {
  if (alloc.assignment.size() != problem.num_vms())
    return "assignment size " + std::to_string(alloc.assignment.size()) +
           " != vm count " + std::to_string(problem.num_vms());

  for (std::size_t j = 0; j < problem.num_vms(); ++j) {
    const ServerId server = alloc.assignment[j];
    if (server == kNoServer) {
      if (require_complete)
        return "vm " + std::to_string(j) + " is unallocated";
      continue;
    }
    if (server < 0 || static_cast<std::size_t>(server) >= problem.num_servers())
      return "vm " + std::to_string(j) + " assigned to invalid server " +
             std::to_string(server);
  }

  // Capacity constraints (9)-(10): accumulate per-server usage over time via
  // difference arrays, then sweep.
  const auto grouped = vms_by_server(problem, alloc);
  const std::size_t t_len = static_cast<std::size_t>(problem.horizon) + 2;
  for (std::size_t i = 0; i < problem.num_servers(); ++i) {
    if (grouped[i].empty()) continue;
    std::vector<double> cpu_diff(t_len, 0.0);
    std::vector<double> mem_diff(t_len, 0.0);
    for (const VmSpec& vm : grouped[i]) {
      if (!vm.has_profile()) {
        cpu_diff[static_cast<std::size_t>(vm.start)] += vm.demand.cpu;
        cpu_diff[static_cast<std::size_t>(vm.end) + 1] -= vm.demand.cpu;
        mem_diff[static_cast<std::size_t>(vm.start)] += vm.demand.mem;
        mem_diff[static_cast<std::size_t>(vm.end) + 1] -= vm.demand.mem;
        continue;
      }
      for (Time t = vm.start; t <= vm.end; ++t) {
        const Resources r = vm.demand_at(t);
        cpu_diff[static_cast<std::size_t>(t)] += r.cpu;
        cpu_diff[static_cast<std::size_t>(t) + 1] -= r.cpu;
        mem_diff[static_cast<std::size_t>(t)] += r.mem;
        mem_diff[static_cast<std::size_t>(t) + 1] -= r.mem;
      }
    }
    double cpu_usage = 0.0;
    double mem_usage = 0.0;
    const ServerSpec& server = problem.servers[i];
    for (Time t = 1; t <= problem.horizon; ++t) {
      cpu_usage += cpu_diff[static_cast<std::size_t>(t)];
      mem_usage += mem_diff[static_cast<std::size_t>(t)];
      if (cpu_usage > server.capacity.cpu + kEps)
        return "server " + std::to_string(i) + " CPU over capacity at t=" +
               std::to_string(t);
      if (mem_usage > server.capacity.mem + kEps)
        return "server " + std::to_string(i) + " memory over capacity at t=" +
               std::to_string(t);
    }
  }
  return {};
}

}  // namespace esva
