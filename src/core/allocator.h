// Allocator interface shared by the paper's heuristic and all baselines.
//
// Allocators are *online in start-time order* (paper §III): they receive the
// full instance but commit to a server for each VM without revisiting earlier
// decisions (no migration — §V contrasts this problem with migration-based
// work). Stochastic allocators (FFPS's server shuffle, RandomFit) draw from
// the Rng passed to allocate(), keeping runs reproducible.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/problem.h"
#include "core/shard.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace esva {

class PlacementPolicy;  // core/streaming.h

/// Order in which VMs are presented to an allocator. The paper always uses
/// ByStartTime; the others exist for the ordering ablation
/// (bench/ablation_ordering).
enum class VmOrder {
  ByStartTime,     ///< increasing t^s (the paper's order)
  ByArrivalId,     ///< request id order (== arrival order for generated loads)
  ByDurationDesc,  ///< longest VM first (offline, bin-packing style)
  ByCpuDesc,       ///< largest CPU demand first (offline, FFD style)
};

std::string to_string(VmOrder order);

/// Indices of problem.vms in the given presentation order (deterministic;
/// ties broken by id).
std::vector<std::size_t> ordered_indices(const ProblemInstance& problem,
                                         VmOrder order);

/// Configuration of the candidate-scan engine (core/candidate_scan.h) shared
/// by the allocators that probe every server per VM. The defaults produce
/// the original serial, uncached loop's results exactly (the envelope triage
/// pass, on by default, only reorganizes where the quick_fit comparisons are
/// evaluated); every setting is proven bit-identical to every other
/// (tests/test_parallel_scan.cpp, tests/test_envelope_scan.cpp,
/// docs/PERFORMANCE.md).
struct ScanConfig {
  /// Worker threads per scan: 1 = serial (default), 0 = hardware
  /// concurrency, N > 1 = exactly N. Results are identical at any count.
  int threads = 1;
  /// Shape-keyed memoization of feasibility + score per server, invalidated
  /// by the timeline epoch. Off by default: it pays off only on workloads
  /// where (CPU, MEM, interval) shapes repeat (docs/PERFORMANCE.md).
  bool cache = false;
  /// Probes the cache memo must have answered (hits + misses; quick-decided
  /// probes don't count) before the observed hit rate is judged once against
  /// `cache_min_hit_rate`. Evaluated between scans, so the verdict is
  /// deterministic at any thread count.
  int cache_warmup_probes = 1024;
  /// Hit-rate floor below which the cache auto-disables after warmup: the
  /// remaining scans run uncached (decisions unchanged — the cache is
  /// transparent — only the bookkeeping overhead disappears).
  double cache_min_hit_rate = 0.05;
  /// SoA envelope triage (core/envelope_store.h): classify every server with
  /// one contiguous sweep over packed envelope rows before the arg-min scan
  /// touches any timeline. Verdicts are bit-for-bit
  /// ServerTimeline::quick_fit's, so results are identical on or off at any
  /// thread count (fuzzed in tests/test_envelope_scan.cpp) — on by default
  /// as a pure memory-layout optimization; off mainly for A/B timing
  /// (bench's envelope gate, `--no-envelope`).
  bool envelope = true;
  /// Fleet sharding (core/shard.h): the cluster is partitioned into this
  /// many contiguous shard blocks and the scan sweeps them concurrently as a
  /// two-level arg-min (envelope triage per shard block, then a
  /// lexicographic (score, index) merge). 1 (default) keeps the historical
  /// single-level chunked scan. Assignments are byte-identical at any shard
  /// count (tests/test_sharded_scan.cpp).
  int shards = 1;
  /// Shard-assignment strategy; a pure layout knob (docs/PERFORMANCE.md).
  ShardBy shard_by = ShardBy::kContiguous;

  /// `threads` with 0 resolved to the hardware concurrency (at least 1).
  int resolved_threads() const;
  /// The sharding subset of this config, as ClusterState's partition input.
  ShardOptions shard_options() const { return ShardOptions{shards, shard_by}; }
};

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Short stable name used in reports ("min-incremental", "ffps", ...).
  virtual std::string name() const = 0;

  /// Produces an assignment for every VM (kNoServer where infeasible).
  virtual Allocation allocate(const ProblemInstance& problem, Rng& rng) = 0;

  /// Streaming counterpart of allocate(): a fresh per-request policy
  /// (core/streaming.h) bound to the allocator's current options and
  /// observability context. For every allocator that overrides this,
  /// allocate() is implemented as "sort by start time, feed the stream" over
  /// exactly this policy, so the batch and streaming paths cannot drift
  /// (tests/test_streaming.cpp). Returns null for inherently batch
  /// allocators (the ext lookahead/reoptimization passes).
  virtual std::unique_ptr<PlacementPolicy> make_policy() const;

  /// Configures the candidate-scan engine for allocators built on it
  /// (min-incremental, best-fit-cpu, lowest-idle-power, dot-product-fit).
  /// Default: no-op — allocators without an exhaustive scan (ffps,
  /// random-fit) ignore it.
  virtual void set_scan_config(const ScanConfig& /*config*/) {}

  /// Observability hook shared by every allocator (obs/trace.h): a trace
  /// sink receiving one VmDecisionTrace per VM, and a metrics registry for
  /// timers/counters. The default (null) context must impose no measurable
  /// overhead on allocate() — implementations only take the diagnostic path
  /// (check_fit, per-candidate deltas) when obs().tracing().
  void set_observability(const ObsContext& obs) { obs_ = obs; }
  const ObsContext& obs() const { return obs_; }

 protected:
  ObsContext obs_;
};

using AllocatorPtr = std::unique_ptr<Allocator>;

class Timer;

/// The "allocator.<name>.allocate_ms" timer, or null when `metrics` is null —
/// feed it to a ScopedTimer around the allocation loop.
Timer* allocate_timer(MetricsRegistry* metrics, const std::string& allocator);

/// Flushes the standard per-allocate counters ("allocator.<name>.vms",
/// ".feasible_candidates", ".rejections", ".unallocated"). No-op when
/// `metrics` is null.
void record_allocation_metrics(MetricsRegistry* metrics,
                               const std::string& allocator, std::size_t vms,
                               std::int64_t feasible_candidates,
                               std::int64_t rejections,
                               std::size_t unallocated);

/// Flushes the scan-cache counters ("allocator.<name>.cache_hits",
/// ".cache_misses", ".cache_quick_decided", and ".cache_auto_disabled",
/// the latter 1 when the warmup hit-rate check switched the cache off).
/// Call only when the cache ran (ScanConfig::cache), so cache-less runs
/// don't emit zero-valued counters; no-op when `metrics` is null.
void record_scan_cache_metrics(MetricsRegistry* metrics,
                               const std::string& allocator,
                               std::int64_t cache_hits,
                               std::int64_t cache_misses,
                               std::int64_t cache_quick_decided,
                               bool cache_auto_disabled);

}  // namespace esva
