// Allocator interface shared by the paper's heuristic and all baselines.
//
// Allocators are *online in start-time order* (paper §III): they receive the
// full instance but commit to a server for each VM without revisiting earlier
// decisions (no migration — §V contrasts this problem with migration-based
// work). Stochastic allocators (FFPS's server shuffle, RandomFit) draw from
// the Rng passed to allocate(), keeping runs reproducible.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/allocation.h"
#include "core/problem.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace esva {

/// Order in which VMs are presented to an allocator. The paper always uses
/// ByStartTime; the others exist for the ordering ablation
/// (bench/ablation_ordering).
enum class VmOrder {
  ByStartTime,     ///< increasing t^s (the paper's order)
  ByArrivalId,     ///< request id order (== arrival order for generated loads)
  ByDurationDesc,  ///< longest VM first (offline, bin-packing style)
  ByCpuDesc,       ///< largest CPU demand first (offline, FFD style)
};

std::string to_string(VmOrder order);

/// Indices of problem.vms in the given presentation order (deterministic;
/// ties broken by id).
std::vector<std::size_t> ordered_indices(const ProblemInstance& problem,
                                         VmOrder order);

class Allocator {
 public:
  virtual ~Allocator() = default;

  /// Short stable name used in reports ("min-incremental", "ffps", ...).
  virtual std::string name() const = 0;

  /// Produces an assignment for every VM (kNoServer where infeasible).
  virtual Allocation allocate(const ProblemInstance& problem, Rng& rng) = 0;

  /// Observability hook shared by every allocator (obs/trace.h): a trace
  /// sink receiving one VmDecisionTrace per VM, and a metrics registry for
  /// timers/counters. The default (null) context must impose no measurable
  /// overhead on allocate() — implementations only take the diagnostic path
  /// (check_fit, per-candidate deltas) when obs().tracing().
  void set_observability(const ObsContext& obs) { obs_ = obs; }
  const ObsContext& obs() const { return obs_; }

 protected:
  ObsContext obs_;
};

using AllocatorPtr = std::unique_ptr<Allocator>;

class Timer;

/// The "allocator.<name>.allocate_ms" timer, or null when `metrics` is null —
/// feed it to a ScopedTimer around the allocation loop.
Timer* allocate_timer(MetricsRegistry* metrics, const std::string& allocator);

/// Flushes the standard per-allocate counters ("allocator.<name>.vms",
/// ".feasible_candidates", ".rejections", ".unallocated"). No-op when
/// `metrics` is null.
void record_allocation_metrics(MetricsRegistry* metrics,
                               const std::string& allocator, std::size_t vms,
                               std::int64_t feasible_candidates,
                               std::int64_t rejections,
                               std::size_t unallocated);

}  // namespace esva
