#include "core/fault_plan.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/csv.h"
#include "util/parse.h"

namespace esva {

namespace {

[[noreturn]] void fail_line(std::size_t line, const std::string& message) {
  throw std::runtime_error("fault plan line " + std::to_string(line) + ": " +
                           message);
}

std::string line_context(std::size_t line) {
  return "fault plan line " + std::to_string(line);
}

FaultKind parse_kind(const std::string& field, std::size_t line) {
  if (field == "fail") return FaultKind::kFail;
  if (field == "drain") return FaultKind::kDrain;
  if (field == "recover") return FaultKind::kRecover;
  fail_line(line, "unknown event '" + field + "' (fail|drain|recover)");
}

}  // namespace

std::string to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kFail:
      return "fail";
    case FaultKind::kDrain:
      return "drain";
    case FaultKind::kRecover:
      return "recover";
  }
  return "?";
}

FaultPlan::FaultPlan(std::vector<FaultEvent> events)
    : events_(std::move(events)) {
  std::stable_sort(
      events_.begin(), events_.end(),
      [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
}

void FaultPlan::validate(std::size_t num_servers) const {
  for (const FaultEvent& e : events_) {
    if (e.at < 1)
      throw std::invalid_argument("fault plan: event at time " +
                                  std::to_string(e.at) + " precedes time 1");
    if (e.server < 0 ||
        static_cast<std::size_t>(e.server) >= num_servers)
      throw std::invalid_argument(
          "fault plan: server " + std::to_string(e.server) +
          " outside the fleet of " + std::to_string(num_servers));
  }
}

void write_fault_plan(std::ostream& out, const FaultPlan& plan) {
  CsvWriter csv(out);
  csv.row({"time", "event", "server"});
  for (const FaultEvent& e : plan.events())
    csv.typed_row(static_cast<int>(e.at), to_string(e.kind), e.server);
}

FaultPlan read_fault_plan(std::istream& in) {
  const auto rows = read_csv(in);
  if (rows.empty()) throw std::runtime_error("fault plan: empty file");
  std::vector<FaultEvent> events;
  for (std::size_t r = 1; r < rows.size(); ++r) {  // rows[0] is the header
    const auto& row = rows[r];
    const std::size_t line = r + 1;
    if (row.size() != 3) fail_line(line, "expected 3 columns");
    FaultEvent e;
    // parse_field_as range-checks the narrowing into Time/ServerId: an
    // overflowing field is a structured parse error, never a silent
    // truncation or an uncaught std::out_of_range (util/parse.h).
    e.at = parse_field_as<Time>(row[0], line_context(line));
    e.kind = parse_kind(row[1], line);
    e.server = parse_field_as<ServerId>(row[2], line_context(line));
    if (e.at < 1) fail_line(line, "event time must be >= 1");
    if (e.server < 0) fail_line(line, "server id must be >= 0");
    events.push_back(e);
  }
  return FaultPlan(std::move(events));
}

void save_fault_plan(const std::string& path, const FaultPlan& plan) {
  std::ofstream file(path);
  if (!file)
    throw std::runtime_error("cannot open fault plan '" + path + "'");
  write_fault_plan(file, plan);
}

FaultPlan load_fault_plan(const std::string& path) {
  std::ifstream file(path);
  if (!file)
    throw std::runtime_error("cannot open fault plan '" + path + "'");
  return read_fault_plan(file);
}

FaultPlan random_fault_plan(const ChaosConfig& config, Rng& rng) {
  std::vector<FaultEvent> events;
  events.reserve(static_cast<std::size_t>(config.failures) * 2);
  for (int k = 0; k < config.failures; ++k) {
    FaultEvent fail;
    fail.at = static_cast<Time>(
        rng.uniform_int(config.window_lo, config.window_hi));
    fail.kind = FaultKind::kFail;
    fail.server =
        static_cast<ServerId>(rng.index(std::max<std::size_t>(1, config.num_servers)));
    events.push_back(fail);

    FaultEvent recover = fail;
    recover.kind = FaultKind::kRecover;
    const double repair =
        std::max(1.0, std::round(rng.exponential(
                          static_cast<double>(config.mean_repair))));
    recover.at = fail.at + static_cast<Time>(repair);
    events.push_back(recover);
  }
  return FaultPlan(std::move(events));
}

}  // namespace esva
