// Differential fuzz harness for the sharded fleet scan (core/shard.h +
// core/candidate_scan.h): partitioning the fleet into contiguous shard
// blocks — and sweeping them concurrently — is a pure layout/parallelism
// knob. Every scan-based allocator's assignment must stay *byte-identical*
// to the unsharded serial scan at any shard count, any strategy, any thread
// count, cache on or off, under faults or not.
//
// Four layers of evidence:
//   1. partition-level: FleetPartition structural invariants
//      (debug_validate), clamping, determinism across rebuilds, and the
//      per-strategy grouping semantics (type cohesion, band monotonicity,
//      contiguous identity);
//   2. store-level: the permuted EnvelopeStore reset mirrors
//      timelines[original_of[r]] per row, and the block-ranged classify
//      writes exactly [lo, hi) with the same verdicts as the full sweep;
//   3. end-to-end identity: full allocations and chaos replays, sharded vs
//      unsharded — assignments, energies, and fault counters match exactly
//      across allocators × strategies × shard counts × threads × cache;
//   4. isolation: a fault (or placement) in shard A advances only shard A's
//      epoch — shard B's ClusterState::shard_epoch and envelope rows are
//      untouched — and multi-shard fleet samples slice the totals exactly.
//
// ESVA_FUZZ_QUICK=1 (set by ctest in Debug CI; see tests/CMakeLists.txt)
// shrinks the sweep widths so sanitizer jobs fit their time budget. The
// properties checked are identical in both modes.

#include "core/shard.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <numeric>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "cluster/datacenter.h"
#include "cluster/timeline.h"
#include "core/allocation.h"
#include "core/candidate_scan.h"
#include "core/envelope_store.h"
#include "core/fault_plan.h"
#include "core/streaming.h"
#include "obs/timeseries.h"
#include "sim/replay.h"
#include "test_util.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/generator.h"

namespace esva {
namespace {

/// True when ESVA_FUZZ_QUICK is set to anything non-empty except "0" (the
/// Debug-CI and sanitizer budget; tests/CMakeLists.txt wires it through
/// ctest). Only sweep widths shrink; the properties are identical.
bool fuzz_quick() {
  const char* env = std::getenv("ESVA_FUZZ_QUICK");
  return env != nullptr && *env != '\0' && std::string(env) != "0";
}

constexpr int kNumVms = 220;
constexpr int kNumServers = 44;

const std::vector<ShardBy>& all_strategies() {
  static const std::vector<ShardBy> kAll = {ShardBy::kContiguous,
                                            ShardBy::kType, ShardBy::kBand,
                                            ShardBy::kHash};
  return kAll;
}

const std::vector<std::string>& scan_allocators() {
  static const std::vector<std::string> kNames = {
      "min-incremental", "best-fit-cpu", "lowest-idle-power",
      "dot-product-fit"};
  return kNames;
}

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

ProblemInstance stable_instance(std::uint64_t seed) {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  Rng rng(seed);
  return make_problem(generate_workload(config, rng), make_fleet(kNumServers));
}

// --- layer 1: FleetPartition structure, clamping, determinism ---------------

TEST(FleetPartitionTest, InvariantsHoldAcrossStrategiesAndCounts) {
  const std::vector<int> fleet_sizes =
      fuzz_quick() ? std::vector<int>{1, 44} : std::vector<int>{1, 3, 44, 131};
  for (const int n : fleet_sizes) {
    const std::vector<ServerSpec> fleet = make_fleet(n);
    for (const ShardBy by : all_strategies()) {
      for (const int shards : {1, 2, 4, 16, 64}) {
        const FleetPartition partition(fleet, ShardOptions{shards, by});
        ASSERT_TRUE(partition.debug_validate())
            << "n=" << n << " by=" << to_string(by) << " shards=" << shards;
        EXPECT_EQ(partition.num_servers(), static_cast<std::size_t>(n));
        // Clamped to [1, n].
        EXPECT_GE(partition.num_shards(), 1u);
        EXPECT_LE(partition.num_shards(),
                  static_cast<std::size_t>(std::min(shards, n)));
        // Blocks tile [0, n) and every member maps into its block.
        EXPECT_EQ(partition.shard_begin(0), 0u);
        EXPECT_EQ(partition.shard_end(partition.num_shards() - 1),
                  static_cast<std::size_t>(n));
        for (std::size_t i = 0; i < partition.num_servers(); ++i) {
          const std::size_t s = partition.shard_of(i);
          const std::size_t r = partition.storage_of(i);
          EXPECT_GE(r, partition.shard_begin(s));
          EXPECT_LT(r, partition.shard_end(s));
          EXPECT_EQ(partition.original_of()[r], i);
        }
      }
    }
  }
}

TEST(FleetPartitionTest, ShardCountFloorsAtOne) {
  const std::vector<ServerSpec> fleet = make_fleet(8);
  for (const int shards : {-3, 0, 1}) {
    const FleetPartition partition(fleet,
                                   ShardOptions{shards, ShardBy::kHash});
    EXPECT_EQ(partition.num_shards(), 1u) << shards;
    // A single shard is always the identity layout, regardless of strategy.
    EXPECT_TRUE(partition.identity()) << shards;
  }
}

TEST(FleetPartitionTest, DeterministicAcrossRebuilds) {
  const std::vector<ServerSpec> fleet = make_fleet(37);
  for (const ShardBy by : all_strategies()) {
    const ShardOptions options{5, by};
    const FleetPartition a(fleet, options);
    const FleetPartition b(fleet, options);
    ASSERT_EQ(a.num_shards(), b.num_shards()) << to_string(by);
    EXPECT_EQ(a.original_of(), b.original_of()) << to_string(by);
    for (std::size_t i = 0; i < a.num_servers(); ++i) {
      ASSERT_EQ(a.shard_of(i), b.shard_of(i)) << to_string(by) << " " << i;
    }
  }
}

TEST(FleetPartitionTest, ContiguousIsIdentityAndBalanced) {
  const FleetPartition partition(make_fleet(10),
                                 ShardOptions{4, ShardBy::kContiguous});
  EXPECT_TRUE(partition.identity());
  ASSERT_EQ(partition.num_shards(), 4u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(partition.storage_of(i), i);
    // Balanced index ranges: floor(i * shards / n) is non-decreasing.
    EXPECT_EQ(partition.shard_of(i), i * 4 / 10);
  }
  // Block sizes differ by at most one.
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    const std::size_t size = partition.shard_end(s) - partition.shard_begin(s);
    EXPECT_GE(size, 2u);
    EXPECT_LE(size, 3u);
  }
}

TEST(FleetPartitionTest, TypeStrategyKeepsEachTypeInOneShard) {
  const std::vector<ServerSpec> fleet = make_fleet(kNumServers);
  const FleetPartition partition(fleet, ShardOptions{3, ShardBy::kType});
  ASSERT_TRUE(partition.debug_validate());
  // Servers sharing a catalog type never straddle shards.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = i + 1; j < fleet.size(); ++j) {
      if (fleet[i].type_name == fleet[j].type_name) {
        EXPECT_EQ(partition.shard_of(i), partition.shard_of(j))
            << fleet[i].type_name;
      }
    }
  }
}

TEST(FleetPartitionTest, BandStrategyOrdersShardsByUnitRunPower) {
  const std::vector<ServerSpec> fleet = make_fleet(kNumServers);
  const FleetPartition partition(fleet, ShardOptions{4, ShardBy::kBand});
  ASSERT_TRUE(partition.debug_validate());
  // A more power-efficient server (lower marginal run power per CPU unit)
  // never lands in a higher band than a less efficient one.
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    for (std::size_t j = 0; j < fleet.size(); ++j) {
      if (fleet[i].unit_run_power() < fleet[j].unit_run_power()) {
        EXPECT_LE(partition.shard_of(i), partition.shard_of(j)) << i << " " << j;
      }
    }
  }
}

TEST(FleetPartitionTest, HashStrategyPermutesButStaysStableWithinBlocks) {
  const FleetPartition partition(make_fleet(kNumServers),
                                 ShardOptions{8, ShardBy::kHash});
  ASSERT_TRUE(partition.debug_validate());
  EXPECT_FALSE(partition.identity());
  // Within each block, original indices ascend — the stability property the
  // deterministic merge depends on.
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    for (std::size_t r = partition.shard_begin(s) + 1;
         r < partition.shard_end(s); ++r) {
      EXPECT_LT(partition.original_of()[r - 1], partition.original_of()[r]);
    }
  }
}

TEST(ShardByTest, ParseRoundTripsAndRejectsUnknown) {
  for (const ShardBy by : all_strategies()) {
    ShardBy parsed = ShardBy::kHash;
    ASSERT_TRUE(parse_shard_by(to_string(by), &parsed)) << to_string(by);
    EXPECT_EQ(parsed, by);
  }
  ShardBy untouched = ShardBy::kBand;
  EXPECT_FALSE(parse_shard_by("zone", &untouched));
  EXPECT_FALSE(parse_shard_by("", &untouched));
  EXPECT_EQ(untouched, ShardBy::kBand);
}

// --- layer 2: permuted envelope rows and block-ranged classify --------------

TEST(ShardedEnvelopeTest, PermutedResetMirrorsTimelinesPerRow) {
  const std::vector<ServerSpec> fleet = make_fleet(12);
  const FleetPartition partition(fleet, ShardOptions{4, ShardBy::kHash});
  std::vector<ServerTimeline> timelines;
  for (const ServerSpec& spec : fleet) timelines.emplace_back(spec, 80);
  timelines[3].place(testing::vm(1, 5, 20, 2.0, 2.0));
  timelines[9].place(testing::vm(2, 10, 40, 1.0, 3.0));

  EnvelopeStore store;
  store.reset(timelines, partition.original_of());
  ASSERT_TRUE(store.debug_validate(timelines, partition.original_of()));
  // The identity overload must reject the permuted layout (and vice versa,
  // validated below after a refresh) — the validator discriminates.
  EXPECT_FALSE(store.debug_validate(timelines));

  // Refresh flows through the *storage* row: mutate a timeline, refresh at
  // storage_of, and the permuted validator passes again.
  timelines[9].place(testing::vm(3, 15, 25, 0.5, 0.5));
  EXPECT_FALSE(store.debug_validate(timelines, partition.original_of()));
  store.refresh(partition.storage_of(9), timelines[9]);
  EXPECT_TRUE(store.debug_validate(timelines, partition.original_of()));
}

TEST(ShardedEnvelopeTest, BlockClassifyMatchesFullSweepAndWritesOnlyItsRange) {
  const std::vector<ServerSpec> fleet = make_fleet(kNumServers);
  const FleetPartition partition(fleet, ShardOptions{5, ShardBy::kBand});
  std::vector<ServerTimeline> timelines;
  for (const ServerSpec& spec : fleet) timelines.emplace_back(spec, 120);
  Rng rng(42);
  for (int k = 0; k < 40; ++k) {
    const std::size_t i = rng.index(timelines.size());
    const Time start = static_cast<Time>(rng.uniform_int(1, 80));
    const VmSpec vm =
        testing::vm(100 + k, start, start + static_cast<Time>(rng.uniform_int(1, 30)),
                    rng.uniform_double(0.1, 4.0), rng.uniform_double(0.1, 4.0));
    if (timelines[i].can_fit(vm)) timelines[i].place(vm);
  }
  EnvelopeStore store;
  store.reset(timelines, partition.original_of());

  const VmSpec probe_vm = testing::vm(9000, 30, 55, 2.0, 2.0);
  const EnvelopeStore::Probe probe = EnvelopeStore::probe_of(probe_vm);
  std::vector<std::uint8_t> full(timelines.size());
  store.classify(probe, full.data());

  constexpr std::uint8_t kSentinel = 0xCD;
  std::vector<std::uint8_t> blocked(timelines.size(), kSentinel);
  for (std::size_t s = 0; s < partition.num_shards(); ++s) {
    std::vector<std::uint8_t> scratch(timelines.size(), kSentinel);
    store.classify(probe, partition.shard_begin(s), partition.shard_end(s),
                   scratch.data());
    for (std::size_t r = 0; r < timelines.size(); ++r) {
      const bool inside =
          r >= partition.shard_begin(s) && r < partition.shard_end(s);
      if (inside) {
        EXPECT_EQ(scratch[r], full[r]) << "shard " << s << " row " << r;
        blocked[r] = scratch[r];
      } else {
        // Rows outside [lo, hi) are untouched — the race-freedom contract of
        // concurrent per-shard sweeps into one shared verdict buffer.
        EXPECT_EQ(scratch[r], kSentinel) << "shard " << s << " row " << r;
      }
    }
  }
  EXPECT_EQ(blocked, full);  // the blocks tile the fleet exactly
}

// --- layer 3: end-to-end byte identity, sharded vs unsharded ----------------

Allocation run_alloc(const std::string& name, const ProblemInstance& problem,
                     int threads, bool cache, int shards, ShardBy by) {
  AllocatorPtr allocator = make_allocator(name);
  ScanConfig scan;
  scan.threads = threads;
  scan.cache = cache;
  scan.shards = shards;
  scan.shard_by = by;
  allocator->set_scan_config(scan);
  Rng rng(7);
  return allocator->allocate(problem, rng);
}

TEST(ShardedDifferential, ByteIdenticalAcrossStrategiesShardsThreadsCache) {
  const std::vector<std::string> names =
      fuzz_quick()
          ? std::vector<std::string>{"min-incremental", "lowest-idle-power"}
          : scan_allocators();
  const std::vector<ShardBy> strategies =
      fuzz_quick()
          ? std::vector<ShardBy>{ShardBy::kContiguous, ShardBy::kHash}
          : all_strategies();
  const std::vector<int> shard_counts =
      fuzz_quick() ? std::vector<int>{4, 64} : std::vector<int>{4, 16, 64};
  const std::vector<int> thread_counts =
      fuzz_quick() ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 8};
  const ProblemInstance problem = stable_instance(23);
  for (const std::string& name : names) {
    // The reference: unsharded, serial, uncached — the historical scan.
    const Allocation reference = run_alloc(name, problem, /*threads=*/1,
                                           /*cache=*/false, /*shards=*/1,
                                           ShardBy::kContiguous);
    // Every strategy at every shard count reproduces it (serial sweep).
    for (const ShardBy by : strategies) {
      for (const int shards : shard_counts) {
        const Allocation sharded =
            run_alloc(name, problem, 1, false, shards, by);
        ASSERT_EQ(reference.assignment, sharded.assignment)
            << name << " by=" << to_string(by) << " shards=" << shards;
      }
    }
    // The concurrent sweep and the scan cache change nothing either, even
    // composed with the worst-case (non-identity) permutation.
    for (const int threads : thread_counts) {
      for (const bool cache : {false, true}) {
        const Allocation sharded =
            run_alloc(name, problem, threads, cache, 16, ShardBy::kHash);
        ASSERT_EQ(reference.assignment, sharded.assignment)
            << name << " threads=" << threads << " cache=" << cache;
      }
    }
    // Same double bits in, same bits out: energies match exactly.
    EXPECT_EQ(evaluate_cost(problem, reference).total(),
              evaluate_cost(problem,
                            run_alloc(name, problem, 4, true, 64, ShardBy::kType))
                  .total())
        << name;
  }
}

ReplayReport replay_chaos(const std::string& name,
                          const ProblemInstance& problem,
                          const FaultPlan& plan, int shards, ShardBy by,
                          int threads) {
  AllocatorPtr allocator = make_allocator(name);
  ScanConfig scan;
  scan.threads = threads;
  scan.shards = shards;
  scan.shard_by = by;
  allocator->set_scan_config(scan);
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  EXPECT_NE(policy, nullptr) << name;
  Rng rng(7);
  VectorArrivalStream arrivals(problem.vms);
  ReplayOptions options;
  options.faults = &plan;
  options.retry.max_attempts = 3;
  options.shard = scan.shard_options();
  return replay_stream(arrivals, problem.servers, *policy, rng, options);
}

// Chaos stream: failures stub timelines, recoveries rebuild them, retries
// interleave extra scans, rolling GC permutes rebuild timing — the sharded
// sweep must track every transition, so assignments, energies, and every
// fault counter match the unsharded replay exactly.
TEST(ShardedDifferential, ChaosReplayByteIdentical) {
  const ProblemInstance problem = stable_instance(31);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 6;
  chaos.window_lo = 5;
  chaos.window_hi = 200;
  chaos.mean_repair = 40;
  Rng plan_rng(101);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);
  const std::vector<std::string> names =
      fuzz_quick()
          ? std::vector<std::string>{"min-incremental"}
          : std::vector<std::string>{"min-incremental", "lowest-idle-power"};
  for (const std::string& name : names) {
    const ReplayReport reference =
        replay_chaos(name, problem, plan, 1, ShardBy::kContiguous, 1);
    EXPECT_GT(reference.faults.fault_events, 0) << name;
    for (const auto& [shards, by, threads] :
         {std::tuple{8, ShardBy::kHash, 1}, std::tuple{8, ShardBy::kHash, 4},
          std::tuple{16, ShardBy::kBand, 4}}) {
      const ReplayReport sharded =
          replay_chaos(name, problem, plan, shards, by, threads);
      ASSERT_EQ(reference.assignment, sharded.assignment)
          << name << " shards=" << shards << " by=" << to_string(by)
          << " threads=" << threads;
      EXPECT_EQ(reference.total_energy, sharded.total_energy) << name;
      EXPECT_EQ(reference.placed, sharded.placed) << name;
      EXPECT_EQ(reference.rejected, sharded.rejected) << name;
      EXPECT_EQ(reference.faults.displaced, sharded.faults.displaced) << name;
      EXPECT_EQ(reference.faults.evacuated, sharded.faults.evacuated) << name;
      EXPECT_EQ(reference.faults.retries, sharded.faults.retries) << name;
      EXPECT_EQ(reference.faults.rejected_final, sharded.faults.rejected_final)
          << name;
      EXPECT_EQ(reference.faults.downtime_units, sharded.faults.downtime_units)
          << name;
    }
  }
}

// --- layer 4: shard isolation and per-shard sampling ------------------------

// A fault (or any per-server mutation) in shard A advances only shard A's
// epoch: shard B's ClusterState::shard_epoch and its envelope rows are
// byte-untouched. ensure_horizon is the documented exception (it rebuilds
// every placeable timeline), so the horizon is grown once up front.
TEST(ShardIsolation, FaultInOneShardLeavesOtherShardsUntouched) {
  ClusterState cluster(make_fleet(16), /*initial_horizon=*/0,
                       ShardOptions{4, ShardBy::kContiguous});
  const FleetPartition& partition = cluster.partition();
  ASSERT_EQ(partition.num_shards(), 4u);
  cluster.ensure_horizon(300);  // pre-grow: no horizon growth below

  const auto epochs = [&] {
    std::vector<std::uint64_t> out;
    for (std::size_t s = 0; s < partition.num_shards(); ++s)
      out.push_back(cluster.shard_epoch(s));
    return out;
  };
  const auto row_epochs = [&] {
    std::vector<std::uint64_t> out;
    for (std::size_t r = 0; r < cluster.num_servers(); ++r)
      out.push_back(cluster.envelopes().epoch(r));
    return out;
  };
  const auto expect_only = [&](std::size_t touched_shard,
                               const std::vector<std::uint64_t>& before,
                               const char* when) {
    const std::vector<std::uint64_t> after = epochs();
    for (std::size_t s = 0; s < partition.num_shards(); ++s) {
      if (s == touched_shard) {
        EXPECT_GT(after[s], before[s]) << when << " shard " << s;
      } else {
        EXPECT_EQ(after[s], before[s]) << when << " shard " << s;
      }
    }
  };

  // Pick a victim in shard 1 and a witness row set covering every other
  // shard's envelope rows.
  std::size_t victim = 0;
  while (partition.shard_of(victim) != 1) ++victim;

  // place: only the victim's shard moves.
  std::vector<std::uint64_t> before = epochs();
  std::vector<std::uint64_t> rows_before = row_epochs();
  const VmSpec vm = testing::vm(1, 5, 30, 1.0, 1.0);
  ASSERT_TRUE(cluster.timelines()[victim].can_fit(vm));
  cluster.place(victim, vm);
  expect_only(1, before, "place");

  // fail: displaces the VM, stubs the timeline — still shard-local.
  before = epochs();
  const std::vector<VmSpec> displaced = cluster.fail_server(victim);
  EXPECT_EQ(displaced.size(), 1u);
  expect_only(1, before, "fail_server");

  // recover: rebuilds the one timeline — still shard-local.
  before = epochs();
  cluster.recover_server(victim);
  expect_only(1, before, "recover_server");

  // drain: stubs without displacement — still shard-local.
  before = epochs();
  cluster.drain_server(victim);
  expect_only(1, before, "drain_server");

  // Envelope rows outside shard 1's block never saw a refresh.
  const std::vector<std::uint64_t> rows_after = row_epochs();
  for (std::size_t r = 0; r < cluster.num_servers(); ++r) {
    const bool in_shard_1 =
        r >= partition.shard_begin(1) && r < partition.shard_end(1);
    if (!in_shard_1) {
      EXPECT_EQ(rows_after[r], rows_before[r]) << "row " << r;
    }
  }
  ASSERT_TRUE(cluster.envelopes().debug_validate(cluster.timelines(),
                                                 partition.original_of()));
}

// sample(t) on a multi-shard cluster slices the fleet totals exactly: per-
// shard counts and power sum back to the fleet-wide fields, and the slices
// land in the right shard.
TEST(ShardIsolation, FleetSampleSlicesTotalsPerShard) {
  ClusterState cluster(make_fleet(12), /*initial_horizon=*/100,
                       ShardOptions{3, ShardBy::kContiguous});
  const VmSpec a = testing::vm(1, 2, 40, 1.0, 1.0);   // server 0 -> shard 0
  const VmSpec b = testing::vm(2, 2, 40, 2.0, 1.0);   // server 5 -> shard 1
  ASSERT_TRUE(cluster.timelines()[0].can_fit(a));
  ASSERT_TRUE(cluster.timelines()[5].can_fit(b));
  cluster.place(0, a);
  cluster.place(5, b);

  const FleetSample sample = cluster.sample(/*t=*/10);
  ASSERT_EQ(sample.shards.size(), 3u);
  std::uint32_t active = 0, busy = 0, idle = 0;
  double power = 0.0;
  for (const ShardLoad& shard : sample.shards) {
    active += shard.active_vms;
    busy += shard.busy_servers;
    idle += shard.idle_servers;
    power += shard.power_w;
  }
  EXPECT_EQ(active, sample.active_vms);
  EXPECT_EQ(busy, sample.busy_servers);
  EXPECT_EQ(idle, sample.idle_servers);
  EXPECT_DOUBLE_EQ(power, sample.total_power_w);
  EXPECT_EQ(sample.shards[0].active_vms, 1u);
  EXPECT_EQ(sample.shards[1].active_vms, 1u);
  EXPECT_EQ(sample.shards[2].active_vms, 0u);
  EXPECT_EQ(sample.shards[2].power_w, 0.0);

  // An unsharded cluster leaves the per-shard vector empty (CSV/JSONL schema
  // stability for existing consumers).
  ClusterState flat(make_fleet(4), /*initial_horizon=*/50);
  EXPECT_TRUE(flat.sample(5).shards.empty());
}

}  // namespace
}  // namespace esva
