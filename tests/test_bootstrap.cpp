#include "stats/bootstrap.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace esva {
namespace {

TEST(Bootstrap, EmptySampleIsInvalid) {
  Rng rng(1);
  EXPECT_FALSE(bootstrap_mean({}, rng).valid);
}

TEST(Bootstrap, PointEstimateIsSampleMean) {
  Rng rng(2);
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const BootstrapInterval ci = bootstrap_mean(xs, rng);
  ASSERT_TRUE(ci.valid);
  EXPECT_DOUBLE_EQ(ci.point, 2.5);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
}

TEST(Bootstrap, SingleValueCollapsesInterval) {
  Rng rng(3);
  const std::vector<double> xs{7.0};
  const BootstrapInterval ci = bootstrap_mean(xs, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 7.0);
  EXPECT_DOUBLE_EQ(ci.hi, 7.0);
}

TEST(Bootstrap, ConstantSampleCollapsesInterval) {
  Rng rng(4);
  const std::vector<double> xs(20, 3.25);
  const BootstrapInterval ci = bootstrap_mean(xs, rng);
  EXPECT_DOUBLE_EQ(ci.lo, 3.25);
  EXPECT_DOUBLE_EQ(ci.hi, 3.25);
}

TEST(Bootstrap, IsSeedDeterministic) {
  const std::vector<double> xs{1.0, 5.0, 2.0, 8.0, 3.0};
  Rng a(9);
  Rng b(9);
  const BootstrapInterval ca = bootstrap_mean(xs, a);
  const BootstrapInterval cb = bootstrap_mean(xs, b);
  EXPECT_DOUBLE_EQ(ca.lo, cb.lo);
  EXPECT_DOUBLE_EQ(ca.hi, cb.hi);
}

TEST(Bootstrap, IntervalShrinksWithSampleSize) {
  Rng data_rng(11);
  std::vector<double> small;
  std::vector<double> large;
  for (int i = 0; i < 10; ++i) small.push_back(data_rng.uniform_double(0, 1));
  for (int i = 0; i < 1000; ++i) large.push_back(data_rng.uniform_double(0, 1));
  Rng r1(5);
  Rng r2(5);
  const BootstrapInterval cs = bootstrap_mean(small, r1);
  const BootstrapInterval cl = bootstrap_mean(large, r2);
  EXPECT_GT(cs.hi - cs.lo, (cl.hi - cl.lo) * 3);
}

TEST(Bootstrap, CoversTrueMeanMostOfTheTime) {
  // 95% interval for the mean of U(0,1) samples should cover 0.5 in the
  // vast majority of repetitions (allowing slack for only 40 reps).
  Rng data_rng(13);
  Rng boot_rng(17);
  int covered = 0;
  const int reps = 40;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<double> xs;
    for (int i = 0; i < 30; ++i) xs.push_back(data_rng.uniform_double(0, 1));
    const BootstrapInterval ci = bootstrap_mean(xs, boot_rng, 500);
    if (ci.lo <= 0.5 && 0.5 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 33);  // ~95% nominal; allow a few misses
}

TEST(Bootstrap, SupportsCustomStatistics) {
  // Median via the statistic callback.
  const std::vector<double> xs{1.0, 2.0, 3.0, 100.0};
  Rng rng(19);
  const BootstrapInterval ci = bootstrap_interval(
      xs,
      [](std::span<const double> sample) {
        std::vector<double> sorted(sample.begin(), sample.end());
        std::sort(sorted.begin(), sorted.end());
        return sorted[sorted.size() / 2];
      },
      rng);
  ASSERT_TRUE(ci.valid);
  EXPECT_LE(ci.point, 100.0);
  EXPECT_GE(ci.lo, 1.0);
  EXPECT_LE(ci.hi, 100.0);
}

TEST(Bootstrap, WiderAlphaGivesNarrowerInterval) {
  Rng data_rng(23);
  std::vector<double> xs;
  for (int i = 0; i < 50; ++i) xs.push_back(data_rng.uniform_double(0, 10));
  Rng r1(29);
  Rng r2(29);
  const BootstrapInterval ci95 = bootstrap_mean(xs, r1, 2000, 0.05);
  const BootstrapInterval ci50 = bootstrap_mean(xs, r2, 2000, 0.50);
  EXPECT_LT(ci50.hi - ci50.lo, ci95.hi - ci95.lo);
}

}  // namespace
}  // namespace esva
