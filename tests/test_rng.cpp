#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace esva {
namespace {

TEST(SplitMix64, KnownSequenceIsDeterministic) {
  SplitMix64 a(1234);
  SplitMix64 b(1234);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() != b.next()) ++differing;
  EXPECT_GE(differing, 60);
}

TEST(Rng, SameSeedSameStream) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsProduceDifferentStreams) {
  Rng a(42);
  Rng b(43);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextDoubleMeanIsNearHalf) {
  Rng rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntStaysWithinBoundsAndHitsThem) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const std::int64_t v = rng.uniform_int(-3, 4);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 8u);  // all 8 values observed
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntIsApproximatelyUniform) {
  Rng rng(17);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<std::size_t>(rng.uniform_int(0, 9))];
  for (int c : counts) {
    EXPECT_GT(c, n / 10 - n / 100);
    EXPECT_LT(c, n / 10 + n / 100);
  }
}

TEST(Rng, UniformDoubleRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, ExponentialHasConfiguredMean) {
  Rng rng(31);
  const double mean = 50.0;
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(mean);
  // stderr of the mean of n exponentials is mean/sqrt(n) ≈ 0.11.
  EXPECT_NEAR(sum / n, mean, 0.5);
}

TEST(Rng, ExponentialIsNonNegative) {
  Rng rng(37);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(Rng, ExponentialMedianMatchesTheory) {
  Rng rng(41);
  std::vector<double> xs;
  const int n = 50001;
  xs.reserve(n);
  for (int i = 0; i < n; ++i) xs.push_back(rng.exponential(10.0));
  std::nth_element(xs.begin(), xs.begin() + n / 2, xs.end());
  // Median of Exp(mean=10) is 10·ln 2 ≈ 6.93.
  EXPECT_NEAR(xs[n / 2], 10.0 * std::log(2.0), 0.3);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(43);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, IndexCoversAllSlots) {
  Rng rng(47);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ShuffleProducesAPermutation) {
  Rng rng(53);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  auto sorted = shuffled;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, v);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(59);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  std::vector<int> shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);
}

TEST(Rng, ShuffleIsSeedDeterministic) {
  std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> b = a;
  Rng r1(61);
  Rng r2(61);
  r1.shuffle(a);
  r2.shuffle(b);
  EXPECT_EQ(a, b);
}

TEST(Rng, SplitStreamsAreIndependentOfParentContinuation) {
  Rng parent(67);
  Rng child = parent.split();
  // The child should not replicate the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (parent.next_u64() == child.next_u64()) ++same;
  EXPECT_LE(same, 1);
}

TEST(Rng, SplitIsDeterministic) {
  Rng p1(71);
  Rng p2(71);
  Rng c1 = p1.split();
  Rng c2 = p2.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(c1.next_u64(), c2.next_u64());
}

}  // namespace
}  // namespace esva
