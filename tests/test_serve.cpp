// The esva serve daemon (src/serve/): wire codec exactness, WAL round-trips
// and torn-tail handling, snapshot round-trips, and the headline guarantee —
// a daemon-fed stream (including one killed and restarted mid-stream)
// produces assignments and total energy byte-identical to the same workload
// replayed through `esva stream` (sim/replay.cpp). The end-to-end variant
// SIGKILLs a real `esva serve` process over a unix socket.

#include "serve/daemon.h"

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "baselines/registry.h"
#include "core/fault_plan.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/journal.h"
#include "serve/snapshot.h"
#include "serve/wire.h"
#include "sim/replay.h"
#include "test_util.h"
#include "util/json.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/trace.h"

namespace esva {
namespace {

using serve::Daemon;
using serve::DaemonOptions;
using serve::OpKind;
using serve::Request;
using serve::WalFile;
using serve::WalHeader;
using serve::WalRecord;

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "/esva_serve_" + std::to_string(::getpid()) +
         "_" + name;
}

VmSpec awkward_vm() {
  VmSpec vm = testing::vm(7, 3, 12, 0.1, 6.8);  // 0.1 is inexact in binary
  vm.type_name = "m1.small \"quoted\"";
  return vm;
}

// --- wire codec -------------------------------------------------------------

TEST(ServeWire, VmSpecRoundTripsBitExact) {
  VmSpec vm = awkward_vm();
  vm.set_profile({{0.1, 6.8}, {0.2, 3.3}, {0.3, 1.1}, {0.1, 0.7}, {0.5, 0.9},
                  {0.1, 6.8}, {0.2, 3.3}, {0.3, 1.1}, {0.1, 0.7}, {0.5, 0.9}});
  const json::Value parsed = json::parse(serve::encode_vm(vm));
  const VmSpec back = serve::decode_vm(parsed, "test");
  EXPECT_EQ(back.id, vm.id);
  EXPECT_EQ(back.type_name, vm.type_name);
  EXPECT_EQ(back.demand.cpu, vm.demand.cpu);  // bit-exact via hexfloat
  EXPECT_EQ(back.demand.mem, vm.demand.mem);
  EXPECT_EQ(back.start, vm.start);
  EXPECT_EQ(back.end, vm.end);
  ASSERT_TRUE(back.has_profile());
  for (Time t = vm.start; t <= vm.end; ++t) {
    EXPECT_EQ(back.demand_at(t).cpu, vm.demand_at(t).cpu);
    EXPECT_EQ(back.demand_at(t).mem, vm.demand_at(t).mem);
  }
}

TEST(ServeWire, RequestsRoundTripForEveryOp) {
  Request place;
  place.op = OpKind::kPlace;
  place.has_id = true;
  place.id = 99;
  place.vm = awkward_vm();
  const Request place2 = serve::decode_request(serve::encode_request(place));
  EXPECT_EQ(place2.op, OpKind::kPlace);
  ASSERT_TRUE(place2.has_id);
  EXPECT_EQ(place2.id, 99);
  EXPECT_EQ(place2.vm.id, place.vm.id);
  EXPECT_EQ(place2.vm.demand.cpu, place.vm.demand.cpu);

  Request retire;
  retire.op = OpKind::kRetire;
  retire.vm_id = 41;
  EXPECT_EQ(serve::decode_request(serve::encode_request(retire)).vm_id, 41);

  Request advance;
  advance.op = OpKind::kAdvance;
  advance.to = 77;
  EXPECT_EQ(serve::decode_request(serve::encode_request(advance)).to, 77);

  Request fault;
  fault.op = OpKind::kFault;
  fault.fault = {12, FaultKind::kDrain, 3};
  const Request fault2 = serve::decode_request(serve::encode_request(fault));
  EXPECT_EQ(fault2.fault.at, 12);
  EXPECT_EQ(fault2.fault.kind, FaultKind::kDrain);
  EXPECT_EQ(fault2.fault.server, 3);

  Request stats;
  stats.op = OpKind::kStats;
  stats.with_assignment = true;
  EXPECT_TRUE(
      serve::decode_request(serve::encode_request(stats)).with_assignment);

  for (const OpKind op : {OpKind::kSnapshot, OpKind::kDrain}) {
    Request req;
    req.op = op;
    EXPECT_EQ(serve::decode_request(serve::encode_request(req)).op, op);
  }
}

TEST(ServeWire, DecodeAcceptsPlainNumbersForDemands) {
  const Request req = serve::decode_request(
      R"({"op":"place","vm":{"id":1,"type":"t","cpu":2,"mem":3.5,)"
      R"("start":4,"end":9}})");
  EXPECT_EQ(req.vm.demand.cpu, 2.0);
  EXPECT_EQ(req.vm.demand.mem, 3.5);
}

TEST(ServeWire, DecodeRejectsMalformedRequests) {
  EXPECT_THROW(serve::decode_request("not json"), std::runtime_error);
  EXPECT_THROW(serve::decode_request("[1,2]"), std::runtime_error);
  EXPECT_THROW(serve::decode_request(R"({"op":"launch"})"), std::runtime_error);
  EXPECT_THROW(serve::decode_request(R"({"op":"place"})"), std::runtime_error);
  EXPECT_THROW(serve::decode_request(R"({"op":"retire","vm":-3})"),
               std::runtime_error);
  EXPECT_THROW(
      serve::decode_request(
          R"({"op":"fault","at":5,"kind":"melt","server":0})"),
      std::runtime_error);
  EXPECT_THROW(serve::decode_request(
                   R"({"op":"place","vm":{"id":1,"type":"t","cpu":-1,)"
                   R"("mem":3,"start":4,"end":2}})"),
               std::runtime_error);
}

// --- WAL --------------------------------------------------------------------

WalHeader test_header() {
  WalHeader h;
  h.allocator = "min-incremental";
  h.seed = 42;
  h.num_servers = 3;
  h.retry.max_attempts = 2;
  h.retry.base_delay = 8;
  h.retry.backoff = 2.5;
  h.retry.queue_capacity = 16;
  return h;
}

TEST(ServeWal, RoundTripsHeaderAndRecords) {
  const std::string path = temp_path("wal_roundtrip.wal");
  ::unlink(path.c_str());
  {
    serve::WalWriter writer(path, test_header(), /*sync_every=*/1);
    PlacementDecision d;
    d.server = 2;
    writer.append(
        serve::encode_place_record(1, "min-incremental", awkward_vm(), d,
                                   123.456));
    writer.append(serve::encode_retire_record(2, 7, 2));
    writer.append(serve::encode_advance_record(3, 15));
    writer.append(serve::encode_fault_record(4, {16, FaultKind::kFail, 1}));
    writer.append(serve::encode_drain_record(5));
  }
  const WalFile wal = serve::read_wal(path);
  EXPECT_FALSE(wal.torn_tail);
  ASSERT_TRUE(wal.has_header);
  EXPECT_EQ(wal.header.allocator, "min-incremental");
  EXPECT_EQ(wal.header.seed, 42u);
  EXPECT_EQ(wal.header.num_servers, 3u);
  EXPECT_EQ(wal.header.retry.max_attempts, 2);
  EXPECT_EQ(wal.header.retry.backoff, 2.5);
  ASSERT_EQ(wal.records.size(), 5u);
  EXPECT_EQ(wal.records[0].op, WalRecord::Op::kPlace);
  EXPECT_EQ(wal.records[0].chosen, 2);
  EXPECT_TRUE(wal.records[0].has_energy);
  EXPECT_EQ(wal.records[0].energy_after, 123.456);  // hexfloat: bit-exact
  EXPECT_EQ(wal.records[0].vm.demand.cpu, 0.1);
  EXPECT_EQ(wal.records[1].op, WalRecord::Op::kRetire);
  EXPECT_EQ(wal.records[1].vm_id, 7);
  EXPECT_EQ(wal.records[2].to, 15);
  EXPECT_EQ(wal.records[3].fault.kind, FaultKind::kFail);
  EXPECT_EQ(wal.records[4].op, WalRecord::Op::kDrain);
  ::unlink(path.c_str());
}

TEST(ServeWal, AbsentFileIsAFreshJournal) {
  const WalFile wal = serve::read_wal(temp_path("never_written.wal"));
  EXPECT_FALSE(wal.has_header);
  EXPECT_TRUE(wal.records.empty());
  EXPECT_FALSE(wal.torn_tail);
}

TEST(ServeWal, TornFinalLineIsDroppedNotFatal) {
  const std::string path = temp_path("wal_torn.wal");
  {
    std::ofstream out(path);
    out << serve::encode_wal_header(test_header()) << '\n';
    out << serve::encode_advance_record(1, 9) << '\n';
    out << R"({"op":"place","seq":"2","vm":3,"chos)";  // crash mid-append
  }
  const WalFile wal = serve::read_wal(path);
  EXPECT_TRUE(wal.torn_tail);
  ASSERT_EQ(wal.records.size(), 1u);
  EXPECT_EQ(wal.records[0].to, 9);
  ::unlink(path.c_str());
}

TEST(ServeWal, NewlinelessTailIsTornEvenWhenParseable) {
  // A completed commit batch always ends in '\n': a final line missing its
  // newline is a partial write whose op was never acked durable, even when
  // the bytes happen to parse. valid_bytes must stop at the durable prefix
  // so truncate_wal can cut the tail off.
  const std::string path = temp_path("wal_noeol.wal");
  std::string durable = serve::encode_wal_header(test_header()) + "\n" +
                        serve::encode_advance_record(1, 9) + "\n";
  {
    std::ofstream out(path);
    out << durable;
    out << serve::encode_advance_record(2, 12);  // crash mid-batch: no '\n'
  }
  const WalFile wal = serve::read_wal(path);
  EXPECT_TRUE(wal.torn_tail);
  ASSERT_EQ(wal.records.size(), 1u);
  EXPECT_EQ(wal.records[0].to, 9);
  EXPECT_EQ(wal.valid_bytes, durable.size());
  serve::truncate_wal(path, wal.valid_bytes);
  const WalFile again = serve::read_wal(path);
  EXPECT_FALSE(again.torn_tail);
  ASSERT_EQ(again.records.size(), 1u);
  EXPECT_EQ(again.valid_bytes, durable.size());
  ::unlink(path.c_str());
}

TEST(ServeWal, MidFileCorruptionIsFatal) {
  const std::string path = temp_path("wal_corrupt.wal");
  {
    std::ofstream out(path);
    out << serve::encode_wal_header(test_header()) << '\n';
    out << "garbage in the middle\n";
    out << serve::encode_advance_record(1, 9) << '\n';
  }
  EXPECT_THROW(serve::read_wal(path), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(ServeWal, NonMonotonicSeqIsFatal) {
  const std::string path = temp_path("wal_seq.wal");
  {
    std::ofstream out(path);
    out << serve::encode_wal_header(test_header()) << '\n';
    out << serve::encode_advance_record(5, 9) << '\n';
    out << serve::encode_advance_record(5, 10) << '\n';
    out << serve::encode_advance_record(6, 11) << '\n';
  }
  EXPECT_THROW(serve::read_wal(path), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(ServeWal, MissingHeaderIsFatal) {
  const std::string path = temp_path("wal_nohdr.wal");
  {
    std::ofstream out(path);
    out << serve::encode_advance_record(1, 9) << '\n';
    out << serve::encode_advance_record(2, 10) << '\n';
  }
  EXPECT_THROW(serve::read_wal(path), std::runtime_error);
  ::unlink(path.c_str());
}

TEST(ServeWal, RecordsDoubleAsDecisionTrace) {
  // The journal's place/retire lines must stay loadable by the *real*
  // decision-trace loader, with last-write-wins resolving a retired VM to
  // kNoServer — the WAL is also a decision trace of the daemon's lifetime.
  const std::string path = temp_path("wal_trace.wal");
  {
    serve::WalWriter writer(path, test_header(), 1);
    PlacementDecision placed;
    placed.server = 1;
    PlacementDecision rejected;
    rejected.server = kNoServer;
    rejected.reject = PlacementReject::kNoCapacity;
    writer.append(serve::encode_place_record(1, "min-incremental",
                                             testing::vm(0, 1, 5), placed,
                                             10.0));
    writer.append(serve::encode_place_record(2, "min-incremental",
                                             testing::vm(1, 2, 6), rejected,
                                             10.0));
    writer.append(serve::encode_place_record(3, "min-incremental",
                                             testing::vm(2, 3, 7), placed,
                                             20.0));
    writer.append(serve::encode_retire_record(4, 0, 1));
  }
  const WalFile wal = serve::read_wal(path);
  const std::vector<VmDecisionTrace> decisions =
      serve::decisions_from_wal(wal.records);
  ASSERT_EQ(decisions.size(), 4u);
  EXPECT_EQ(decisions[0].vm, 0);
  EXPECT_EQ(decisions[0].chosen, 1);
  EXPECT_EQ(decisions[1].chosen, kNoServer);  // rejected pins to -1
  const std::vector<ServerId> assignment =
      assignment_from_trace(decisions, /*num_vms=*/3);
  EXPECT_EQ(assignment[0], kNoServer);  // retire wins over the earlier place
  EXPECT_EQ(assignment[1], kNoServer);
  EXPECT_EQ(assignment[2], 1);
  ::unlink(path.c_str());
}

// --- snapshot ---------------------------------------------------------------

TEST(ServeSnapshot, RoundTripsEngineState) {
  serve::SnapshotData snap;
  snap.allocator = "ffps";
  snap.seed = 7;
  snap.num_servers = 2;
  snap.wal_seq = 31;
  snap.engine.frontier = 12;
  snap.engine.horizon = 40;
  snap.engine.requests = 9;
  snap.engine.placed = 8;
  snap.engine.energy = 0.1 + 0.2;  // famously inexact
  snap.engine.peak_resident = 77;
  snap.engine.fault_cursor = 2;
  snap.engine.retry_seq = 5;
  snap.engine.servers.resize(2);
  snap.engine.servers[0].health = ServerHealth::kUp;
  snap.engine.servers[0].retired_hi = 11;
  snap.engine.servers[0].active.push_back(awkward_vm());
  snap.engine.servers[1].health = ServerHealth::kDrained;
  PendingSnapshot pending;
  pending.vm = testing::vm(9, 14, 20);
  pending.not_before = 16;
  pending.attempts = 1;
  pending.displaced = true;
  pending.waiting_since = 13;
  pending.seq = 4;
  snap.engine.retry_queue.push_back(pending);
  snap.engine.fault_stats.fault_events = 3;
  snap.engine.fault_stats.evacuated = 2;
  snap.engine.resolutions.push_back({5, 1});
  snap.rng = {1, 2, 3, 4};
  snap.assignment = {{0, 1}, {5, 1}, {7, 0}, {9, kNoServer}};

  const std::string path = temp_path("snap_roundtrip.snap");
  serve::write_snapshot_atomic(path, snap);
  bool found = false;
  const serve::SnapshotData back = serve::load_snapshot(path, &found);
  ASSERT_TRUE(found);
  EXPECT_EQ(back.allocator, "ffps");
  EXPECT_EQ(back.seed, 7u);
  EXPECT_EQ(back.wal_seq, 31u);
  EXPECT_EQ(back.engine.frontier, 12);
  EXPECT_EQ(back.engine.energy, snap.engine.energy);  // bit-exact
  ASSERT_EQ(back.engine.servers.size(), 2u);
  EXPECT_EQ(back.engine.servers[0].retired_hi, 11);
  ASSERT_EQ(back.engine.servers[0].active.size(), 1u);
  EXPECT_EQ(back.engine.servers[0].active[0].demand.cpu, 0.1);
  EXPECT_EQ(back.engine.servers[1].health, ServerHealth::kDrained);
  ASSERT_EQ(back.engine.retry_queue.size(), 1u);
  EXPECT_EQ(back.engine.retry_queue[0].vm.id, 9);
  EXPECT_EQ(back.engine.retry_queue[0].not_before, 16);
  EXPECT_TRUE(back.engine.retry_queue[0].displaced);
  EXPECT_EQ(back.engine.fault_stats.fault_events, 3);
  EXPECT_EQ(back.engine.fault_stats.evacuated, 2);
  ASSERT_EQ(back.engine.resolutions.size(), 1u);
  EXPECT_EQ(back.engine.resolutions[0].vm, 5);
  EXPECT_EQ(back.rng, (std::array<std::uint64_t, 4>{1, 2, 3, 4}));
  ASSERT_EQ(back.assignment.size(), 4u);
  EXPECT_EQ(back.assignment[3].second, kNoServer);
  ::unlink(path.c_str());
}

TEST(ServeSnapshot, AbsentFileReportsNotFound) {
  bool found = true;
  serve::load_snapshot(temp_path("never_written.snap"), &found);
  EXPECT_FALSE(found);
}

// --- daemon vs replay_stream equivalence ------------------------------------

struct Workload {
  std::vector<VmSpec> vms;
  std::vector<ServerSpec> servers;
  std::vector<FaultEvent> fault_events;  // all at <= the last arrival start
};

Workload make_workload(std::uint64_t seed, bool with_faults) {
  Rng rng(seed);
  ProblemInstance problem = testing::random_problem(rng, /*num_vms=*/40,
                                                    /*num_servers=*/5);
  Workload w;
  w.vms = problem.vms;
  w.servers = problem.servers;
  if (with_faults) {
    Time last_start = 1;
    for (const VmSpec& vm : w.vms) last_start = std::max(last_start, vm.start);
    // Mid-stream chaos only: events past the last arrival would be fired at
    // exact retry instants by the plan-driven drain, which a client feeding
    // the tail cannot reproduce (docs/SERVE.md#fault-semantics).
    const Time t1 = std::max<Time>(1, last_start / 3);
    const Time t2 = std::max<Time>(1, last_start / 2);
    w.fault_events.push_back({t1, FaultKind::kFail, 1});
    w.fault_events.push_back({t2, FaultKind::kRecover, 1});
    w.fault_events.push_back({t2, FaultKind::kDrain, 2});
  }
  return w;
}

RetryPolicy test_retry() {
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.base_delay = 4;
  retry.backoff = 2.0;
  retry.queue_capacity = 16;
  return retry;
}

/// The reference run: the exact same workload through replay_stream.
ReplayReport reference_run(const Workload& w, const std::string& allocator,
                           std::uint64_t seed, const RetryPolicy& retry) {
  AllocatorPtr alloc = make_allocator(allocator);
  std::unique_ptr<PlacementPolicy> policy = alloc->make_policy();
  Rng rng(seed);
  VectorArrivalStream arrivals(w.vms);
  ReplayOptions options;
  options.retry = retry;
  FaultPlan plan{std::vector<FaultEvent>(w.fault_events)};
  if (!w.fault_events.empty()) options.faults = &plan;
  return replay_stream(arrivals, w.servers, *policy, rng, options);
}

/// Feeds the workload to `daemon` the way `esva client` would: places in
/// start-time order, each fault event sent before the first arrival at or
/// after it.
void feed_daemon(Daemon& daemon, const Workload& w) {
  std::size_t next_fault = 0;
  const auto send_fault = [&](const FaultEvent& event) {
    Request req;
    req.op = OpKind::kFault;
    req.fault = event;
    const std::string response =
        daemon.handle_line(serve::encode_request(req));
    ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
  };
  for (const std::size_t j : order_by_start(w.vms)) {
    while (next_fault < w.fault_events.size() &&
           w.fault_events[next_fault].at <= w.vms[j].start)
      send_fault(w.fault_events[next_fault++]);
    Request req;
    req.op = OpKind::kPlace;
    req.vm = w.vms[j];
    const std::string response =
        daemon.handle_line(serve::encode_request(req));
    ASSERT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
  }
  while (next_fault < w.fault_events.size())
    send_fault(w.fault_events[next_fault++]);
}

void expect_matches_reference(const Daemon& daemon,
                              const ReplayReport& reference) {
  EXPECT_EQ(daemon.engine().total_energy(), reference.total_energy)
      << "energy must be byte-identical to esva stream";
  EXPECT_EQ(static_cast<std::size_t>(daemon.engine().requests()),
            reference.requests);
  EXPECT_EQ(static_cast<std::size_t>(daemon.engine().placed()),
            reference.placed);
  for (std::size_t id = 0; id < reference.assignment.size(); ++id) {
    const auto it = daemon.assignment().find(static_cast<VmId>(id));
    const ServerId daemon_server =
        it == daemon.assignment().end() ? kNoServer : it->second;
    EXPECT_EQ(daemon_server, reference.assignment[id]) << "vm " << id;
  }
  const FaultStats& a = daemon.engine().fault_stats();
  const FaultStats& b = reference.faults;
  EXPECT_EQ(a.fault_events, b.fault_events);
  EXPECT_EQ(a.displaced, b.displaced);
  EXPECT_EQ(a.evacuated, b.evacuated);
  EXPECT_EQ(a.deferred, b.deferred);
  EXPECT_EQ(a.retries, b.retries);
  EXPECT_EQ(a.retried_placed, b.retried_placed);
  EXPECT_EQ(a.rejected_final, b.rejected_final);
  EXPECT_EQ(a.downtime_units, b.downtime_units);
}

DaemonOptions daemon_options(const std::string& allocator, std::uint64_t seed,
                             const RetryPolicy& retry, const std::string& tag,
                             bool with_snapshot = false) {
  DaemonOptions options;
  options.allocator = allocator;
  options.seed = seed;
  options.retry = retry;
  options.wal_path = temp_path(tag + ".wal");
  if (with_snapshot) options.snapshot_path = temp_path(tag + ".snap");
  ::unlink(options.wal_path.c_str());
  if (with_snapshot) ::unlink(options.snapshot_path.c_str());
  return options;
}

TEST(ServeEquivalence, DaemonMatchesReplayStreamAcrossAllocators) {
  for (const std::string allocator :
       {"min-incremental", "ffps", "best-fit-cpu", "random-fit"}) {
    const Workload w = make_workload(0x5eed, /*with_faults=*/false);
    const ReplayReport reference =
        reference_run(w, allocator, 42, RetryPolicy{});
    Daemon daemon(w.servers,
                  daemon_options(allocator, 42, RetryPolicy{},
                                 "equiv_" + allocator));
    feed_daemon(daemon, w);
    daemon.drain();
    expect_matches_reference(daemon, reference);
    ::unlink(temp_path("equiv_" + allocator + ".wal").c_str());
  }
}

TEST(ServeEquivalence, DaemonMatchesReplayStreamUnderFaultsAndRetries) {
  for (const std::string allocator : {"min-incremental", "ffps"}) {
    const Workload w = make_workload(0xfa017, /*with_faults=*/true);
    const ReplayReport reference =
        reference_run(w, allocator, 42, test_retry());
    Daemon daemon(w.servers,
                  daemon_options(allocator, 42, test_retry(),
                                 "equivf_" + allocator));
    feed_daemon(daemon, w);
    daemon.drain();
    EXPECT_GT(daemon.engine().fault_stats().fault_events, 0);
    expect_matches_reference(daemon, reference);
    ::unlink(temp_path("equivf_" + allocator + ".wal").c_str());
  }
}

// --- crash recovery ---------------------------------------------------------

/// Splits the client-visible op sequence at `cut`, runs the first part in one
/// daemon, abandons it (no checkpoint — the WAL is all that survives, as
/// after a SIGKILL), restarts on the same journal and finishes the stream.
void crash_and_recover(const std::string& allocator, bool with_snapshot,
                       bool with_faults) {
  const std::string tag = std::string("crash_") + allocator +
                          (with_snapshot ? "_snap" : "") +
                          (with_faults ? "_faults" : "");
  const Workload w = make_workload(0xcafe, with_faults);
  const RetryPolicy retry = with_faults ? test_retry() : RetryPolicy{};
  const ReplayReport reference = reference_run(w, allocator, 42, retry);

  const DaemonOptions options =
      daemon_options(allocator, 42, retry, tag, with_snapshot);
  const std::vector<std::size_t> order = order_by_start(w.vms);
  const std::size_t cut = order.size() / 2;

  std::uint64_t seq_at_cut = 0;
  {
    Daemon first(w.servers, options);
    Workload head = w;
    head.vms.clear();
    for (std::size_t k = 0; k < cut; ++k) head.vms.push_back(w.vms[order[k]]);
    // Keep only faults that the head would have sent.
    Time head_last = 0;
    for (const VmSpec& vm : head.vms)
      head_last = std::max(head_last, vm.start);
    head.fault_events.clear();
    for (const FaultEvent& e : w.fault_events)
      if (e.at <= head_last) head.fault_events.push_back(e);
    feed_daemon(first, head);
    if (with_snapshot) first.checkpoint();
    seq_at_cut = first.last_seq();
    // `first` goes out of scope without drain or checkpoint: everything it
    // acked is on disk via the WAL appends; nothing else survives.
  }

  Daemon second(w.servers, options);
  EXPECT_EQ(second.recovered_from_snapshot(), with_snapshot);
  if (with_snapshot)
    EXPECT_EQ(second.replayed_records(), 0u);  // snapshot covers everything
  else
    EXPECT_EQ(second.replayed_records(), seq_at_cut);
  EXPECT_EQ(second.last_seq(), seq_at_cut);

  Workload tail = w;
  tail.vms.clear();
  for (std::size_t k = cut; k < order.size(); ++k)
    tail.vms.push_back(w.vms[order[k]]);
  Time head_last = 0;
  for (std::size_t k = 0; k < cut; ++k)
    head_last = std::max(head_last, w.vms[order[k]].start);
  tail.fault_events.clear();
  for (const FaultEvent& e : w.fault_events)
    if (e.at > head_last) tail.fault_events.push_back(e);
  feed_daemon(second, tail);
  second.drain();
  expect_matches_reference(second, reference);

  ::unlink(options.wal_path.c_str());
  if (with_snapshot) ::unlink(options.snapshot_path.c_str());
}

TEST(ServeRecovery, CrashMidStreamReplaysToIdenticalState) {
  crash_and_recover("min-incremental", /*with_snapshot=*/false,
                    /*with_faults=*/false);
}

TEST(ServeRecovery, CrashMidStreamWithSnapshotBoundsReplay) {
  crash_and_recover("min-incremental", /*with_snapshot=*/true,
                    /*with_faults=*/false);
}

TEST(ServeRecovery, CrashMidStreamUnderFaultsAndRetries) {
  crash_and_recover("ffps", /*with_snapshot=*/false, /*with_faults=*/true);
}

TEST(ServeRecovery, TornTailIsDroppedAndFlagged) {
  const Workload w = make_workload(0x70a2, false);
  const DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "torn");
  std::uint64_t acked = 0;
  {
    Daemon daemon(w.servers, options);
    feed_daemon(daemon, w);
    acked = daemon.last_seq();
  }
  {
    // Simulate a crash mid-append: a truncated line at the tail.
    std::ofstream out(options.wal_path, std::ios::app);
    out << R"({"op":"place","seq":")" << acked + 1 << R"(","vm":123,"cho)";
  }
  Daemon recovered(w.servers, options);
  EXPECT_TRUE(recovered.recovered_torn_tail());
  EXPECT_EQ(recovered.last_seq(), acked);
  EXPECT_EQ(recovered.replayed_records(), acked);
  ::unlink(options.wal_path.c_str());
}

TEST(ServeRecovery, TornTailIsTruncatedSoLaterAppendsStayParseable) {
  // Recovery must cut the torn bytes off the file before reopening it for
  // append: otherwise the next record is concatenated onto the torn line,
  // and the following restart either hard-errors on mid-file corruption or
  // silently drops an acked+fsynced record as a new torn tail.
  const Workload w = make_workload(0x7041, false);
  const DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "torn_trunc");
  std::uint64_t acked = 0;
  {
    Daemon daemon(w.servers, options);
    feed_daemon(daemon, w);
    acked = daemon.last_seq();
  }
  {
    std::ofstream out(options.wal_path, std::ios::app);
    out << R"({"op":"place","seq":")" << acked + 1 << R"(","vm":123,"cho)";
  }
  std::uint64_t after = 0;
  {
    Daemon recovered(w.servers, options);
    EXPECT_TRUE(recovered.recovered_torn_tail());
    EXPECT_EQ(recovered.last_seq(), acked);
    // Journal one more op onto the recovered (truncated) file.
    Request retire;
    retire.op = OpKind::kRetire;
    retire.vm_id = w.vms.front().id;
    EXPECT_EQ(recovered.handle_line(serve::encode_request(retire))
                  .rfind("{\"ok\":true", 0),
              0u);
    after = recovered.last_seq();
    EXPECT_EQ(after, acked + 1);
  }
  // A third recovery sees a clean journal including the post-torn append —
  // nothing merged, nothing dropped.
  Daemon third(w.servers, options);
  EXPECT_FALSE(third.recovered_torn_tail());
  EXPECT_EQ(third.last_seq(), after);
  EXPECT_EQ(third.replayed_records(), after);
  EXPECT_EQ(third.assignment().at(w.vms.front().id), kNoServer);
  ::unlink(options.wal_path.c_str());
}

TEST(ServeRecovery, ConfigMismatchRefusesToServe) {
  const Workload w = make_workload(0x3141, false);
  const DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "mismatch");
  {
    Daemon daemon(w.servers, options);
    feed_daemon(daemon, w);
  }
  DaemonOptions other = options;
  other.allocator = "ffps";
  EXPECT_THROW(Daemon(w.servers, other), std::runtime_error);
  DaemonOptions reseeded = options;
  reseeded.seed = 43;
  EXPECT_THROW(Daemon(w.servers, reseeded), std::runtime_error);
  ::unlink(options.wal_path.c_str());
}

TEST(ServeRecovery, ChecksumDivergenceIsFatal) {
  const std::string path = temp_path("diverge.wal");
  ::unlink(path.c_str());
  const Workload w = make_workload(0x2718, false);
  WalHeader header;
  header.allocator = "min-incremental";
  header.seed = 42;
  header.num_servers = w.servers.size();
  {
    serve::WalWriter writer(path, header, 1);
    // Claim the engine placed this VM on server 3; the deterministic replay
    // will disagree, and recovery must refuse rather than diverge silently.
    PlacementDecision lie;
    lie.server = static_cast<ServerId>(w.servers.size() - 1);
    VmSpec vm = w.vms.front();
    vm.start = std::max<Time>(1, vm.start);
    writer.append(serve::encode_place_record(1, "min-incremental", vm, lie,
                                             -1.0));
  }
  DaemonOptions options;
  options.allocator = "min-incremental";
  options.seed = 42;
  options.wal_path = path;
  EXPECT_THROW(Daemon(w.servers, options), std::runtime_error);
  ::unlink(path.c_str());
}

// --- retire and handle_line surface ----------------------------------------

TEST(ServeDaemon, RetireFreesCapacityAndPinsAssignment) {
  std::vector<ServerSpec> servers{testing::basic_server(0)};
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "retire");
  Daemon daemon(servers, options);

  // The server fits exactly one 10-CPU VM at a time.
  Request big;
  big.op = OpKind::kPlace;
  big.vm = testing::vm(0, 1, 50, 10.0, 1.0);
  ASSERT_EQ(daemon.handle_line(serve::encode_request(big))
                .rfind("{\"ok\":true", 0),
            0u);
  EXPECT_EQ(daemon.assignment().at(0), 0);

  Request blocked;
  blocked.op = OpKind::kPlace;
  blocked.vm = testing::vm(1, 5, 20, 10.0, 1.0);
  const std::string rejected =
      daemon.handle_line(serve::encode_request(blocked));
  EXPECT_NE(rejected.find("\"server\":null"), std::string::npos) << rejected;

  Request retire;
  retire.op = OpKind::kRetire;
  retire.vm_id = 0;
  const std::string response =
      daemon.handle_line(serve::encode_request(retire));
  EXPECT_EQ(response.rfind("{\"ok\":true", 0), 0u) << response;
  EXPECT_EQ(daemon.assignment().at(0), kNoServer);

  // Capacity is free again from the current frontier on.
  Request after;
  after.op = OpKind::kPlace;
  after.vm = testing::vm(2, 6, 20, 10.0, 1.0);
  const std::string placed = daemon.handle_line(serve::encode_request(after));
  EXPECT_NE(placed.find("\"server\":0"), std::string::npos) << placed;

  // Retiring an unknown VM is a no-op with a null host, not an error.
  Request unknown;
  unknown.op = OpKind::kRetire;
  unknown.vm_id = 999;
  const std::string noop = daemon.handle_line(serve::encode_request(unknown));
  EXPECT_EQ(noop.rfind("{\"ok\":true", 0), 0u) << noop;
  EXPECT_NE(noop.find("\"server\":null"), std::string::npos) << noop;

  // Retire survives recovery: the journal replays to the same state.
  const std::uint64_t acked = daemon.last_seq();
  {
    Daemon recovered(servers, options);
    EXPECT_EQ(recovered.replayed_records(), acked);
    EXPECT_EQ(recovered.assignment().at(0), kNoServer);
    EXPECT_EQ(recovered.assignment().at(2), 0);
    EXPECT_EQ(recovered.engine().total_energy(),
              daemon.engine().total_energy());
  }
  ::unlink(options.wal_path.c_str());
}

TEST(ServeDaemon, StatsEchoesRequestId) {
  const Workload w = make_workload(0x51a7, false);
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "stats_id");
  Daemon daemon(w.servers, options);
  // Like every other op, stats must echo the client's correlation token.
  const std::string with_id = daemon.handle_line(R"({"op":"stats","id":7})");
  EXPECT_EQ(with_id.rfind("{\"ok\":true,\"id\":7,\"op\":\"stats\"", 0), 0u)
      << with_id;
  const std::string without = daemon.handle_line(R"({"op":"stats"})");
  EXPECT_EQ(without.rfind("{\"ok\":true,\"op\":\"stats\"", 0), 0u) << without;
  ::unlink(options.wal_path.c_str());
}

TEST(ServeDaemon, HandleLineTurnsFailuresIntoStructuredErrors) {
  const Workload w = make_workload(0xbead, false);
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "errors");
  Daemon daemon(w.servers, options);
  EXPECT_EQ(daemon.handle_line("not json").rfind("{\"ok\":false", 0), 0u);
  EXPECT_EQ(daemon.handle_line("{}").rfind("{\"ok\":false", 0), 0u);
  // Snapshot without a configured path is an op-level error, echoed with id.
  const std::string response =
      daemon.handle_line(R"({"op":"snapshot","id":7})");
  EXPECT_EQ(response.rfind("{\"ok\":false,\"id\":7", 0), 0u) << response;
  // A fault targeting a server outside the fleet must not mutate anything.
  const std::string bad_fault = daemon.handle_line(
      R"({"op":"fault","at":5,"kind":"fail","server":999})");
  EXPECT_EQ(bad_fault.rfind("{\"ok\":false", 0), 0u) << bad_fault;
  EXPECT_EQ(daemon.last_seq(), 0u);  // nothing journaled
  ::unlink(options.wal_path.c_str());
}

// --- socket loop ------------------------------------------------------------

/// Raw client socket (no protocol): tests that need to vanish mid-exchange
/// or hold a connection idle, which serve::Client's call/response shape
/// can't express.
int raw_connect(const std::string& socket_path) {
  sockaddr_un addr{};
  if (socket_path.size() >= sizeof(addr.sun_path)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_line(int fd, const std::string& line) {
  const std::string buf = line + "\n";
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n = ::send(fd, buf.data() + off, buf.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

std::string read_line(int fd) {
  std::string out;
  char ch = 0;
  for (;;) {
    const ssize_t n = ::read(fd, &ch, 1);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0 || ch == '\n') return out;
    out += ch;
  }
}

TEST(ServeSocket, ServesLineProtocolOverUnixSocket) {
  const Workload w = make_workload(0x50c, false);
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "socket");
  Daemon daemon(w.servers, options);

  const std::string socket_path = temp_path("socket.sock");
  ::unlink(socket_path.c_str());
  std::atomic<bool> stop{false};
  std::atomic<bool> listening{false};
  std::thread server([&] {
    daemon.serve_loop(socket_path, stop, [&] { listening.store(true); });
  });
  while (!listening.load()) std::this_thread::yield();

  {
    serve::Client client(socket_path);
    Request place;
    place.op = OpKind::kPlace;
    place.vm = w.vms.front();
    place.vm.start = std::max<Time>(1, place.vm.start);
    place.has_id = true;
    place.id = 1;
    const std::string response = client.call(serve::encode_request(place));
    EXPECT_EQ(response.rfind("{\"ok\":true,\"id\":1", 0), 0u) << response;

    const std::string stats = client.call(R"({"op":"stats"})");
    EXPECT_NE(stats.find("\"requests\":1"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"energy_hex\":"), std::string::npos) << stats;

    EXPECT_EQ(client.call("garbage").rfind("{\"ok\":false", 0), 0u);
    // The connection survives a bad request; the next one still works.
    EXPECT_EQ(client.call(R"({"op":"stats"})").rfind("{\"ok\":true", 0), 0u);
  }

  stop.store(true);
  server.join();
  struct stat st{};
  EXPECT_NE(::stat(socket_path.c_str(), &st), 0) << "socket not cleaned up";
  ::unlink(options.wal_path.c_str());
}

TEST(ServeSocket, SurvivesClientVanishingBeforeResponse) {
  const Workload w = make_workload(0xdead, false);
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "vanish");
  Daemon daemon(w.servers, options);

  const std::string socket_path = temp_path("vanish.sock");
  ::unlink(socket_path.c_str());
  std::atomic<bool> stop{false};
  std::atomic<bool> listening{false};
  std::thread server([&] {
    daemon.serve_loop(socket_path, stop, [&] { listening.store(true); });
  });
  while (!listening.load()) std::this_thread::yield();

  {
    // Send a place and hang up without reading the response: the daemon's
    // write to the dead peer must surface as EPIPE (reaped connection),
    // not SIGPIPE (dead daemon).
    const int fd = raw_connect(socket_path);
    ASSERT_GE(fd, 0);
    Request req;
    req.op = OpKind::kPlace;
    req.vm = w.vms.front();
    req.vm.start = std::max<Time>(1, req.vm.start);
    ASSERT_TRUE(send_line(fd, serve::encode_request(req)));
    ::close(fd);
  }

  // The daemon is still serving and applied the op it never got to ack.
  bool applied = false;
  for (int i = 0; i < 500 && !applied; ++i) {
    serve::Client client(socket_path);
    const std::string stats = client.call(R"({"op":"stats"})");
    ASSERT_EQ(stats.rfind("{\"ok\":true", 0), 0u) << stats;
    applied = stats.find("\"requests\":1") != std::string::npos;
    if (!applied) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(applied) << "daemon never processed the vanished client's op";

  stop.store(true);
  server.join();
  ::unlink(options.wal_path.c_str());
}

TEST(ServeSocket, ConnectionsStayAlignedAcrossCloseAndAcceptInOneRound) {
  // One poll round can deliver a hangup, a request, and a brand-new
  // connection together; the loop must keep each surviving connection
  // paired with its own pollfd (a misalignment reads the wrong revents and
  // can block on an idle socket).
  const Workload w = make_workload(0xa119, false);
  DaemonOptions options =
      daemon_options("min-incremental", 42, RetryPolicy{}, "align");
  Daemon daemon(w.servers, options);

  const std::string socket_path = temp_path("align.sock");
  ::unlink(socket_path.c_str());
  std::atomic<bool> stop{false};
  std::atomic<bool> listening{false};
  std::thread server([&] {
    daemon.serve_loop(socket_path, stop, [&] { listening.store(true); });
  });
  while (!listening.load()) std::this_thread::yield();

  const int a = raw_connect(socket_path);
  const int b = raw_connect(socket_path);
  const int c = raw_connect(socket_path);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  ASSERT_GE(c, 0);
  // Prime each connection so all three are accepted and polled.
  for (const int fd : {a, b, c}) {
    ASSERT_TRUE(send_line(fd, R"({"op":"stats"})"));
    ASSERT_EQ(read_line(fd).rfind("{\"ok\":true", 0), 0u);
  }

  // Back-to-back while the daemon sits in poll: hang up a, request on b,
  // and a new connection d — likely the same round; c stays idle.
  ::close(a);
  ASSERT_TRUE(send_line(b, R"({"op":"stats","id":9})"));
  const int d = raw_connect(socket_path);
  ASSERT_GE(d, 0);

  const std::string from_b = read_line(b);
  EXPECT_EQ(from_b.rfind("{\"ok\":true,\"id\":9", 0), 0u) << from_b;
  ASSERT_TRUE(send_line(d, R"({"op":"stats","id":10})"));
  const std::string from_d = read_line(d);
  EXPECT_EQ(from_d.rfind("{\"ok\":true,\"id\":10", 0), 0u) << from_d;
  // The idle connection is untouched and still responsive.
  ASSERT_TRUE(send_line(c, R"({"op":"stats","id":11})"));
  const std::string from_c = read_line(c);
  EXPECT_EQ(from_c.rfind("{\"ok\":true,\"id\":11", 0), 0u) << from_c;

  ::close(b);
  ::close(c);
  ::close(d);
  stop.store(true);
  server.join();
  ::unlink(options.wal_path.c_str());
}

// --- end-to-end: real process, SIGKILL mid-stream ---------------------------

#ifdef ESVA_BIN_PATH

pid_t spawn_serve(const std::string& servers_csv, const std::string& socket,
                  const std::string& wal) {
  const pid_t pid = ::fork();
  if (pid != 0) return pid;
  ::execl(ESVA_BIN_PATH, "esva", "serve", "--servers", servers_csv.c_str(),
          "--socket", socket.c_str(), "--wal", wal.c_str(), "--seed", "42",
          "--allocator", "min-incremental", static_cast<char*>(nullptr));
  ::_exit(127);
}

bool wait_for_socket(const std::string& path) {
  for (int i = 0; i < 300; ++i) {
    struct stat st{};
    if (::stat(path.c_str(), &st) == 0 && S_ISSOCK(st.st_mode)) {
      // The file can exist before listen(); probe with a real connect.
      try {
        serve::Client probe(path);
        return true;
      } catch (const std::exception&) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return false;
}

TEST(ServeEndToEnd, SigkilledDaemonRecoversToByteIdenticalStream) {
  struct stat st{};
  if (::stat(ESVA_BIN_PATH, &st) != 0)
    GTEST_SKIP() << "esva binary not built at " << ESVA_BIN_PATH;

  const Workload w = make_workload(0xe2e, false);
  const ReplayReport reference =
      reference_run(w, "min-incremental", 42, RetryPolicy{});

  const std::string servers_csv = temp_path("e2e_servers.csv");
  save_server_trace(servers_csv, w.servers);
  const std::string socket_path = temp_path("e2e.sock");
  const std::string wal_path = temp_path("e2e.wal");
  ::unlink(socket_path.c_str());
  ::unlink(wal_path.c_str());

  const std::vector<std::size_t> order = order_by_start(w.vms);
  const std::size_t cut = order.size() / 2;

  // Phase 1: place the first half through a real daemon process, then
  // SIGKILL it — no destructors, no checkpoint; the fsynced WAL is all that
  // survives.
  pid_t pid = spawn_serve(servers_csv, socket_path, wal_path);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << "daemon never listened";
  {
    serve::Client client(socket_path);
    for (std::size_t k = 0; k < cut; ++k) {
      Request req;
      req.op = OpKind::kPlace;
      req.vm = w.vms[order[k]];
      ASSERT_EQ(client.call(serve::encode_request(req))
                    .rfind("{\"ok\":true", 0),
                0u);
    }
  }
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  ::unlink(socket_path.c_str());

  // Phase 2: a fresh process recovers from the journal and finishes the
  // stream; the final state must be byte-identical to the batch replay.
  pid = spawn_serve(servers_csv, socket_path, wal_path);
  ASSERT_GT(pid, 0);
  ASSERT_TRUE(wait_for_socket(socket_path)) << "restart never listened";
  std::string stats;
  {
    serve::Client client(socket_path);
    for (std::size_t k = cut; k < order.size(); ++k) {
      Request req;
      req.op = OpKind::kPlace;
      req.vm = w.vms[order[k]];
      ASSERT_EQ(client.call(serve::encode_request(req))
                    .rfind("{\"ok\":true", 0),
                0u);
    }
    ASSERT_EQ(client.call(R"({"op":"drain"})").rfind("{\"ok\":true", 0), 0u);
    stats = client.call(R"({"op":"stats","assignment":true})");
  }
  ::kill(pid, SIGTERM);
  ::waitpid(pid, &status, 0);

  const json::Value parsed = json::parse(stats);
  EXPECT_EQ(json::require_integer(parsed, "requests", 0, 1 << 30, "stats"),
            static_cast<long long>(reference.requests));
  EXPECT_EQ(json::require_integer(parsed, "placed", 0, 1 << 30, "stats"),
            static_cast<long long>(reference.placed));
  EXPECT_EQ(
      serve::require_number_or_hex(parsed, "energy_hex", "stats"),
      reference.total_energy)
      << "energy must be byte-identical across SIGKILL + restart";
  const json::Value* assignment = parsed.find("assignment");
  ASSERT_NE(assignment, nullptr);
  ASSERT_EQ(assignment->kind, json::Value::Kind::Array);
  std::map<VmId, ServerId> final_hosting;
  for (const json::Value& pair : assignment->array) {
    ASSERT_EQ(pair.kind, json::Value::Kind::Array);
    ASSERT_EQ(pair.array.size(), 2u);
    final_hosting[static_cast<VmId>(pair.array[0].number)] =
        static_cast<ServerId>(pair.array[1].number);
  }
  for (std::size_t id = 0; id < reference.assignment.size(); ++id) {
    const auto it = final_hosting.find(static_cast<VmId>(id));
    const ServerId daemon_server =
        it == final_hosting.end() ? kNoServer : it->second;
    EXPECT_EQ(daemon_server, reference.assignment[id]) << "vm " << id;
  }

  ::unlink(servers_csv.c_str());
  ::unlink(socket_path.c_str());
  ::unlink(wal_path.c_str());
}

#endif  // ESVA_BIN_PATH

}  // namespace
}  // namespace esva
