#include "ext/lookahead.h"

#include <gtest/gtest.h>

#include "core/min_incremental.h"
#include "ext/register.h"
#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

TEST(Lookahead, WindowOneEqualsMinIncremental) {
  // Regret insertion over a single-VM window degenerates to the paper's
  // greedy: same VM (the only one), same argmin server.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 18, 8);
    LookaheadAllocator::Options options;
    options.window = 1;
    LookaheadAllocator lookahead(options);
    MinIncrementalAllocator greedy;
    Rng r1(3);
    Rng r2(3);
    ASSERT_EQ(lookahead.allocate(p, r1).assignment,
              greedy.allocate(p, r2).assignment)
        << "seed " << seed;
  }
}

TEST(Lookahead, NameEncodesWindow) {
  LookaheadAllocator::Options options;
  options.window = 16;
  EXPECT_EQ(LookaheadAllocator(options).name(), "lookahead-16");
}

TEST(Lookahead, ProducesFeasibleAllocations) {
  for (std::uint64_t seed = 20; seed <= 30; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 25, 10);
    LookaheadAllocator::Options options;
    options.window = 6;
    LookaheadAllocator allocator(options);
    Rng rng(1);
    const Allocation alloc = allocator.allocate(p, rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << "seed " << seed;
    EXPECT_EQ(alloc.num_unallocated(), 0u) << "seed " << seed;
  }
}

TEST(Lookahead, ResolvesContentionTheGreedyGetsWrong) {
  // Construction: VM A (flexible, starts first) and VM B (only fits on the
  // small efficient server, starts one step later, overlapping A).
  // Greedy places A on the efficient server (locally cheapest), forcing B
  // onto the expensive one. Regret sees that B has no alternative and pins
  // B first.
  std::vector<VmSpec> vms{
      vm(0, 1, 60, 4.0, 4.0),   // A: fits both servers
      vm(1, 2, 61, 8.0, 8.0),   // B: only fits server 0 once A is elsewhere
  };
  // Server 0: cheap, capacity 10 (cannot host A+B together: 12 > 10).
  // Server 1: expensive, huge.
  std::vector<ServerSpec> servers{server(0, 10, 10, 50, 100),
                                  server(1, 30, 30, 400, 800)};
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));

  MinIncrementalAllocator greedy;
  Rng r1(1);
  const Allocation greedy_alloc = greedy.allocate(p, r1);
  EXPECT_EQ(greedy_alloc.assignment[0], 0);  // greedy grabs the cheap server
  EXPECT_EQ(greedy_alloc.assignment[1], 1);

  LookaheadAllocator::Options options;
  options.window = 2;
  LookaheadAllocator lookahead(options);
  Rng r2(1);
  const Allocation ahead_alloc = lookahead.allocate(p, r2);
  EXPECT_EQ(ahead_alloc.assignment[1], 0);  // B pinned to its only good home
  EXPECT_EQ(ahead_alloc.assignment[0], 1);

  EXPECT_LT(evaluate_cost(p, ahead_alloc).total(),
            evaluate_cost(p, greedy_alloc).total());
}

TEST(Lookahead, NeverMuchWorseThanGreedyOnRandomInstances) {
  // Lookahead is not a strict improvement in theory, but across random
  // instances it should be at least competitive in aggregate.
  double greedy_total = 0.0;
  double lookahead_total = 0.0;
  for (std::uint64_t seed = 40; seed <= 60; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 24, 10);
    Rng r1(1);
    Rng r2(1);
    MinIncrementalAllocator greedy;
    LookaheadAllocator::Options options;
    options.window = 8;
    LookaheadAllocator lookahead(options);
    greedy_total += evaluate_cost(p, greedy.allocate(p, r1)).total();
    lookahead_total += evaluate_cost(p, lookahead.allocate(p, r2)).total();
  }
  EXPECT_LT(lookahead_total, greedy_total * 1.02);
}

TEST(Lookahead, RegistersWithTheRegistry) {
  register_extension_allocators();
  register_extension_allocators();  // idempotent
  AllocatorPtr a = make_allocator("lookahead-8");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "lookahead-8");
  bool found = false;
  for (const std::string& name : allocator_names())
    found = found || name == "lookahead-8";
  EXPECT_TRUE(found);
}

TEST(Registry, CannotOverrideBuiltins) {
  EXPECT_THROW(register_allocator(
                   "ffps", [] { return make_allocator("random-fit"); }),
               std::invalid_argument);
  EXPECT_THROW(register_allocator("custom-null", nullptr),
               std::invalid_argument);
}

TEST(Lookahead, InfeasibleVmReportedNotPlaced) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 2.0, 2.0), vm(1, 1, 5, 50.0, 2.0)}, {basic_server(0)});
  LookaheadAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[0], 0);
  EXPECT_EQ(alloc.assignment[1], kNoServer);
}

}  // namespace
}  // namespace esva
