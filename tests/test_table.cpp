#include "util/table.h"

#include <gtest/gtest.h>

namespace esva {
namespace {

TEST(TextTable, EmptyRendersNothing) {
  TextTable table;
  EXPECT_EQ(table.render(), "");
}

TEST(TextTable, HeaderAndRule) {
  TextTable table;
  table.set_header({"name", "value"});
  table.add_row({"x", "1"});
  const std::string out = table.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("value"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_NE(out.find("x"), std::string::npos);
}

TEST(TextTable, ColumnsAlignAcrossRows) {
  TextTable table;
  table.set_header({"k", "v"});
  table.add_row({"short", "1"});
  table.add_row({"a-much-longer-key", "22"});
  const std::string out = table.render();
  // Every line should have the same position for the second column's end:
  // right-aligned numbers end at identical offsets.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos < out.size()) {
    const std::size_t nl = out.find('\n', pos);
    lines.push_back(out.substr(pos, nl - pos));
    pos = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  const std::size_t width = lines[0].size();
  for (const auto& line : lines) EXPECT_EQ(line.size(), width);
}

TEST(TextTable, DefaultAlignmentLeftThenRight) {
  TextTable table;
  table.set_header({"name", "num"});
  table.add_row({"a", "5"});
  table.add_row({"bb", "55"});
  const std::string out = table.render();
  // "a" is left-aligned then padded to the header width (4), followed by the
  // 2-space separator and "5" right-aligned in a width-3 column.
  EXPECT_NE(out.find("a       5"), std::string::npos) << out;  // 3+2+2 pad
}

TEST(TextTable, ExplicitAlignment) {
  TextTable table;
  table.set_header({"n1", "n2"});
  table.set_align({TextTable::Align::Right, TextTable::Align::Left});
  table.add_row({"7", "x"});
  table.add_row({"77", "xx"});
  const std::string out = table.render();
  EXPECT_NE(out.find(" 7  x"), std::string::npos) << out;
}

TEST(TextTable, RowsWithoutHeader) {
  TextTable table;
  table.add_row({"a", "b"});
  table.add_row({"c", "d"});
  const std::string out = table.render();
  EXPECT_EQ(out.find("---"), std::string::npos);
  EXPECT_EQ(table.rows(), 2u);
}

TEST(FmtDouble, Precision) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_double(3.14159, 4), "3.1416");
  EXPECT_EQ(fmt_double(-1.0, 1), "-1.0");
}

TEST(FmtPercent, ScalesAndSuffixes) {
  EXPECT_EQ(fmt_percent(0.1234), "12.34%");
  EXPECT_EQ(fmt_percent(1.0, 0), "100%");
  EXPECT_EQ(fmt_percent(-0.05, 1), "-5.0%");
}

}  // namespace
}  // namespace esva
