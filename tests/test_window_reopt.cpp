#include "ext/window_reopt.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "ilp/branch_and_bound.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::vm;

// --- fixed-assignment support in the exact solver ------------------------

TEST(BnbFixedAssignment, FullyFixedReturnsThatAssignmentsCost) {
  Rng gen(3);
  const ProblemInstance p = random_problem(gen, 8, 4, 2.0, 6.0);
  Rng rng(1);
  const Allocation alloc = make_allocator("ffps")->allocate(p, rng);
  ASSERT_TRUE(alloc.fully_allocated());

  ExactOptions options;
  options.fixed_assignment = alloc.assignment;
  const ExactResult solved = solve_exact(p, options);
  ASSERT_TRUE(solved.optimal);
  EXPECT_EQ(solved.best.assignment, alloc.assignment);
  EXPECT_NEAR(solved.cost, evaluate_cost(p, alloc).total(), 1e-6);
}

TEST(BnbFixedAssignment, PartiallyFixedNeverBeatsFullyFree) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 7, 3, 2.0, 6.0);
    const ExactResult free_opt = solve_exact(p);
    if (!free_opt.feasible) continue;

    Rng rng(seed);
    const Allocation greedy =
        make_allocator("min-incremental")->allocate(p, rng);
    ExactOptions options;
    options.fixed_assignment = greedy.assignment;
    // Free the first three VMs only.
    int freed = 0;
    for (std::size_t j = 0; j < p.num_vms() && freed < 3; ++j, ++freed)
      options.fixed_assignment[j] = kNoServer;
    const ExactResult partial = solve_exact(p, options);
    ASSERT_TRUE(partial.optimal) << "seed " << seed;
    // Conditioned optimum >= unconditioned optimum, <= greedy cost.
    EXPECT_GE(partial.cost, free_opt.cost - 1e-6) << "seed " << seed;
    EXPECT_LE(partial.cost, evaluate_cost(p, greedy).total() + 1e-6);
    EXPECT_EQ(validate_allocation(p, partial.best), "") << "seed " << seed;
  }
}

TEST(BnbFixedAssignment, FixedVmsKeepTheirServers) {
  Rng gen(9);
  const ProblemInstance p = random_problem(gen, 8, 4, 2.0, 6.0);
  Rng rng(2);
  const Allocation greedy = make_allocator("min-incremental")->allocate(p, rng);
  ExactOptions options;
  options.fixed_assignment = greedy.assignment;
  options.fixed_assignment[0] = kNoServer;
  options.fixed_assignment[3] = kNoServer;
  const ExactResult solved = solve_exact(p, options);
  ASSERT_TRUE(solved.optimal);
  for (std::size_t j = 0; j < p.num_vms(); ++j) {
    if (j == 0 || j == 3) continue;
    EXPECT_EQ(solved.best.assignment[j], greedy.assignment[j]) << "vm " << j;
  }
}

// --- the window polisher --------------------------------------------------

TEST(WindowReopt, NeverIncreasesEnergy) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng gen(seed * 11);
    const ProblemInstance p = random_problem(gen, 16, 6);
    for (const std::string name : {"min-incremental", "ffps", "random-fit"}) {
      Rng rng(seed);
      const Allocation alloc = make_allocator(name)->allocate(p, rng);
      const WindowReoptResult result = window_reoptimize(p, alloc);
      ASSERT_LE(result.energy_after, result.energy_before + 1e-6)
          << name << " seed " << seed;
      ASSERT_EQ(validate_allocation(p, result.allocation, false), "")
          << name << " seed " << seed;
      ASSERT_NEAR(result.energy_after,
                  evaluate_cost(p, result.allocation).total(), 1e-6);
    }
  }
}

TEST(WindowReopt, RecoversTheOptimumWhenWindowCoversEverything) {
  // group_size >= m makes the single window an unconditioned exact solve.
  Rng gen(5);
  const ProblemInstance p = random_problem(gen, 6, 3, 2.0, 6.0);
  Rng rng(1);
  const Allocation bad = make_allocator("random-fit")->allocate(p, rng);
  ASSERT_TRUE(bad.fully_allocated());

  WindowReoptConfig config;
  config.group_size = 6;
  config.overlap = false;
  const WindowReoptResult result = window_reoptimize(p, bad, config);

  const ExactResult optimum = solve_exact(p);
  ASSERT_TRUE(optimum.optimal);
  EXPECT_NEAR(result.energy_after, optimum.cost, 1e-6);
}

TEST(WindowReopt, ImprovesABadAllocationMeasurably) {
  Rng gen(21);
  const ProblemInstance p = random_problem(gen, 18, 8);
  Rng rng(3);
  const Allocation bad = make_allocator("random-fit")->allocate(p, rng);
  WindowReoptConfig config;
  config.group_size = 5;
  config.passes = 3;
  const WindowReoptResult result = window_reoptimize(p, bad, config);
  EXPECT_GT(result.reduction(), 0.05);  // random placement leaves a lot
  EXPECT_GT(result.windows_improved, 0);
}

TEST(WindowReopt, LeavesUnallocatedVmsUntouched) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 2.0), vm(1, 1, 10, 99.0, 2.0), vm(2, 3, 12, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  Rng rng(1);
  const Allocation alloc = make_allocator("min-incremental")->allocate(p, rng);
  ASSERT_EQ(alloc.assignment[1], kNoServer);
  const WindowReoptResult result = window_reoptimize(p, alloc);
  EXPECT_EQ(result.allocation.assignment[1], kNoServer);
  EXPECT_EQ(validate_allocation(p, result.allocation, false), "");
}

TEST(WindowReopt, ReportsCountsConsistently) {
  Rng gen(31);
  const ProblemInstance p = random_problem(gen, 12, 5);
  Rng rng(1);
  const Allocation alloc = make_allocator("ffps")->allocate(p, rng);
  WindowReoptConfig config;
  config.group_size = 4;
  config.passes = 2;
  const WindowReoptResult result = window_reoptimize(p, alloc, config);
  EXPECT_GE(result.windows_solved,
            result.windows_improved + result.windows_skipped);
  EXPECT_GT(result.nodes_explored, 0u);
}

TEST(WindowReopt, TinyNodeBudgetSkipsGracefully) {
  Rng gen(41);
  const ProblemInstance p = random_problem(gen, 14, 6);
  Rng rng(1);
  const Allocation alloc = make_allocator("ffps")->allocate(p, rng);
  WindowReoptConfig config;
  config.node_limit_per_window = 2;  // everything aborts
  const WindowReoptResult result = window_reoptimize(p, alloc, config);
  EXPECT_EQ(result.windows_improved, 0);
  EXPECT_EQ(result.windows_skipped, result.windows_solved);
  EXPECT_DOUBLE_EQ(result.energy_after, result.energy_before);
}

}  // namespace
}  // namespace esva
