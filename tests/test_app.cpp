// End-to-end tests of the esva CLI subcommands (src/app/commands.h), run
// in-process against temp files.

#include "app/commands.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "ilp/model.h"
#include "ilp/validate.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "test_util.h"
#include "util/logging.h"
#include "workload/trace.h"

namespace esva {
namespace {

class AppTest : public ::testing::Test {
 protected:
  std::string path(const std::string& name) const {
    return ::testing::TempDir() + "/esva_app_" + name;
  }

  int run(const std::string& command, std::vector<std::string> args) {
    out_.str("");
    err_.str("");
    std::vector<const char*> argv{"esva", command.c_str()};
    std::vector<std::string> storage = std::move(args);
    for (const std::string& arg : storage) argv.push_back(arg.c_str());
    return app::esva_main(static_cast<int>(argv.size()), argv.data(), out_,
                          err_);
  }

  std::string out() const { return out_.str(); }
  std::string err() const { return err_.str(); }

 private:
  std::ostringstream out_;
  std::ostringstream err_;
};

TEST_F(AppTest, HelpPrintsUsage) {
  EXPECT_EQ(run("help", {}), 0);
  EXPECT_NE(out().find("subcommands"), std::string::npos);
}

TEST_F(AppTest, UnknownSubcommandFails) {
  EXPECT_EQ(run("frobnicate", {}), 2);
  EXPECT_NE(err().find("unknown subcommand"), std::string::npos);
}

TEST_F(AppTest, MissingSubcommandFails) {
  const char* argv[] = {"esva"};
  std::ostringstream out_stream;
  std::ostringstream err_stream;
  EXPECT_EQ(app::esva_main(1, argv, out_stream, err_stream), 2);
}

TEST_F(AppTest, GenerateWritesTraces) {
  ASSERT_EQ(run("generate",
                {"--vms", "30", "--servers", "15", "--out-vms",
                 path("g_vms.csv"), "--out-servers", path("g_srv.csv")}),
            0)
      << err();
  EXPECT_EQ(load_vm_trace(path("g_vms.csv")).size(), 30u);
  EXPECT_EQ(load_server_trace(path("g_srv.csv")).size(), 15u);
  EXPECT_NE(out().find("wrote 30 VMs"), std::string::npos);
}

TEST_F(AppTest, GenerateStandardTypesOnly) {
  ASSERT_EQ(run("generate",
                {"--vms", "50", "--vm-types", "standard", "--server-types",
                 "1-3", "--out-vms", path("s_vms.csv"), "--out-servers",
                 path("s_srv.csv")}),
            0)
      << err();
  for (const VmSpec& vm : load_vm_trace(path("s_vms.csv")))
    EXPECT_EQ(vm.type_name.rfind("m1.", 0), 0u) << vm.type_name;
  for (const ServerSpec& s : load_server_trace(path("s_srv.csv")))
    EXPECT_NE(s.type_name, "server-type-4");
}

TEST_F(AppTest, GenerateRejectsBadTypeSet) {
  EXPECT_EQ(run("generate", {"--vm-types", "bogus", "--out-vms",
                             path("x.csv"), "--out-servers", path("y.csv")}),
            1);
  EXPECT_NE(err().find("unknown VM type set"), std::string::npos);
}

TEST_F(AppTest, GenerateDiurnalWorks) {
  ASSERT_EQ(run("generate",
                {"--vms", "40", "--diurnal", "--out-vms", path("d_vms.csv"),
                 "--out-servers", path("d_srv.csv")}),
            0)
      << err();
  EXPECT_EQ(load_vm_trace(path("d_vms.csv")).size(), 40u);
}

TEST_F(AppTest, FullPipelineGenerateAllocateEvaluateSimulate) {
  ASSERT_EQ(run("generate",
                {"--vms", "40", "--servers", "20", "--out-vms",
                 path("p_vms.csv"), "--out-servers", path("p_srv.csv")}),
            0);
  ASSERT_EQ(run("allocate",
                {"--vms", path("p_vms.csv"), "--servers", path("p_srv.csv"),
                 "--out-assignment", path("p_assign.csv")}),
            0)
      << err();
  EXPECT_NE(out().find("min-incremental"), std::string::npos);
  EXPECT_NE(out().find("total energy"), std::string::npos);

  ASSERT_EQ(run("evaluate",
                {"--vms", path("p_vms.csv"), "--servers", path("p_srv.csv"),
                 "--assignment", path("p_assign.csv"), "--timeout", "5"}),
            0)
      << err();
  EXPECT_NE(out().find("fixed timeout 5"), std::string::npos);

  ASSERT_EQ(run("simulate",
                {"--vms", path("p_vms.csv"), "--servers", path("p_srv.csv"),
                 "--assignment", path("p_assign.csv"), "--power-csv",
                 path("p_power.csv")}),
            0)
      << err();
  EXPECT_NE(out().find("simulated energy"), std::string::npos);
  std::ifstream power(path("p_power.csv"));
  ASSERT_TRUE(power.good());
  std::string header;
  std::getline(power, header);
  EXPECT_EQ(header, "t,total_power_w,active_servers,running_vms");
}

TEST_F(AppTest, AllocateThreadsAndCacheFlagsPreserveTheAssignment) {
  ASSERT_EQ(run("generate",
                {"--vms", "60", "--servers", "24", "--out-vms",
                 path("t_vms.csv"), "--out-servers", path("t_srv.csv")}),
            0);
  ASSERT_EQ(run("allocate",
                {"--vms", path("t_vms.csv"), "--servers", path("t_srv.csv"),
                 "--out-assignment", path("t_serial.csv")}),
            0)
      << err();
  // --threads 0 resolves to hardware concurrency; --cache memoizes scores.
  // Either way the assignment must be the serial one, byte for byte.
  ASSERT_EQ(run("allocate",
                {"--vms", path("t_vms.csv"), "--servers", path("t_srv.csv"),
                 "--threads", "0", "--cache", "--out-assignment",
                 path("t_parallel.csv")}),
            0)
      << err();
  std::ifstream serial(path("t_serial.csv"));
  std::ifstream parallel(path("t_parallel.csv"));
  std::stringstream serial_body, parallel_body;
  serial_body << serial.rdbuf();
  parallel_body << parallel.rdbuf();
  EXPECT_EQ(serial_body.str(), parallel_body.str());
}

TEST_F(AppTest, StreamReplaysTraceWithLatencyJsonIdenticalToBatch) {
  // The acceptance instance: 220 VMs on 44 servers, replayed end-to-end
  // through the streaming engine with per-request latency metrics.
  ASSERT_EQ(run("generate",
                {"--vms", "220", "--servers", "44", "--seed", "7", "--out-vms",
                 path("st_vms.csv"), "--out-servers", path("st_srv.csv")}),
            0);
  ASSERT_EQ(run("allocate",
                {"--vms", path("st_vms.csv"), "--servers", path("st_srv.csv"),
                 "--out-assignment", path("st_batch.csv")}),
            0)
      << err();
  ASSERT_EQ(run("stream",
                {"--vms", path("st_vms.csv"), "--servers", path("st_srv.csv"),
                 "--out-assignment", path("st_stream.csv"), "--latency-json",
                 path("st_latency.json"), "--stats", path("st_stats.json")}),
            0)
      << err();
  EXPECT_NE(out().find("requests/sec"), std::string::npos);
  EXPECT_NE(out().find("submit latency p99"), std::string::npos);

  // Streaming with rolling GC must reproduce the batch assignment exactly.
  std::ifstream batch(path("st_batch.csv"));
  std::ifstream stream(path("st_stream.csv"));
  std::stringstream batch_body, stream_body;
  batch_body << batch.rdbuf();
  stream_body << stream.rdbuf();
  EXPECT_EQ(batch_body.str(), stream_body.str());

  std::ifstream latency(path("st_latency.json"));
  ASSERT_TRUE(latency.good());
  std::stringstream latency_body;
  latency_body << latency.rdbuf();
  EXPECT_NE(latency_body.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(latency_body.str().find("\"p99\""), std::string::npos);
  EXPECT_NE(latency_body.str().find("\"requests\": 220"), std::string::npos);

  std::ifstream stats(path("st_stats.json"));
  std::stringstream stats_body;
  stats_body << stats.rdbuf();
  EXPECT_NE(stats_body.str().find("engine.submit_ms"), std::string::npos);
  EXPECT_NE(stats_body.str().find("engine.requests"), std::string::npos);
}

TEST_F(AppTest, StreamGeneratesLazilyAndRejectsAmbiguousSource) {
  ASSERT_EQ(run("generate",
                {"--vms", "10", "--servers", "16", "--out-vms",
                 path("sg_vms.csv"), "--out-servers", path("sg_srv.csv")}),
            0);
  ASSERT_EQ(run("stream", {"--generate", "50", "--servers",
                           path("sg_srv.csv"), "--allocator", "ffps"}),
            0)
      << err();
  EXPECT_NE(out().find("ffps"), std::string::npos);

  // Neither or both of --vms/--generate is an error.
  EXPECT_EQ(run("stream", {"--servers", path("sg_srv.csv")}), 1);
  EXPECT_NE(err().find("exactly one"), std::string::npos);
  EXPECT_EQ(run("stream", {"--vms", path("sg_vms.csv"), "--generate", "5",
                           "--servers", path("sg_srv.csv")}),
            1);
}

TEST_F(AppTest, StreamAppliesFaultPlanWithRetries) {
  ASSERT_EQ(run("generate",
                {"--vms", "80", "--servers", "6", "--seed", "7", "--out-vms",
                 path("sf_vms.csv"), "--out-servers", path("sf_srv.csv")}),
            0);
  {
    std::ofstream plan(path("sf_faults.csv"));
    plan << "time,event,server\n20,fail,0\n40,recover,0\n30,drain,1\n";
  }
  ASSERT_EQ(run("stream",
                {"--vms", path("sf_vms.csv"), "--servers", path("sf_srv.csv"),
                 "--faults", path("sf_faults.csv"), "--retry-max", "3",
                 "--retry-delay", "4", "--latency-json",
                 path("sf_latency.json"), "--stats", path("sf_stats.json")}),
            0)
      << err();
  EXPECT_NE(out().find("fault events"), std::string::npos);
  EXPECT_NE(out().find("downtime (units)"), std::string::npos);

  std::ifstream latency(path("sf_latency.json"));
  std::stringstream latency_body;
  latency_body << latency.rdbuf();
  EXPECT_NE(latency_body.str().find("\"fault_events\": 3"), std::string::npos);
  EXPECT_NE(latency_body.str().find("\"downtime_units\""), std::string::npos);

  std::ifstream stats(path("sf_stats.json"));
  std::stringstream stats_body;
  stats_body << stats.rdbuf();
  EXPECT_NE(stats_body.str().find("engine.rejected_final"), std::string::npos);

  // A plan referencing a server outside the fleet is rejected up front.
  {
    std::ofstream plan(path("sf_bad.csv"));
    plan << "time,event,server\n20,fail,99\n";
  }
  EXPECT_EQ(run("stream",
                {"--vms", path("sf_vms.csv"), "--servers", path("sf_srv.csv"),
                 "--faults", path("sf_bad.csv")}),
            1);
  EXPECT_NE(err().find("outside the fleet"), std::string::npos);
}

TEST_F(AppTest, StreamRejectsBatchOnlyAllocators) {
  ASSERT_EQ(run("generate",
                {"--vms", "10", "--servers", "8", "--out-vms",
                 path("sb_vms.csv"), "--out-servers", path("sb_srv.csv")}),
            0);
  EXPECT_EQ(run("stream",
                {"--vms", path("sb_vms.csv"), "--servers", path("sb_srv.csv"),
                 "--allocator", "lookahead-8"}),
            1);
  EXPECT_NE(err().find("batch-only"), std::string::npos);
}

TEST_F(AppTest, AllocateAcceptsExtensionAllocators) {
  ASSERT_EQ(run("generate",
                {"--vms", "25", "--servers", "12", "--out-vms",
                 path("l_vms.csv"), "--out-servers", path("l_srv.csv")}),
            0);
  ASSERT_EQ(run("allocate",
                {"--vms", path("l_vms.csv"), "--servers", path("l_srv.csv"),
                 "--allocator", "lookahead-8"}),
            0)
      << err();
  EXPECT_NE(out().find("lookahead-8"), std::string::npos);
}

TEST_F(AppTest, AllocateFailsOnUnknownAllocator) {
  ASSERT_EQ(run("generate",
                {"--vms", "10", "--servers", "5", "--out-vms",
                 path("u_vms.csv"), "--out-servers", path("u_srv.csv")}),
            0);
  EXPECT_EQ(run("allocate",
                {"--vms", path("u_vms.csv"), "--servers", path("u_srv.csv"),
                 "--allocator", "does-not-exist"}),
            1);
  EXPECT_NE(err().find("unknown allocator"), std::string::npos);
}

TEST_F(AppTest, EvaluateRejectsInfeasibleAssignment) {
  // Build a trivially infeasible assignment by hand: both big VMs on one
  // tiny server.
  using testing::server;
  using testing::vm;
  const std::vector<VmSpec> vms{vm(0, 1, 10, 6.0, 6.0), vm(1, 3, 12, 6.0, 6.0)};
  const std::vector<ServerSpec> servers{server(0, 10, 10, 100, 200),
                                        server(1, 10, 10, 100, 200)};
  save_vm_trace(path("i_vms.csv"), vms);
  save_server_trace(path("i_srv.csv"), servers);
  Allocation bad;
  bad.assignment = {0, 0};
  save_assignment(path("i_assign.csv"), bad);

  EXPECT_EQ(run("evaluate",
                {"--vms", path("i_vms.csv"), "--servers", path("i_srv.csv"),
                 "--assignment", path("i_assign.csv")}),
            1);
  EXPECT_NE(err().find("infeasible"), std::string::npos);
}

TEST_F(AppTest, ExportLpAndImportSolutionRoundTrip) {
  ASSERT_EQ(run("generate",
                {"--vms", "6", "--servers", "3", "--interarrival", "3",
                 "--duration", "8", "--out-vms", path("e_vms.csv"),
                 "--out-servers", path("e_srv.csv")}),
            0);
  ASSERT_EQ(run("export-lp",
                {"--vms", path("e_vms.csv"), "--servers", path("e_srv.csv"),
                 "--out", path("e.lp")}),
            0)
      << err();
  std::ifstream lp(path("e.lp"));
  ASSERT_TRUE(lp.good());

  // Produce a "solver solution" with our own machinery: allocate, derive
  // states, dump name/value pairs, then import it.
  ASSERT_EQ(run("allocate",
                {"--vms", path("e_vms.csv"), "--servers", path("e_srv.csv"),
                 "--out-assignment", path("e_assign.csv")}),
            0);
  const auto vms = load_vm_trace(path("e_vms.csv"));
  const auto servers = load_server_trace(path("e_srv.csv"));
  const ProblemInstance problem = make_problem(vms, servers);
  const Allocation alloc =
      load_assignment(path("e_assign.csv"), problem.num_vms());
  const auto active = derive_active_sets(problem, alloc);
  const IlpModel model = build_ilp(problem);
  const auto values = to_variable_assignment(model, problem, alloc, active);
  {
    std::ofstream sol(path("e.sol"));
    sol << "Objective " << model.objective_value(values) << "\n";
    for (std::size_t v = 0; v < values.size(); ++v)
      if (values[v] != 0.0) sol << model.var_name(v) << ' ' << values[v] << '\n';
  }
  ASSERT_EQ(run("import-solution",
                {"--vms", path("e_vms.csv"), "--servers", path("e_srv.csv"),
                 "--solution", path("e.sol"), "--out-assignment",
                 path("e_assign2.csv")}),
            0)
      << err();
  EXPECT_NE(out().find("feasible"), std::string::npos);
  EXPECT_NE(out().find("(matches)"), std::string::npos);
  EXPECT_EQ(load_assignment(path("e_assign2.csv"), problem.num_vms()).assignment,
            alloc.assignment);
}

TEST_F(AppTest, MissingTraceFileGivesCleanError) {
  EXPECT_EQ(run("allocate", {"--vms", "/nonexistent/vms.csv"}), 1);
  EXPECT_NE(err().find("allocate:"), std::string::npos);
}

TEST_F(AppTest, AllocateWritesDecisionTraceAndStats) {
  ASSERT_EQ(run("generate",
                {"--vms", "20", "--servers", "10", "--out-vms",
                 path("t_vms.csv"), "--out-servers", path("t_srv.csv")}),
            0)
      << err();
  ASSERT_EQ(run("allocate",
                {"--vms", path("t_vms.csv"), "--servers", path("t_srv.csv"),
                 "--allocator", "min-incremental", "--out-assignment",
                 path("t_assign.csv"), "--trace", path("t_trace.jsonl"),
                 "--stats", path("t_stats.json")}),
            0)
      << err();
  EXPECT_NE(out().find("decision trace written to"), std::string::npos);
  EXPECT_NE(out().find("stats written to"), std::string::npos);

  // One decision per VM, replaying to the emitted assignment.
  const std::vector<VmDecisionTrace> decisions =
      load_trace_jsonl_file(path("t_trace.jsonl"));
  ASSERT_EQ(decisions.size(), 20u);
  const std::vector<VmSpec> vms = load_vm_trace(path("t_vms.csv"));
  const std::vector<ServerId> replayed = assignment_from_trace(decisions, 20);
  std::ifstream assign_file(path("t_assign.csv"));
  std::string header;
  std::getline(assign_file, header);
  std::string row;
  std::size_t rows = 0;
  while (std::getline(assign_file, row)) {
    const std::size_t comma = row.find(',');
    ASSERT_NE(comma, std::string::npos);
    const int vm_id = std::stoi(row.substr(0, comma));
    const int server = std::stoi(row.substr(comma + 1));
    EXPECT_EQ(replayed[static_cast<std::size_t>(vm_id)], server) << row;
    ++rows;
  }
  EXPECT_EQ(rows, 20u);

  // Stats JSON must carry nonzero timer aggregates.
  std::ifstream stats_file(path("t_stats.json"));
  std::stringstream stats;
  stats << stats_file.rdbuf();
  EXPECT_NE(stats.str().find("\"timers\""), std::string::npos);
  EXPECT_NE(stats.str().find("allocator.min-incremental.allocate_ms"),
            std::string::npos);
  EXPECT_NE(stats.str().find("\"count\": 1"), std::string::npos);
}

TEST_F(AppTest, EvaluateWritesTraceAndStats) {
  ASSERT_EQ(run("generate",
                {"--vms", "12", "--servers", "8", "--out-vms",
                 path("e_vms.csv"), "--out-servers", path("e_srv.csv")}),
            0)
      << err();
  ASSERT_EQ(run("allocate",
                {"--vms", path("e_vms.csv"), "--servers", path("e_srv.csv"),
                 "--out-assignment", path("e_assign.csv")}),
            0)
      << err();
  ASSERT_EQ(run("evaluate",
                {"--vms", path("e_vms.csv"), "--servers", path("e_srv.csv"),
                 "--assignment", path("e_assign.csv"), "--trace",
                 path("e_trace.jsonl"), "--stats", path("e_stats.json")}),
            0)
      << err();
  const std::vector<VmDecisionTrace> decisions =
      load_trace_jsonl_file(path("e_trace.jsonl"));
  ASSERT_EQ(decisions.size(), 12u);
  for (const VmDecisionTrace& d : decisions)
    EXPECT_EQ(d.allocator, "assignment");
  std::ifstream stats_file(path("e_stats.json"));
  std::stringstream stats;
  stats << stats_file.rdbuf();
  EXPECT_NE(stats.str().find("cost.total"), std::string::npos);
}

TEST_F(AppTest, StreamWritesTelemetryArtifacts) {
  ASSERT_EQ(run("generate",
                {"--vms", "60", "--servers", "12", "--seed", "7", "--out-vms",
                 path("tm_vms.csv"), "--out-servers", path("tm_srv.csv")}),
            0);
  ASSERT_EQ(run("stream",
                {"--vms", path("tm_vms.csv"), "--servers", path("tm_srv.csv"),
                 "--prom-out", path("tm.prom"), "--timeseries-out",
                 path("tm_series.csv"), "--timeseries-every", "2",
                 "--ledger-out", path("tm_ledger.jsonl"), "--latency-json",
                 path("tm_latency.json")}),
            0)
      << err();
  EXPECT_NE(out().find("prometheus metrics written to"), std::string::npos);
  EXPECT_NE(out().find("time series ("), std::string::npos);
  EXPECT_NE(out().find("energy ledger ("), std::string::npos);
  EXPECT_NE(out().find("ledger conserves energy"), std::string::npos);

  // Prometheus exposition: sanitized names, typed families, histogram-backed
  // submit latency as summary quantiles.
  std::stringstream prom;
  prom << std::ifstream(path("tm.prom")).rdbuf();
  EXPECT_NE(prom.str().find("# TYPE esva_engine_submit_ms summary"),
            std::string::npos);
  EXPECT_NE(prom.str().find("esva_engine_submit_ms{quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_NE(prom.str().find("esva_engine_requests_total 60"),
            std::string::npos);

  // Time series CSV: exact header + at least one sample row.
  std::ifstream series(path("tm_series.csv"));
  std::string header;
  ASSERT_TRUE(std::getline(series, header));
  EXPECT_EQ(header, TimeSeriesSampler::csv_header());
  std::string row;
  EXPECT_TRUE(std::getline(series, row));

  // Ledger JSONL: cause-tagged entries.
  std::stringstream ledger;
  ledger << std::ifstream(path("tm_ledger.jsonl")).rdbuf();
  EXPECT_NE(ledger.str().find("\"cause\":\"run\""), std::string::npos);

  // Latency JSON carries both the exact and the histogram percentiles.
  std::stringstream latency;
  latency << std::ifstream(path("tm_latency.json")).rdbuf();
  EXPECT_NE(latency.str().find("\"p50\""), std::string::npos);
  EXPECT_NE(latency.str().find("\"p50_hist\""), std::string::npos);
  EXPECT_NE(latency.str().find("\"p99_hist\""), std::string::npos);
}

TEST_F(AppTest, AllocateStatsCarriesSubmitHistogramPercentiles) {
  ASSERT_EQ(run("generate",
                {"--vms", "30", "--servers", "10", "--out-vms",
                 path("hp_vms.csv"), "--out-servers", path("hp_srv.csv")}),
            0);
  ASSERT_EQ(run("allocate",
                {"--vms", path("hp_vms.csv"), "--servers", path("hp_srv.csv"),
                 "--stats", path("hp_stats.json")}),
            0)
      << err();
  // The batch path drives the same engine, so engine.submit_ms is
  // histogram-backed and the stats JSON carries percentiles for it.
  std::stringstream stats;
  stats << std::ifstream(path("hp_stats.json")).rdbuf();
  EXPECT_NE(stats.str().find("\"engine.submit_ms\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"p50_ms\""), std::string::npos);
  EXPECT_NE(stats.str().find("\"p99_ms\""), std::string::npos);
}

TEST_F(AppTest, TopRendersDashboardWithEnergyAttribution) {
  ASSERT_EQ(run("generate",
                {"--vms", "10", "--servers", "12", "--out-vms",
                 path("tp_vms.csv"), "--out-servers", path("tp_srv.csv")}),
            0);
  ASSERT_EQ(run("top", {"--generate", "60", "--servers", path("tp_srv.csv"),
                        "--seed", "7", "--every", "2"}),
            0)
      << err();
  EXPECT_NE(out().find("trend"), std::string::npos);
  EXPECT_NE(out().find("active VMs"), std::string::npos);
  EXPECT_NE(out().find("power (W)"), std::string::npos);
  EXPECT_NE(out().find("submit latency (ms)"), std::string::npos);
  EXPECT_NE(out().find("energy cause"), std::string::npos);
  EXPECT_NE(out().find("conserved"), std::string::npos);
  EXPECT_EQ(out().find("NOT CONSERVED"), std::string::npos);

  // Exactly one of --vms / --generate, same contract as stream.
  EXPECT_EQ(run("top", {"--servers", path("tp_srv.csv")}), 1);
  EXPECT_NE(err().find("exactly one"), std::string::npos);
  EXPECT_EQ(run("top", {"--vms", path("tp_vms.csv"), "--generate", "5",
                        "--servers", path("tp_srv.csv")}),
            1);
}

TEST_F(AppTest, GlobalLogLevelFlagIsAcceptedAnywhere) {
  const LogLevel before = log_level();
  std::ostringstream out_stream;
  std::ostringstream err_stream;
  const char* argv[] = {"esva", "--log-level", "debug", "help"};
  EXPECT_EQ(app::esva_main(4, argv, out_stream, err_stream), 0);
  EXPECT_EQ(log_level(), LogLevel::Debug);

  const char* argv2[] = {"esva", "help", "--log-level=off"};
  EXPECT_EQ(app::esva_main(3, argv2, out_stream, err_stream), 0);
  EXPECT_EQ(log_level(), LogLevel::Off);
  set_log_level(before);
}

TEST_F(AppTest, BadLogLevelIsRejected) {
  std::ostringstream out_stream;
  std::ostringstream err_stream;
  const char* argv[] = {"esva", "--log-level", "loud", "help"};
  EXPECT_EQ(app::esva_main(4, argv, out_stream, err_stream), 2);
  EXPECT_NE(err_stream.str().find("--log-level"), std::string::npos);
}

}  // namespace
}  // namespace esva
