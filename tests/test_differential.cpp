// Distribution-coverage differential suite: the core consistency identities
// (closed form == simulator == ILP objective; validator acceptance; policy
// dominance) re-checked on workload families the module tests never touch —
// diurnal arrivals, heterogeneous transition times, overload with delayed
// admission, and migration-modified allocations.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "cluster/datacenter.h"
#include "ext/admission.h"
#include "ext/migration.h"
#include "ext/register.h"
#include "ext/timeout_policy.h"
#include "ilp/validate.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "test_util.h"
#include "workload/diurnal.h"
#include "workload/scenarios.h"

namespace esva {
namespace {

ProblemInstance diurnal_problem(std::uint64_t seed, int num_vms = 60,
                                int num_servers = 30) {
  Rng rng(seed);
  DiurnalConfig config;
  config.num_vms = num_vms;
  config.base_rate = 0.5;
  config.amplitude = 0.9;
  config.period = 240.0;  // short cycle so one instance spans several
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  std::vector<VmSpec> vms = generate_diurnal_workload(config, rng);
  std::vector<ServerSpec> servers =
      make_random_fleet(num_servers, all_server_types(), 0.5, 3.0, rng);
  return make_problem(std::move(vms), std::move(servers));
}

TEST(Differential, CostIdentitiesHoldOnDiurnalHeterogeneousInstances) {
  register_extension_allocators();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const ProblemInstance p = diurnal_problem(seed);
    for (const std::string name :
         {"min-incremental", "ffps", "ffps-reshuffle", "dot-product-fit",
          "lookahead-8"}) {
      Rng rng(seed + 500);
      const Allocation alloc = make_allocator(name)->allocate(p, rng);
      ASSERT_EQ(validate_allocation(p, alloc, false), "")
          << name << " seed " << seed;
      const Energy analytic = evaluate_cost(p, alloc).total();
      const Energy simulated =
          SimulationEngine(p, alloc).run().total_energy();
      ASSERT_NEAR(simulated, analytic, 1e-6 * std::max(1.0, analytic))
          << name << " seed " << seed;
      if (alloc.fully_allocated()) {
        const Energy eq7 =
            objective_eq7(p, alloc, derive_active_sets(p, alloc));
        ASSERT_NEAR(eq7, analytic, 1e-6) << name << " seed " << seed;
      }
    }
  }
}

TEST(Differential, TimeoutPolicyDominatedByOptimalOnDiurnalInstances) {
  for (std::uint64_t seed = 10; seed <= 15; ++seed) {
    const ProblemInstance p = diurnal_problem(seed);
    Rng rng(seed);
    const Allocation alloc =
        make_allocator("min-incremental")->allocate(p, rng);
    const Energy optimal = evaluate_cost(p, alloc).total();
    for (Time timeout : {0, 3, 15, 60})
      ASSERT_GE(evaluate_cost_with_timeout(p, alloc, {.timeout = timeout}),
                optimal - 1e-6)
          << "seed " << seed << " timeout " << timeout;
  }
}

TEST(Differential, MigrationInvariantsHoldAfterDiurnalAllocations) {
  for (std::uint64_t seed = 20; seed <= 25; ++seed) {
    const ProblemInstance p = diurnal_problem(seed);
    Rng rng(seed);
    const Allocation alloc = make_allocator("ffps")->allocate(p, rng);
    if (!alloc.fully_allocated()) continue;
    const MigrationResult result = optimize_with_migration(p, alloc);
    ASSERT_LE(result.net_total(), result.energy_before + 1e-6)
        << "seed " << seed;
    ASSERT_EQ(validate_allocation(p, result.allocation, false), "");
    // The improved allocation's identities still hold.
    const Energy analytic = evaluate_cost(p, result.allocation).total();
    const Energy simulated =
        SimulationEngine(p, result.allocation).run().total_energy();
    ASSERT_NEAR(simulated, analytic, 1e-6 * std::max(1.0, analytic));
  }
}

TEST(Differential, DelayedAdmissionSchedulesStayConsistent) {
  for (std::uint64_t seed = 30; seed <= 35; ++seed) {
    // Overloaded: tiny fleet for the diurnal peak.
    const ProblemInstance p = diurnal_problem(seed, 60, 6);
    DelayedAdmissionAllocator::Options options;
    options.max_delay = 120;
    const AdmissionResult result =
        DelayedAdmissionAllocator(options).schedule(p);

    const ProblemInstance realized =
        make_problem(result.scheduled_vms, p.servers);
    ASSERT_EQ(validate_allocation(realized, result.allocation, false), "")
        << "seed " << seed;
    const Energy analytic =
        evaluate_cost(realized, result.allocation).total();
    const Energy simulated =
        SimulationEngine(realized, result.allocation).run().total_energy();
    ASSERT_NEAR(simulated, analytic, 1e-6 * std::max(1.0, analytic))
        << "seed " << seed;
    // Delays are within bounds and only on admitted VMs.
    for (std::size_t j = 0; j < p.num_vms(); ++j) {
      if (result.delays[j] < 0) {
        ASSERT_EQ(result.allocation.assignment[j], kNoServer);
      } else {
        ASSERT_LE(result.delays[j], options.max_delay);
        ASSERT_EQ(result.scheduled_vms[j].start,
                  p.vms[j].start + result.delays[j]);
        ASSERT_EQ(result.scheduled_vms[j].duration(), p.vms[j].duration());
      }
    }
  }
}

TEST(Differential, MixedTransitionScenarioKeepsHeadlineClaim) {
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 77;
  const PointOutcome outcome =
      run_point(mixed_transition_scenario(100, 4.0), config);
  EXPECT_GT(outcome.headline_reduction(), 0.0);
}

}  // namespace
}  // namespace esva
