#include "sim/engine.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::vm;

TEST(Engine, SingleVmLedgerHandComputed) {
  const ProblemInstance p =
      make_problem({vm(0, 5, 14, 4.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const SimulationResult result = SimulationEngine(p, alloc).run();
  EXPECT_DOUBLE_EQ(result.per_server[0].idle, 1000.0);        // 10 × 100 W
  EXPECT_DOUBLE_EQ(result.per_server[0].run, 400.0);          // 10 × 40 W
  EXPECT_DOUBLE_EQ(result.per_server[0].transition, 200.0);   // one switch-on
  EXPECT_DOUBLE_EQ(result.total_energy(), 1600.0);
}

TEST(Engine, MatchesAnalyticCostModelExactly) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 1.0), vm(1, 8, 20, 3.0, 2.0), vm(2, 40, 45, 1.0, 1.0)},
      {basic_server(0), basic_server(1)});
  Allocation alloc;
  alloc.assignment = {0, 0, 1};
  const CostReport analytic = evaluate_cost(p, alloc);
  const SimulationResult simulated = SimulationEngine(p, alloc).run();
  for (std::size_t i = 0; i < p.num_servers(); ++i)
    EXPECT_NEAR(simulated.per_server[i].total(), analytic.per_server[i], 1e-9);
  EXPECT_NEAR(simulated.total_energy(), analytic.total(), 1e-9);
}

TEST(Engine, GapBridgingShowsUpAsIdleNotTransition) {
  // Gap of 2 (== alpha/P_idle) is bridged: energy appears as idle power.
  const ProblemInstance p =
      make_problem({vm(0, 1, 5), vm(1, 8, 10)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const SimulationResult result = SimulationEngine(p, alloc).run();
  EXPECT_DOUBLE_EQ(result.per_server[0].idle, 1000.0);  // (5+2+3) × 100
  EXPECT_DOUBLE_EQ(result.per_server[0].transition, 200.0);
}

TEST(Engine, LongGapCausesSecondTransition) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5), vm(1, 50, 54)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const SimulationResult result = SimulationEngine(p, alloc).run();
  EXPECT_DOUBLE_EQ(result.per_server[0].transition, 400.0);
  EXPECT_DOUBLE_EQ(result.per_server[0].idle, 1000.0);  // only busy time
}

TEST(Engine, ChargeInitialOptionDropsFirstAlpha) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5), vm(1, 50, 54)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const CostOptions literal{.charge_initial_transition = false};
  const SimulationResult result = SimulationEngine(p, alloc, literal).run();
  EXPECT_DOUBLE_EQ(result.per_server[0].transition, 200.0);  // only re-switch
}

TEST(Engine, UnallocatedVmsConsumeNothing) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {kNoServer};
  const SimulationResult result = SimulationEngine(p, alloc).run();
  EXPECT_DOUBLE_EQ(result.total_energy(), 0.0);
}

TEST(Engine, SamplesCoverEveryTimeUnit) {
  const ProblemInstance p =
      make_problem({vm(0, 3, 7, 5.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const SimulationResult result = SimulationEngine(p, alloc).run(true);
  ASSERT_EQ(result.samples.size(), static_cast<std::size_t>(p.horizon));
  // Before start: powered down.
  EXPECT_DOUBLE_EQ(result.samples[0].total_power, 0.0);
  EXPECT_EQ(result.samples[0].active_servers, 0);
  // During the VM: idle + 5 CPU × 10 W/CU.
  EXPECT_DOUBLE_EQ(result.samples[3].total_power, 150.0);  // t = 4
  EXPECT_EQ(result.samples[3].active_servers, 1);
  EXPECT_EQ(result.samples[3].running_vms, 1);
  // Last unit (t = 7) still running.
  EXPECT_DOUBLE_EQ(result.samples[6].total_power, 150.0);
}

TEST(Engine, SampledEnergyIntegratesToLedger) {
  // Σ power over time units + transitions == total energy (power is
  // piecewise constant on unit intervals).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 1.0), vm(1, 4, 8, 3.0, 2.0), vm(2, 30, 35, 1.0, 1.0)},
      {basic_server(0), basic_server(1)});
  Allocation alloc;
  alloc.assignment = {0, 1, 0};
  const SimulationResult result = SimulationEngine(p, alloc).run(true);
  double integral = 0.0;
  for (const PowerSample& sample : result.samples)
    integral += sample.total_power;
  EXPECT_NEAR(integral + result.total.transition, result.total_energy(), 1e-9);
}

TEST(Engine, ConcurrentVmCountsAreTracked) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 1.0, 1.0), vm(1, 5, 15, 1.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const SimulationResult result = SimulationEngine(p, alloc).run(true);
  EXPECT_EQ(result.samples[2].running_vms, 1);   // t = 3
  EXPECT_EQ(result.samples[7].running_vms, 2);   // t = 8
  EXPECT_EQ(result.samples[12].running_vms, 1);  // t = 13
}

TEST(EngineProperty, AgreesWithCostModelOnRandomInstances) {
  // The strongest internal-consistency check in the repo: operational
  // accounting == closed form, for every allocator, across random instances,
  // in both cost conventions.
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng gen(seed * 13);
    const ProblemInstance p = random_problem(gen, 20, 8);
    for (const std::string& name : allocator_names()) {
      AllocatorPtr allocator = make_allocator(name);
      Rng rng(seed);
      const Allocation alloc = allocator->allocate(p, rng);
      for (bool charge_initial : {true, false}) {
        const CostOptions opts{.charge_initial_transition = charge_initial};
        const CostReport analytic = evaluate_cost(p, alloc, opts);
        const SimulationResult simulated =
            SimulationEngine(p, alloc, opts).run();
        ASSERT_NEAR(simulated.total_energy(), analytic.total(),
                    1e-6 * std::max(1.0, analytic.total()))
            << name << " seed " << seed << " charge=" << charge_initial;
        for (std::size_t i = 0; i < p.num_servers(); ++i)
          ASSERT_NEAR(simulated.per_server[i].total(), analytic.per_server[i],
                      1e-6)
              << name << " seed " << seed << " server " << i;
      }
    }
  }
}

}  // namespace
}  // namespace esva
