#include "core/allocation.h"

#include <gtest/gtest.h>

#include "core/problem.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::server;
using testing::vm;

ProblemInstance two_server_problem() {
  return make_problem({vm(0, 1, 5, 2.0, 1.0), vm(1, 3, 8, 3.0, 2.0),
                       vm(2, 10, 12, 1.0, 1.0)},
                      {basic_server(0), basic_server(1)});
}

TEST(Problem, MakeProblemComputesHorizon) {
  const ProblemInstance p = two_server_problem();
  EXPECT_EQ(p.horizon, 12);
  EXPECT_EQ(p.num_vms(), 3u);
  EXPECT_EQ(p.num_servers(), 2u);
}

TEST(Problem, ValidateAcceptsWellFormed) {
  EXPECT_EQ(validate_problem(two_server_problem()), "");
}

TEST(Problem, ValidateRejectsVmFittingNowhere) {
  const ProblemInstance p = make_problem({vm(0, 1, 5, 100.0, 1.0)},
                                         {basic_server(0)});
  EXPECT_NE(validate_problem(p).find("fits on no server"), std::string::npos);
}

TEST(Allocation, UnallocatedCounting) {
  Allocation alloc;
  alloc.assignment = {0, kNoServer, 1, kNoServer};
  EXPECT_EQ(alloc.num_unallocated(), 2u);
  EXPECT_FALSE(alloc.fully_allocated());
  alloc.assignment = {0, 1};
  EXPECT_TRUE(alloc.fully_allocated());
}

TEST(Allocation, VmsByServerGroups) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 1, 0};
  const auto grouped = vms_by_server(p, alloc);
  ASSERT_EQ(grouped.size(), 2u);
  ASSERT_EQ(grouped[0].size(), 2u);
  EXPECT_EQ(grouped[0][0].id, 0);
  EXPECT_EQ(grouped[0][1].id, 2);
  ASSERT_EQ(grouped[1].size(), 1u);
  EXPECT_EQ(grouped[1][0].id, 1);
}

TEST(Allocation, VmsByServerSkipsUnallocated) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, kNoServer, kNoServer};
  const auto grouped = vms_by_server(p, alloc);
  EXPECT_EQ(grouped[0].size(), 1u);
  EXPECT_EQ(grouped[1].size(), 0u);
}

TEST(EvaluateCost, MatchesPerServerHandComputation) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 0, 1};
  const CostReport report = evaluate_cost(p, alloc);
  // Server 0: VMs [1,5] 2cpu and [3,8] 3cpu. run = 10·2·5 + 10·3·6 = 280;
  // busy [1,8]: idle 800; transition 200 -> 1280.
  EXPECT_DOUBLE_EQ(report.per_server[0], 1280.0);
  // Server 1: VM [10,12] 1cpu: run 30, idle 300, transition 200 -> 530.
  EXPECT_DOUBLE_EQ(report.per_server[1], 530.0);
  EXPECT_DOUBLE_EQ(report.total(), 1810.0);
  EXPECT_EQ(report.used_servers, (std::vector<int>{0, 1}));
  EXPECT_DOUBLE_EQ(report.breakdown.run, 310.0);
  EXPECT_DOUBLE_EQ(report.breakdown.idle, 1100.0);
  EXPECT_DOUBLE_EQ(report.breakdown.transition, 400.0);
}

TEST(EvaluateCost, EmptyServersCostNothing) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 0, 0};
  const CostReport report = evaluate_cost(p, alloc);
  EXPECT_DOUBLE_EQ(report.per_server[1], 0.0);
  EXPECT_EQ(report.used_servers, (std::vector<int>{0}));
}

TEST(EvaluateCost, RespectsChargeInitialOption) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 0, 1};
  const CostOptions literal{.charge_initial_transition = false};
  const CostReport with = evaluate_cost(p, alloc);
  const CostReport without = evaluate_cost(p, alloc, literal);
  // Two used servers -> exactly two initial transitions (200 each) removed.
  EXPECT_DOUBLE_EQ(with.total() - without.total(), 400.0);
}

TEST(ValidateAllocation, AcceptsFeasible) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 1, 0};
  EXPECT_EQ(validate_allocation(p, alloc), "");
}

TEST(ValidateAllocation, RejectsWrongSize) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 1};
  EXPECT_NE(validate_allocation(p, alloc), "");
}

TEST(ValidateAllocation, RejectsUnallocatedWhenCompletenessRequired) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, kNoServer, 1};
  EXPECT_NE(validate_allocation(p, alloc, true), "");
  EXPECT_EQ(validate_allocation(p, alloc, false), "");
}

TEST(ValidateAllocation, RejectsInvalidServerId) {
  const ProblemInstance p = two_server_problem();
  Allocation alloc;
  alloc.assignment = {0, 5, 1};
  EXPECT_NE(validate_allocation(p, alloc).find("invalid server"),
            std::string::npos);
}

TEST(ValidateAllocation, DetectsCpuOverCommit) {
  // Two 6-CPU VMs overlap on a 10-CPU server.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 6.0, 1.0), vm(1, 5, 15, 6.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  EXPECT_NE(validate_allocation(p, alloc).find("CPU over capacity"),
            std::string::npos);
}

TEST(ValidateAllocation, DetectsMemoryOverCommit) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 1.0, 6.0), vm(1, 5, 15, 1.0, 6.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  EXPECT_NE(validate_allocation(p, alloc).find("memory over capacity"),
            std::string::npos);
}

TEST(ValidateAllocation, AcceptsBackToBackNonOverlapping) {
  // [1,10] and [11,20] never coexist: both 6-CPU VMs fit sequentially.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 6.0, 1.0), vm(1, 11, 20, 6.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  EXPECT_EQ(validate_allocation(p, alloc), "");
}

}  // namespace
}  // namespace esva
