#include "sim/report.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "util/csv.h"

namespace esva {
namespace {

Series linear_series() {
  Series s;
  s.label = "ours";
  s.xs = {1, 2, 3, 4};
  s.ys = {0.10, 0.20, 0.30, 0.40};
  return s;
}

FigureSpec basic_spec() {
  FigureSpec spec;
  spec.title = "Fig. T — test figure";
  spec.x_label = "x";
  spec.y_label = "ratio";
  spec.fit = FitModel::Linear;
  return spec;
}

TEST(Report, PrintsTitleHeaderAndFit) {
  std::ostringstream out;
  print_figure(out, basic_spec(), {linear_series()});
  const std::string text = out.str();
  EXPECT_NE(text.find("Fig. T"), std::string::npos);
  EXPECT_NE(text.find("ours"), std::string::npos);
  EXPECT_NE(text.find("fit[ours]"), std::string::npos);
  EXPECT_NE(text.find("Adj.R2"), std::string::npos);
}

TEST(Report, PercentModeScalesValues) {
  FigureSpec spec = basic_spec();
  spec.y_as_percent = true;
  spec.fit.reset();
  std::ostringstream out;
  print_figure(out, spec, {linear_series()});
  EXPECT_NE(out.str().find("10.00%"), std::string::npos);
  EXPECT_NE(out.str().find("40.00%"), std::string::npos);
}

TEST(Report, ErrorColumnsRendered) {
  Series s = linear_series();
  s.errs = {0.01, 0.01, 0.02, 0.02};
  FigureSpec spec = basic_spec();
  spec.fit.reset();
  std::ostringstream out;
  print_figure(out, spec, {s});
  EXPECT_NE(out.str().find("±"), std::string::npos);
}

TEST(Report, MultipleSeriesShareXGrid) {
  Series a = linear_series();
  Series b = linear_series();
  b.label = "ffps";
  b.ys = {0.0, 0.0, 0.0, 0.0};
  std::ostringstream out;
  print_figure(out, basic_spec(), {a, b});
  EXPECT_NE(out.str().find("ffps"), std::string::npos);
  EXPECT_NE(out.str().find("fit[ffps]"), std::string::npos);
}

TEST(Report, NoFitWhenUnset) {
  FigureSpec spec = basic_spec();
  spec.fit.reset();
  std::ostringstream out;
  print_figure(out, spec, {linear_series()});
  EXPECT_EQ(out.str().find("fit["), std::string::npos);
}

TEST(Report, CsvExportRoundTrips) {
  const std::string path = ::testing::TempDir() + "/esva_fig.csv";
  Series s = linear_series();
  s.errs = {0.01, 0.02, 0.03, 0.04};
  export_figure_csv(path, basic_spec(), {s});

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 5u);  // header + 4 points
  EXPECT_EQ(rows[0],
            (std::vector<std::string>{"x", "ours", "ours_err"}));
  EXPECT_EQ(rows[1][0], "1");
  EXPECT_DOUBLE_EQ(std::stod(rows[4][1]), 0.40);
  EXPECT_DOUBLE_EQ(std::stod(rows[4][2]), 0.04);
}

TEST(Report, CsvExportFailsOnBadPath) {
  EXPECT_THROW(
      export_figure_csv("/nonexistent/dir/fig.csv", basic_spec(), {}),
      std::runtime_error);
}

}  // namespace
}  // namespace esva
