#include "ext/admission.h"

#include <gtest/gtest.h>

#include "core/min_incremental.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::vm;

TEST(Admission, NoDelayWhenCapacitySuffices) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 2.0), vm(1, 5, 15, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  DelayedAdmissionAllocator allocator;
  const AdmissionResult result = allocator.schedule(p);
  EXPECT_EQ(result.rejected(), 0u);
  EXPECT_EQ(result.delays, (std::vector<Time>{0, 0}));
  EXPECT_DOUBLE_EQ(result.mean_delay(), 0.0);
  // With no delays, the schedule matches the plain greedy.
  MinIncrementalAllocator greedy;
  Rng rng(1);
  EXPECT_EQ(result.allocation.assignment,
            greedy.allocate(p, rng).assignment);
}

TEST(Admission, DelaysAnOverlappingVmJustEnough) {
  // Server holds 10 CPU; VM 1 (8 CPU) requested during VM 0's (8 CPU)
  // residency [1,10] fits only after VM 0 finishes: delay = 11 - 8 = 3.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 2.0), vm(1, 8, 17, 8.0, 2.0)}, {basic_server(0)});
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 10;
  DelayedAdmissionAllocator allocator(options);
  const AdmissionResult result = allocator.schedule(p);
  EXPECT_EQ(result.delays[0], 0);
  EXPECT_EQ(result.delays[1], 3);
  EXPECT_EQ(result.scheduled_vms[1].start, 11);
  EXPECT_EQ(result.scheduled_vms[1].end, 20);
  EXPECT_EQ(result.rejected(), 0u);
  EXPECT_DOUBLE_EQ(result.mean_delay(), 1.5);

  // The realized schedule is feasible against the shifted windows.
  const ProblemInstance realized =
      make_problem(result.scheduled_vms, p.servers);
  EXPECT_EQ(validate_allocation(realized, result.allocation), "");
}

TEST(Admission, RejectsWhenMaxDelayTooShort) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 2.0), vm(1, 8, 17, 8.0, 2.0)}, {basic_server(0)});
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 2;  // needs 3
  DelayedAdmissionAllocator allocator(options);
  const AdmissionResult result = allocator.schedule(p);
  EXPECT_EQ(result.delays[1], -1);
  EXPECT_EQ(result.allocation.assignment[1], kNoServer);
  EXPECT_EQ(result.rejected(), 1u);
  // The rejected VM keeps its requested window for reporting.
  EXPECT_EQ(result.scheduled_vms[1].start, 8);
}

TEST(Admission, ZeroMaxDelayDegeneratesToPlainGreedy) {
  Rng gen(5);
  const ProblemInstance p = random_problem(gen, 20, 8);
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 0;
  DelayedAdmissionAllocator delayed(options);
  MinIncrementalAllocator greedy;
  Rng rng(1);
  EXPECT_EQ(delayed.schedule(p).allocation.assignment,
            greedy.allocate(p, rng).assignment);
}

TEST(Admission, VmTooBigForAnyServerIsRejectedNotLooped) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 99.0, 2.0)}, {basic_server(0)});
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 1000;
  DelayedAdmissionAllocator allocator(options);
  const AdmissionResult result = allocator.schedule(p);
  EXPECT_EQ(result.rejected(), 1u);
}

TEST(Admission, DelayedWindowsMayExceedOriginalHorizon) {
  // The only feasible slot for VM 1 extends past the requested horizon; the
  // scheduler must allow it (timelines sized horizon + max_delay).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 2.0), vm(1, 6, 10, 8.0, 2.0)}, {basic_server(0)});
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 20;
  DelayedAdmissionAllocator allocator(options);
  const AdmissionResult result = allocator.schedule(p);
  EXPECT_EQ(result.rejected(), 0u);
  EXPECT_EQ(result.scheduled_vms[1].start, 11);
  EXPECT_GT(result.scheduled_vms[1].end, p.horizon);
}

TEST(Admission, AllocatorInterfaceDropsDelays) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 2.0), vm(1, 8, 17, 8.0, 2.0)}, {basic_server(0)});
  DelayedAdmissionAllocator::Options options;
  options.max_delay = 10;
  DelayedAdmissionAllocator allocator(options);
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[1], 0);  // admitted via delay
}

TEST(Admission, OverloadedClusterSmokeTest) {
  // Tight fleet: 30 chunky VMs on 3 servers; delays must keep rejections
  // below the no-delay policy's.
  std::vector<VmSpec> vms;
  for (int j = 0; j < 30; ++j)
    vms.push_back(vm(j, 1 + j / 3, 20 + j / 3, 5.0, 5.0));
  std::vector<ServerSpec> servers{basic_server(0), basic_server(1),
                                  basic_server(2)};
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));

  MinIncrementalAllocator greedy;
  Rng rng(1);
  const std::size_t rejected_plain =
      greedy.allocate(p, rng).num_unallocated();

  DelayedAdmissionAllocator::Options options;
  options.max_delay = 200;
  DelayedAdmissionAllocator delayed(options);
  const AdmissionResult result = delayed.schedule(p);
  EXPECT_LT(result.rejected(), rejected_plain);
  EXPECT_EQ(result.rejected(), 0u);  // enough runway to admit everyone
  EXPECT_GT(result.mean_delay(), 0.0);

  const ProblemInstance realized =
      make_problem(result.scheduled_vms, p.servers);
  EXPECT_EQ(validate_allocation(realized, result.allocation), "");
}

}  // namespace
}  // namespace esva
