#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "util/csv.h"

namespace esva {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, KeepsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Timer, AggregatesCountTotalMinMax) {
  Timer t;
  EXPECT_EQ(t.stats().count, 0);
  EXPECT_EQ(t.stats().mean_ms(), 0.0);  // no division by zero
  t.record_ms(4.0);
  t.record_ms(1.0);
  t.record_ms(7.0);
  const Timer::Stats s = t.stats();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.total_ms, 12.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 4.0);
}

TEST(ScopedTimer, RecordsOneNonNegativeSampleOnDestruction) {
  Timer t;
  {
    ScopedTimer probe(&t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const Timer::Stats s = t.stats();
  ASSERT_EQ(s.count, 1);
  EXPECT_GE(s.total_ms, 0.0);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  ScopedTimer probe(nullptr);  // must not crash on construction/destruction
}

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("allocations");
  a.inc(3);
  Counter& b = registry.counter("allocations");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);

  Gauge& g1 = registry.gauge("load");
  g1.set(0.75);
  EXPECT_EQ(&g1, &registry.gauge("load"));

  Timer& t1 = registry.timer("alloc_ms");
  t1.record_ms(5.0);
  EXPECT_EQ(&t1, &registry.timer("alloc_ms"));
  EXPECT_EQ(registry.timer("alloc_ms").stats().count, 1);
}

TEST(MetricsRegistry, SameNameDifferentKindsAreSeparateMetrics) {
  MetricsRegistry registry;
  registry.inc("x", 2);
  registry.set("x", 9.0);
  registry.timer("x").record_ms(1.0);
  EXPECT_EQ(registry.counter("x").value(), 2);
  EXPECT_EQ(registry.gauge("x").value(), 9.0);
  EXPECT_EQ(registry.timer("x").stats().count, 1);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.inc("zebra");
  registry.inc("alpha", 5);
  registry.set("mid", 1.5);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 5);
  EXPECT_EQ(snap.counters[1].first, "zebra");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "mid");
}

TEST(MetricsRegistry, JsonContainsAllSectionsAndValues) {
  MetricsRegistry registry;
  registry.inc("vm.count", 7);
  registry.set("cpu.load", 0.5);
  registry.timer("alloc_ms").record_ms(2.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"vm.count\""), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
  EXPECT_NE(json.find("\"alloc_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
}

TEST(MetricsRegistry, CsvEmitsOneRowPerField) {
  MetricsRegistry registry;
  registry.inc("events", 3);
  registry.set("level", 2.5);
  registry.timer("t").record_ms(1.0);
  std::ostringstream out;
  registry.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("counter,events,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,level,value,2.5"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,count,1"), std::string::npos);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.inc("a", 10);
  registry.reset();
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_EQ(registry.counter("a").value(), 0);  // fresh metric after reset
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  Counter& hot = registry.counter("hot");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &hot] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        hot.inc();
        // Mixed-path hammering: lookups and timer records race too.
        if (i % 1000 == 0) {
          registry.inc("cold");
          registry.timer("t").record_ms(0.001);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hot.value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.counter("cold").value(),
            kThreads * (kIncrementsPerThread / 1000));
  EXPECT_EQ(registry.timer("t").stats().count,
            kThreads * (kIncrementsPerThread / 1000));
}

TEST(MetricsRegistry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&global_metrics(), &global_metrics());
}

// --- export hygiene: quoting, escaping, exposition format -------------------

TEST(MetricsRegistry, CsvQuotesNamesWithCommasAndQuotes) {
  MetricsRegistry registry;
  registry.inc("events,total", 3);
  registry.set("say \"hi\"", 1.0);
  std::ostringstream out;
  registry.write_csv(out);
  std::istringstream lines(out.str());
  std::string line;
  bool saw_counter = false;
  bool saw_gauge = false;
  while (std::getline(lines, line)) {
    // Every row must parse back to exactly four fields despite the embedded
    // comma/quote (RFC 4180 quoting round-trips through parse_csv_line).
    const std::vector<std::string> fields = parse_csv_line(line);
    ASSERT_EQ(fields.size(), 4u) << line;
    if (fields[1] == "events,total") {
      saw_counter = true;
      EXPECT_EQ(fields[0], "counter");
      EXPECT_EQ(fields[3], "3");
      EXPECT_NE(line.find("\"events,total\""), std::string::npos);
    }
    if (fields[1] == "say \"hi\"") {
      saw_gauge = true;
      EXPECT_NE(line.find("\"say \"\"hi\"\"\""), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_counter);
  EXPECT_TRUE(saw_gauge);
}

TEST(MetricsRegistry, JsonEscapesControlCharactersAndQuotes) {
  MetricsRegistry registry;
  registry.inc("weird\"name\\with\nnewline\tand\x01" "ctrl");
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("weird\\\"name\\\\with\\nnewline\\tand\\u0001ctrl"),
            std::string::npos);
  // No raw control bytes may survive into the output.
  for (char c : json) {
    EXPECT_TRUE(static_cast<unsigned char>(c) >= 0x20 || c == '\n') << json;
  }
}

TEST(MetricsRegistry, PrometheusExpositionIsSortedSanitizedAndTyped) {
  MetricsRegistry registry;
  registry.inc("engine.requests", 7);
  registry.set("cpu load%", 0.5);
  registry.timer("plain_ms").record_ms(2.0);
  Timer& backed = registry.histogram_timer("engine.submit_ms");
  backed.record_ms(1.0);
  backed.record_ms(3.0);
  const std::string text = registry.to_prometheus();

  // Dots and spaces sanitize to underscores under the esva_ prefix; counters
  // get the _total suffix and a TYPE line.
  EXPECT_NE(text.find("# TYPE esva_engine_requests_total counter\n"
                      "esva_engine_requests_total 7\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE esva_cpu_load_ gauge\nesva_cpu_load_ 0.5\n"),
            std::string::npos);
  // Histogram-backed timers expose summary quantiles; plain timers only
  // _sum/_count.
  EXPECT_NE(text.find("esva_engine_submit_ms{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("esva_engine_submit_ms_sum 4\n"), std::string::npos);
  EXPECT_NE(text.find("esva_engine_submit_ms_count 2\n"), std::string::npos);
  EXPECT_EQ(text.find("esva_plain_ms{quantile"), std::string::npos);
  EXPECT_NE(text.find("# TYPE esva_plain_ms summary\n"), std::string::npos);

  // Families are globally sorted by exposed name, independent of kind.
  const std::vector<std::string> order = {
      "# TYPE esva_cpu_load_ gauge", "# TYPE esva_engine_requests_total",
      "# TYPE esva_engine_submit_ms summary", "# TYPE esva_plain_ms summary"};
  std::size_t pos = 0;
  for (const std::string& marker : order) {
    const std::size_t at = text.find(marker);
    ASSERT_NE(at, std::string::npos) << marker;
    EXPECT_GE(at, pos) << marker;
    pos = at;
  }
  // Exposition ends with a newline (text-format requirement).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(text.back(), '\n');
}

TEST(MetricsRegistry, PrometheusOutputIsStableAcrossInsertionOrder) {
  MetricsRegistry a;
  a.inc("zz");
  a.set("aa", 1.0);
  MetricsRegistry b;
  b.set("aa", 1.0);
  b.inc("zz");
  EXPECT_EQ(a.to_prometheus(), b.to_prometheus());
}

}  // namespace
}  // namespace esva
