#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <thread>
#include <vector>

namespace esva {
namespace {

TEST(Counter, StartsAtZeroAndAccumulates) {
  Counter c;
  EXPECT_EQ(c.value(), 0);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42);
}

TEST(Gauge, KeepsLastWrittenValue) {
  Gauge g;
  EXPECT_EQ(g.value(), 0.0);
  g.set(3.5);
  g.set(-1.25);
  EXPECT_EQ(g.value(), -1.25);
}

TEST(Timer, AggregatesCountTotalMinMax) {
  Timer t;
  EXPECT_EQ(t.stats().count, 0);
  EXPECT_EQ(t.stats().mean_ms(), 0.0);  // no division by zero
  t.record_ms(4.0);
  t.record_ms(1.0);
  t.record_ms(7.0);
  const Timer::Stats s = t.stats();
  EXPECT_EQ(s.count, 3);
  EXPECT_DOUBLE_EQ(s.total_ms, 12.0);
  EXPECT_DOUBLE_EQ(s.min_ms, 1.0);
  EXPECT_DOUBLE_EQ(s.max_ms, 7.0);
  EXPECT_DOUBLE_EQ(s.mean_ms(), 4.0);
}

TEST(ScopedTimer, RecordsOneNonNegativeSampleOnDestruction) {
  Timer t;
  {
    ScopedTimer probe(&t);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  const Timer::Stats s = t.stats();
  ASSERT_EQ(s.count, 1);
  EXPECT_GE(s.total_ms, 0.0);
}

TEST(ScopedTimer, NullTimerIsANoOp) {
  ScopedTimer probe(nullptr);  // must not crash on construction/destruction
}

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("allocations");
  a.inc(3);
  Counter& b = registry.counter("allocations");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3);

  Gauge& g1 = registry.gauge("load");
  g1.set(0.75);
  EXPECT_EQ(&g1, &registry.gauge("load"));

  Timer& t1 = registry.timer("alloc_ms");
  t1.record_ms(5.0);
  EXPECT_EQ(&t1, &registry.timer("alloc_ms"));
  EXPECT_EQ(registry.timer("alloc_ms").stats().count, 1);
}

TEST(MetricsRegistry, SameNameDifferentKindsAreSeparateMetrics) {
  MetricsRegistry registry;
  registry.inc("x", 2);
  registry.set("x", 9.0);
  registry.timer("x").record_ms(1.0);
  EXPECT_EQ(registry.counter("x").value(), 2);
  EXPECT_EQ(registry.gauge("x").value(), 9.0);
  EXPECT_EQ(registry.timer("x").stats().count, 1);
}

TEST(MetricsRegistry, SnapshotIsSortedByName) {
  MetricsRegistry registry;
  registry.inc("zebra");
  registry.inc("alpha", 5);
  registry.set("mid", 1.5);
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");
  EXPECT_EQ(snap.counters[0].second, 5);
  EXPECT_EQ(snap.counters[1].first, "zebra");
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].first, "mid");
}

TEST(MetricsRegistry, JsonContainsAllSectionsAndValues) {
  MetricsRegistry registry;
  registry.inc("vm.count", 7);
  registry.set("cpu.load", 0.5);
  registry.timer("alloc_ms").record_ms(2.0);
  const std::string json = registry.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"timers\""), std::string::npos);
  EXPECT_NE(json.find("\"vm.count\""), std::string::npos);
  EXPECT_NE(json.find("7"), std::string::npos);
  EXPECT_NE(json.find("\"alloc_ms\""), std::string::npos);
  EXPECT_NE(json.find("\"count\""), std::string::npos);
}

TEST(MetricsRegistry, CsvEmitsOneRowPerField) {
  MetricsRegistry registry;
  registry.inc("events", 3);
  registry.set("level", 2.5);
  registry.timer("t").record_ms(1.0);
  std::ostringstream out;
  registry.write_csv(out);
  const std::string csv = out.str();
  EXPECT_NE(csv.find("counter,events,value,3"), std::string::npos);
  EXPECT_NE(csv.find("gauge,level,value,2.5"), std::string::npos);
  EXPECT_NE(csv.find("timer,t,count,1"), std::string::npos);
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.inc("a", 10);
  registry.reset();
  const MetricsRegistry::Snapshot snap = registry.snapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_EQ(registry.counter("a").value(), 0);  // fresh metric after reset
}

TEST(MetricsRegistry, ConcurrentIncrementsAreLossless) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kIncrementsPerThread = 10000;
  Counter& hot = registry.counter("hot");
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&registry, &hot] {
      for (int i = 0; i < kIncrementsPerThread; ++i) {
        hot.inc();
        // Mixed-path hammering: lookups and timer records race too.
        if (i % 1000 == 0) {
          registry.inc("cold");
          registry.timer("t").record_ms(0.001);
        }
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(hot.value(), kThreads * kIncrementsPerThread);
  EXPECT_EQ(registry.counter("cold").value(),
            kThreads * (kIncrementsPerThread / 1000));
  EXPECT_EQ(registry.timer("t").stats().count,
            kThreads * (kIncrementsPerThread / 1000));
}

TEST(MetricsRegistry, GlobalRegistryIsASingleton) {
  EXPECT_EQ(&global_metrics(), &global_metrics());
}

}  // namespace
}  // namespace esva
