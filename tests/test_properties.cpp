// Parameterized property sweeps across (allocator × seed) pairs: every
// invariant that must hold for every algorithm on every instance.

#include <gtest/gtest.h>

#include <tuple>

#include "baselines/registry.h"
#include "core/cost_model.h"
#include "ilp/validate.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::random_problem;

class AllocatorPropertyTest
    : public ::testing::TestWithParam<std::tuple<std::string, std::uint64_t>> {
 protected:
  ProblemInstance draw_problem() {
    Rng gen(std::get<1>(GetParam()) * 977 + 5);
    return random_problem(gen, 22, 9);
  }

  Allocation allocate(const ProblemInstance& problem) {
    AllocatorPtr allocator = make_allocator(std::get<0>(GetParam()));
    Rng rng(std::get<1>(GetParam()));
    return allocator->allocate(problem, rng);
  }
};

TEST_P(AllocatorPropertyTest, AllocationsAreCapacityFeasible) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  EXPECT_EQ(validate_allocation(p, alloc, false), "");
}

TEST_P(AllocatorPropertyTest, EveryVmIsPlacedWhenCapacityIsAmple) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  EXPECT_EQ(alloc.num_unallocated(), 0u);
}

TEST_P(AllocatorPropertyTest, CostIsPositiveAndComponentsSum) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  const CostReport report = evaluate_cost(p, alloc);
  EXPECT_GT(report.total(), 0.0);
  EXPECT_NEAR(report.breakdown.run + report.breakdown.idle +
                  report.breakdown.transition,
              report.total(), 1e-9);
  Energy per_server_sum = 0.0;
  for (Energy e : report.per_server) per_server_sum += e;
  EXPECT_NEAR(per_server_sum, report.total(), 1e-6);
}

TEST_P(AllocatorPropertyTest, SimulatorConfirmsClosedFormCost) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  const Energy analytic = evaluate_cost(p, alloc).total();
  const Energy simulated = SimulationEngine(p, alloc).run().total_energy();
  EXPECT_NEAR(simulated, analytic, 1e-6 * std::max(1.0, analytic));
}

TEST_P(AllocatorPropertyTest, IlpConstraintsHoldUnderDerivedStates) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  if (!alloc.fully_allocated()) GTEST_SKIP();
  const auto active = derive_active_sets(p, alloc);
  EXPECT_EQ(check_constraints(p, alloc, active), "");
}

TEST_P(AllocatorPropertyTest, UtilizationStaysWithinPhysicalBounds) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  const UtilizationStats stats = average_utilization(p, alloc);
  EXPECT_GE(stats.avg_cpu, 0.0);
  EXPECT_LE(stats.avg_cpu, 1.0 + 1e-9);
  EXPECT_GE(stats.avg_mem, 0.0);
  EXPECT_LE(stats.avg_mem, 1.0 + 1e-9);
}

TEST_P(AllocatorPropertyTest, LiteralEq17IsExactlyInitialAlphasCheaper) {
  const ProblemInstance p = draw_problem();
  const Allocation alloc = allocate(p);
  const CostReport charged = evaluate_cost(p, alloc);
  const CostReport literal = evaluate_cost(
      p, alloc, CostOptions{.charge_initial_transition = false});
  Energy expected_difference = 0.0;
  for (int i : charged.used_servers)
    expected_difference +=
        p.servers[static_cast<std::size_t>(i)].transition_cost();
  EXPECT_NEAR(charged.total() - literal.total(), expected_difference, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    AllAllocatorsAcrossSeeds, AllocatorPropertyTest,
    ::testing::Combine(::testing::Values("min-incremental", "ffps",
                                         "ffps-noshuffle", "best-fit-cpu",
                                         "random-fit", "lowest-idle-power"),
                       ::testing::Range<std::uint64_t>(1, 6)),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, std::uint64_t>>& param_info) {
      std::string name = std::get<0>(param_info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name + "_seed" + std::to_string(std::get<1>(param_info.param));
    });

// Cost-model algebra properties over random busy structures.
class StructureCostProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StructureCostProperty, DeltaDecomposesSequencesOfInsertions) {
  // Summing incremental deltas along any insertion order reproduces the
  // final structure cost (telescoping), which is what makes greedy
  // accounting in the allocator exact.
  Rng rng(GetParam() * 7919);
  const ServerSpec spec = testing::server(
      0, 32, 64, rng.uniform_double(60, 200), rng.uniform_double(210, 400),
      rng.uniform_double(0.1, 2.5));
  IntervalSet busy;
  Energy accumulated = 0.0;
  for (int k = 0; k < 12; ++k) {
    const Time lo = static_cast<Time>(rng.uniform_int(1, 120));
    const Time hi = static_cast<Time>(
        rng.uniform_int(lo, std::min<Time>(140, lo + 30)));
    accumulated += structure_cost_delta(busy, lo, hi, spec);
    busy.insert(lo, hi);
  }
  EXPECT_NEAR(accumulated, structure_cost(busy, spec), 1e-6);
}

TEST_P(StructureCostProperty, CostInvariantUnderInsertionOrder) {
  // The structure cost depends only on the final busy set.
  Rng rng(GetParam() * 104729);
  const ServerSpec spec = testing::basic_server();
  std::vector<Interval> intervals;
  for (int k = 0; k < 8; ++k) {
    const Time lo = static_cast<Time>(rng.uniform_int(1, 100));
    intervals.push_back(Interval{
        lo, static_cast<Time>(rng.uniform_int(lo, std::min<Time>(120, lo + 20)))});
  }
  IntervalSet forward;
  for (const Interval& iv : intervals) forward.insert(iv.lo, iv.hi);
  IntervalSet backward;
  for (auto it = intervals.rbegin(); it != intervals.rend(); ++it)
    backward.insert(it->lo, it->hi);
  EXPECT_EQ(forward.intervals(), backward.intervals());
  EXPECT_DOUBLE_EQ(structure_cost(forward, spec),
                   structure_cost(backward, spec));
}

INSTANTIATE_TEST_SUITE_P(Seeds, StructureCostProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

}  // namespace
}  // namespace esva
