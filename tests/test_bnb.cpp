#include "ilp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

/// Test-local oracle: enumerate all n^m assignments.
ExactResult brute_force(const ProblemInstance& p) {
  ExactResult result;
  result.best.assignment.assign(p.num_vms(), kNoServer);
  const std::size_t m = p.num_vms();
  const std::size_t n = p.num_servers();
  std::vector<ServerId> assignment(m, 0);
  const auto total = static_cast<std::uint64_t>(std::pow(n, m) + 0.5);
  for (std::uint64_t code = 0; code < total; ++code) {
    std::uint64_t c = code;
    for (std::size_t j = 0; j < m; ++j) {
      assignment[j] = static_cast<ServerId>(c % n);
      c /= n;
    }
    Allocation alloc;
    alloc.assignment = assignment;
    if (!validate_allocation(p, alloc).empty()) continue;
    const Energy cost = evaluate_cost(p, alloc).total();
    if (cost < result.cost) {
      result.cost = cost;
      result.best = alloc;
      result.feasible = true;
    }
  }
  result.optimal = result.feasible;
  return result;
}

TEST(BranchAndBound, SingleVmPicksCheapestServer) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 2.0)},
      {server(0, 10, 10, 100, 200), server(1, 10, 10, 60, 140)});
  const ExactResult result = solve_exact(p);
  ASSERT_TRUE(result.optimal);
  EXPECT_EQ(result.best.assignment[0], 1);
  // run 8·2·10 = 160, idle 600, transition 140.
  EXPECT_DOUBLE_EQ(result.cost, 900.0);
}

TEST(BranchAndBound, MatchesBruteForceOnRandomTinyInstances) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 6, 3, 2.0, 6.0);
    const ExactResult expected = brute_force(p);
    const ExactResult actual = solve_exact(p);
    ASSERT_EQ(actual.feasible, expected.feasible) << "seed " << seed;
    if (expected.feasible) {
      ASSERT_TRUE(actual.optimal) << "seed " << seed;
      ASSERT_NEAR(actual.cost, expected.cost, 1e-6) << "seed " << seed;
      ASSERT_EQ(validate_allocation(p, actual.best), "") << "seed " << seed;
      ASSERT_NEAR(evaluate_cost(p, actual.best).total(), actual.cost, 1e-6);
    }
  }
}

TEST(BranchAndBound, NeverBeatenByAnyHeuristic) {
  for (std::uint64_t seed = 30; seed <= 42; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 7, 3, 2.0, 6.0);
    const ExactResult exact = solve_exact(p);
    if (!exact.feasible) continue;
    for (const std::string& name : allocator_names()) {
      AllocatorPtr allocator = make_allocator(name);
      Rng rng(seed);
      const Allocation alloc = allocator->allocate(p, rng);
      if (!alloc.fully_allocated()) continue;
      EXPECT_GE(evaluate_cost(p, alloc).total(), exact.cost - 1e-6)
          << name << " seed " << seed;
    }
  }
}

TEST(BranchAndBound, SymmetryBreakingPreservesOptimality) {
  // Four identical servers: the solver may only branch on the first empty
  // one, which must not change the optimum.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 6.0, 6.0), vm(1, 3, 8, 6.0, 6.0), vm(2, 20, 25, 1.0, 1.0)},
      {basic_server(0), basic_server(1), basic_server(2), basic_server(3)});
  const ExactResult with_symmetry = solve_exact(p);
  const ExactResult oracle = brute_force(p);
  ASSERT_TRUE(with_symmetry.optimal);
  EXPECT_NEAR(with_symmetry.cost, oracle.cost, 1e-9);
}

TEST(BranchAndBound, WarmStartUpperBoundStillFindsOptimum) {
  Rng gen(7);
  const ProblemInstance p = random_problem(gen, 6, 3, 2.0, 6.0);
  const ExactResult cold = solve_exact(p);
  ASSERT_TRUE(cold.optimal);

  ExactOptions warm;
  warm.initial_upper_bound = cold.cost * 1.0001;  // just above the optimum
  const ExactResult result = solve_exact(p, warm);
  ASSERT_TRUE(result.optimal);
  EXPECT_NEAR(result.cost, cold.cost, 1e-9);
  EXPECT_LE(result.nodes_explored, cold.nodes_explored);
}

TEST(BranchAndBound, TooTightUpperBoundYieldsInfeasible) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5)}, {basic_server(0)});
  ExactOptions options;
  options.initial_upper_bound = 1.0;  // below any real cost
  const ExactResult result = solve_exact(p, options);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.cost, kInf);
}

TEST(BranchAndBound, NodeLimitAborts) {
  Rng gen(9);
  const ProblemInstance p = random_problem(gen, 10, 5, 1.0, 20.0);
  ExactOptions options;
  options.node_limit = 5;
  const ExactResult result = solve_exact(p, options);
  EXPECT_FALSE(result.optimal);
  EXPECT_LE(result.nodes_explored, 6u);
}

TEST(BranchAndBound, InfeasibleVmMakesInstanceInfeasible) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5, 2.0, 2.0), vm(1, 1, 5, 99.0, 2.0)}, {basic_server(0)});
  const ExactResult result = solve_exact(p);
  EXPECT_FALSE(result.feasible);
}

TEST(BranchAndBound, HonorsLiteralEq17CostOption) {
  // With charge_initial_transition=false, splitting across two servers
  // avoids no alpha, so consolidation pressure changes; the solver must
  // still agree with a brute force that uses the same options.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 4, 2.0, 2.0), vm(1, 30, 33, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  ExactOptions options;
  options.cost.charge_initial_transition = false;

  ExactResult oracle;
  oracle.best.assignment.assign(2, kNoServer);
  for (ServerId a : {0, 1}) {
    for (ServerId b : {0, 1}) {
      Allocation alloc;
      alloc.assignment = {a, b};
      if (!validate_allocation(p, alloc).empty()) continue;
      const Energy cost = evaluate_cost(p, alloc, options.cost).total();
      if (cost < oracle.cost) {
        oracle.cost = cost;
        oracle.best = alloc;
        oracle.feasible = true;
      }
    }
  }
  const ExactResult result = solve_exact(p, options);
  ASSERT_TRUE(result.optimal);
  EXPECT_NEAR(result.cost, oracle.cost, 1e-9);
}

}  // namespace
}  // namespace esva
