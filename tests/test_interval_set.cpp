#include "util/interval_set.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.h"

namespace esva {
namespace {

std::vector<Interval> ivs(std::initializer_list<Interval> list) {
  return std::vector<Interval>(list);
}

TEST(IntervalSet, StartsEmpty) {
  IntervalSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_EQ(set.size(), 0u);
  EXPECT_EQ(set.total_length(), 0);
  EXPECT_TRUE(set.gaps().empty());
}

TEST(IntervalSet, SingleInsert) {
  IntervalSet set;
  const auto delta = set.insert(3, 7);
  EXPECT_EQ(delta.merged, (Interval{3, 7}));
  EXPECT_TRUE(delta.absorbed.empty());
  EXPECT_EQ(set.intervals(), ivs({{3, 7}}));
  EXPECT_EQ(set.total_length(), 5);
}

TEST(IntervalSet, DisjointInsertsStaySorted) {
  IntervalSet set;
  set.insert(10, 12);
  set.insert(1, 2);
  set.insert(5, 6);
  EXPECT_EQ(set.intervals(), ivs({{1, 2}, {5, 6}, {10, 12}}));
}

TEST(IntervalSet, OverlapMergesAndReportsAbsorbed) {
  IntervalSet set;
  set.insert(1, 3);
  set.insert(8, 10);
  const auto delta = set.insert(2, 9);
  EXPECT_EQ(delta.merged, (Interval{1, 10}));
  EXPECT_EQ(delta.absorbed, ivs({{1, 3}, {8, 10}}));
  EXPECT_EQ(set.intervals(), ivs({{1, 10}}));
}

TEST(IntervalSet, AdjacentIntervalsCoalesce) {
  // [1,3] and [4,6] leave no idle time unit between them: the server is
  // continuously busy, so they must merge (Fig. 1 semantics).
  IntervalSet set;
  set.insert(1, 3);
  const auto delta = set.insert(4, 6);
  EXPECT_EQ(delta.merged, (Interval{1, 6}));
  EXPECT_EQ(set.intervals(), ivs({{1, 6}}));
}

TEST(IntervalSet, GapOfOneUnitDoesNotCoalesce) {
  IntervalSet set;
  set.insert(1, 3);
  set.insert(5, 6);
  EXPECT_EQ(set.intervals(), ivs({{1, 3}, {5, 6}}));
  EXPECT_EQ(set.gaps(), ivs({{4, 4}}));
}

TEST(IntervalSet, InsertFullyInsideIsAbsorbedIntoExisting) {
  IntervalSet set;
  set.insert(1, 10);
  const auto delta = set.insert(4, 5);
  EXPECT_EQ(delta.merged, (Interval{1, 10}));
  EXPECT_EQ(delta.absorbed, ivs({{1, 10}}));
  EXPECT_EQ(set.intervals(), ivs({{1, 10}}));
}

TEST(IntervalSet, InsertCoveringEverything) {
  IntervalSet set;
  set.insert(2, 3);
  set.insert(6, 7);
  set.insert(10, 11);
  const auto delta = set.insert(1, 12);
  EXPECT_EQ(delta.absorbed.size(), 3u);
  EXPECT_EQ(set.intervals(), ivs({{1, 12}}));
}

TEST(IntervalSet, GapsBetweenThreeIntervals) {
  IntervalSet set;
  set.insert(1, 2);
  set.insert(5, 6);
  set.insert(10, 20);
  EXPECT_EQ(set.gaps(), ivs({{3, 4}, {7, 9}}));
}

TEST(IntervalSet, ContainsAndIntersects) {
  IntervalSet set;
  set.insert(5, 8);
  EXPECT_FALSE(set.contains(4));
  EXPECT_TRUE(set.contains(5));
  EXPECT_TRUE(set.contains(7));
  EXPECT_TRUE(set.contains(8));
  EXPECT_FALSE(set.contains(9));
  EXPECT_TRUE(set.intersects(1, 5));
  EXPECT_TRUE(set.intersects(8, 12));
  EXPECT_FALSE(set.intersects(1, 4));
  EXPECT_FALSE(set.intersects(9, 12));
}

TEST(IntervalSet, SpanCoversFirstToLast) {
  IntervalSet set;
  set.insert(4, 5);
  set.insert(20, 22);
  EXPECT_EQ(set.span(), (Interval{4, 22}));
}

TEST(IntervalSet, PreviewMatchesInsertWithoutMutation) {
  IntervalSet set;
  set.insert(1, 3);
  set.insert(7, 9);
  set.insert(15, 20);

  const auto preview = set.preview_insert(4, 8);
  EXPECT_EQ(set.size(), 3u) << "preview must not mutate";
  EXPECT_EQ(preview.merged, (Interval{1, 9}));  // absorbs [1,3] (adjacent) and [7,9]
  EXPECT_EQ(preview.absorbed, ivs({{1, 3}, {7, 9}}));
  EXPECT_FALSE(preview.has_left);
  EXPECT_TRUE(preview.has_right);
  EXPECT_EQ(preview.right, (Interval{15, 20}));

  const auto delta = set.insert(4, 8);
  EXPECT_EQ(delta.merged, preview.merged);
  EXPECT_EQ(delta.absorbed, preview.absorbed);
}

TEST(IntervalSet, PreviewNeighborsWhenNothingAbsorbed) {
  IntervalSet set;
  set.insert(1, 2);
  set.insert(10, 12);
  const auto preview = set.preview_insert(5, 6);
  EXPECT_TRUE(preview.absorbed.empty());
  EXPECT_TRUE(preview.has_left);
  EXPECT_EQ(preview.left, (Interval{1, 2}));
  EXPECT_TRUE(preview.has_right);
  EXPECT_EQ(preview.right, (Interval{10, 12}));
}

TEST(IntervalSet, EraseCoveredExactInterval) {
  IntervalSet set;
  set.insert(3, 8);
  set.erase_covered(3, 8);
  EXPECT_TRUE(set.empty());
}

TEST(IntervalSet, EraseCoveredMiddleSplits) {
  IntervalSet set;
  set.insert(1, 10);
  set.erase_covered(4, 6);
  EXPECT_EQ(set.intervals(), ivs({{1, 3}, {7, 10}}));
}

TEST(IntervalSet, EraseCoveredPrefixAndSuffix) {
  IntervalSet set;
  set.insert(1, 10);
  set.erase_covered(1, 3);
  EXPECT_EQ(set.intervals(), ivs({{4, 10}}));
  set.erase_covered(8, 10);
  EXPECT_EQ(set.intervals(), ivs({{4, 7}}));
}

TEST(IntervalSet, InsertUndoRoundTripRestoresState) {
  IntervalSet set;
  set.insert(1, 3);
  set.insert(7, 9);
  const auto before = set.intervals();

  const auto delta = set.insert(2, 8);
  set.erase_covered(delta.merged.lo, delta.merged.hi);
  for (const Interval& iv : delta.absorbed) set.insert(iv.lo, iv.hi);
  EXPECT_EQ(set.intervals(), before);
}

// Property: a random insertion sequence matches a naive boolean-array model.
TEST(IntervalSetProperty, MatchesNaiveModelOnRandomSequences) {
  Rng rng(101);
  constexpr Time kMax = 60;
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet set;
    std::vector<bool> model(kMax + 2, false);
    const int inserts = static_cast<int>(rng.uniform_int(1, 12));
    for (int k = 0; k < inserts; ++k) {
      const Time lo = static_cast<Time>(rng.uniform_int(1, kMax - 1));
      const Time hi =
          static_cast<Time>(rng.uniform_int(lo, std::min<Time>(kMax, lo + 15)));
      set.insert(lo, hi);
      for (Time t = lo; t <= hi; ++t) model[static_cast<std::size_t>(t)] = true;
    }
    // Rebuild intervals from the model and compare.
    std::vector<Interval> expected;
    for (Time t = 1; t <= kMax; ++t) {
      if (!model[static_cast<std::size_t>(t)]) continue;
      if (!expected.empty() && expected.back().hi == t - 1)
        expected.back().hi = t;
      else
        expected.push_back(Interval{t, t});
    }
    ASSERT_EQ(set.intervals(), expected) << "trial " << trial;
    for (Time t = 1; t <= kMax; ++t)
      ASSERT_EQ(set.contains(t), static_cast<bool>(model[static_cast<std::size_t>(t)]));
  }
}

}  // namespace
}  // namespace esva
