#include <gtest/gtest.h>

#include "cluster/resources.h"
#include "cluster/server_spec.h"
#include "cluster/vm.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::server;
using testing::vm;

TEST(Resources, Arithmetic) {
  Resources a{2.0, 4.0};
  Resources b{1.0, 1.5};
  EXPECT_EQ(a + b, (Resources{3.0, 5.5}));
  EXPECT_EQ(a - b, (Resources{1.0, 2.5}));
  EXPECT_EQ(a * 2.0, (Resources{4.0, 8.0}));
  a += b;
  EXPECT_EQ(a, (Resources{3.0, 5.5}));
  a -= b;
  EXPECT_EQ(a, (Resources{2.0, 4.0}));
}

TEST(Resources, FitsWithinBothDimensions) {
  Resources demand{2.0, 4.0};
  EXPECT_TRUE(demand.fits_within({2.0, 4.0}));
  EXPECT_TRUE(demand.fits_within({3.0, 5.0}));
  EXPECT_FALSE(demand.fits_within({1.9, 5.0}));  // CPU too small
  EXPECT_FALSE(demand.fits_within({3.0, 3.9}));  // memory too small
}

TEST(Resources, FitsWithinToleratesRoundoff) {
  Resources demand{1.0 + 1e-12, 1.0};
  EXPECT_TRUE(demand.fits_within({1.0, 1.0}));
}

TEST(Resources, NonNegative) {
  EXPECT_TRUE((Resources{0.0, 0.0}).non_negative());
  EXPECT_TRUE((Resources{1.0, 2.0}).non_negative());
  EXPECT_FALSE((Resources{-1.0, 2.0}).non_negative());
  EXPECT_FALSE((Resources{1.0, -0.5}).non_negative());
}

TEST(Resources, ToStringMentionsBothComponents) {
  const std::string s = Resources{2.5, 7.25}.to_string();
  EXPECT_NE(s.find("2.50"), std::string::npos);
  EXPECT_NE(s.find("7.25"), std::string::npos);
}

TEST(VmSpec, DurationIsInclusive) {
  EXPECT_EQ(vm(0, 5, 5).duration(), 1);
  EXPECT_EQ(vm(0, 5, 9).duration(), 5);
}

TEST(VmSpec, Validity) {
  EXPECT_TRUE(vm(0, 1, 1).valid());
  EXPECT_FALSE(vm(0, 0, 3).valid());   // start < 1
  EXPECT_FALSE(vm(0, 5, 4).valid());   // end < start
  EXPECT_FALSE(vm(0, 1, 2, -1.0).valid());  // negative demand
}

TEST(HorizonOf, EmptyAndNonEmpty) {
  EXPECT_EQ(horizon_of({}), 0);
  EXPECT_EQ(horizon_of({vm(0, 1, 7), vm(1, 3, 12), vm(2, 2, 5)}), 12);
}

TEST(OrderByStart, SortsByStartThenEndThenId) {
  std::vector<VmSpec> vms{vm(0, 5, 9), vm(1, 2, 10), vm(2, 5, 7),
                          vm(3, 2, 10)};
  const auto order = order_by_start(vms);
  // start=2: ids 1,3 (same end, id order). start=5: end 7 (id 2) before 9.
  EXPECT_EQ(order, (std::vector<std::size_t>{1, 3, 2, 0}));
}

TEST(ServerSpec, DerivedQuantities) {
  const ServerSpec s = server(0, 10.0, 16.0, 100.0, 200.0, 1.5);
  EXPECT_DOUBLE_EQ(s.unit_run_power(), 10.0);       // (200-100)/10
  EXPECT_DOUBLE_EQ(s.transition_cost(), 300.0);     // 200 × 1.5
  EXPECT_DOUBLE_EQ(s.power_at_load(0.0), 100.0);    // Eq. 1 at idle
  EXPECT_DOUBLE_EQ(s.power_at_load(1.0), 200.0);    // Eq. 1 at peak
  EXPECT_DOUBLE_EQ(s.power_at_load(0.5), 150.0);
}

TEST(ServerSpec, Validity) {
  EXPECT_TRUE(server(0, 1, 1, 0, 0).valid());
  EXPECT_FALSE(server(0, 0, 1, 10, 20).valid());   // zero CPU capacity
  EXPECT_FALSE(server(0, 1, 1, 30, 20).valid());   // idle > peak
  EXPECT_FALSE(server(0, 1, 1, -1, 20).valid());   // negative idle power
  EXPECT_FALSE(server(0, 1, 1, 10, 20, -1).valid());  // negative transition
}

TEST(ServerSpec, DescribeMentionsKeyFields) {
  const std::string text = describe(server(3, 16, 32, 105, 210, 1.0, "t1"));
  EXPECT_NE(text.find("t1"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
  EXPECT_NE(text.find("105.0"), std::string::npos);
  EXPECT_NE(text.find("210.0"), std::string::npos);
}

}  // namespace
}  // namespace esva
