#include "sim/metrics.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

TEST(Utilization, SingleVmSingleServer) {
  // 4/10 CPU and 2/10 memory for 10 time units; zero elsewhere. Averaging
  // nonzero samples gives exactly 0.4 and 0.2.
  const ProblemInstance p =
      make_problem({vm(0, 11, 20, 4.0, 2.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const UtilizationStats stats = average_utilization(p, alloc);
  EXPECT_DOUBLE_EQ(stats.avg_cpu, 0.4);
  EXPECT_DOUBLE_EQ(stats.avg_mem, 0.2);
  EXPECT_EQ(stats.cpu_samples, 10u);
  EXPECT_EQ(stats.mem_samples, 10u);
}

TEST(Utilization, NonzeroAveragingIgnoresIdleTime) {
  // Same VM, much longer horizon (implied by a second, far-away VM on
  // another server): the idle time must not dilute the average (§IV-C:
  // "averaging nonzero utilization values").
  const ProblemInstance p = make_problem(
      {vm(0, 11, 20, 4.0, 2.0), vm(1, 990, 1000, 5.0, 5.0)},
      {basic_server(0), basic_server(1)});
  Allocation alloc;
  alloc.assignment = {0, 1};
  const UtilizationStats stats = average_utilization(p, alloc);
  // Samples: 10 × 0.4 (server 0) + 11 × 0.5 (server 1) over 21 samples.
  EXPECT_NEAR(stats.avg_cpu, (10 * 0.4 + 11 * 0.5) / 21.0, 1e-12);
  EXPECT_EQ(stats.cpu_samples, 21u);
}

TEST(Utilization, OverlappingVmsStackUsage) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 1.0), vm(1, 6, 15, 3.0, 2.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const UtilizationStats stats = average_utilization(p, alloc);
  // t 1-5: 0.2; t 6-10: 0.5; t 11-15: 0.3 -> mean over 15 samples.
  EXPECT_NEAR(stats.avg_cpu, (5 * 0.2 + 5 * 0.5 + 5 * 0.3) / 15.0, 1e-12);
}

TEST(Utilization, CpuAndMemorySampleSetsDiffer) {
  // A VM with zero memory demand creates CPU samples but no memory samples.
  const ProblemInstance p =
      make_problem({vm(0, 1, 5, 2.0, 0.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const UtilizationStats stats = average_utilization(p, alloc);
  EXPECT_EQ(stats.cpu_samples, 5u);
  EXPECT_EQ(stats.mem_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_mem, 0.0);
}

TEST(Utilization, EmptyAllocationYieldsZero) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5, 2.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {kNoServer};
  const UtilizationStats stats = average_utilization(p, alloc);
  EXPECT_EQ(stats.cpu_samples, 0u);
  EXPECT_DOUBLE_EQ(stats.avg_cpu, 0.0);
}

TEST(ReductionRatio, Definition) {
  EXPECT_DOUBLE_EQ(energy_reduction_ratio(1000.0, 900.0), 0.1);
  EXPECT_DOUBLE_EQ(energy_reduction_ratio(1000.0, 1000.0), 0.0);
  EXPECT_DOUBLE_EQ(energy_reduction_ratio(500.0, 600.0), -0.2);
}

TEST(ComputeMetrics, BundlesEverything) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 1.0), vm(1, 5, 12, 1.0, 1.0)},
      {basic_server(0), basic_server(1)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const AllocationMetrics metrics = compute_metrics(p, alloc);
  EXPECT_DOUBLE_EQ(metrics.cost.total(), evaluate_cost(p, alloc).total());
  EXPECT_EQ(metrics.servers_used, 1);
  EXPECT_EQ(metrics.unallocated, 0u);
  EXPECT_GT(metrics.utilization.avg_cpu, 0.0);
}

TEST(ComputeMetrics, CountsUnallocated) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 2.0, 1.0), vm(1, 5, 12, 99.0, 1.0)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, kNoServer};
  const AllocationMetrics metrics = compute_metrics(p, alloc);
  EXPECT_EQ(metrics.unallocated, 1u);
  EXPECT_EQ(metrics.servers_used, 1);
}

}  // namespace
}  // namespace esva
