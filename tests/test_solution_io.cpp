#include "ilp/solution_io.h"

#include <gtest/gtest.h>

#include <sstream>

#include "ilp/model.h"
#include "ilp/validate.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

ProblemInstance small_problem() {
  return make_problem({vm(0, 1, 3, 2.0, 1.0), vm(1, 4, 6, 3.0, 2.0)},
                      {basic_server(0), basic_server(1)});
}

TEST(SolutionIo, ParsesPlainNameValuePairs) {
  std::istringstream in(
      "x_0_0 1\n"
      "x_1_1 1\n"
      "y_0_1 1\n"
      "z_0_1 1\n");
  const SolverSolution solution = read_solution(in);
  EXPECT_EQ(solution.values.size(), 4u);
  EXPECT_DOUBLE_EQ(solution.values.at("x_0_0"), 1.0);
  EXPECT_FALSE(solution.has_objective);
}

TEST(SolutionIo, ParsesHighsStyleWithBanner) {
  std::istringstream in(
      "Model status\n"
      "Optimal\n"
      "\n"
      "# Primal solution values\n"
      "Feasible\n"
      "Objective 1234.5\n"
      "# Columns 4\n"
      "x_0_0 1\n"
      "x_1_1 0.9999999\n"
      "y_0_2 1\n");
  const SolverSolution solution = read_solution(in);
  EXPECT_TRUE(solution.has_objective);
  EXPECT_DOUBLE_EQ(solution.objective, 1234.5);
  EXPECT_DOUBLE_EQ(solution.values.at("x_1_1"), 0.9999999);
}

TEST(SolutionIo, ParsesCbcStyleIndexedRows) {
  std::istringstream in(
      "Optimal - objective value 987.0\n"
      "0 x_0_0 1 0\n"
      "7 y_1_3 1 0\n");
  const SolverSolution solution = read_solution(in);
  EXPECT_DOUBLE_EQ(solution.values.at("x_0_0"), 1.0);
  EXPECT_DOUBLE_EQ(solution.values.at("y_1_3"), 1.0);
}

TEST(SolutionIo, ParsesObjectiveValueColonForm) {
  std::istringstream in("Objective value: 42.25\n");
  const SolverSolution solution = read_solution(in);
  EXPECT_TRUE(solution.has_objective);
  EXPECT_DOUBLE_EQ(solution.objective, 42.25);
}

TEST(SolutionIo, SkipsUnrecognizedLines)
{
  std::istringstream in(
      "this is a banner\n"
      "status: optimal\n"
      "x_0_0 1\n");
  EXPECT_EQ(read_solution(in).values.size(), 1u);
}

TEST(SolutionIo, AllocationFromSolution) {
  const ProblemInstance p = small_problem();
  std::istringstream in(
      "x_0_0 1\n"
      "x_1_1 1\n"
      "x_0_1 0\n");
  const SolverSolution solution = read_solution(in);
  const Allocation alloc = allocation_from_solution(solution, p);
  EXPECT_EQ(alloc.assignment, (std::vector<ServerId>{0, 1}));
  EXPECT_EQ(validate_allocation(p, alloc), "");
}

TEST(SolutionIo, FractionalBelowHalfIsNotChosen) {
  const ProblemInstance p = small_problem();
  std::istringstream in(
      "x_0_0 0.4\n"
      "x_1_0 0.6\n"
      "x_0_1 1\n");
  const Allocation alloc =
      allocation_from_solution(read_solution(in), p);
  EXPECT_EQ(alloc.assignment[0], 1);
  EXPECT_EQ(alloc.assignment[1], 0);
}

TEST(SolutionIo, MissingAssignmentBecomesNoServer) {
  const ProblemInstance p = small_problem();
  std::istringstream in("x_0_0 1\n");
  const Allocation alloc =
      allocation_from_solution(read_solution(in), p);
  EXPECT_EQ(alloc.assignment[1], kNoServer);
}

TEST(SolutionIo, DuplicateAssignmentThrows) {
  const ProblemInstance p = small_problem();
  std::istringstream in(
      "x_0_0 1\n"
      "x_1_0 1\n");
  EXPECT_THROW(allocation_from_solution(read_solution(in), p),
               std::runtime_error);
}

TEST(SolutionIo, OutOfRangeVariableThrows) {
  const ProblemInstance p = small_problem();
  std::istringstream in("x_9_0 1\n");
  EXPECT_THROW(allocation_from_solution(read_solution(in), p),
               std::runtime_error);
}

TEST(SolutionIo, RoundTripWithModelAndValidator) {
  // Write out the solution our own exact machinery would produce, parse it
  // back, and verify the allocation and objective agree.
  const ProblemInstance p = small_problem();
  Allocation alloc;
  alloc.assignment = {0, 0};
  const auto active = derive_active_sets(p, alloc);
  const IlpModel model = build_ilp(p);
  const auto values = to_variable_assignment(model, p, alloc, active);

  std::ostringstream out;
  out << "Objective " << model.objective_value(values) << "\n";
  for (std::size_t v = 0; v < values.size(); ++v)
    if (values[v] != 0.0) out << model.var_name(v) << ' ' << values[v] << '\n';

  std::istringstream in(out.str());
  const SolverSolution solution = read_solution(in);
  const Allocation parsed = allocation_from_solution(solution, p);
  EXPECT_EQ(parsed.assignment, alloc.assignment);
  ASSERT_TRUE(solution.has_objective);
  EXPECT_NEAR(solution.objective, evaluate_cost(p, alloc).total(), 1e-6);
}

TEST(SolutionIo, MissingFileThrows) {
  EXPECT_THROW(load_solution("/nonexistent/path.sol"), std::runtime_error);
}

}  // namespace
}  // namespace esva
