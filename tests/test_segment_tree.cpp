#include "util/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "util/rng.h"

namespace esva {
namespace {

TEST(RangeAddMaxTree, EmptyTree) {
  RangeAddMaxTree tree(0);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.max_all(), 0.0);
}

TEST(RangeAddMaxTree, SingleElement) {
  RangeAddMaxTree tree(1);
  EXPECT_EQ(tree.max(0, 0), 0.0);
  tree.add(0, 0, 3.5);
  EXPECT_EQ(tree.max(0, 0), 3.5);
  tree.add(0, 0, -1.0);
  EXPECT_EQ(tree.max(0, 0), 2.5);
  EXPECT_EQ(tree.max_all(), 2.5);
}

TEST(RangeAddMaxTree, InitiallyAllZero) {
  RangeAddMaxTree tree(16);
  EXPECT_EQ(tree.max(0, 15), 0.0);
  EXPECT_EQ(tree.max(3, 7), 0.0);
}

TEST(RangeAddMaxTree, DisjointRangeAdds) {
  RangeAddMaxTree tree(10);
  tree.add(0, 4, 1.0);
  tree.add(5, 9, 2.0);
  EXPECT_EQ(tree.max(0, 4), 1.0);
  EXPECT_EQ(tree.max(5, 9), 2.0);
  EXPECT_EQ(tree.max(0, 9), 2.0);
  EXPECT_EQ(tree.max(4, 5), 2.0);
}

TEST(RangeAddMaxTree, OverlappingAddsAccumulate) {
  RangeAddMaxTree tree(10);
  tree.add(0, 6, 1.0);
  tree.add(4, 9, 1.0);
  EXPECT_EQ(tree.max(0, 3), 1.0);
  EXPECT_EQ(tree.max(4, 6), 2.0);
  EXPECT_EQ(tree.max(7, 9), 1.0);
  EXPECT_EQ(tree.max_all(), 2.0);
}

TEST(RangeAddMaxTree, NegativeDeltasRelease) {
  RangeAddMaxTree tree(8);
  tree.add(0, 7, 5.0);
  tree.add(2, 5, -5.0);
  EXPECT_EQ(tree.max(2, 5), 0.0);
  EXPECT_EQ(tree.max(0, 7), 5.0);
}

TEST(RangeAddMaxTree, QueryDoesNotMutate) {
  RangeAddMaxTree tree(8);
  tree.add(1, 6, 2.0);
  const double first = tree.max(0, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(tree.max(0, 7), first);
}

TEST(RangeAddMaxTree, NonPowerOfTwoSize) {
  RangeAddMaxTree tree(13);
  tree.add(12, 12, 7.0);
  EXPECT_EQ(tree.max(12, 12), 7.0);
  EXPECT_EQ(tree.max(0, 11), 0.0);
  EXPECT_EQ(tree.max_all(), 7.0);
}

// Property: behaves identically to a plain array under random operations.
TEST(RangeAddMaxTreeProperty, MatchesNaiveArray) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 200));
    RangeAddMaxTree tree(n);
    std::vector<double> naive(n, 0.0);
    for (int op = 0; op < 200; ++op) {
      const auto lo = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto hi = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(n) - 1));
      if (rng.bernoulli(0.6)) {
        const double delta = rng.uniform_double(-5.0, 10.0);
        tree.add(lo, hi, delta);
        for (std::size_t k = lo; k <= hi; ++k) naive[k] += delta;
      } else {
        const double expected = *std::max_element(naive.begin() + static_cast<std::ptrdiff_t>(lo),
                                                  naive.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_NEAR(tree.max(lo, hi), expected, 1e-9)
            << "trial " << trial << " op " << op;
      }
    }
    ASSERT_NEAR(tree.max_all(), *std::max_element(naive.begin(), naive.end()),
                1e-9);
  }
}

}  // namespace
}  // namespace esva
