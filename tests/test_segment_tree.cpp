#include "util/segment_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "testsupport/reference_segment_tree.h"
#include "util/rng.h"

namespace esva {
namespace {

TEST(RangeAddMaxTree, EmptyTree) {
  RangeAddMaxTree tree(0);
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.max_all(), 0.0);
  EXPECT_EQ(tree.min_all(), 0.0);
}

TEST(RangeAddMaxTree, SingleElement) {
  RangeAddMaxTree tree(1);
  EXPECT_EQ(tree.max(0, 0), 0.0);
  tree.add(0, 0, 3.5);
  EXPECT_EQ(tree.max(0, 0), 3.5);
  tree.add(0, 0, -1.0);
  EXPECT_EQ(tree.max(0, 0), 2.5);
  EXPECT_EQ(tree.max_all(), 2.5);
}

TEST(RangeAddMaxTree, InitiallyAllZero) {
  RangeAddMaxTree tree(16);
  EXPECT_EQ(tree.max(0, 15), 0.0);
  EXPECT_EQ(tree.max(3, 7), 0.0);
}

TEST(RangeAddMaxTree, DisjointRangeAdds) {
  RangeAddMaxTree tree(10);
  tree.add(0, 4, 1.0);
  tree.add(5, 9, 2.0);
  EXPECT_EQ(tree.max(0, 4), 1.0);
  EXPECT_EQ(tree.max(5, 9), 2.0);
  EXPECT_EQ(tree.max(0, 9), 2.0);
  EXPECT_EQ(tree.max(4, 5), 2.0);
}

TEST(RangeAddMaxTree, OverlappingAddsAccumulate) {
  RangeAddMaxTree tree(10);
  tree.add(0, 6, 1.0);
  tree.add(4, 9, 1.0);
  EXPECT_EQ(tree.max(0, 3), 1.0);
  EXPECT_EQ(tree.max(4, 6), 2.0);
  EXPECT_EQ(tree.max(7, 9), 1.0);
  EXPECT_EQ(tree.max_all(), 2.0);
}

TEST(RangeAddMaxTree, NegativeDeltasRelease) {
  RangeAddMaxTree tree(8);
  tree.add(0, 7, 5.0);
  tree.add(2, 5, -5.0);
  EXPECT_EQ(tree.max(2, 5), 0.0);
  EXPECT_EQ(tree.max(0, 7), 5.0);
}

TEST(RangeAddMaxTree, QueryDoesNotMutate) {
  RangeAddMaxTree tree(8);
  tree.add(1, 6, 2.0);
  const double first = tree.max(0, 7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(tree.max(0, 7), first);
}

TEST(RangeAddMaxTree, NonPowerOfTwoSize) {
  RangeAddMaxTree tree(13);
  tree.add(12, 12, 7.0);
  EXPECT_EQ(tree.max(12, 12), 7.0);
  EXPECT_EQ(tree.max(0, 11), 0.0);
  EXPECT_EQ(tree.max_all(), 7.0);
}

TEST(RangeAddMaxTree, MinAllTracksTheFloor) {
  RangeAddMaxTree tree(10);
  EXPECT_EQ(tree.min_all(), 0.0);
  tree.add(0, 9, 2.0);
  EXPECT_EQ(tree.min_all(), 2.0);
  tree.add(3, 5, 4.0);
  EXPECT_EQ(tree.min_all(), 2.0);  // the untouched units are the floor
  tree.add(0, 2, -1.5);
  EXPECT_EQ(tree.min_all(), 0.5);
  EXPECT_EQ(tree.max_all(), 6.0);
}

TEST(RangeAddMaxTree, FirstAboveLocatesTheEarliestViolation) {
  RangeAddMaxTree tree(12);
  const auto above = [](double threshold) {
    return [threshold](double v) { return v > threshold; };
  };
  EXPECT_EQ(tree.first_above(0, 11, above(0.5)), RangeAddMaxTree::npos);
  tree.add(4, 7, 3.0);
  tree.add(9, 10, 5.0);
  EXPECT_EQ(tree.first_above(0, 11, above(0.5)), 4u);
  EXPECT_EQ(tree.first_above(0, 11, above(4.0)), 9u);
  EXPECT_EQ(tree.first_above(5, 11, above(0.5)), 5u);
  EXPECT_EQ(tree.first_above(8, 8, above(0.5)), RangeAddMaxTree::npos);
  EXPECT_EQ(tree.first_above(0, 3, above(0.5)), RangeAddMaxTree::npos);
  EXPECT_EQ(tree.first_above(0, 11, above(10.0)), RangeAddMaxTree::npos);
}

TEST(RangeAddMaxTree, FirstAboveOnSingleUnitTree) {
  RangeAddMaxTree tree(1);
  const auto positive = [](double v) { return v > 0.0; };
  EXPECT_EQ(tree.first_above(0, 0, positive), RangeAddMaxTree::npos);
  tree.add(0, 0, 1.0);
  EXPECT_EQ(tree.first_above(0, 0, positive), 0u);
}

// Property: behaves identically to a plain array under random operations.
TEST(RangeAddMaxTreeProperty, MatchesNaiveArray) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    const std::size_t n = static_cast<std::size_t>(rng.uniform_int(1, 200));
    RangeAddMaxTree tree(n);
    std::vector<double> naive(n, 0.0);
    for (int op = 0; op < 200; ++op) {
      const auto lo = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto hi = static_cast<std::size_t>(
          rng.uniform_int(static_cast<std::int64_t>(lo), static_cast<std::int64_t>(n) - 1));
      if (rng.bernoulli(0.6)) {
        const double delta = rng.uniform_double(-5.0, 10.0);
        tree.add(lo, hi, delta);
        for (std::size_t k = lo; k <= hi; ++k) naive[k] += delta;
      } else {
        const double expected = *std::max_element(naive.begin() + static_cast<std::ptrdiff_t>(lo),
                                                  naive.begin() + static_cast<std::ptrdiff_t>(hi) + 1);
        ASSERT_NEAR(tree.max(lo, hi), expected, 1e-9)
            << "trial " << trial << " op " << op;
      }
    }
    ASSERT_NEAR(tree.max_all(), *std::max_element(naive.begin(), naive.end()),
                1e-9);
  }
}

// Differential fuzz: the flat iterative tree against the original recursive
// implementation it replaced (testsupport/reference_segment_tree.h), under
// random add/max interleavings across sizes from a single unit up — the
// equivalence proof demanded by the replacement. The two layouts associate
// their floating-point sums differently, so values are compared to 1e-9
// (far below the library's feasibility granularity), not bit-for-bit.
TEST(RangeAddMaxTreeProperty, MatchesRecursiveReferenceTree) {
  Rng rng(20260807);
  for (int trial = 0; trial < 120; ++trial) {
    // Bias towards small and awkward sizes (1, 2, 3, powers of two ± 1).
    const std::size_t n = static_cast<std::size_t>(
        trial < 40 ? rng.uniform_int(1, 9) : rng.uniform_int(1, 300));
    RangeAddMaxTree flat(n);
    ReferenceRangeAddMaxTree reference(n);
    ASSERT_EQ(flat.size(), reference.size());
    for (int op = 0; op < 150; ++op) {
      const auto lo = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto hi = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(lo), static_cast<std::int64_t>(n) - 1));
      if (rng.bernoulli(0.55)) {
        const double delta = rng.uniform_double(-6.0, 10.0);
        flat.add(lo, hi, delta);
        reference.add(lo, hi, delta);
      } else {
        ASSERT_NEAR(flat.max(lo, hi), reference.max(lo, hi), 1e-9)
            << "trial " << trial << " op " << op << " n " << n << " ["
            << lo << ", " << hi << "]";
      }
      if (op % 25 == 0) {
        ASSERT_NEAR(flat.max_all(), reference.max_all(), 1e-9);
      }
    }
  }
}

// Differential fuzz for the descent: first_above against a naive scan over a
// mirrored plain array, plus min_all against std::min_element. Thresholds are
// drawn continuously, so ties with stored values have measure zero and exact
// predicate comparisons are stable.
TEST(RangeAddMaxTreeProperty, FirstAboveAndMinAllMatchNaive) {
  Rng rng(555);
  for (int trial = 0; trial < 80; ++trial) {
    const std::size_t n = static_cast<std::size_t>(
        trial < 30 ? rng.uniform_int(1, 10) : rng.uniform_int(1, 260));
    RangeAddMaxTree tree(n);
    std::vector<double> naive(n, 0.0);
    for (int op = 0; op < 120; ++op) {
      const auto lo = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto hi = static_cast<std::size_t>(rng.uniform_int(
          static_cast<std::int64_t>(lo), static_cast<std::int64_t>(n) - 1));
      if (rng.bernoulli(0.5)) {
        const double delta = rng.uniform_double(-6.0, 10.0);
        tree.add(lo, hi, delta);
        for (std::size_t k = lo; k <= hi; ++k) naive[k] += delta;
      } else {
        const double threshold = rng.uniform_double(-10.0, 20.0);
        const auto pred = [threshold](double v) { return v > threshold; };
        std::size_t expected = RangeAddMaxTree::npos;
        for (std::size_t k = lo; k <= hi; ++k) {
          if (naive[k] > threshold) {
            expected = k;
            break;
          }
        }
        ASSERT_EQ(tree.first_above(lo, hi, pred), expected)
            << "trial " << trial << " op " << op << " n " << n << " ["
            << lo << ", " << hi << "] threshold " << threshold;
      }
      if (op % 20 == 0) {
        ASSERT_NEAR(tree.min_all(), *std::min_element(naive.begin(), naive.end()),
                    1e-9);
        ASSERT_NEAR(tree.max_all(), *std::max_element(naive.begin(), naive.end()),
                    1e-9);
      }
    }
  }
}

}  // namespace
}  // namespace esva
