#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace esva {
namespace {

TEST(Histogram, BinsValuesCorrectly) {
  Histogram h(0.0, 10.0, 5);  // bins of width 2
  h.add(0.0);   // bin 0
  h.add(1.99);  // bin 0
  h.add(2.0);   // bin 1
  h.add(9.99);  // bin 4
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(1), 1u);
  EXPECT_EQ(h.count(4), 1u);
  EXPECT_EQ(h.total(), 4u);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.add(-0.1);
  h.add(1.0);  // hi is exclusive
  h.add(5.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, BinRange) {
  Histogram h(10.0, 20.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_range(0).first, 10.0);
  EXPECT_DOUBLE_EQ(h.bin_range(0).second, 12.5);
  EXPECT_DOUBLE_EQ(h.bin_range(3).first, 17.5);
  EXPECT_DOUBLE_EQ(h.bin_range(3).second, 20.0);
}

TEST(Histogram, CdfReachesOne) {
  Histogram h(0.0, 10.0, 10);
  for (double x : {1.0, 2.0, 3.0, 7.0}) h.add(x);
  EXPECT_DOUBLE_EQ(h.cdf(10.0), 1.0);
  EXPECT_DOUBLE_EQ(h.cdf(0.5), 0.0);  // bin [0,1) holds nothing <= ... below first value's bin
  EXPECT_NEAR(h.cdf(3.5), 0.75, 1e-12);
}

TEST(Histogram, CdfEmptyIsZero) {
  Histogram h(0.0, 1.0, 2);
  EXPECT_EQ(h.cdf(0.5), 0.0);
}

TEST(Histogram, RenderListsEveryBin) {
  Histogram h(0.0, 4.0, 4);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string out = h.render();
  // 4 bin lines.
  std::size_t lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4u);
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, ExponentialShapeIsMonotoneDecreasing) {
  Rng rng(13);
  Histogram h(0.0, 50.0, 5);
  for (int i = 0; i < 20000; ++i) h.add(rng.exponential(10.0));
  for (std::size_t b = 1; b < h.bins(); ++b)
    EXPECT_LT(h.count(b), h.count(b - 1)) << "bin " << b;
}

}  // namespace
}  // namespace esva
