// End-to-end checks tying the whole pipeline together: scenario → allocators
// → cost model / simulator / ILP objective, plus the paper's headline
// qualitative claims on small-but-real instances.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "ilp/branch_and_bound.h"
#include "ilp/validate.h"
#include "sim/engine.h"
#include "sim/experiment.h"
#include "sim/metrics.h"
#include "test_util.h"
#include "workload/scenarios.h"

namespace esva {
namespace {

using testing::random_problem;

TEST(Integration, HeuristicBeatsFfpsOnAverageAtModerateLoad) {
  const Scenario scenario = fig2_scenario(100, 4.0);
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 2013;
  const PointOutcome outcome = run_point(scenario, config);
  EXPECT_GT(outcome.headline_reduction(), 0.02)
      << "expected a clear energy reduction vs FFPS";
  EXPECT_LT(outcome.headline_reduction(), 0.6)
      << "suspiciously large reduction suggests an accounting bug";
}

TEST(Integration, HeuristicImprovesCpuUtilization) {
  const Scenario scenario = fig2_scenario(100, 4.0);
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 99;
  const PointOutcome outcome = run_point(scenario, config);
  EXPECT_GT(outcome.by_name("min-incremental").cpu_util.mean(),
            outcome.by_name("ffps").cpu_util.mean());
}

TEST(Integration, AllPipelineViewsOfCostAgree) {
  // evaluate_cost (closed form), SimulationEngine (operational), and
  // objective_eq7 (ILP view) must produce the same number.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    Rng gen(seed * 31);
    const ProblemInstance p = random_problem(gen, 24, 10);
    AllocatorPtr allocator = make_allocator("min-incremental");
    Rng rng(seed);
    const Allocation alloc = allocator->allocate(p, rng);
    ASSERT_TRUE(alloc.fully_allocated());

    const Energy closed_form = evaluate_cost(p, alloc).total();
    const Energy operational = SimulationEngine(p, alloc).run().total_energy();
    const Energy ilp_view =
        objective_eq7(p, alloc, derive_active_sets(p, alloc));
    ASSERT_NEAR(closed_form, operational, 1e-6) << "seed " << seed;
    ASSERT_NEAR(closed_form, ilp_view, 1e-6) << "seed " << seed;
  }
}

TEST(Integration, HeuristicIsNearOptimalOnTinyInstances) {
  // Measure the optimality gap the ilp_gap bench reports; on tiny instances
  // the greedy heuristic should be within a modest factor of optimal.
  double worst_gap = 0.0;
  int measured = 0;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    Rng gen(seed * 17);
    const ProblemInstance p = random_problem(gen, 6, 3, 2.0, 6.0);
    const ExactResult exact = solve_exact(p);
    if (!exact.feasible) continue;
    AllocatorPtr allocator = make_allocator("min-incremental");
    Rng rng(seed);
    const Allocation alloc = allocator->allocate(p, rng);
    if (!alloc.fully_allocated()) continue;
    const Energy heuristic_cost = evaluate_cost(p, alloc).total();
    ASSERT_GE(heuristic_cost, exact.cost - 1e-6);
    worst_gap = std::max(worst_gap, heuristic_cost / exact.cost - 1.0);
    ++measured;
  }
  ASSERT_GT(measured, 5);
  // Greedy can be meaningfully suboptimal on adversarial tiny instances;
  // anything beyond ~60% would indicate a cost-accounting bug rather than
  // ordinary myopia.
  EXPECT_LT(worst_gap, 0.6) << "heuristic unexpectedly far from optimal";
}

TEST(Integration, StandardVmsOnTypes13ReachHighUtilization) {
  // Fig. 8(b): with standard VMs on server types 1-3 the heuristic pushes
  // both utilizations well above FFPS.
  const Scenario scenario = fig7_scenario(100, 1.0, /*all_server_types=*/false);
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 7;
  const PointOutcome outcome = run_point(scenario, config);
  const auto& ours = outcome.by_name("min-incremental");
  EXPECT_GT(ours.cpu_util.mean(), 0.5);
  EXPECT_GT(ours.mem_util.mean(), 0.5);
}

TEST(Integration, ReductionShrinksAsLoadGrows) {
  // Figs. 4/9 trend: higher load (short inter-arrival) leaves less slack to
  // exploit, so the reduction ratio should drop.
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 11;
  const PointOutcome heavy = run_point(fig2_scenario(100, 0.5), config);
  const PointOutcome light = run_point(fig2_scenario(100, 8.0), config);
  EXPECT_GT(light.headline_reduction(), heavy.headline_reduction());
  EXPECT_GT(heavy.baseline_cpu_load(), light.baseline_cpu_load());
}

TEST(Integration, ShorterTransitionTimeSavesMore) {
  // Fig. 5 trend at a fixed sweep point.
  ExperimentConfig config;
  config.runs = 5;
  config.seed = 5;
  const PointOutcome fast = run_point(fig5_scenario(8.0, 0.5), config);
  const PointOutcome slow = run_point(fig5_scenario(8.0, 3.0), config);
  EXPECT_GT(fast.headline_reduction(), slow.headline_reduction());
}

TEST(Integration, EveryAllocatorProducesValidAllocationsOnPaperScenario) {
  Rng gen(2);
  const ProblemInstance p = fig2_scenario(80, 2.0).instantiate(gen);
  for (const std::string& name : allocator_names()) {
    AllocatorPtr allocator = make_allocator(name);
    Rng rng(3);
    const Allocation alloc = allocator->allocate(p, rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << name;
    EXPECT_EQ(alloc.num_unallocated(), 0u) << name;
  }
}

}  // namespace
}  // namespace esva
