#include "ilp/validate.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

TEST(DeriveActiveSets, BridgesShortGapsPowersDownLongOnes) {
  // basic_server: alpha 200, P_idle 100 -> bridge gaps <= 2.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 5), vm(1, 8, 10), vm(2, 50, 55)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0, 0};
  const auto active = derive_active_sets(p, alloc);
  ASSERT_EQ(active.size(), 1u);
  EXPECT_EQ(active[0].intervals(),
            (std::vector<Interval>{{1, 10}, {50, 55}}));
}

TEST(DeriveActiveSets, EmptyServerStaysDown) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5)}, {basic_server(0), basic_server(1)});
  Allocation alloc;
  alloc.assignment = {0};
  const auto active = derive_active_sets(p, alloc);
  EXPECT_FALSE(active[0].empty());
  EXPECT_TRUE(active[1].empty());
}

TEST(ObjectiveEq7, HandComputedValue) {
  const ProblemInstance p = make_problem({vm(0, 3, 7, 2.0, 1.0)},
                                         {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const auto active = derive_active_sets(p, alloc);
  // W = 10·2·5 = 100; y active [3,7]: 5·100 = 500; one switch-on: 200.
  EXPECT_DOUBLE_EQ(objective_eq7(p, alloc, active), 800.0);
}

TEST(ObjectiveEq7, EqualsClosedFormCostOnRandomInstances) {
  // The central consistency identity: Eq. 7 evaluated on the derived optimal
  // y equals the Eq. 17 closed form, for every allocator's output.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng gen(seed);
    const ProblemInstance p = random_problem(gen, 16, 8);
    for (const std::string& name : allocator_names()) {
      AllocatorPtr allocator = make_allocator(name);
      Rng rng(seed + 100);
      const Allocation alloc = allocator->allocate(p, rng);
      if (!alloc.fully_allocated()) continue;
      const auto active = derive_active_sets(p, alloc);
      ASSERT_NEAR(objective_eq7(p, alloc, active),
                  evaluate_cost(p, alloc).total(), 1e-6)
          << name << " seed " << seed;
    }
  }
}

TEST(CheckConstraints, PassesForFeasibleAllocations) {
  Rng gen(3);
  const ProblemInstance p = random_problem(gen, 12, 6);
  AllocatorPtr allocator = make_allocator("min-incremental");
  Rng rng(1);
  const Allocation alloc = allocator->allocate(p, rng);
  ASSERT_TRUE(alloc.fully_allocated());
  const auto active = derive_active_sets(p, alloc);
  EXPECT_EQ(check_constraints(p, alloc, active), "");
}

TEST(CheckConstraints, CatchesPoweredDownHost) {
  const ProblemInstance p = make_problem({vm(0, 1, 5)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  std::vector<IntervalSet> active(1);
  active[0].insert(1, 3);  // powered down during [4,5] though VM runs
  EXPECT_NE(check_constraints(p, alloc, active).find("constraint (12)"),
            std::string::npos);
}

TEST(CheckConstraints, CatchesIncompleteAssignment) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 5)}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {kNoServer};
  EXPECT_NE(check_constraints(p, alloc, derive_active_sets(p, alloc)), "");
}

TEST(DerivedStatesAreOptimal, NoCheaperYExistsForFixedX) {
  // For a single server with two busy segments, compare the derived policy
  // against both alternatives (always-on vs power-cycle) explicitly.
  for (Time gap : {1, 2, 3, 10, 50}) {
    const ProblemInstance p = make_problem(
        {vm(0, 1, 10), vm(1, 10 + gap + 1, 10 + gap + 10)}, {basic_server(0)});
    Allocation alloc;
    alloc.assignment = {0, 0};
    const auto active = derive_active_sets(p, alloc);
    const Energy derived = objective_eq7(p, alloc, active);

    // Alternative A: stay active through the gap.
    std::vector<IntervalSet> always_on(1);
    always_on[0].insert(1, 20 + gap);
    // Alternative B: power-cycle across the gap.
    std::vector<IntervalSet> cycled(1);
    cycled[0].insert(1, 10);
    cycled[0].insert(10 + gap + 1, 10 + gap + 10);

    const Energy alt = std::min(objective_eq7(p, alloc, always_on),
                                objective_eq7(p, alloc, cycled));
    EXPECT_NEAR(derived, alt, 1e-9) << "gap " << gap;
  }
}

}  // namespace
}  // namespace esva
