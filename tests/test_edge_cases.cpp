// Degenerate-parameter and boundary-condition tests across the stack: free
// transitions, free idling, flat power curves, empty instances, exact-fit
// capacities, one-minute horizons. Each case pins down behaviour the main
// suites never hit.

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/cost_model.h"
#include "core/min_incremental.h"
#include "core/segments.h"
#include "ilp/branch_and_bound.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::server;
using testing::vm;

TEST(EdgeCases, FreeTransitionsPowerDownEveryGap) {
  // alpha = 0 (transition_time = 0): powering off is always optimal, every
  // gap costs nothing, cost = idle over busy time only (+ 0 transitions).
  const ServerSpec s = server(0, 10, 10, 100, 200, /*transition_time=*/0.0);
  IntervalSet busy;
  busy.insert(1, 5);
  busy.insert(100, 104);
  const CostBreakdown bd = structure_breakdown(busy, s);
  EXPECT_DOUBLE_EQ(bd.idle, 1000.0);  // 10 busy units only
  EXPECT_DOUBLE_EQ(bd.transition, 0.0);
  EXPECT_EQ(active_intervals(busy, s).size(), 2u);
}

TEST(EdgeCases, FreeIdlingBridgesEveryGap) {
  // p_idle = 0: staying active is always optimal; one transition total.
  const ServerSpec s = server(0, 10, 10, 0, 200, 1.0);
  IntervalSet busy;
  busy.insert(1, 5);
  busy.insert(1000, 1004);
  const CostBreakdown bd = structure_breakdown(busy, s);
  EXPECT_DOUBLE_EQ(bd.idle, 0.0);
  EXPECT_DOUBLE_EQ(bd.transition, 200.0);  // the initial switch-on only
  EXPECT_EQ(active_intervals(busy, s).size(), 1u);
}

TEST(EdgeCases, FlatPowerCurveHasZeroRunCost) {
  // p_idle == p_peak: P¹ = 0, so W_ij = 0 for every VM; cost is purely
  // structural.
  const ServerSpec s = server(0, 10, 10, 150, 150, 1.0);
  EXPECT_DOUBLE_EQ(s.unit_run_power(), 0.0);
  EXPECT_DOUBLE_EQ(server_cost(s, {vm(0, 1, 10, 5.0, 5.0)}),
                   150.0 * 10 + 150.0);
}

TEST(EdgeCases, EmptyProblemIsHandledEverywhere) {
  const ProblemInstance p = make_problem({}, {testing::basic_server(0)});
  EXPECT_EQ(p.horizon, 0);
  EXPECT_EQ(validate_problem(p), "");
  for (const std::string& name : allocator_names()) {
    AllocatorPtr allocator = make_allocator(name);
    Rng rng(1);
    const Allocation alloc = allocator->allocate(p, rng);
    EXPECT_TRUE(alloc.assignment.empty()) << name;
    EXPECT_DOUBLE_EQ(evaluate_cost(p, alloc).total(), 0.0) << name;
    EXPECT_DOUBLE_EQ(SimulationEngine(p, alloc).run().total_energy(), 0.0)
        << name;
  }
}

TEST(EdgeCases, SingleTimeUnitHorizon) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 1, 3.0, 3.0)}, {testing::basic_server(0)});
  EXPECT_EQ(p.horizon, 1);
  MinIncrementalAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[0], 0);
  // 1 unit idle + alpha + run 10·3·1.
  EXPECT_DOUBLE_EQ(evaluate_cost(p, alloc).total(), 100.0 + 200.0 + 30.0);
  EXPECT_NEAR(SimulationEngine(p, alloc).run().total_energy(), 330.0, 1e-9);
}

TEST(EdgeCases, ExactCapacityFitsAreAccepted) {
  // Demands summing exactly to capacity must fit (no off-by-epsilon
  // rejection), in both dimensions simultaneously.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 6.0, 4.0), vm(1, 1, 10, 4.0, 6.0)},
      {testing::basic_server(0)});
  MinIncrementalAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[0], 0);
  EXPECT_EQ(alloc.assignment[1], 0);
  EXPECT_EQ(validate_allocation(p, alloc), "");
}

TEST(EdgeCases, FullUtilizationReadsExactlyOne) {
  const ProblemInstance p =
      make_problem({vm(0, 1, 10, 10.0, 10.0)}, {testing::basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const UtilizationStats stats = average_utilization(p, alloc);
  EXPECT_DOUBLE_EQ(stats.avg_cpu, 1.0);
  EXPECT_DOUBLE_EQ(stats.avg_mem, 1.0);
}

TEST(EdgeCases, MemoryOnlyVmStillCostsIdleAndTransition) {
  // Zero CPU demand: W = 0, but the server must still be active.
  const ProblemInstance p =
      make_problem({vm(0, 1, 10, 0.0, 5.0)}, {testing::basic_server(0)});
  MinIncrementalAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  ASSERT_EQ(alloc.assignment[0], 0);
  const CostReport report = evaluate_cost(p, alloc);
  EXPECT_DOUBLE_EQ(report.breakdown.run, 0.0);
  EXPECT_DOUBLE_EQ(report.breakdown.idle, 1000.0);
  EXPECT_DOUBLE_EQ(report.breakdown.transition, 200.0);
}

TEST(EdgeCases, FractionalTransitionTime) {
  // 30-second transition (0.5 min): alpha = 100; the gap threshold becomes
  // alpha/P_idle = 1 time unit.
  const ServerSpec s = server(0, 10, 10, 100, 200, 0.5);
  EXPECT_DOUBLE_EQ(s.transition_cost(), 100.0);
  EXPECT_TRUE(stays_active_through_gap(s, 1));
  EXPECT_FALSE(stays_active_through_gap(s, 2));
}

TEST(EdgeCases, BnbSolvesAlphaZeroInstancesExactly) {
  // With free transitions the optimum decomposes per busy segment; the
  // solver must still agree with brute force.
  std::vector<VmSpec> vms{vm(0, 1, 5, 4.0, 4.0), vm(1, 3, 9, 4.0, 4.0),
                          vm(2, 20, 24, 4.0, 4.0)};
  std::vector<ServerSpec> servers{server(0, 10, 10, 100, 200, 0.0),
                                  server(1, 10, 10, 60, 140, 0.0)};
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));
  const ExactResult exact = solve_exact(p);
  ASSERT_TRUE(exact.optimal);

  Energy best = kInf;
  for (ServerId a : {0, 1})
    for (ServerId b : {0, 1})
      for (ServerId c : {0, 1}) {
        Allocation alloc;
        alloc.assignment = {a, b, c};
        if (!validate_allocation(p, alloc).empty()) continue;
        best = std::min(best, evaluate_cost(p, alloc).total());
      }
  EXPECT_NEAR(exact.cost, best, 1e-9);
}

TEST(EdgeCases, BackToBackVmsNeverPowerCycle) {
  // [1,10] and [11,20]: adjacent, zero-length gap — one busy segment, one
  // transition, regardless of alpha.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 8.0), vm(1, 11, 20, 8.0, 8.0)},
      {testing::basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0, 0};
  const auto grouped = vms_by_server(p, alloc);
  EXPECT_EQ(busy_union(grouped[0]).size(), 1u);
  EXPECT_DOUBLE_EQ(evaluate_cost(p, alloc).breakdown.transition, 200.0);
}

TEST(EdgeCases, HugeTransitionCostKeepsServerAlwaysOnBetweenJobs) {
  // alpha enormous: bridging is always preferred within the busy span.
  const ServerSpec s = server(0, 10, 10, 100, 200, 1e6);
  IntervalSet busy;
  busy.insert(1, 2);
  busy.insert(500, 501);
  const auto actives = active_intervals(busy, s);
  ASSERT_EQ(actives.size(), 1u);
  EXPECT_EQ(actives[0], (Interval{1, 501}));
}

TEST(EdgeCases, IdenticalVmsTieBreakDeterministically) {
  // Ten identical VMs, two identical servers: determinism means the same
  // result on every call (and all consolidate while capacity lasts).
  std::vector<VmSpec> vms;
  for (int j = 0; j < 10; ++j) vms.push_back(vm(j, 1, 10, 1.0, 1.0));
  const ProblemInstance p = make_problem(
      std::move(vms), {testing::basic_server(0), testing::basic_server(1)});
  MinIncrementalAllocator allocator;
  Rng r1(1);
  Rng r2(999);
  const Allocation a1 = allocator.allocate(p, r1);
  const Allocation a2 = allocator.allocate(p, r2);
  EXPECT_EQ(a1.assignment, a2.assignment);
  for (ServerId s_id : a1.assignment) EXPECT_EQ(s_id, 0);
}

}  // namespace
}  // namespace esva
