#include "baselines/vector_fit.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::random_problem;
using testing::server;
using testing::vm;

TEST(DotProductFit, PrefersAlignedServer) {
  // CPU-heavy VM (8 CPU, 1 GiB): server 0's remaining capacity is CPU-heavy
  // (aligned), server 1's is memory-heavy (misaligned).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 1.0)},
      {server(0, 16, 4, 100, 200), server(1, 10, 64, 100, 200)});
  DotProductFitAllocator allocator;
  Rng rng(1);
  EXPECT_EQ(allocator.allocate(p, rng).assignment[0], 0);
}

TEST(DotProductFit, AlignmentUsesRemainingNotTotalCapacity) {
  // Both servers start identical (16 CPU, 16 GiB). Pre-load server 0 with a
  // memory-hog so its remaining vector becomes CPU-heavy: the CPU-heavy VM
  // should then prefer server 0.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 20, 1.0, 12.0),   // memory hog, placed first (earlier start)
       vm(1, 5, 15, 8.0, 1.0)},   // CPU-heavy
      {server(0, 16, 16, 100, 200), server(1, 16, 16, 100, 200)});
  DotProductFitAllocator allocator;
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[0], 0);  // tie -> lower id
  EXPECT_EQ(alloc.assignment[1], 0);  // remaining (15, 4) aligns with (8, 1)
}

TEST(DotProductFit, SkipsInfeasibleServers) {
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 8.0)},
      {server(0, 4, 4, 10, 20), server(1, 16, 16, 100, 200)});
  DotProductFitAllocator allocator;
  Rng rng(1);
  EXPECT_EQ(allocator.allocate(p, rng).assignment[0], 1);
}

TEST(DotProductFit, FeasibleOnRandomInstances) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    Rng gen(seed + 7);
    const ProblemInstance p = random_problem(gen, 22, 9);
    DotProductFitAllocator allocator;
    Rng rng(seed);
    const Allocation alloc = allocator.allocate(p, rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << "seed " << seed;
    EXPECT_EQ(alloc.num_unallocated(), 0u);
  }
}

TEST(DotProductFit, RegisteredAsBuiltin) {
  AllocatorPtr a = make_allocator("dot-product-fit");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "dot-product-fit");
}

TEST(DotProductFit, BalancesDimensionsBetterThanCpuOnlyBestFit) {
  // Mixed CPU-heavy and memory-heavy VMs on dimension-skewed servers: the
  // vector heuristic should strand less capacity, i.e. leave fewer
  // unallocated VMs (or at worst tie) when the fleet is tight.
  std::vector<VmSpec> vms;
  for (int k = 0; k < 12; ++k) {
    const bool cpu_heavy = k % 2 == 0;
    vms.push_back(vm(k, 1, 30, cpu_heavy ? 6.0 : 1.0, cpu_heavy ? 1.0 : 6.0));
  }
  std::vector<ServerSpec> servers;
  for (int i = 0; i < 6; ++i) servers.push_back(server(i, 8, 8, 50, 100));
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));

  Rng r1(1);
  Rng r2(1);
  const Allocation vector_alloc =
      DotProductFitAllocator().allocate(p, r1);
  const Allocation cpu_alloc =
      make_allocator("best-fit-cpu")->allocate(p, r2);
  EXPECT_LE(vector_alloc.num_unallocated(), cpu_alloc.num_unallocated());
}

}  // namespace
}  // namespace esva
