#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "stats/summary.h"
#include "test_util.h"

namespace esva {
namespace {

WorkloadConfig standard_config(int n = 100) {
  WorkloadConfig config;
  config.num_vms = n;
  config.mean_interarrival = 2.0;
  config.mean_duration = 50.0;
  config.vm_types = all_vm_types();
  return config;
}

TEST(Generator, ProducesRequestedCountWithDenseIds) {
  Rng rng(1);
  const auto vms = generate_workload(standard_config(250), rng);
  ASSERT_EQ(vms.size(), 250u);
  for (std::size_t j = 0; j < vms.size(); ++j) {
    EXPECT_EQ(vms[j].id, static_cast<VmId>(j));
    EXPECT_TRUE(vms[j].valid());
  }
}

TEST(Generator, ZeroVmsIsFine) {
  Rng rng(1);
  EXPECT_TRUE(generate_workload(standard_config(0), rng).empty());
}

TEST(Generator, StartTimesAreNonDecreasingAndPositive) {
  Rng rng(2);
  const auto vms = generate_workload(standard_config(500), rng);
  Time prev = 1;
  for (const VmSpec& vm : vms) {
    EXPECT_GE(vm.start, prev);
    prev = vm.start;
  }
  EXPECT_GE(vms.front().start, 1);
}

TEST(Generator, DurationsAreAtLeastOneTimeUnit) {
  WorkloadConfig config = standard_config(500);
  config.mean_duration = 0.2;  // most raw draws round to zero
  Rng rng(3);
  for (const VmSpec& vm : generate_workload(config, rng))
    EXPECT_GE(vm.duration(), 1);
}

TEST(Generator, MeanDurationMatchesConfiguration) {
  WorkloadConfig config = standard_config(20000);
  config.mean_duration = 50.0;
  Rng rng(4);
  Accumulator acc;
  for (const VmSpec& vm : generate_workload(config, rng))
    acc.add(static_cast<double>(vm.duration()));
  EXPECT_NEAR(acc.mean(), 50.0, 1.5);
}

TEST(Generator, MeanInterarrivalMatchesConfiguration) {
  WorkloadConfig config = standard_config(20000);
  config.mean_interarrival = 4.0;
  Rng rng(5);
  const auto vms = generate_workload(config, rng);
  // Total span / count estimates the mean inter-arrival time.
  const double span = static_cast<double>(vms.back().start - vms.front().start);
  EXPECT_NEAR(span / static_cast<double>(vms.size()), 4.0, 0.2);
}

TEST(Generator, DemandsComeFromTheConfiguredTypes) {
  WorkloadConfig config = standard_config(300);
  config.vm_types = standard_vm_types();
  Rng rng(6);
  std::set<std::string> allowed;
  for (const VmType& t : config.vm_types) allowed.insert(t.name);
  std::set<std::string> seen;
  for (const VmSpec& vm : generate_workload(config, rng)) {
    EXPECT_TRUE(allowed.count(vm.type_name)) << vm.type_name;
    seen.insert(vm.type_name);
  }
  // With 300 draws over 4 types, every type should appear.
  EXPECT_EQ(seen.size(), allowed.size());
}

TEST(Generator, TypeSamplingIsRoughlyUniform) {
  WorkloadConfig config = standard_config(9000);
  Rng rng(7);
  std::map<std::string, int> counts;
  for (const VmSpec& vm : generate_workload(config, rng))
    ++counts[vm.type_name];
  ASSERT_EQ(counts.size(), 9u);
  for (const auto& [name, count] : counts) {
    EXPECT_GT(count, 800) << name;  // expected 1000 each
    EXPECT_LT(count, 1200) << name;
  }
}

TEST(Generator, SeedDeterminism) {
  Rng a(42);
  Rng b(42);
  const auto va = generate_workload(standard_config(100), a);
  const auto vb = generate_workload(standard_config(100), b);
  ASSERT_EQ(va.size(), vb.size());
  for (std::size_t j = 0; j < va.size(); ++j) {
    EXPECT_EQ(va[j].start, vb[j].start);
    EXPECT_EQ(va[j].end, vb[j].end);
    EXPECT_EQ(va[j].type_name, vb[j].type_name);
  }
}

TEST(Generator, ShorterInterarrivalMeansMoreConcurrency) {
  WorkloadConfig fast = standard_config(400);
  fast.mean_interarrival = 0.5;
  WorkloadConfig slow = standard_config(400);
  slow.mean_interarrival = 10.0;
  Rng r1(8);
  Rng r2(8);
  const auto fast_vms = generate_workload(fast, r1);
  const auto slow_vms = generate_workload(slow, r2);
  // The same number of VMs squeezed into a shorter horizon.
  EXPECT_LT(horizon_of(fast_vms), horizon_of(slow_vms));
}

}  // namespace
}  // namespace esva
