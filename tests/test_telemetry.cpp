// Fleet telemetry (obs/timeseries.h + obs/energy_ledger.h) end to end:
// the ISSUE's acceptance invariants — the energy ledger conserves the
// cost-model total to 1e-6 relative on fig2-style stable and profiled
// workloads, and binding the full telemetry stack (metrics registry,
// time-series sampler, ledger) leaves assignments and energies byte
// identical — plus the sampler's cadence/ring semantics and the export
// formats both collectors emit.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "baselines/registry.h"
#include "cluster/catalog.h"
#include "core/fault_plan.h"
#include "core/streaming.h"
#include "obs/energy_ledger.h"
#include "obs/histogram.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "sim/replay.h"
#include "util/rng.h"
#include "workload/arrival_stream.h"
#include "workload/generator.h"

namespace esva {
namespace {

constexpr int kNumVms = 180;
constexpr int kNumServers = 36;

std::vector<ServerSpec> make_fleet(int num_servers) {
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < num_servers; ++i) {
    const double transition_time = 0.5 + static_cast<double>(i % 3);
    const std::size_t type_index =
        types.size() - 1 - static_cast<std::size_t>(i) % types.size();
    servers.push_back(make_server(types[type_index], i, transition_time));
  }
  return servers;
}

WorkloadConfig workload_config() {
  WorkloadConfig config;
  config.num_vms = kNumVms;
  config.mean_interarrival = 1.5;
  config.mean_duration = 30.0;
  config.vm_types = all_vm_types();
  return config;
}

/// Stable demand (the paper's workload) or per-time-unit profiles (R_jt).
ProblemInstance instance(std::uint64_t seed, bool profiled) {
  Rng rng(seed);
  if (profiled) {
    return make_problem(
        generate_bursty_workload(workload_config(), /*phases=*/4,
                                 /*valley_factor=*/0.45, rng),
        make_fleet(kNumServers));
  }
  return make_problem(generate_workload(workload_config(), rng),
                      make_fleet(kNumServers));
}

/// Holds the collectors across a replay; MetricsRegistry owns mutexes, so
/// this is constructed in place and filled by replay() rather than returned.
struct TelemetryRun {
  ReplayReport report;
  EnergyLedger ledger;
  TimeSeriesSampler sampler{TimeSeriesOptions{/*every=*/1, /*capacity=*/0}};
  MetricsRegistry metrics;
};

/// Replays `problem` through the allocator's streaming policy with the full
/// telemetry stack bound (or none of it, for the differential baseline).
void replay(const std::string& name, const ProblemInstance& problem,
            bool telemetry, TelemetryRun& run,
            const FaultPlan* faults = nullptr, int max_attempts = 1) {
  AllocatorPtr allocator = make_allocator(name);
  std::unique_ptr<PlacementPolicy> policy = allocator->make_policy();
  ASSERT_NE(policy, nullptr) << name;
  Rng rng(7);
  VectorArrivalStream arrivals(problem.vms);
  ReplayOptions options;
  options.faults = faults;
  options.retry.max_attempts = max_attempts;
  if (telemetry) {
    options.obs.metrics = &run.metrics;
    options.timeseries = &run.sampler;
    options.ledger = &run.ledger;
  }
  run.report = replay_stream(arrivals, problem.servers, *policy, rng, options);
}

Energy cause_sum(const EnergyLedger& ledger) {
  return ledger.total_for(EnergyCause::kRun) +
         ledger.total_for(EnergyCause::kIdle) +
         ledger.total_for(EnergyCause::kTransition) +
         ledger.total_for(EnergyCause::kMigration);
}

// --- conservation: ledger total == cost-model total -------------------------

TEST(EnergyLedgerConservation, HoldsOnStableAndProfiledWorkloads) {
  for (const bool profiled : {false, true}) {
    const ProblemInstance problem = instance(42, profiled);
    TelemetryRun run;
    replay("min-incremental", problem, true, run);
    ASSERT_GT(run.report.placed, 0u) << (profiled ? "profiled" : "stable");

    // Every placement posts at least a run entry.
    EXPECT_GE(run.ledger.size(), run.report.placed);
    // The acceptance invariant: Σ deltas == telescoped engine energy to 1e-6
    // relative (the ledger recomputes through the breakdown path, so the two
    // only agree to rounding, never bitwise).
    EXPECT_TRUE(run.ledger.conserves(run.report.total_energy))
        << "ledger " << run.ledger.total() << " vs engine "
        << run.report.total_energy << (profiled ? " (profiled)" : " (stable)");
    // The cause totals partition the ledger total.
    EXPECT_NEAR(cause_sum(run.ledger), run.ledger.total(),
                1e-9 * std::max(1.0, std::abs(run.ledger.total())));
    // Fault-free: no migration energy anywhere.
    EXPECT_EQ(run.ledger.total_for(EnergyCause::kMigration), 0.0);
    // Run energy is always non-negative per entry and dominates the total.
    EXPECT_GT(run.ledger.total_for(EnergyCause::kRun), 0.0);
    for (const EnergyEntry& entry : run.ledger.entries()) {
      if (entry.cause == EnergyCause::kRun) {
        EXPECT_GE(entry.delta, 0.0);
      }
    }
  }
}

TEST(EnergyLedgerConservation, HoldsUnderChaosAndAttributesMigration) {
  const ProblemInstance problem = instance(23, /*profiled=*/false);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 6;
  chaos.window_lo = 5;
  chaos.window_hi = 200;
  chaos.mean_repair = 40;
  Rng plan_rng(101);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);

  TelemetryRun run;
  replay("min-incremental", problem, true, run, &plan, /*max_attempts=*/3);
  EXPECT_GT(run.report.faults.fault_events, 0);
  EXPECT_TRUE(run.ledger.conserves(run.report.total_energy))
      << "ledger " << run.ledger.total() << " vs engine "
      << run.report.total_energy;
  // Evacuation re-placements are the only source of migration entries.
  if (run.report.faults.evacuated + run.report.faults.retried_placed > 0) {
    EXPECT_GT(run.ledger.total_for(EnergyCause::kMigration), 0.0);
  } else {
    EXPECT_EQ(run.ledger.total_for(EnergyCause::kMigration), 0.0);
  }
  for (const EnergyEntry& entry : run.ledger.entries()) {
    if (entry.cause == EnergyCause::kMigration) {
      EXPECT_GT(entry.delta, 0.0);
    }
  }
}

// --- binding telemetry never changes a decision ------------------------------

TEST(TelemetryDifferential, FullStackLeavesReplayByteIdentical) {
  for (const bool profiled : {false, true}) {
    const ProblemInstance problem = instance(5, profiled);
    TelemetryRun plain;
    TelemetryRun full;
    replay("min-incremental", problem, false, plain);
    replay("min-incremental", problem, true, full);
    // Byte-identical: same assignment vector, same FP energy, same counts.
    ASSERT_EQ(plain.report.assignment, full.report.assignment)
        << (profiled ? "profiled" : "stable");
    EXPECT_EQ(plain.report.total_energy, full.report.total_energy);
    EXPECT_EQ(plain.report.placed, full.report.placed);
    EXPECT_EQ(plain.report.rejected, full.report.rejected);
    // And the telemetry run actually collected something.
    EXPECT_GT(full.sampler.size(), 0u);
    EXPECT_GT(full.ledger.size(), 0u);
  }
}

TEST(TelemetryDifferential, FullStackByteIdenticalUnderFaultsAndRetries) {
  const ProblemInstance problem = instance(31, /*profiled=*/true);
  ChaosConfig chaos;
  chaos.num_servers = static_cast<std::size_t>(kNumServers);
  chaos.failures = 4;
  chaos.window_lo = 5;
  chaos.window_hi = 150;
  chaos.mean_repair = 40;
  Rng plan_rng(7);
  const FaultPlan plan = random_fault_plan(chaos, plan_rng);

  TelemetryRun plain;
  TelemetryRun full;
  replay("min-incremental", problem, false, plain, &plan, /*max_attempts=*/3);
  replay("min-incremental", problem, true, full, &plan, /*max_attempts=*/3);
  ASSERT_EQ(plain.report.assignment, full.report.assignment);
  EXPECT_EQ(plain.report.total_energy, full.report.total_energy);
  EXPECT_EQ(plain.report.faults.displaced, full.report.faults.displaced);
  EXPECT_EQ(plain.report.faults.evacuated, full.report.faults.evacuated);
  EXPECT_EQ(plain.report.faults.retries, full.report.faults.retries);
  EXPECT_EQ(plain.report.faults.rejected_final,
            full.report.faults.rejected_final);
}

// --- time-series sampler: what the engine records ----------------------------

TEST(TimeSeries, SamplesPartitionTheFleetAndGrowMonotonically) {
  const ProblemInstance problem = instance(42, /*profiled=*/false);
  TelemetryRun run;
  replay("min-incremental", problem, true, run);
  const std::vector<FleetSample> samples = run.sampler.samples();
  ASSERT_FALSE(samples.empty());
  EXPECT_EQ(run.sampler.dropped(), 0u);  // capacity 0 = unbounded

  Time prev_t = std::numeric_limits<Time>::min();
  std::int64_t prev_requests = 0;
  double prev_energy = 0.0;
  for (const FleetSample& s : samples) {
    // The forced end-of-stream sample may share the final frontier, so
    // non-decreasing rather than strictly increasing.
    EXPECT_GE(s.t, prev_t);
    prev_t = s.t;
    // busy/idle/drained/failed partition the fleet at every instant.
    EXPECT_EQ(s.busy_servers + s.idle_servers + s.drained_servers +
                  s.failed_servers,
              static_cast<std::uint32_t>(kNumServers));
    EXPECT_LE(s.active_vms, static_cast<std::uint32_t>(kNumVms));
    EXPECT_GE(s.total_power_w, 0.0);
    EXPECT_GE(s.spare_cpu, 0.0);
    EXPECT_GE(s.spare_mem, 0.0);
    // Cumulative counters never regress.
    EXPECT_GE(s.requests, prev_requests);
    prev_requests = s.requests;
    EXPECT_GE(s.total_energy, prev_energy - 1e-9);
    prev_energy = s.total_energy;
  }
  // The forced final sample reflects the drained end state.
  const FleetSample* last = run.sampler.latest();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->t, run.report.final_frontier);
  EXPECT_EQ(last->requests,
            static_cast<std::int64_t>(run.report.requests));
  EXPECT_EQ(last->retry_queue_depth, 0u);
  EXPECT_EQ(last->total_energy, run.report.total_energy);
  // Somewhere mid-run the fleet was actually busy.
  bool saw_busy = false;
  for (const FleetSample& s : samples) saw_busy |= s.busy_servers > 0;
  EXPECT_TRUE(saw_busy);
}

TEST(TimeSeries, CadenceGateAndFirstSampleAlwaysDue) {
  TimeSeriesOptions options;
  options.every = 5;
  TimeSeriesSampler sampler(options);
  EXPECT_TRUE(sampler.due(std::numeric_limits<Time>::min()));
  FleetSample s;
  s.t = 1;
  sampler.record(s);
  EXPECT_FALSE(sampler.due(2));
  EXPECT_FALSE(sampler.due(5));
  EXPECT_TRUE(sampler.due(6));  // t + every
  s.t = 9;
  sampler.record(s);
  EXPECT_FALSE(sampler.due(13));
  EXPECT_TRUE(sampler.due(14));
}

TEST(TimeSeries, RingOverwritesOldestAndCountsDrops) {
  TimeSeriesOptions options;
  options.every = 1;
  options.capacity = 3;
  TimeSeriesSampler sampler(options);
  EXPECT_EQ(sampler.size(), 0u);
  EXPECT_EQ(sampler.latest(), nullptr);
  for (Time t = 1; t <= 5; ++t) {
    FleetSample s;
    s.t = t;
    s.active_vms = static_cast<std::uint32_t>(t);
    sampler.record(s);
  }
  EXPECT_EQ(sampler.size(), 3u);
  EXPECT_EQ(sampler.dropped(), 2u);
  const std::vector<FleetSample> kept = sampler.samples();
  ASSERT_EQ(kept.size(), 3u);
  EXPECT_EQ(kept[0].t, 3);  // oldest retained, in order
  EXPECT_EQ(kept[1].t, 4);
  EXPECT_EQ(kept[2].t, 5);
  ASSERT_NE(sampler.latest(), nullptr);
  EXPECT_EQ(sampler.latest()->t, 5);
}

TEST(TimeSeries, CsvAndJsonlExport) {
  TimeSeriesSampler sampler;
  FleetSample s;
  s.t = 7;
  s.active_vms = 3;
  s.busy_servers = 2;
  s.total_power_w = 123.5;
  s.spare_cpu = 10.25;
  sampler.record(s);
  s.t = 8;
  sampler.record(s);

  std::ostringstream csv;
  sampler.write_csv(csv);
  std::istringstream csv_lines(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(csv_lines, line));
  EXPECT_EQ(line, TimeSeriesSampler::csv_header());
  std::size_t rows = 0;
  while (std::getline(csv_lines, line)) {
    ++rows;
    EXPECT_EQ(line.rfind("7,3,2,", 0) == 0 || line.rfind("8,3,2,", 0) == 0,
              true)
        << line;
  }
  EXPECT_EQ(rows, 2u);

  std::ostringstream jsonl;
  sampler.write_jsonl(jsonl);
  std::istringstream json_lines(jsonl.str());
  std::size_t objects = 0;
  while (std::getline(json_lines, line)) {
    ++objects;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"t\":"), std::string::npos);
    EXPECT_NE(line.find("\"total_power_w\":123.5"), std::string::npos);
  }
  EXPECT_EQ(objects, 2u);
}

// --- ledger bookkeeping and exports ------------------------------------------

TEST(EnergyLedger, TotalsAndCauseFilters) {
  EnergyLedger ledger;
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.total(), 0.0);
  EXPECT_TRUE(ledger.conserves(0.0));
  ledger.post(1, 0, 2, EnergyCause::kRun, 10.0);
  ledger.post(1, 0, 2, EnergyCause::kIdle, -1.5);
  ledger.post(3, 1, 2, EnergyCause::kTransition, 4.0);
  ledger.post(5, 1, 4, EnergyCause::kMigration, 2.25);
  EXPECT_EQ(ledger.size(), 4u);
  EXPECT_DOUBLE_EQ(ledger.total(), 14.75);
  EXPECT_DOUBLE_EQ(ledger.total_for(EnergyCause::kRun), 10.0);
  EXPECT_DOUBLE_EQ(ledger.total_for(EnergyCause::kIdle), -1.5);
  EXPECT_DOUBLE_EQ(ledger.total_for(EnergyCause::kTransition), 4.0);
  EXPECT_DOUBLE_EQ(ledger.total_for(EnergyCause::kMigration), 2.25);
  EXPECT_TRUE(ledger.conserves(14.75));
  EXPECT_TRUE(ledger.conserves(14.75 + 1e-6));   // within 1e-6 · max(1, |E|)
  EXPECT_FALSE(ledger.conserves(14.75 + 1e-3));  // clearly out
  ledger.clear();
  EXPECT_EQ(ledger.size(), 0u);
  EXPECT_EQ(ledger.total(), 0.0);
}

TEST(EnergyLedger, CsvAndJsonlExport) {
  EnergyLedger ledger;
  ledger.post(2, 7, 1, EnergyCause::kRun, 5.5);
  ledger.post(4, 7, 1, EnergyCause::kMigration, 0.5);

  std::ostringstream csv;
  ledger.write_csv(csv);
  std::istringstream csv_lines(csv.str());
  std::string line;
  ASSERT_TRUE(std::getline(csv_lines, line));
  EXPECT_EQ(line, "at,vm,server,cause,delta");
  ASSERT_TRUE(std::getline(csv_lines, line));
  EXPECT_EQ(line, "2,7,1,run,5.5");
  ASSERT_TRUE(std::getline(csv_lines, line));
  EXPECT_EQ(line, "4,7,1,migration,0.5");
  EXPECT_FALSE(std::getline(csv_lines, line));

  std::ostringstream jsonl;
  ledger.write_jsonl(jsonl);
  std::istringstream json_lines(jsonl.str());
  std::size_t objects = 0;
  while (std::getline(json_lines, line)) {
    ++objects;
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
    EXPECT_NE(line.find("\"cause\":"), std::string::npos);
  }
  EXPECT_EQ(objects, 2u);
}

// --- histogram-vs-exact agreement on a real replay ---------------------------

TEST(LatencyHistogramReplay, HistQuantilesTrackExactWithinOneBucketWidth) {
  const ProblemInstance problem = instance(42, /*profiled=*/false);
  TelemetryRun run;
  replay("min-incremental", problem, true, run);
  const ReplayReport& report = run.report;
  ASSERT_GT(report.submit_ms.size(), 0u);
  ASSERT_EQ(report.latency_hist.total, report.submit_ms.size());

  // replay_stream feeds the histogram the same measured samples it sorts for
  // the exact quantiles, so agreement is deterministic: within the width of
  // the bucket(s) the exact order statistics fall into.
  std::vector<double> sorted = report.submit_ms;
  std::sort(sorted.begin(), sorted.end());
  const struct {
    double p;
    double exact;
    double hist;
  } cases[] = {{0.50, report.latency.p50_ms, report.latency.hist_p50_ms},
               {0.99, report.latency.p99_ms, report.latency.hist_p99_ms}};
  for (const auto& c : cases) {
    const double h = c.p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(h));
    const auto hi = static_cast<std::size_t>(std::ceil(h));
    const double tol = LatencyHistogram::bucket_upper(
                           LatencyHistogram::bucket_index(sorted[hi])) -
                       LatencyHistogram::bucket_lower(
                           LatencyHistogram::bucket_index(sorted[lo]));
    EXPECT_NEAR(c.hist, c.exact, tol + 1e-12) << "p=" << c.p;
  }
  EXPECT_GE(report.latency.hist_p90_ms, report.latency.hist_p50_ms);
  EXPECT_LE(report.latency.hist_p99_ms, report.latency.max_ms);
}

}  // namespace
}  // namespace esva
