// Robustness fuzzing for every text parser: random byte soup and structured
// mutations must either parse or throw std::runtime_error — never crash,
// hang, or return out-of-contract data.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "ilp/solution_io.h"
#include "util/csv.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace esva {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.index(max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Printable-heavy mix with occasional control characters.
    if (rng.bernoulli(0.9))
      s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    else
      s.push_back(static_cast<char>(rng.uniform_int(0, 31)));
  }
  return s;
}

/// Characters the CSV layer treats specially, to bias mutations.
std::string random_csvish(Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] = "abc123,\"\n\r.-";
  const std::size_t len = rng.index(max_len + 1);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
  return s;
}

TEST(FuzzParsers, CsvLineNeverCrashes) {
  Rng rng(0xc5f);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string line =
        rng.bernoulli(0.5) ? random_bytes(rng, 80) : random_csvish(rng, 80);
    try {
      const auto fields = parse_csv_line(line);
      // Contract: joined field lengths can't exceed input length.
      std::size_t total = 0;
      for (const auto& f : fields) total += f.size();
      ASSERT_LE(total, line.size() + 1);
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
}

TEST(FuzzParsers, VmTraceNeverCrashes) {
  Rng rng(0xbee);
  const std::string header = "id,type,cpu,mem,start,end\n";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = header;
    const int rows = static_cast<int>(rng.uniform_int(0, 5));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 40) + "\n";
    std::istringstream in(body);
    try {
      const auto vms = read_vm_trace(in);
      for (const VmSpec& vm : vms) ASSERT_TRUE(vm.valid());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, VmTraceFieldMutationsAreCaught) {
  // Start from a valid row and corrupt one field at a time.
  const std::string header = "id,type,cpu,mem,start,end\n";
  const std::vector<std::string> good{"0", "m1.small", "1", "1.7", "1", "5"};
  const std::vector<std::string> bad_values{"", "x", "1e999", "-3", "1.2.3",
                                            "NaN?", "\"", "9999999999999999999"};
  for (std::size_t field = 0; field < good.size(); ++field) {
    for (const std::string& bad : bad_values) {
      auto row = good;
      row[field] = bad;
      std::string body = header;
      for (std::size_t k = 0; k < row.size(); ++k)
        body += (k ? "," : "") + row[k];
      body += "\n";
      std::istringstream in(body);
      try {
        const auto vms = read_vm_trace(in);
        for (const VmSpec& vm : vms) ASSERT_TRUE(vm.valid());
      } catch (const std::runtime_error&) {
      }
    }
  }
}

TEST(FuzzParsers, ServerTraceNeverCrashes) {
  Rng rng(0xdad);
  const std::string header = "id,type,cpu,mem,p_idle,p_peak,transition_time\n";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = header;
    const int rows = static_cast<int>(rng.uniform_int(0, 4));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 50) + "\n";
    std::istringstream in(body);
    try {
      const auto servers = read_server_trace(in);
      for (const ServerSpec& s : servers) ASSERT_TRUE(s.valid());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, AssignmentNeverCrashes) {
  Rng rng(0xace);
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = "vm_id,server_id\n";
    const int rows = static_cast<int>(rng.uniform_int(0, 6));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 20) + "\n";
    std::istringstream in(body);
    const std::size_t num_vms = rng.index(5);
    try {
      const Allocation alloc = read_assignment(in, num_vms);
      ASSERT_EQ(alloc.assignment.size(), num_vms);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, SolutionReaderNeverCrashes) {
  Rng rng(0xf00);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string body;
    const int lines = static_cast<int>(rng.uniform_int(0, 8));
    for (int l = 0; l < lines; ++l) {
      switch (rng.index(4)) {
        case 0: body += random_bytes(rng, 40); break;
        case 1: body += "x_" + std::to_string(rng.index(9)) + "_" +
                        std::to_string(rng.index(9)) + " " +
                        std::to_string(rng.next_double());
                break;
        case 2: body += "Objective " + random_csvish(rng, 10); break;
        default: body += random_csvish(rng, 40); break;
      }
      body += "\n";
    }
    std::istringstream in(body);
    try {
      const SolverSolution solution = read_solution(in);
      for (const auto& [name, value] : solution.values)
        ASSERT_FALSE(name.empty());
    } catch (const std::runtime_error&) {
    }
  }
}

}  // namespace
}  // namespace esva
