// Robustness fuzzing for every text parser: random byte soup and structured
// mutations must either parse or throw std::runtime_error — never crash,
// hang, or return out-of-contract data.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/fault_plan.h"
#include "ilp/solution_io.h"
#include "obs/trace.h"
#include "serve/wire.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rng.h"
#include "workload/trace.h"

namespace esva {
namespace {

std::string random_bytes(Rng& rng, std::size_t max_len) {
  const std::size_t len = rng.index(max_len + 1);
  std::string s;
  s.reserve(len);
  for (std::size_t i = 0; i < len; ++i) {
    // Printable-heavy mix with occasional control characters.
    if (rng.bernoulli(0.9))
      s.push_back(static_cast<char>(rng.uniform_int(32, 126)));
    else
      s.push_back(static_cast<char>(rng.uniform_int(0, 31)));
  }
  return s;
}

/// Characters the CSV layer treats specially, to bias mutations.
std::string random_csvish(Rng& rng, std::size_t max_len) {
  static const char kAlphabet[] = "abc123,\"\n\r.-";
  const std::size_t len = rng.index(max_len + 1);
  std::string s;
  for (std::size_t i = 0; i < len; ++i)
    s.push_back(kAlphabet[rng.index(sizeof(kAlphabet) - 1)]);
  return s;
}

TEST(FuzzParsers, CsvLineNeverCrashes) {
  Rng rng(0xc5f);
  for (int trial = 0; trial < 3000; ++trial) {
    const std::string line =
        rng.bernoulli(0.5) ? random_bytes(rng, 80) : random_csvish(rng, 80);
    try {
      const auto fields = parse_csv_line(line);
      // Contract: joined field lengths can't exceed input length.
      std::size_t total = 0;
      for (const auto& f : fields) total += f.size();
      ASSERT_LE(total, line.size() + 1);
    } catch (const std::runtime_error&) {
      // acceptable outcome
    }
  }
}

TEST(FuzzParsers, VmTraceNeverCrashes) {
  Rng rng(0xbee);
  const std::string header = "id,type,cpu,mem,start,end\n";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = header;
    const int rows = static_cast<int>(rng.uniform_int(0, 5));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 40) + "\n";
    std::istringstream in(body);
    try {
      const auto vms = read_vm_trace(in);
      for (const VmSpec& vm : vms) ASSERT_TRUE(vm.valid());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, VmTraceFieldMutationsAreCaught) {
  // Start from a valid row and corrupt one field at a time.
  const std::string header = "id,type,cpu,mem,start,end\n";
  const std::vector<std::string> good{"0", "m1.small", "1", "1.7", "1", "5"};
  const std::vector<std::string> bad_values{"", "x", "1e999", "-3", "1.2.3",
                                            "NaN?", "\"", "9999999999999999999"};
  for (std::size_t field = 0; field < good.size(); ++field) {
    for (const std::string& bad : bad_values) {
      auto row = good;
      row[field] = bad;
      std::string body = header;
      for (std::size_t k = 0; k < row.size(); ++k)
        body += (k ? "," : "") + row[k];
      body += "\n";
      std::istringstream in(body);
      try {
        const auto vms = read_vm_trace(in);
        for (const VmSpec& vm : vms) ASSERT_TRUE(vm.valid());
      } catch (const std::runtime_error&) {
      }
    }
  }
}

TEST(FuzzParsers, ServerTraceNeverCrashes) {
  Rng rng(0xdad);
  const std::string header = "id,type,cpu,mem,p_idle,p_peak,transition_time\n";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = header;
    const int rows = static_cast<int>(rng.uniform_int(0, 4));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 50) + "\n";
    std::istringstream in(body);
    try {
      const auto servers = read_server_trace(in);
      for (const ServerSpec& s : servers) ASSERT_TRUE(s.valid());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, AssignmentNeverCrashes) {
  Rng rng(0xace);
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = "vm_id,server_id\n";
    const int rows = static_cast<int>(rng.uniform_int(0, 6));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 20) + "\n";
    std::istringstream in(body);
    const std::size_t num_vms = rng.index(5);
    try {
      const Allocation alloc = read_assignment(in, num_vms);
      ASSERT_EQ(alloc.assignment.size(), num_vms);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, SolutionReaderNeverCrashes) {
  Rng rng(0xf00);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string body;
    const int lines = static_cast<int>(rng.uniform_int(0, 8));
    for (int l = 0; l < lines; ++l) {
      switch (rng.index(4)) {
        case 0: body += random_bytes(rng, 40); break;
        case 1: body += "x_" + std::to_string(rng.index(9)) + "_" +
                        std::to_string(rng.index(9)) + " " +
                        std::to_string(rng.next_double());
                break;
        case 2: body += "Objective " + random_csvish(rng, 10); break;
        default: body += random_csvish(rng, 40); break;
      }
      body += "\n";
    }
    std::istringstream in(body);
    try {
      const SolverSolution solution = read_solution(in);
      for (const auto& [name, value] : solution.values)
        ASSERT_FALSE(name.empty());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, FaultPlanNeverCrashes) {
  Rng rng(0xfa0);
  const std::string header = "time,event,server\n";
  for (int trial = 0; trial < 1500; ++trial) {
    std::string body = rng.bernoulli(0.8) ? header : random_csvish(rng, 30);
    const int rows = static_cast<int>(rng.uniform_int(0, 5));
    for (int r = 0; r < rows; ++r) body += random_csvish(rng, 30) + "\n";
    std::istringstream in(body);
    try {
      const FaultPlan plan = read_fault_plan(in);
      Time prev = 0;
      for (const FaultEvent& e : plan.events()) {
        ASSERT_GE(e.at, prev);  // contract: sorted by time
        prev = e.at;
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, FaultPlanFieldMutationsAreCaught) {
  // Every corruption of a valid row must raise a structured runtime_error or
  // parse to an in-contract event — never crash, hang, or wrap silently.
  const std::string header = "time,event,server\n";
  const std::vector<std::string> good{"10", "fail", "2"};
  const std::vector<std::string> bad_values{
      "",     "x",   "1e999", "-3",        "1.5",
      "NaN",  "\"",  "inf",   "权限",      "9999999999999999999",
      "0x10", "+ 1", "fail2", "1 000 000", "2,"};
  for (std::size_t field = 0; field < good.size(); ++field) {
    for (const std::string& bad : bad_values) {
      auto row = good;
      row[field] = bad;
      std::string body = header;
      for (std::size_t k = 0; k < row.size(); ++k)
        body += (k ? "," : "") + row[k];
      body += "\n";
      std::istringstream in(body);
      try {
        const FaultPlan plan = read_fault_plan(in);
        for (const FaultEvent& e : plan.events()) {
          ASSERT_GE(e.at, 1);
          ASSERT_GE(e.server, 0);
        }
      } catch (const std::runtime_error& e) {
        // Structured: either line-numbered (field parsers) or the CSV
        // layer's own message; never empty.
        ASSERT_FALSE(std::string(e.what()).empty());
      }
    }
  }
}

TEST(FuzzParsers, CrlfLineEndingsParseCleanly) {
  // Windows-edited traces: a single trailing \r per line must not corrupt
  // the last field of any CSV parser.
  std::istringstream faults("time,event,server\r\n10,fail,2\r\n20,recover,2\r\n");
  const FaultPlan plan = read_fault_plan(faults);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan.events()[0].at, 10);
  EXPECT_EQ(plan.events()[0].server, 2);
  EXPECT_EQ(plan.events()[1].kind, FaultKind::kRecover);

  std::istringstream vms("id,type,cpu,mem,start,end\r\n0,m1,1,1.5,1,5\r\n");
  const auto parsed = read_vm_trace(vms);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].end, 5);
  EXPECT_EQ(parsed[0].demand.mem, 1.5);
}

TEST(FuzzParsers, TraceJsonlMutationsAreCaught) {
  // Structured mutations of a valid decision-trace line: every outcome is
  // either a loaded record honoring the schema bounds or a runtime_error.
  const std::vector<std::string> lines{
      R"({"vm":1e99,"chosen":0})",          // overflows VmId
      R"({"vm":-1,"chosen":0})",            // negative id
      R"({"vm":1.5,"chosen":0})",           // fractional id
      R"({"vm":0,"chosen":-5})",            // below kNoServer
      R"({"vm":0,"chosen":1e99})",          // overflows ServerId
      R"({"vm":0,"chosen":0,"candidates":[{"server":-7}]})",
      R"({"vm":0,"chosen":0,"at":1e999})",  // double overflow literal
      R"({"chosen":0})",                    // missing vm
      "[1,2,3]",                            // not an object
      "17",                                 // scalar root
      std::string(1000, '[') + std::string(1000, ']'),  // deep nesting
      R"({"vm":0,"chosen":0)",              // truncated
      R"({"vm":0,"chosen":0,"note":")" + std::string("\xff\xfe", 2) + "\"}",
  };
  for (const std::string& line : lines) {
    std::istringstream in(line + "\n");
    try {
      const auto decisions = load_trace_jsonl(in);
      for (const VmDecisionTrace& d : decisions) {
        ASSERT_GE(d.vm, 0);
        ASSERT_GE(d.chosen, kNoServer);
      }
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, TraceJsonlRandomSoupNeverCrashes) {
  Rng rng(0x15e);
  static const char kJsonish[] = "{}[]\":,0123456789.eE+-truefalsn\\vmchos";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line;
    const std::size_t len = rng.index(120);
    for (std::size_t i = 0; i < len; ++i)
      line.push_back(rng.bernoulli(0.9)
                         ? kJsonish[rng.index(sizeof(kJsonish) - 1)]
                         : static_cast<char>(rng.uniform_int(0, 255)));
    std::istringstream in(line + "\n");
    try {
      load_trace_jsonl(in);
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, ServeRequestDecoderNeverCrashes) {
  Rng rng(0x5e12e);
  static const char kJsonish[] = "{}[]\":,0123456789.eE+-xp\\opplacevmidfault";
  for (int trial = 0; trial < 3000; ++trial) {
    std::string line;
    const std::size_t len = rng.index(150);
    for (std::size_t i = 0; i < len; ++i)
      line.push_back(rng.bernoulli(0.9)
                         ? kJsonish[rng.index(sizeof(kJsonish) - 1)]
                         : static_cast<char>(rng.uniform_int(0, 255)));
    try {
      const serve::Request req = serve::decode_request(line);
      if (req.op == serve::OpKind::kPlace) ASSERT_TRUE(req.vm.valid());
    } catch (const std::runtime_error&) {
    }
  }
}

TEST(FuzzParsers, JsonParserBoundsRecursionDepth) {
  // The depth guard must convert pathological nesting into a runtime_error
  // (stack exhaustion would be a crash under ASan).
  const std::string deep(100000, '[');
  EXPECT_THROW(json::parse(deep), std::runtime_error);
  const std::string mixed = std::string(50000, '[') + "{\"a\":" +
                            std::string(50000, '[');
  EXPECT_THROW(json::parse(mixed), std::runtime_error);
}

}  // namespace
}  // namespace esva
