// Time-varying demand profiles (the paper's general R_jt, Eqs. 3/9/10):
// spec-level API, per-unit packing, cost accounting, simulation, traces,
// and equivalence with stable demands when the profile is constant.

#include <gtest/gtest.h>

#include <sstream>

#include "baselines/registry.h"
#include "cluster/timeline.h"
#include "core/power_model.h"
#include "ilp/model.h"
#include "ilp/validate.h"
#include "sim/engine.h"
#include "sim/metrics.h"
#include "test_util.h"
#include "workload/generator.h"
#include "workload/trace.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

VmSpec profiled_vm(VmId id, Time start,
                   std::initializer_list<Resources> levels) {
  VmSpec spec;
  spec.id = id;
  spec.type_name = "profiled";
  spec.start = start;
  spec.end = start + static_cast<Time>(levels.size()) - 1;
  spec.set_profile(std::vector<Resources>(levels));
  return spec;
}

TEST(VmProfile, SetProfileTracksPeak) {
  const VmSpec p = profiled_vm(0, 5, {{2, 1}, {6, 3}, {1, 8}});
  EXPECT_DOUBLE_EQ(p.demand.cpu, 6.0);
  EXPECT_DOUBLE_EQ(p.demand.mem, 8.0);
  EXPECT_TRUE(p.valid());
  EXPECT_EQ(p.demand_at(5), (Resources{2, 1}));
  EXPECT_EQ(p.demand_at(6), (Resources{6, 3}));
  EXPECT_EQ(p.demand_at(7), (Resources{1, 8}));
  EXPECT_DOUBLE_EQ(p.total_cpu(), 9.0);
}

TEST(VmProfile, ValidityChecks) {
  VmSpec p = profiled_vm(0, 1, {{2, 2}, {3, 3}});
  EXPECT_TRUE(p.valid());
  p.demand.cpu = 99.0;  // breaks the peak invariant
  EXPECT_FALSE(p.valid());

  VmSpec wrong_size = profiled_vm(0, 1, {{1, 1}});
  wrong_size.end = 5;  // duration no longer matches the profile
  EXPECT_FALSE(wrong_size.valid());

  VmSpec negative = profiled_vm(0, 1, {{1, 1}, {1, 1}});
  negative.profile[1].cpu = -1.0;
  EXPECT_FALSE(negative.valid());
}

TEST(VmProfile, StableVmTotalsUnchanged) {
  const VmSpec s = vm(0, 1, 10, 3.0, 2.0);
  EXPECT_FALSE(s.has_profile());
  EXPECT_DOUBLE_EQ(s.total_cpu(), 30.0);
  EXPECT_EQ(s.demand_at(7), (Resources{3.0, 2.0}));
}

TEST(VmProfile, RunCostUsesTheSum) {
  // Eq. 3: W = P¹ Σ_t R_t = 10 × (2 + 6 + 1).
  const VmSpec p = profiled_vm(0, 1, {{2, 1}, {6, 1}, {1, 1}});
  EXPECT_DOUBLE_EQ(run_cost(basic_server(), p), 90.0);
}

TEST(VmProfile, TimelinePacksValleysUnderPeaks) {
  // Two VMs whose peaks are both 8 CPU but staggered in time: together they
  // exceed the 10-CPU capacity only if reserved at peak; per-unit demand
  // never exceeds 8 + 2 = 10.
  const VmSpec a = profiled_vm(0, 1, {{8, 2}, {2, 2}, {2, 2}, {2, 2}});
  const VmSpec b = profiled_vm(1, 1, {{2, 2}, {8, 2}, {2, 2}, {2, 2}});
  ServerTimeline timeline(basic_server(), 10);
  ASSERT_TRUE(timeline.can_fit(a));
  timeline.place(a);
  EXPECT_TRUE(timeline.can_fit(b)) << "per-unit packing must accept this";
  timeline.place(b);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(1), 10.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(2), 10.0);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(3), 4.0);

  // A third VM needing 1 CPU at t=1 must be rejected (10 already used).
  EXPECT_FALSE(timeline.can_fit(vm(2, 1, 1, 1.0, 1.0)));
  // But fits at t=3.
  EXPECT_TRUE(timeline.can_fit(vm(2, 3, 4, 1.0, 1.0)));
}

TEST(VmProfile, PeakReservationWouldHaveRejected) {
  // The same pair, profile information stripped (peak reservation): the
  // second VM no longer fits — quantifying what profiles buy.
  VmSpec a = profiled_vm(0, 1, {{8, 2}, {2, 2}, {2, 2}, {2, 2}});
  VmSpec b = profiled_vm(1, 1, {{2, 2}, {8, 2}, {2, 2}, {2, 2}});
  a.profile.clear();  // demand stays at the peak (8, 2)
  b.profile.clear();
  ServerTimeline timeline(basic_server(), 10);
  timeline.place(a);
  EXPECT_FALSE(timeline.can_fit(b));
}

TEST(VmProfile, PlaceUndoRoundTripsPerUnitUsage) {
  ServerTimeline timeline(basic_server(), 20);
  timeline.place(vm(0, 1, 20, 1.0, 1.0));
  const VmSpec p = profiled_vm(1, 3, {{4, 2}, {1, 5}, {3, 3}});
  const auto record = timeline.place(p);
  EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(3), 5.0);
  EXPECT_DOUBLE_EQ(timeline.mem_usage_at(4), 6.0);
  timeline.undo(record, p);
  for (Time t = 1; t <= 20; ++t) {
    EXPECT_DOUBLE_EQ(timeline.cpu_usage_at(t), 1.0) << t;
    EXPECT_DOUBLE_EQ(timeline.mem_usage_at(t), 1.0) << t;
  }
}

TEST(VmProfile, ValidatorChecksPerUnitDemands) {
  // Both profiled VMs on one server: feasible interleaved, infeasible if one
  // is shifted to align the peaks.
  const VmSpec a = profiled_vm(0, 1, {{8, 2}, {2, 2}});
  const VmSpec b = profiled_vm(1, 1, {{2, 2}, {8, 2}});
  {
    const ProblemInstance ok = make_problem({a, b}, {basic_server(0)});
    Allocation alloc;
    alloc.assignment = {0, 0};
    EXPECT_EQ(validate_allocation(ok, alloc), "");
  }
  {
    VmSpec clash = b;
    clash.set_profile({{8, 2}, {2, 2}});  // peak now collides with a's
    const ProblemInstance bad = make_problem({a, clash}, {basic_server(0)});
    Allocation alloc;
    alloc.assignment = {0, 0};
    EXPECT_NE(validate_allocation(bad, alloc).find("over capacity"),
              std::string::npos);
  }
}

TEST(VmProfile, EngineTracksDemandSteps) {
  const VmSpec p = profiled_vm(0, 1, {{2, 1}, {6, 1}, {1, 1}});
  const ProblemInstance problem = make_problem({p}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const SimulationResult result =
      SimulationEngine(problem, alloc).run(true);
  // Samples: 100 idle + 10·cpu_t.
  ASSERT_EQ(result.samples.size(), 3u);
  EXPECT_DOUBLE_EQ(result.samples[0].total_power, 120.0);
  EXPECT_DOUBLE_EQ(result.samples[1].total_power, 160.0);
  EXPECT_DOUBLE_EQ(result.samples[2].total_power, 110.0);
  EXPECT_EQ(result.samples[1].running_vms, 1);
  // Ledger == closed form.
  EXPECT_NEAR(result.total_energy(),
              evaluate_cost(problem, alloc).total(), 1e-9);
}

TEST(VmProfile, UtilizationAveragesPerUnitUsage) {
  const VmSpec p = profiled_vm(0, 1, {{2, 2}, {6, 6}});
  const ProblemInstance problem = make_problem({p}, {basic_server(0)});
  Allocation alloc;
  alloc.assignment = {0};
  const UtilizationStats stats = average_utilization(problem, alloc);
  EXPECT_NEAR(stats.avg_cpu, (0.2 + 0.6) / 2.0, 1e-12);
  EXPECT_NEAR(stats.avg_mem, (0.2 + 0.6) / 2.0, 1e-12);
}

TEST(VmProfile, IlpCapacityRowsUseRjt) {
  const VmSpec p = profiled_vm(0, 1, {{8, 2}, {2, 2}});
  const VmSpec q = profiled_vm(1, 1, {{2, 2}, {8, 2}});
  const ProblemInstance problem = make_problem({p, q}, {basic_server(0)});
  const IlpModel model = build_ilp(problem);
  Allocation alloc;
  alloc.assignment = {0, 0};
  const auto active = derive_active_sets(problem, alloc);
  const auto values = to_variable_assignment(model, problem, alloc, active);
  EXPECT_EQ(model.first_violation(values), "");  // fits with R_jt rows
  EXPECT_NEAR(model.objective_value(values),
              evaluate_cost(problem, alloc).total(), 1e-9);
}

TEST(VmProfile, ConstantProfileEquivalentToStableEverywhere) {
  // A profile of identical levels must behave exactly like a stable VM:
  // same costs, same simulator output, same greedy placement.
  Rng gen(5);
  WorkloadConfig config;
  config.num_vms = 20;
  config.mean_interarrival = 2.0;
  config.mean_duration = 10.0;
  config.vm_types = all_vm_types();
  std::vector<VmSpec> stable = generate_workload(config, gen);
  std::vector<VmSpec> constant = stable;
  for (VmSpec& v : constant)
    v.set_profile(std::vector<Resources>(
        static_cast<std::size_t>(v.duration()), v.demand));

  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < 10; ++i)
    servers.push_back(
        make_server(types[types.size() - 1 - static_cast<std::size_t>(i) % types.size()], i, 1.0));
  const ProblemInstance ps = make_problem(stable, servers);
  const ProblemInstance pc = make_problem(constant, servers);

  Rng r1(1);
  Rng r2(1);
  const Allocation as = make_allocator("min-incremental")->allocate(ps, r1);
  const Allocation ac = make_allocator("min-incremental")->allocate(pc, r2);
  EXPECT_EQ(as.assignment, ac.assignment);
  EXPECT_NEAR(evaluate_cost(ps, as).total(), evaluate_cost(pc, ac).total(),
              1e-6);
  EXPECT_NEAR(SimulationEngine(pc, ac).run().total_energy(),
              SimulationEngine(ps, as).run().total_energy(), 1e-6);
}

TEST(VmProfile, TraceRoundTripsProfiles) {
  std::vector<VmSpec> vms{vm(0, 1, 3, 2.0, 1.0),
                          profiled_vm(1, 2, {{1.5, 2}, {4, 1}, {0.5, 3}})};
  std::stringstream buffer;
  write_vm_trace(buffer, vms);
  const auto loaded = read_vm_trace(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_FALSE(loaded[0].has_profile());
  ASSERT_TRUE(loaded[1].has_profile());
  ASSERT_EQ(loaded[1].profile.size(), 3u);
  EXPECT_DOUBLE_EQ(loaded[1].profile[0].cpu, 1.5);
  EXPECT_DOUBLE_EQ(loaded[1].profile[2].mem, 3.0);
  EXPECT_DOUBLE_EQ(loaded[1].demand.cpu, 4.0);  // peak restored
}

TEST(VmProfile, TraceRejectsWrongProfileLength) {
  std::istringstream in(
      "id,type,cpu,mem,start,end,profile\n"
      "0,t,4,2,1,3,1:1|4:2\n");  // 2 entries for a 3-unit VM
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(VmProfile, TraceRejectsMalformedProfileEntry) {
  std::istringstream in(
      "id,type,cpu,mem,start,end,profile\n"
      "0,t,4,2,1,2,1:1|nope\n");
  EXPECT_THROW(read_vm_trace(in), std::runtime_error);
}

TEST(BurstyGenerator, PeakMatchesCatalogDemand) {
  WorkloadConfig config;
  config.num_vms = 50;
  config.mean_interarrival = 2.0;
  config.mean_duration = 20.0;
  config.vm_types = all_vm_types();
  Rng rng(7);
  const auto vms = generate_bursty_workload(config, 4, 0.3, rng);
  for (const VmSpec& v : vms) {
    ASSERT_TRUE(v.valid());
    ASSERT_TRUE(v.has_profile());
    // The pinned segment guarantees the peak equals a catalog demand.
    bool matches_catalog = false;
    for (const VmType& t : all_vm_types())
      matches_catalog =
          matches_catalog || (std::abs(t.demand.cpu - v.demand.cpu) < 1e-9 &&
                              std::abs(t.demand.mem - v.demand.mem) < 1e-9);
    EXPECT_TRUE(matches_catalog) << v.type_name;
    // All levels within [valley × peak, peak].
    for (const Resources& r : v.profile) {
      EXPECT_GE(r.cpu, 0.3 * v.demand.cpu - 1e-9);
      EXPECT_LE(r.cpu, v.demand.cpu + 1e-9);
    }
  }
}

TEST(BurstyGenerator, EndToEndThroughAllocatorsAndSimulator) {
  WorkloadConfig config;
  config.num_vms = 30;
  config.mean_interarrival = 2.0;
  config.mean_duration = 15.0;
  config.vm_types = all_vm_types();
  Rng rng(9);
  std::vector<VmSpec> vms = generate_bursty_workload(config, 3, 0.25, rng);
  std::vector<ServerSpec> servers;
  const auto& types = all_server_types();
  for (int i = 0; i < 12; ++i)
    servers.push_back(make_server(
        types[types.size() - 1 - static_cast<std::size_t>(i) % types.size()], i, 1.0));
  const ProblemInstance p = make_problem(std::move(vms), std::move(servers));

  for (const std::string name : {"min-incremental", "ffps", "dot-product-fit"}) {
    Rng alloc_rng(3);
    const Allocation alloc = make_allocator(name)->allocate(p, alloc_rng);
    ASSERT_EQ(validate_allocation(p, alloc, false), "") << name;
    const Energy analytic = evaluate_cost(p, alloc).total();
    EXPECT_NEAR(SimulationEngine(p, alloc).run().total_energy(), analytic,
                1e-6 * std::max(1.0, analytic))
        << name;
  }
}

}  // namespace
}  // namespace esva
