#include "ext/migration.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

TEST(Migration, ImprovesAnObviouslyBadAllocation) {
  // Two overlapping small VMs spread over two servers; consolidating saves
  // a whole server's idle + transition.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 50, 2.0, 2.0), vm(1, 1, 50, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  Allocation spread;
  spread.assignment = {0, 1};

  MigrationConfig config;
  config.cost_per_gib = 10.0;
  const MigrationResult result = optimize_with_migration(p, spread, config);
  EXPECT_EQ(result.moves, 1);
  EXPECT_EQ(result.allocation.assignment[0], result.allocation.assignment[1]);
  EXPECT_LT(result.net_total(), result.energy_before);
  EXPECT_DOUBLE_EQ(result.migration_overhead, 10.0 * 2.0);
  EXPECT_GT(result.net_reduction(), 0.0);
}

TEST(Migration, RespectsMigrationPenalty) {
  // Same scenario, but a penalty larger than the possible saving: no move.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 50, 2.0, 2.0), vm(1, 1, 50, 2.0, 2.0)},
      {basic_server(0), basic_server(1)});
  Allocation spread;
  spread.assignment = {0, 1};

  MigrationConfig config;
  config.cost_per_gib = 1e9;
  const MigrationResult result = optimize_with_migration(p, spread, config);
  EXPECT_EQ(result.moves, 0);
  EXPECT_EQ(result.allocation.assignment, spread.assignment);
  EXPECT_DOUBLE_EQ(result.energy_after, result.energy_before);
}

TEST(Migration, NetTotalNeverIncreases) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    Rng gen(seed * 3);
    const ProblemInstance p = random_problem(gen, 20, 8);
    for (const std::string name : {"ffps", "random-fit"}) {
      Rng rng(seed);
      const Allocation alloc = make_allocator(name)->allocate(p, rng);
      const MigrationResult result = optimize_with_migration(p, alloc);
      ASSERT_LE(result.net_total(), result.energy_before + 1e-6)
          << name << " seed " << seed;
      ASSERT_EQ(validate_allocation(p, result.allocation, false), "")
          << name << " seed " << seed;
    }
  }
}

TEST(Migration, ReportsConsistentEnergies) {
  Rng gen(11);
  const ProblemInstance p = random_problem(gen, 16, 6);
  Rng rng(2);
  const Allocation alloc = make_allocator("random-fit")->allocate(p, rng);
  const MigrationResult result = optimize_with_migration(p, alloc);
  EXPECT_NEAR(result.energy_before, evaluate_cost(p, alloc).total(), 1e-9);
  EXPECT_NEAR(result.energy_after,
              evaluate_cost(p, result.allocation).total(), 1e-9);
}

TEST(Migration, PlacesPreviouslyUnallocatedVms) {
  // VM 1 starts unallocated; with a free server available it should be
  // placed (counted as a move).
  const ProblemInstance p = make_problem(
      {vm(0, 1, 20, 2.0, 2.0), vm(1, 1, 20, 3.0, 3.0)},
      {basic_server(0), basic_server(1)});
  Allocation partial;
  partial.assignment = {0, kNoServer};
  MigrationConfig config;
  config.cost_per_gib = 0.1;
  const MigrationResult result = optimize_with_migration(p, partial, config);
  EXPECT_NE(result.allocation.assignment[1], kNoServer);
  EXPECT_GE(result.moves, 1);
}

TEST(Migration, NeverDegradesMinIncremental) {
  // min-incremental on an easy instance is often locally optimal wrt
  // single-VM moves; at minimum, migration must not undo it into
  // something worse.
  Rng gen(7);
  const ProblemInstance p = random_problem(gen, 12, 6);
  Rng rng(3);
  const Allocation alloc =
      make_allocator("min-incremental")->allocate(p, rng);
  const Energy before = evaluate_cost(p, alloc).total();
  const MigrationResult result = optimize_with_migration(p, alloc);
  EXPECT_LE(result.net_total(), before + 1e-6);
}

TEST(Migration, HonorsRoundLimit) {
  Rng gen(9);
  const ProblemInstance p = random_problem(gen, 25, 10);
  Rng rng(5);
  const Allocation alloc = make_allocator("random-fit")->allocate(p, rng);
  MigrationConfig one_round;
  one_round.max_rounds = 1;
  one_round.cost_per_gib = 0.0;
  MigrationConfig many_rounds;
  many_rounds.max_rounds = 20;
  many_rounds.cost_per_gib = 0.0;
  const MigrationResult quick = optimize_with_migration(p, alloc, one_round);
  const MigrationResult thorough =
      optimize_with_migration(p, alloc, many_rounds);
  EXPECT_LE(thorough.energy_after, quick.energy_after + 1e-6);
  EXPECT_GE(thorough.moves, quick.moves);
}

}  // namespace
}  // namespace esva
