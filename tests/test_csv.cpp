#include "util/csv.h"

#include <gtest/gtest.h>

#include <sstream>

namespace esva {
namespace {

std::string write_rows(const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream out;
  CsvWriter csv(out);
  for (const auto& row : rows) csv.row(row);
  return out.str();
}

TEST(CsvWriter, PlainFields) {
  EXPECT_EQ(write_rows({{"a", "b", "c"}}), "a,b,c\n");
}

TEST(CsvWriter, QuotesFieldsWithCommas) {
  EXPECT_EQ(write_rows({{"a,b", "c"}}), "\"a,b\",c\n");
}

TEST(CsvWriter, EscapesEmbeddedQuotes) {
  EXPECT_EQ(write_rows({{"say \"hi\""}}), "\"say \"\"hi\"\"\"\n");
}

TEST(CsvWriter, QuotesNewlines) {
  EXPECT_EQ(write_rows({{"two\nlines"}}), "\"two\nlines\"\n");
}

TEST(CsvWriter, TypedRowFormatsNumbers) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.typed_row("name", 42, 2.5);
  EXPECT_EQ(out.str(), "name,42,2.5\n");
}

TEST(CsvWriter, DoubleRoundTripPrecision) {
  std::ostringstream out;
  CsvWriter csv(out);
  csv.typed_row(0.1 + 0.2);
  const double parsed = std::stod(out.str());
  EXPECT_EQ(parsed, 0.1 + 0.2);  // to_chars round-trips exactly
}

TEST(ParseCsvLine, PlainFields) {
  EXPECT_EQ(parse_csv_line("a,b,c"),
            (std::vector<std::string>{"a", "b", "c"}));
}

TEST(ParseCsvLine, EmptyFields) {
  EXPECT_EQ(parse_csv_line(",,"), (std::vector<std::string>{"", "", ""}));
}

TEST(ParseCsvLine, QuotedFieldWithComma) {
  EXPECT_EQ(parse_csv_line("\"a,b\",c"),
            (std::vector<std::string>{"a,b", "c"}));
}

TEST(ParseCsvLine, EscapedQuote) {
  EXPECT_EQ(parse_csv_line("\"say \"\"hi\"\"\""),
            (std::vector<std::string>{"say \"hi\""}));
}

TEST(ParseCsvLine, ToleratesCarriageReturn) {
  EXPECT_EQ(parse_csv_line("a,b\r"), (std::vector<std::string>{"a", "b"}));
}

TEST(ParseCsvLine, ThrowsOnUnterminatedQuote) {
  EXPECT_THROW(parse_csv_line("\"oops"), std::runtime_error);
}

TEST(ParseCsvLine, ThrowsOnQuoteInsideUnquotedField) {
  EXPECT_THROW(parse_csv_line("ab\"cd"), std::runtime_error);
}

TEST(ReadCsv, SkipsBlankLines) {
  std::istringstream in("a,b\n\nc,d\n\r\n");
  const auto rows = read_csv(in);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"c", "d"}));
}

TEST(ReadCsv, RoundTripsWriter) {
  const std::vector<std::vector<std::string>> rows = {
      {"id", "name", "note"},
      {"1", "with,comma", "with \"quote\""},
      {"2", "plain", ""},
  };
  std::istringstream in(write_rows(rows));
  EXPECT_EQ(read_csv(in), rows);
}

}  // namespace
}  // namespace esva
