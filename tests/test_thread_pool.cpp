#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <future>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace esva {
namespace {

TEST(ThreadPool, ConstructDestroyWithIdleWorkersAndNoTasks) {
  // Zero tasks ever submitted: the destructor must join cleanly while every
  // worker is parked on the condition variable.
  for (std::size_t threads : {1u, 2u, 4u, 16u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
  }
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 41 + 1; }).get(), 42);
}

TEST(ThreadPool, RunsManyMoreTasksThanThreads) {
  ThreadPool pool(3);
  std::atomic<int> executed{0};
  std::vector<std::future<int>> results;
  for (int k = 0; k < 100; ++k)
    results.push_back(pool.submit([k, &executed] {
      executed.fetch_add(1, std::memory_order_relaxed);
      return k * k;
    }));
  for (int k = 0; k < 100; ++k) EXPECT_EQ(results[static_cast<std::size_t>(k)].get(), k * k);
  EXPECT_EQ(executed.load(), 100);
}

TEST(ThreadPool, TasksActuallyRunOnWorkerThreads) {
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::future<std::thread::id>> ids;
  for (int k = 0; k < 8; ++k)
    ids.push_back(pool.submit([] { return std::this_thread::get_id(); }));
  std::set<std::thread::id> distinct;
  for (auto& f : ids) {
    const std::thread::id id = f.get();
    EXPECT_NE(id, caller);
    distinct.insert(id);
  }
  EXPECT_LE(distinct.size(), 2u);  // only the pool's workers ran tasks
}

TEST(ThreadPool, ExceptionPropagatesThroughFutureAndPoolSurvives) {
  ThreadPool pool(2);
  std::future<int> boom =
      pool.submit([]() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(boom.get(), std::runtime_error);
  // The worker that hosted the throwing task must still serve new work.
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
  std::future<void> boom_void =
      pool.submit([] { throw std::invalid_argument("void task failed"); });
  EXPECT_THROW(boom_void.get(), std::invalid_argument);
  EXPECT_EQ(pool.submit([] { return 8; }).get(), 8);
}

TEST(ThreadPool, ReusableAcrossManyRounds) {
  ThreadPool pool(4);
  long long total = 0;
  for (int round = 0; round < 200; ++round) {
    std::vector<std::future<int>> batch;
    for (int k = 0; k < 5; ++k)
      batch.push_back(pool.submit([round, k] { return round + k; }));
    for (auto& f : batch) total += f.get();
  }
  // Σ_{round<200} Σ_{k<5} (round + k) = 5·Σround + 200·(0+1+2+3+4)
  EXPECT_EQ(total, 5LL * (199 * 200 / 2) + 200LL * 10);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> executed{0};
  {
    ThreadPool pool(1);
    // One slow task to back the queue up, then a burst behind it; every
    // future must still complete (no broken promises at teardown).
    for (int k = 0; k < 20; ++k)
      (void)pool.submit([k, &executed] {
        if (k == 0)
          std::this_thread::sleep_for(std::chrono::milliseconds(20));
        executed.fetch_add(1, std::memory_order_relaxed);
      });
  }
  EXPECT_EQ(executed.load(), 20);
}

}  // namespace
}  // namespace esva
