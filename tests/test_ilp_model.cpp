#include "ilp/model.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "core/power_model.h"
#include "ilp/lp_export.h"
#include "ilp/validate.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::vm;

ProblemInstance small_problem() {
  // 2 VMs, 2 servers, horizon 6.
  return make_problem({vm(0, 1, 3, 2.0, 1.0), vm(1, 4, 6, 3.0, 2.0)},
                      {basic_server(0), basic_server(1)});
}

TEST(IlpModel, VariableCounts) {
  const IlpModel model = build_ilp(small_problem());
  EXPECT_EQ(model.num_x(), 4u);        // 2 servers × 2 VMs
  EXPECT_EQ(model.num_y(), 12u);       // 2 servers × horizon 6
  EXPECT_EQ(model.num_z(), 12u);
  EXPECT_EQ(model.num_vars(), 28u);
}

TEST(IlpModel, VariableIndexingIsBijective) {
  const IlpModel model = build_ilp(small_problem());
  std::vector<bool> seen(model.num_vars(), false);
  for (int i = 0; i < model.num_servers; ++i) {
    for (int j = 0; j < model.num_vms; ++j) {
      ASSERT_FALSE(seen[model.x_index(i, j)]);
      seen[model.x_index(i, j)] = true;
    }
    for (Time t = 1; t <= model.horizon; ++t) {
      ASSERT_FALSE(seen[model.y_index(i, t)]);
      seen[model.y_index(i, t)] = true;
      ASSERT_FALSE(seen[model.z_index(i, t)]);
      seen[model.z_index(i, t)] = true;
    }
  }
  for (bool b : seen) EXPECT_TRUE(b);
}

TEST(IlpModel, VariableNames) {
  const IlpModel model = build_ilp(small_problem());
  EXPECT_EQ(model.var_name(model.x_index(1, 0)), "x_1_0");
  EXPECT_EQ(model.var_name(model.y_index(0, 3)), "y_0_3");
  EXPECT_EQ(model.var_name(model.z_index(1, 6)), "z_1_6");
}

TEST(IlpModel, ObjectiveCoefficientsMatchPaper) {
  const ProblemInstance p = small_problem();
  const IlpModel model = build_ilp(p);
  // x coefficients are W_ij (Eq. 3).
  EXPECT_DOUBLE_EQ(model.objective[model.x_index(0, 0)],
                   run_cost(p.servers[0], p.vms[0]));
  EXPECT_DOUBLE_EQ(model.objective[model.x_index(1, 1)],
                   run_cost(p.servers[1], p.vms[1]));
  // y coefficients are P_idle; z coefficients are alpha.
  EXPECT_DOUBLE_EQ(model.objective[model.y_index(0, 1)], 100.0);
  EXPECT_DOUBLE_EQ(model.objective[model.z_index(0, 1)], 200.0);
}

TEST(IlpModel, BinaryClassification) {
  const IlpModel model = build_ilp(small_problem());
  EXPECT_TRUE(model.is_binary(model.x_index(0, 0)));
  EXPECT_TRUE(model.is_binary(model.y_index(1, 6)));
  EXPECT_FALSE(model.is_binary(model.z_index(0, 1)));
}

TEST(IlpModel, FeasibleAssignmentSatisfiesAllRows) {
  const ProblemInstance p = small_problem();
  const IlpModel model = build_ilp(p);
  Allocation alloc;
  alloc.assignment = {0, 1};
  const auto active = derive_active_sets(p, alloc);
  const auto values = to_variable_assignment(model, p, alloc, active);
  EXPECT_EQ(model.first_violation(values), "");
}

TEST(IlpModel, MissingAssignmentViolatesConstraint11) {
  const ProblemInstance p = small_problem();
  const IlpModel model = build_ilp(p);
  Allocation alloc;
  alloc.assignment = {0, kNoServer};
  const auto active = derive_active_sets(p, alloc);
  const auto values = to_variable_assignment(model, p, alloc, active);
  EXPECT_NE(model.first_violation(values).find("assign_1"), std::string::npos);
}

TEST(IlpModel, PoweredDownHostViolatesCoupling) {
  const ProblemInstance p = small_problem();
  const IlpModel model = build_ilp(p);
  Allocation alloc;
  alloc.assignment = {0, 0};
  auto active = derive_active_sets(p, alloc);
  // Sabotage: claim server 0 is never active.
  active[0].clear();
  const auto values = to_variable_assignment(model, p, alloc, active);
  const std::string violation = model.first_violation(values);
  EXPECT_FALSE(violation.empty());
}

TEST(IlpModel, ObjectiveValueMatchesCostModel) {
  const ProblemInstance p = small_problem();
  const IlpModel model = build_ilp(p);
  for (const std::vector<ServerId>& assignment :
       {std::vector<ServerId>{0, 0}, {0, 1}, {1, 0}, {1, 1}}) {
    Allocation alloc;
    alloc.assignment = assignment;
    const auto active = derive_active_sets(p, alloc);
    const auto values = to_variable_assignment(model, p, alloc, active);
    EXPECT_NEAR(model.objective_value(values), evaluate_cost(p, alloc).total(),
                1e-9);
  }
}

TEST(IlpModel, CapacityRowViolationDetected) {
  // Two overlapping 6-CPU VMs forced on one 10-CPU server.
  const ProblemInstance p = make_problem(
      {vm(0, 1, 4, 6.0, 1.0), vm(1, 2, 5, 6.0, 1.0)}, {basic_server(0), basic_server(1)});
  const IlpModel model = build_ilp(p);
  Allocation alloc;
  alloc.assignment = {0, 0};
  const auto active = derive_active_sets(p, alloc);
  const auto values = to_variable_assignment(model, p, alloc, active);
  EXPECT_NE(model.first_violation(values).find("cap_cpu_0"),
            std::string::npos);
}

TEST(LpExport, ContainsAllSections) {
  std::ostringstream out;
  write_lp(out, build_ilp(small_problem()));
  const std::string lp = out.str();
  for (const char* section :
       {"Minimize", "Subject To", "Bounds", "Binary", "End"})
    EXPECT_NE(lp.find(section), std::string::npos) << section;
}

TEST(LpExport, MentionsVariablesAndConstraints) {
  std::ostringstream out;
  write_lp(out, build_ilp(small_problem()));
  const std::string lp = out.str();
  EXPECT_NE(lp.find("x_0_0"), std::string::npos);
  EXPECT_NE(lp.find("y_1_6"), std::string::npos);
  EXPECT_NE(lp.find("assign_0:"), std::string::npos);
  EXPECT_NE(lp.find("switch_0_1:"), std::string::npos);
  EXPECT_NE(lp.find(" = 1"), std::string::npos);   // assignment equality
  EXPECT_NE(lp.find(" <= 0"), std::string::npos);  // coupling rows
}

TEST(LpExport, SaveLpWritesFile) {
  const std::string path = ::testing::TempDir() + "/esva_test.lp";
  save_lp(path, build_ilp(small_problem()));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string first_line;
  std::getline(in, first_line);
  EXPECT_NE(first_line.find("esva"), std::string::npos);
}

}  // namespace
}  // namespace esva
