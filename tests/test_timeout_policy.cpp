#include "ext/timeout_policy.h"

#include <gtest/gtest.h>

#include "baselines/registry.h"
#include "core/segments.h"
#include "test_util.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::vm;

IntervalSet busy_of(std::initializer_list<Interval> intervals) {
  IntervalSet set;
  for (const Interval& iv : intervals) set.insert(iv.lo, iv.hi);
  return set;
}

TEST(TimeoutPolicy, ZeroTimeoutMatchesBusySegments) {
  const IntervalSet busy = busy_of({{1, 5}, {10, 12}});
  const auto actives = timeout_active_intervals(busy, 100, {.timeout = 0});
  EXPECT_EQ(actives, (std::vector<Interval>{{1, 5}, {10, 12}}));
}

TEST(TimeoutPolicy, LingerExtendsEachSegment) {
  const IntervalSet busy = busy_of({{1, 5}, {20, 22}});
  const auto actives = timeout_active_intervals(busy, 100, {.timeout = 3});
  EXPECT_EQ(actives, (std::vector<Interval>{{1, 8}, {20, 25}}));
}

TEST(TimeoutPolicy, ShortGapCoalesces) {
  // Gap {6..9} (4 units) with timeout 4: the server never powers down.
  const IntervalSet busy = busy_of({{1, 5}, {10, 12}});
  const auto actives = timeout_active_intervals(busy, 100, {.timeout = 4});
  ASSERT_EQ(actives.size(), 1u);
  EXPECT_EQ(actives[0].lo, 1);
  EXPECT_EQ(actives[0].hi, 12 + 4);
}

TEST(TimeoutPolicy, LingerClampedToHorizonAndNextSegment) {
  const IntervalSet busy = busy_of({{1, 5}, {8, 10}});
  // timeout 10 but next segment starts at 8: linger stops at 7, coalesces;
  // final linger clamped to horizon 12.
  const auto actives = timeout_active_intervals(busy, 12, {.timeout = 10});
  EXPECT_EQ(actives, (std::vector<Interval>{{1, 12}}));
}

TEST(TimeoutPolicy, BreakdownChargesLingerAsIdle) {
  // basic_server: P_idle 100, alpha 200. One segment [1,5], timeout 3:
  // active [1,8] -> idle 800, one transition 200.
  const IntervalSet busy = busy_of({{1, 5}});
  const CostBreakdown bd =
      timeout_structure_breakdown(busy, basic_server(), 100, {.timeout = 3});
  EXPECT_DOUBLE_EQ(bd.idle, 800.0);
  EXPECT_DOUBLE_EQ(bd.transition, 200.0);
}

TEST(TimeoutPolicy, EmptyBusyCostsNothing) {
  const CostBreakdown bd =
      timeout_structure_breakdown(IntervalSet{}, basic_server(), 50, {});
  EXPECT_DOUBLE_EQ(bd.total(), 0.0);
}

TEST(TimeoutPolicy, NeverBeatsTheOptimalPolicy) {
  // Clairvoyant gap decisions are optimal by construction; any timeout must
  // cost at least as much, on any busy structure.
  Rng rng(31);
  for (int trial = 0; trial < 200; ++trial) {
    IntervalSet busy;
    const int segments = static_cast<int>(rng.uniform_int(1, 6));
    for (int k = 0; k < segments; ++k) {
      const Time lo = static_cast<Time>(rng.uniform_int(1, 180));
      busy.insert(lo, static_cast<Time>(
                          rng.uniform_int(lo, std::min<Time>(200, lo + 30))));
    }
    const ServerSpec spec = basic_server();
    const Energy optimal = structure_cost(busy, spec);
    for (Time timeout : {0, 1, 2, 5, 20, 100}) {
      const Energy priced =
          timeout_structure_breakdown(busy, spec, 200, {.timeout = timeout})
              .total();
      ASSERT_GE(priced, optimal - 1e-9)
          << "trial " << trial << " timeout " << timeout;
    }
  }
}

TEST(TimeoutPolicy, OptimalGapThresholdTimeoutPaysOnlyTrailingLinger) {
  // For the basic server (alpha/P_idle = 2), a timeout of exactly 2 makes
  // the same bridge/power-down decisions as the optimal policy on every
  // interior gap; the residual difference is the 2-unit linger after each
  // power-down (here: after the [1,10] block and after the final segment).
  const IntervalSet busy = busy_of({{1, 5}, {8, 10}, {50, 60}});
  const ServerSpec spec = basic_server();
  const Energy optimal = structure_cost(busy, spec);  // 2500
  const Energy timeout2 =
      timeout_structure_breakdown(busy, spec, 200, {.timeout = 2}).total();
  EXPECT_DOUBLE_EQ(timeout2, optimal + 4.0 * spec.p_idle);
}

TEST(TimeoutPolicy, EvaluateCostIntegratesOverFleet) {
  Rng gen(5);
  const ProblemInstance p = random_problem(gen, 15, 6);
  Rng rng(1);
  const Allocation alloc = make_allocator("min-incremental")->allocate(p, rng);
  const Energy optimal = evaluate_cost(p, alloc).total();
  const Energy timeout = evaluate_cost_with_timeout(p, alloc, {.timeout = 5});
  EXPECT_GE(timeout, optimal - 1e-6);
  // A huge timeout makes servers stay on until the horizon: strictly worse.
  const Energy always_on =
      evaluate_cost_with_timeout(p, alloc, {.timeout = 100000});
  EXPECT_GT(always_on, timeout);
}

}  // namespace
}  // namespace esva
