#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "baselines/registry.h"
#include "cluster/timeline.h"
#include "core/cost_model.h"
#include "core/min_incremental.h"
#include "obs/metrics.h"
#include "test_util.h"
#include "util/rng.h"

namespace esva {
namespace {

using testing::basic_server;
using testing::random_problem;
using testing::server;
using testing::vm;

VmDecisionTrace sample_decision() {
  VmDecisionTrace d;
  d.allocator = "min-incremental";
  d.vm = 7;
  d.chosen = 2;
  d.has_chosen_delta = true;
  d.chosen_delta = 123.5;
  CandidateTrace rejected;
  rejected.server = 0;
  rejected.feasible = false;
  rejected.reject = FitReject::Cpu;
  rejected.reject_at = 4;
  d.candidates.push_back(rejected);
  CandidateTrace feasible;
  feasible.server = 2;
  feasible.feasible = true;
  feasible.has_delta = true;
  feasible.delta = 123.5;
  d.candidates.push_back(feasible);
  return d;
}

void expect_equal(const VmDecisionTrace& a, const VmDecisionTrace& b) {
  EXPECT_EQ(a.allocator, b.allocator);
  EXPECT_EQ(a.vm, b.vm);
  EXPECT_EQ(a.chosen, b.chosen);
  EXPECT_EQ(a.has_chosen_delta, b.has_chosen_delta);
  if (a.has_chosen_delta) EXPECT_DOUBLE_EQ(a.chosen_delta, b.chosen_delta);
  EXPECT_EQ(a.note, b.note);
  ASSERT_EQ(a.candidates.size(), b.candidates.size());
  for (std::size_t i = 0; i < a.candidates.size(); ++i) {
    EXPECT_EQ(a.candidates[i].server, b.candidates[i].server);
    EXPECT_EQ(a.candidates[i].feasible, b.candidates[i].feasible);
    EXPECT_EQ(a.candidates[i].reject, b.candidates[i].reject);
    EXPECT_EQ(a.candidates[i].reject_at, b.candidates[i].reject_at);
    EXPECT_EQ(a.candidates[i].has_delta, b.candidates[i].has_delta);
    if (a.candidates[i].has_delta)
      EXPECT_DOUBLE_EQ(a.candidates[i].delta, b.candidates[i].delta);
  }
}

TEST(TraceJsonl, RoundTripsThroughSerialization) {
  const VmDecisionTrace original = sample_decision();
  std::istringstream in(to_jsonl(original) + "\n");
  const std::vector<VmDecisionTrace> parsed = load_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  expect_equal(parsed[0], original);
}

TEST(TraceJsonl, EscapesSpecialCharactersInStrings) {
  VmDecisionTrace d = sample_decision();
  d.allocator = "quote\" backslash\\ newline\n tab\t bell\x07 end";
  d.note = "migration \"phase 2\"";
  const std::string line = to_jsonl(d);
  // A JSONL record must stay on one physical line.
  EXPECT_EQ(line.find('\n'), std::string::npos);
  std::istringstream in(line);
  const std::vector<VmDecisionTrace> parsed = load_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  expect_equal(parsed[0], d);
}

TEST(TraceJsonl, UnallocatedVmSerializesNullChosen) {
  VmDecisionTrace d;
  d.allocator = "ffps";
  d.vm = 3;
  d.chosen = kNoServer;
  const std::string line = to_jsonl(d);
  EXPECT_NE(line.find("\"chosen\":null"), std::string::npos);
  std::istringstream in(line);
  const std::vector<VmDecisionTrace> parsed = load_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].chosen, kNoServer);
  EXPECT_FALSE(parsed[0].has_chosen_delta);
}

TEST(TraceJsonl, LoaderSkipsBlankLinesAndRejectsGarbage) {
  std::istringstream ok(to_jsonl(sample_decision()) + "\n\n  \n" +
                        to_jsonl(sample_decision()) + "\n");
  EXPECT_EQ(load_trace_jsonl(ok).size(), 2u);
  std::istringstream bad("{\"allocator\": \"x\", \"vm\": }\n");
  EXPECT_THROW(load_trace_jsonl(bad), std::runtime_error);
}

TEST(TraceJsonl, SinkStreamsOneLinePerDecision) {
  std::ostringstream out;
  {
    JsonlTraceSink sink(out);
    sink.on_decision(sample_decision());
    sink.on_decision(sample_decision());
  }
  std::istringstream in(out.str());
  EXPECT_EQ(load_trace_jsonl(in).size(), 2u);
}

TEST(MemorySink, BuffersAndClears) {
  MemoryTraceSink sink;
  EXPECT_EQ(sink.size(), 0u);
  sink.on_decision(sample_decision());
  EXPECT_EQ(sink.size(), 1u);
  EXPECT_EQ(sink.decisions()[0].vm, 7);
  sink.clear();
  EXPECT_EQ(sink.size(), 0u);
}

TEST(AssignmentFromTrace, LastDecisionWinsAndThrowsOnBadVm) {
  VmDecisionTrace first = sample_decision();
  first.vm = 0;
  first.chosen = 1;
  VmDecisionTrace second = first;
  second.chosen = 4;
  second.note = "migration";
  const std::vector<ServerId> assignment =
      assignment_from_trace({first, second}, 2);
  ASSERT_EQ(assignment.size(), 2u);
  EXPECT_EQ(assignment[0], 4);          // migration overrode the placement
  EXPECT_EQ(assignment[1], kNoServer);  // never mentioned
  VmDecisionTrace rogue = first;
  rogue.vm = 99;
  EXPECT_THROW(assignment_from_trace({rogue}, 2), std::runtime_error);
}

TEST(AssignmentFromTrace, NullChosenOverridesEarlierPlacement) {
  // Pins the retire/rejection half of last-write-wins: a later record with
  // chosen == kNoServer ("chosen":null on the wire) resolves the VM to
  // unhosted — the contract the serve daemon's retire records rely on
  // (serve/journal.h).
  VmDecisionTrace placed = sample_decision();
  placed.vm = 1;
  placed.chosen = 3;
  VmDecisionTrace retired = placed;
  retired.chosen = kNoServer;
  retired.note = "retired";
  const std::vector<ServerId> assignment =
      assignment_from_trace({placed, retired}, 2);
  EXPECT_EQ(assignment[1], kNoServer);
  // And the reverse order re-hosts it: strictly positional, no merging.
  const std::vector<ServerId> rehosted =
      assignment_from_trace({retired, placed}, 2);
  EXPECT_EQ(rehosted[1], 3);
}

TEST(TraceJsonl, RejectedVmRoundTripsAsNullChosen) {
  VmDecisionTrace rejected = sample_decision();
  rejected.vm = 5;
  rejected.chosen = kNoServer;
  const std::string line = to_jsonl(rejected);
  EXPECT_NE(line.find("\"chosen\":null"), std::string::npos) << line;
  std::istringstream in(line + "\n");
  const std::vector<VmDecisionTrace> parsed = load_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].chosen, kNoServer);
  EXPECT_EQ(assignment_from_trace(parsed, 6)[5], kNoServer);
}

TEST(TraceJsonl, UnknownKeysAreIgnoredForForwardCompat) {
  // The serve WAL writes trace-schema supersets (extra op/seq/spec/
  // energy_hex keys); the loader must keep accepting them.
  std::istringstream in(
      R"({"op":"place","seq":"9","vm":2,"chosen":1,"energy_hex":"0x1p+3",)"
      R"("spec":{"id":2,"cpu":"0x1p+0"},"future_field":[1,{"x":null}]})"
      "\n");
  const std::vector<VmDecisionTrace> parsed = load_trace_jsonl(in);
  ASSERT_EQ(parsed.size(), 1u);
  EXPECT_EQ(parsed[0].vm, 2);
  EXPECT_EQ(parsed[0].chosen, 1);
}

TEST(TraceJsonl, OutOfRangeNumbersAreStructuredErrors) {
  for (const std::string line :
       {R"({"vm":1e99,"chosen":0})", R"({"vm":-1,"chosen":0})",
        R"({"vm":0,"chosen":-5})", R"({"vm":0.5,"chosen":0})"}) {
    std::istringstream in(line + "\n");
    EXPECT_THROW(load_trace_jsonl(in), std::runtime_error) << line;
  }
}

// --- check_fit: the diagnostic twin of can_fit -----------------------------

TEST(CheckFit, ReportsCpuViolationWithTimeUnit) {
  ServerTimeline timeline(basic_server(0), /*horizon=*/20);
  timeline.place(vm(0, 5, 10, 8.0, 1.0));  // 8/10 CPU busy on [5,10]
  const FitCheck fit = timeline.check_fit(vm(1, 8, 12, 4.0, 1.0));
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.reject, FitReject::Cpu);
  EXPECT_GE(fit.at, 8);
  EXPECT_LE(fit.at, 10);  // the clash is inside the overlap [8,10]
}

TEST(CheckFit, ReportsMemViolationWithTimeUnit) {
  ServerTimeline timeline(basic_server(0), /*horizon=*/20);
  timeline.place(vm(0, 5, 10, 1.0, 9.0));
  const FitCheck fit = timeline.check_fit(vm(1, 10, 14, 1.0, 3.0));
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.reject, FitReject::Mem);
  EXPECT_EQ(fit.at, 10);  // only time unit where both VMs are resident
}

TEST(CheckFit, ReportsHorizonViolation) {
  ServerTimeline timeline(basic_server(0), /*horizon=*/10);
  const FitCheck fit = timeline.check_fit(vm(0, 8, 15, 1.0, 1.0));
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.reject, FitReject::Horizon);
}

TEST(CheckFit, FeasibleReportsNone) {
  ServerTimeline timeline(basic_server(0), /*horizon=*/20);
  const FitCheck fit = timeline.check_fit(vm(0, 1, 5, 2.0, 2.0));
  EXPECT_TRUE(fit.ok);
  EXPECT_EQ(fit.reject, FitReject::None);
}

// Property: check_fit().ok must agree with can_fit() on every probe an
// allocator would make — randomized over instances and partial placements.
TEST(CheckFitProperty, AgreesWithCanFitOnRandomPlacements) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    Rng rng(seed);
    const ProblemInstance p = random_problem(rng, 20, 4);
    std::vector<ServerTimeline> timelines =
        make_timelines(p.servers, p.horizon);
    for (std::size_t j = 0; j < p.num_vms(); ++j) {
      const VmSpec& candidate = p.vms[j];
      for (std::size_t i = 0; i < timelines.size(); ++i) {
        const FitCheck fit = timelines[i].check_fit(candidate);
        ASSERT_EQ(fit.ok, timelines[i].can_fit(candidate))
            << "seed " << seed << " vm " << j << " server " << i;
        if (!fit.ok) ASSERT_NE(fit.reject, FitReject::None);
      }
      // Greedily place on the first feasible server to vary the state.
      for (auto& timeline : timelines) {
        if (timeline.can_fit(candidate)) {
          timeline.place(candidate);
          break;
        }
      }
    }
  }
}

// --- end-to-end: traced allocation runs -----------------------------------

TEST(AllocatorTrace, EmitsOneDecisionPerVmAndReplaysExactly) {
  Rng seed_rng(11);
  const ProblemInstance p = random_problem(seed_rng, 30, 6);
  MemoryTraceSink sink;
  MetricsRegistry registry;
  MinIncrementalAllocator allocator;
  ObsContext obs;
  obs.trace = &sink;
  obs.metrics = &registry;
  allocator.set_observability(obs);
  Rng rng(3);
  const Allocation alloc = allocator.allocate(p, rng);

  const std::vector<VmDecisionTrace> decisions = sink.decisions();
  ASSERT_EQ(decisions.size(), p.num_vms());  // exactly one record per VM
  EXPECT_EQ(assignment_from_trace(decisions, p.num_vms()), alloc.assignment);
  EXPECT_GT(registry.timer("allocator.min-incremental.allocate_ms")
                .stats()
                .count,
            0);
}

TEST(AllocatorTrace, ChosenDeltaIsTheMinimumFeasibleDelta) {
  Rng seed_rng(5);
  const ProblemInstance p = random_problem(seed_rng, 25, 5);
  MemoryTraceSink sink;
  MinIncrementalAllocator allocator;
  ObsContext obs;
  obs.trace = &sink;
  allocator.set_observability(obs);
  Rng rng(3);
  (void)allocator.allocate(p, rng);

  for (const VmDecisionTrace& d : sink.decisions()) {
    Energy best = kInf;
    for (const CandidateTrace& c : d.candidates) {
      if (c.feasible) {
        ASSERT_TRUE(c.has_delta);
        best = std::min(best, c.delta);
      } else {
        EXPECT_NE(c.reject, FitReject::None);
      }
    }
    if (d.chosen == kNoServer) {
      EXPECT_EQ(best, kInf);  // no feasible candidate existed
    } else {
      ASSERT_TRUE(d.has_chosen_delta);
      EXPECT_DOUBLE_EQ(d.chosen_delta, best);
    }
  }
}

TEST(AllocatorTrace, TracedAndUntracedRunsProduceIdenticalAssignments) {
  for (const std::string& name :
       {std::string("min-incremental"), std::string("ffps"),
        std::string("best-fit-cpu"), std::string("lowest-idle-power")}) {
    Rng seed_rng(17);
    const ProblemInstance p = random_problem(seed_rng, 25, 5);

    AllocatorPtr plain = make_allocator(name);
    Rng rng_a(9);
    const Allocation untraced = plain->allocate(p, rng_a);

    MemoryTraceSink sink;
    AllocatorPtr traced = make_allocator(name);
    ObsContext obs;
    obs.trace = &sink;
    traced->set_observability(obs);
    Rng rng_b(9);
    const Allocation with_trace = traced->allocate(p, rng_b);

    EXPECT_EQ(untraced.assignment, with_trace.assignment) << name;
    EXPECT_GE(sink.size(), p.num_vms()) << name;  // >= 1 record per VM
    EXPECT_EQ(assignment_from_trace(sink.decisions(), p.num_vms()),
              with_trace.assignment)
        << name;
  }
}

TEST(AllocatorTrace, RejectionReasonsNameTheViolatedResource) {
  // One tiny server: the second large-CPU VM must be rejected with "cpu".
  const ProblemInstance p = make_problem(
      {vm(0, 1, 10, 8.0, 2.0), vm(1, 2, 9, 8.0, 2.0)}, {basic_server(0)});
  MemoryTraceSink sink;
  MinIncrementalAllocator allocator;
  ObsContext obs;
  obs.trace = &sink;
  allocator.set_observability(obs);
  Rng rng(1);
  const Allocation alloc = allocator.allocate(p, rng);
  EXPECT_EQ(alloc.assignment[1], kNoServer);

  const std::vector<VmDecisionTrace> decisions = sink.decisions();
  ASSERT_EQ(decisions.size(), 2u);
  const VmDecisionTrace& second = decisions[1];
  EXPECT_EQ(second.chosen, kNoServer);
  ASSERT_EQ(second.candidates.size(), 1u);
  EXPECT_FALSE(second.candidates[0].feasible);
  EXPECT_EQ(second.candidates[0].reject, FitReject::Cpu);
  EXPECT_GE(second.candidates[0].reject_at, 2);  // inside the overlap [2,9]
  EXPECT_LE(second.candidates[0].reject_at, 9);
}

TEST(FitRejectToString, CoversVocabulary) {
  EXPECT_EQ(to_string(FitReject::None), "none");
  EXPECT_EQ(to_string(FitReject::Horizon), "horizon");
  EXPECT_EQ(to_string(FitReject::Cpu), "cpu");
  EXPECT_EQ(to_string(FitReject::Mem), "mem");
}

}  // namespace
}  // namespace esva
