#include "util/logging.h"

#include <gtest/gtest.h>

#include <cctype>

namespace esva {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { previous_ = log_level(); }
  void TearDown() override { set_log_level(previous_); }

 private:
  LogLevel previous_ = LogLevel::Warn;
};

TEST_F(LoggingTest, DefaultThresholdSuppressesInfo) {
  set_log_level(LogLevel::Warn);
  ::testing::internal::CaptureStderr();
  log_info() << "should be dropped";
  log_warn() << "should appear";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(captured.find("should be dropped"), std::string::npos);
  EXPECT_NE(captured.find("should appear"), std::string::npos);
}

TEST_F(LoggingTest, LevelPrefixesAreEmitted) {
  set_log_level(LogLevel::Debug);
  ::testing::internal::CaptureStderr();
  log_debug() << "d";
  log_error() << "e";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("ms DEBUG]"), std::string::npos);
  EXPECT_NE(captured.find("ms ERROR]"), std::string::npos);
}

TEST_F(LoggingTest, PrefixCarriesElapsedMilliseconds) {
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  log_info() << "timed";
  const std::string captured = ::testing::internal::GetCapturedStderr();
  // "[<number>ms INFO] timed" — the elapsed counter is monotonic from
  // process start, so we only check shape, not value.
  ASSERT_EQ(captured.front(), '[');
  const std::size_t ms_pos = captured.find("ms INFO] timed");
  ASSERT_NE(ms_pos, std::string::npos);
  bool saw_digit = false;
  for (std::size_t i = 1; i < ms_pos; ++i) {
    EXPECT_TRUE(captured[i] == ' ' || std::isdigit(
                    static_cast<unsigned char>(captured[i])))
        << captured;
    saw_digit |= std::isdigit(static_cast<unsigned char>(captured[i])) != 0;
  }
  EXPECT_TRUE(saw_digit);
}

TEST_F(LoggingTest, ParseLogLevelCoversVocabulary) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::Error);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  set_log_level(LogLevel::Off);
  ::testing::internal::CaptureStderr();
  log_error() << "even errors";
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, StreamingFormatsValues) {
  set_log_level(LogLevel::Info);
  ::testing::internal::CaptureStderr();
  log_info() << "x=" << 42 << " y=" << 2.5;
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("x=42 y=2.5"), std::string::npos);
}

TEST_F(LoggingTest, LevelRoundTrips) {
  set_log_level(LogLevel::Error);
  EXPECT_EQ(log_level(), LogLevel::Error);
  set_log_level(LogLevel::Debug);
  EXPECT_EQ(log_level(), LogLevel::Debug);
}

}  // namespace
}  // namespace esva
